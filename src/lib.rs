//! # oblivious — multicore- and network-oblivious algorithms
//!
//! Facade crate for the reproduction of Chowdhury, Silvestri, Blakeley and
//! Ramachandran, *Oblivious Algorithms for Multicores and Network of
//! Processors* (IPDPS 2010).
//!
//! The workspace is organized as:
//!
//! * [`hm`] — the HM machine model: hierarchical multi-level cache
//!   simulator (sizes `C_i`, blocks `B_i`, fanouts `p_i`, shadows).
//! * [`mo`] — the multicore-oblivious runtime: scheduler hints
//!   (CGC, SB, CGC⇒SB), the record/replay execution engine over the HM
//!   simulator, and a real-thread hierarchy-aware scheduler.
//! * [`algs`] — the paper's MO algorithms: matrix transposition, scans,
//!   FFT, sorting, SpM-DV, the Gaussian Elimination Paradigm, list ranking,
//!   connected components and other graph problems.
//! * [`no`] — the network-oblivious framework (M(N), M(p,B), D-BSP) and
//!   NO algorithms, including N-GEP with the 𝒟\* schedule of Table I.
//! * [`baselines`] — cache-aware/naive comparators and the
//!   "proportionate slice" scheduler the paper argues against in §II.
//! * [`obs`] — runtime observability: lock-free per-worker event
//!   rings, the merged scheduler-decision timeline, chrome-trace/Perfetto
//!   export, and the Prometheus text writer/parser.
//! * [`serve`] — the serving layer: a space-bound-aware kernel service
//!   with SB admission control, CGC⇒SB request batching, bounded-queue
//!   backpressure and per-kernel/per-level metrics.
//! * [`dist`] — the distributed tier: a real multi-process D-BSP over
//!   TCP sockets running the same NO kernel sources through the `Comm`
//!   trait, with a consistent-hash router, per-shard `mo-serve`
//!   admission, and a merged fleet `/metrics` view.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the per-table/figure reproduction index.

pub use hm_model as hm;
pub use mo_algorithms as algs;
pub use mo_baselines as baselines;
pub use mo_core as mo;
pub use mo_dist as dist;
pub use mo_obs as obs;
pub use mo_serve as serve;
pub use no_framework as no;
