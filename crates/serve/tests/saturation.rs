//! Saturation test: offered load far beyond capacity must engage
//! backpressure — typed shedding, bounded queue, finite latencies, a
//! clean drain — never a panic or unbounded growth.

use std::time::Duration;

use mo_serve::{HwHierarchy, JobSpec, Kernel, Outcome, Rejected, ServeConfig, Server};

fn tiny_server() -> Server {
    // 4 "cores", 2 KiW private caches, one 64 KiW shared cache, a queue
    // of 8: a machine that saturates after a handful of medium jobs.
    Server::start(
        HwHierarchy::flat(4, 2048, 1 << 16),
        ServeConfig {
            workers: 2,
            queue_cap: 8,
            default_deadline: Duration::from_millis(250),
            batch_max: 4,
            batch_words_max: Some(1 << 14),
            ..ServeConfig::default()
        },
    )
}

#[test]
fn overload_sheds_instead_of_collapsing() {
    let server = tiny_server();
    // Offered load: 300 jobs as fast as the submit path allows. Matmul
    // n=96 has footprint 27648 words — only two fit the shared level at
    // once — so service throughput is far below the offered rate and the
    // queue must overflow almost immediately.
    let mut tickets = Vec::new();
    let mut refused_at_submit = 0u64;
    for i in 0..300u64 {
        match server.submit(JobSpec::new(Kernel::Matmul, 96, i)) {
            Ok(t) => tickets.push(t),
            Err(Rejected::QueueFull { depth }) => {
                assert!(depth <= 8, "queue grew past its bound: {depth}");
                refused_at_submit += 1;
            }
            Err(other) => panic!("unexpected submit rejection: {other:?}"),
        }
    }
    assert!(
        refused_at_submit > 0,
        "300 instant submissions never hit the bounded queue"
    );
    // Every accepted ticket resolves: served, or shed by its deadline.
    let mut done = 0u64;
    let mut shed_deadline = 0u64;
    for t in tickets {
        match t.wait() {
            Outcome::Done(d) => {
                assert!(d.anchor_level >= 1, "27 KiW job cannot anchor at L1");
                done += 1;
            }
            Outcome::Rejected(Rejected::DeadlineExpired { .. }) => shed_deadline += 1,
            Outcome::Rejected(other) => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert!(done > 0, "server made no progress under load");
    let snap = server.drain();
    // Backpressure engaged and was accounted.
    assert!(snap.shed_total() > 0);
    assert_eq!(
        snap.kernels[Kernel::Matmul.index()].shed_queue_full,
        refused_at_submit
    );
    assert_eq!(
        snap.kernels[Kernel::Matmul.index()].shed_deadline,
        shed_deadline
    );
    assert_eq!(snap.kernels[Kernel::Matmul.index()].completed, done);
    // Latency quantiles exist and are finite.
    let m = &snap.kernels[Kernel::Matmul.index()];
    let p99 = m.p99_ms.expect("completed jobs must yield a p99");
    assert!(p99.is_finite() && p99 > 0.0);
    assert!(m.p50_ms.unwrap() <= p99);
    // Clean drain: nothing queued, nothing admitted, peaks were bounded.
    assert_eq!(snap.queue_depth, 0);
    assert!(snap.queue_peak <= 8);
    assert!(snap.levels.iter().all(|l| l.inflight_words == 0));
    for l in &snap.levels {
        assert!(
            l.peak_inflight_words <= l.capacity_words,
            "admission overran L{}: {} > {}",
            l.level + 1,
            l.peak_inflight_words,
            l.capacity_words
        );
    }
}

#[test]
fn mixed_overload_drains_cleanly() {
    let server = tiny_server();
    let specs = [
        (Kernel::Sort, 1000usize),
        (Kernel::Fft, 2048),
        (Kernel::Transpose, 64),
        (Kernel::SpmDv, 1024),
        (Kernel::Matmul, 64),
    ];
    let mut tickets = Vec::new();
    for round in 0..40u64 {
        for &(k, n) in &specs {
            if let Ok(t) = server.submit(JobSpec::new(k, n, round)) {
                tickets.push(t);
            }
        }
    }
    // Shut down while work is still queued: drain must still resolve
    // every ticket (served or shed) and empty the queue.
    server.shutdown();
    let resolved = tickets.len();
    let mut served = 0usize;
    for t in tickets {
        if t.wait().is_done() {
            served += 1;
        }
    }
    assert!(served > 0);
    let snap = server.drain();
    assert_eq!(snap.queue_depth, 0);
    assert!(snap.levels.iter().all(|l| l.inflight_words == 0));
    assert_eq!(
        snap.completed_total() + snap.kernels.iter().map(|k| k.shed_deadline).sum::<u64>(),
        resolved as u64
    );
}

#[test]
fn detected_hierarchy_serves_end_to_end() {
    // Whatever machine this runs on (sysfs-probed or the fallback), the
    // default server must serve a small mixed burst and drain.
    let server = Server::detected();
    let tickets: Vec<_> = (0..10u64)
        .filter_map(|i| server.submit(JobSpec::new(Kernel::Sort, 5000, i)).ok())
        .collect();
    assert!(!tickets.is_empty());
    for t in tickets {
        assert!(t.wait().is_done());
    }
    let snap = server.drain();
    assert!(snap.completed_total() > 0);
    assert_eq!(snap.queue_depth, 0);
}
