//! The `/metrics` exposition endpoint: a minimal HTTP server over
//! `std::net` that renders [`crate::MetricsSnapshot::to_prometheus_text`]
//! per scrape.
//!
//! Scrapes are rare (seconds apart) and the response is one contiguous
//! string, so one accept thread handling connections serially is
//! deliberate: no connection pool, no request pipelining, no external
//! dependency. The listener runs non-blocking and the thread polls a
//! stop flag between accepts, so dropping the handle shuts it down
//! promptly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::server::Shared;

/// How often the accept loop re-checks the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A running metrics endpoint. Serves `GET /metrics` (and `GET /`) as
/// `text/plain; version=0.0.4`; any other path is a 404. Dropping the
/// handle stops the endpoint.
pub struct MetricsExposition {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsExposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsExposition")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsExposition {
    pub(crate) fn bind(shared: Arc<Shared>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("mo-serve-metrics".into())
            .spawn(move || accept_loop(&listener, &shared, &flag))?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsExposition {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One slow or broken scraper must not wedge the loop.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                let _ = serve_one(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_one(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    // Read until the end of the request head. Bodies are ignored — a
    // scrape is a bare GET.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 16 * 1024 {
            break; // oversized head: answer whatever we parsed
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, ctype, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", String::new())
    } else if path == "/metrics" || path == "/" {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.snapshot().to_prometheus_text(),
        )
    } else {
        ("404 Not Found", "text/plain", String::new())
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}
