//! Lock-free service metrics and their snapshot API.
//!
//! Counters are plain relaxed atomics bumped on the hot paths; latency
//! is a fixed set of log₂-microsecond buckets per kernel, so quantiles
//! cost a 48-entry walk and recording costs one `fetch_add`. A
//! [`MetricsSnapshot`] is a plain-data copy suitable for printing,
//! asserting in tests, or shipping to an external collector.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use mo_core::rt::RtStats;
use mo_obs::witness::{CTR_INSTRUCTIONS, CTR_L1D_MISS, CTR_LLC_MISS, NCOUNTERS};

use crate::job::Kernel;

const NBUCKETS: usize = 48;

/// Log₂-microsecond latency histogram, plus the running sum needed for
/// a Prometheus histogram's `_sum` series.
#[derive(Debug)]
pub(crate) struct LatencyHist {
    buckets: [AtomicU64; NBUCKETS],
    sum_us: AtomicU64,
}

impl LatencyHist {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, d: Duration) {
        let us = d.as_micros() as u64;
        let idx = (64 - us.leading_zeros() as usize).min(NBUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Quantile over a log₂ histogram: upper bound (in ms) of the bucket
/// where the cumulative count crosses `q`. `None` without samples.
fn quantile_ms(buckets: &[u64], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (idx, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            // Bucket idx holds latencies in [2^(idx-1), 2^idx) µs.
            let upper_us = if idx >= 63 { u64::MAX } else { 1u64 << idx };
            return Some(upper_us as f64 / 1000.0);
        }
    }
    None
}

#[derive(Debug)]
pub(crate) struct KernelCells {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed_queue_full: AtomicU64,
    pub(crate) shed_deadline: AtomicU64,
    pub(crate) shed_too_large: AtomicU64,
    pub(crate) shed_not_certified: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    pub(crate) latency: LatencyHist,
    /// Cache-witness counter deltas attributed to this kernel's
    /// batches, indexed by witness counter id (`l1d_miss`, `llc_miss`,
    /// `instructions`). Measured on the serving thread that executed
    /// the batch (see `Server` docs for the attribution caveat).
    pub(crate) witness: [AtomicU64; NCOUNTERS],
    /// Analytic expected cache transfers (`Q_i`, in cache lines) for
    /// the same batches the witness measured, `[L1, LLC]`; the ratio
    /// measured/expected feeds the `moserve_witness_divergence` gauges.
    pub(crate) expected_transfers: [AtomicU64; 2],
}

impl KernelCells {
    fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_too_large: AtomicU64::new(0),
            shed_not_certified: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            latency: LatencyHist::new(),
            witness: std::array::from_fn(|_| AtomicU64::new(0)),
            expected_transfers: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Debug)]
pub(crate) struct LevelCells {
    pub(crate) admitted_jobs: AtomicU64,
    pub(crate) admitted_words: AtomicU64,
    pub(crate) peak_inflight_words: AtomicUsize,
}

impl LevelCells {
    fn new() -> Self {
        Self {
            admitted_jobs: AtomicU64::new(0),
            admitted_words: AtomicU64::new(0),
            peak_inflight_words: AtomicUsize::new(0),
        }
    }
}

/// The server's live counters (internal; read via snapshots).
#[derive(Debug)]
pub(crate) struct Metrics {
    pub(crate) kernels: Vec<KernelCells>,
    pub(crate) levels: Vec<LevelCells>,
    pub(crate) queue_peak: AtomicUsize,
    /// 1 when the hardware cache witness opened at startup.
    pub(crate) witness_available: AtomicU64,
}

impl Metrics {
    pub(crate) fn new(nlevels: usize) -> Self {
        Self {
            kernels: Kernel::ALL.iter().map(|_| KernelCells::new()).collect(),
            levels: (0..nlevels).map(|_| LevelCells::new()).collect(),
            queue_peak: AtomicUsize::new(0),
            witness_available: AtomicU64::new(0),
        }
    }

    pub(crate) fn kernel(&self, k: Kernel) -> &KernelCells {
        &self.kernels[k.index()]
    }

    /// Credit measured witness counter deltas to `k`'s cells.
    pub(crate) fn add_witness(&self, k: Kernel, deltas: [u64; NCOUNTERS]) {
        for (cell, d) in self.kernel(k).witness.iter().zip(deltas) {
            cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Credit the analytic expected transfers `[L1, LLC]` (in cache
    /// lines) of a witnessed batch to `k`'s cells.
    pub(crate) fn add_expected_transfers(&self, k: Kernel, expected: [u64; 2]) {
        for (cell, e) in self.kernel(k).expected_transfers.iter().zip(expected) {
            cell.fetch_add(e, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_peak_inflight(&self, level: usize, inflight: usize) {
        self.levels[level]
            .peak_inflight_words
            .fetch_max(inflight, Ordering::Relaxed);
    }

    pub(crate) fn note_queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Per-kernel counters at snapshot time.
#[derive(Debug, Clone)]
pub struct KernelSnapshot {
    /// Which kernel this row describes.
    pub kernel: Kernel,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs served to completion.
    pub completed: u64,
    /// Jobs shed at submission because the queue was full.
    pub shed_queue_full: u64,
    /// Jobs shed in the queue past their deadline.
    pub shed_deadline: u64,
    /// Jobs rejected because no cache level could ever hold them.
    pub shed_too_large: u64,
    /// Jobs refused by the secure-mode certificate gate (the kernel
    /// holds no `oblivious` value-obliviousness certificate).
    pub shed_not_certified: u64,
    /// Batches executed (each ≥ 2 jobs).
    pub batches: u64,
    /// Jobs that ran inside a multi-job batch.
    pub batched_jobs: u64,
    /// Median total latency (queue + service) in milliseconds.
    pub p50_ms: Option<f64>,
    /// 99th-percentile total latency in milliseconds.
    pub p99_ms: Option<f64>,
    /// Raw log₂-µs latency buckets (bucket `i` holds latencies in
    /// `(2^(i-1), 2^i]` µs; the last bucket is open-ended). Counts are
    /// *not* cumulative here; the Prometheus renderer accumulates them.
    pub latency_buckets: Vec<u64>,
    /// Sum of recorded latencies in microseconds.
    pub latency_sum_us: u64,
    /// Cache-witness counter totals for this kernel's batches, indexed
    /// by witness counter id ([`mo_obs::witness::CTR_L1D_MISS`] etc.);
    /// all zero when the hardware witness is unavailable.
    pub witness: [u64; mo_obs::witness::NCOUNTERS],
    /// Analytic expected transfers `[L1, LLC]` (cache lines) for the
    /// witnessed batches — `registry::analytic_transfers` summed over
    /// every batch that also carried a witness span.
    pub expected_transfers: [u64; 2],
}

impl KernelSnapshot {
    /// Measured-over-analytic transfer ratio `[L1, LLC]` — the value
    /// behind the `moserve_witness_divergence` gauges. `None` at an
    /// index without both a measurement and an expectation.
    pub fn witness_divergence(&self) -> [Option<f64>; 2] {
        let measured = [
            self.witness[CTR_L1D_MISS as usize],
            self.witness[CTR_LLC_MISS as usize],
        ];
        std::array::from_fn(|i| {
            (self.expected_transfers[i] > 0 && measured[i] > 0)
                .then(|| measured[i] as f64 / self.expected_transfers[i] as f64)
        })
    }
    /// All sheds for this kernel.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_too_large + self.shed_not_certified
    }

    /// Recorded latency samples.
    pub fn latency_count(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// Jobs accepted but not yet resolved at snapshot time.
    ///
    /// Only `completed` and `shed_deadline` resolve *accepted* jobs
    /// (`queue_full` / `too_large` rejections never count as
    /// submitted), so `submitted - completed - shed_deadline` is the
    /// number still queued or running. [`MetricsSnapshot::collect`]
    /// loads the resolution counters *before* `submitted` with SeqCst
    /// ordering, so this never underflows even against a racing
    /// snapshot — see the conservation note there.
    pub fn in_flight(&self) -> u64 {
        self.submitted - (self.completed + self.shed_deadline)
    }
}

/// Per-cache-level admission counters at snapshot time.
#[derive(Debug, Clone)]
pub struct LevelSnapshot {
    /// Level index (0 = L1).
    pub level: usize,
    /// Machine-wide capacity of the level in words.
    pub capacity_words: usize,
    /// Footprint words currently admitted against this level.
    pub inflight_words: usize,
    /// High-water mark of `inflight_words`.
    pub peak_inflight_words: usize,
    /// Jobs (or batches) admitted against this level so far.
    pub admitted_jobs: u64,
    /// Cumulative footprint words admitted against this level.
    pub admitted_words: u64,
}

/// One evaluated SLO burn-rate window pair at snapshot time.
#[derive(Debug, Clone, Copy)]
pub struct SloWindowSnapshot {
    /// Short-window length in seconds.
    pub short_secs: f64,
    /// Long-window length in seconds.
    pub long_secs: f64,
    /// Burn-rate factor both windows must exceed to page.
    pub factor: f64,
    /// Burn rate over the short window.
    pub burn_short: f64,
    /// Burn rate over the long window.
    pub burn_long: f64,
    /// Whether this pair is firing.
    pub burning: bool,
}

/// One evaluated SLO objective at snapshot time.
#[derive(Debug, Clone)]
pub struct SloObjectiveSnapshot {
    /// Objective name (`latency` or `availability`).
    pub objective: String,
    /// Required good fraction.
    pub target: f64,
    /// Whether any window pair is firing.
    pub burning: bool,
    /// Per-window-pair burn rates.
    pub windows: Vec<SloWindowSnapshot>,
}

/// A point-in-time copy of every service metric.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// One row per kernel.
    pub kernels: Vec<KernelSnapshot>,
    /// One row per cache level of the serving hierarchy.
    pub levels: Vec<LevelSnapshot>,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub queue_peak: usize,
    /// Cumulative fork statistics of the underlying [`mo_core::rt::SbPool`]
    /// since the server started (the RtStats delta of the serving run).
    pub rt: RtStats,
    /// Whether the hardware cache witness (`perf_event_open`) opened at
    /// startup; when `false` every per-kernel witness count is zero.
    pub witness_available: bool,
    /// Trace-ring overflow drops per pool worker (trailing entry =
    /// external ring); empty when no trace sink is attached (only the
    /// `obs` feature attaches one).
    pub ring_dropped: Vec<u64>,
    /// Evaluated SLO objectives; empty when the server runs without an
    /// SLO config.
    pub slo: Vec<SloObjectiveSnapshot>,
    /// Flight-recorder dumps written on not-burning → burning edges.
    pub slo_dumps: u64,
    /// Time since the server started.
    pub uptime: Duration,
}

impl MetricsSnapshot {
    #[allow(clippy::too_many_arguments)] // one field per server subsystem
    pub(crate) fn collect(
        m: &Metrics,
        level_caps: &[usize],
        inflight: &[usize],
        queue_depth: usize,
        rt: RtStats,
        ring_dropped: Vec<u64>,
        slo: Vec<SloObjectiveSnapshot>,
        slo_dumps: u64,
        uptime: Duration,
    ) -> Self {
        let kernels = Kernel::ALL
            .iter()
            .map(|&k| {
                let c = m.kernel(k);
                let hist = c.latency.snapshot();
                // Conservation ordering: a job is *resolved*
                // (completed / deadline-shed) only after it was counted
                // submitted, and both sides use SeqCst, so loading the
                // resolution counters first guarantees
                // `submitted ≥ completed + shed_deadline` in every
                // snapshot — the invariant `in_flight()` relies on.
                let completed = c.completed.load(Ordering::SeqCst);
                let shed_deadline = c.shed_deadline.load(Ordering::SeqCst);
                let submitted = c.submitted.load(Ordering::SeqCst);
                KernelSnapshot {
                    kernel: k,
                    submitted,
                    completed,
                    shed_queue_full: c.shed_queue_full.load(Ordering::Relaxed),
                    shed_deadline,
                    shed_too_large: c.shed_too_large.load(Ordering::Relaxed),
                    shed_not_certified: c.shed_not_certified.load(Ordering::Relaxed),
                    batches: c.batches.load(Ordering::Relaxed),
                    batched_jobs: c.batched_jobs.load(Ordering::Relaxed),
                    p50_ms: quantile_ms(&hist, 0.50),
                    p99_ms: quantile_ms(&hist, 0.99),
                    latency_sum_us: c.latency.sum_us.load(Ordering::Relaxed),
                    latency_buckets: hist,
                    witness: std::array::from_fn(|i| c.witness[i].load(Ordering::Relaxed)),
                    expected_transfers: std::array::from_fn(|i| {
                        c.expected_transfers[i].load(Ordering::Relaxed)
                    }),
                }
            })
            .collect();
        let levels = m
            .levels
            .iter()
            .enumerate()
            .map(|(i, lc)| LevelSnapshot {
                level: i,
                capacity_words: level_caps.get(i).copied().unwrap_or(0),
                inflight_words: inflight.get(i).copied().unwrap_or(0),
                peak_inflight_words: lc.peak_inflight_words.load(Ordering::Relaxed),
                admitted_jobs: lc.admitted_jobs.load(Ordering::Relaxed),
                admitted_words: lc.admitted_words.load(Ordering::Relaxed),
            })
            .collect();
        Self {
            kernels,
            levels,
            queue_depth,
            queue_peak: m.queue_peak.load(Ordering::Relaxed),
            rt,
            witness_available: m.witness_available.load(Ordering::Relaxed) != 0,
            ring_dropped,
            slo,
            slo_dumps,
            uptime,
        }
    }

    /// Total jobs served across kernels.
    pub fn completed_total(&self) -> u64 {
        self.kernels.iter().map(|k| k.completed).sum()
    }

    /// Total jobs shed across kernels and causes.
    pub fn shed_total(&self) -> u64 {
        self.kernels.iter().map(|k| k.shed_total()).sum()
    }

    /// Total jobs accepted but not yet resolved at snapshot time (see
    /// [`KernelSnapshot::in_flight`] for why this cannot underflow).
    pub fn in_flight_total(&self) -> u64 {
        self.kernels.iter().map(|k| k.in_flight()).sum()
    }

    /// The activity between `prev` and `self`: every monotone counter
    /// (submissions, completions, sheds, batches, latency buckets, rt
    /// forks/steals/parks) becomes its increment over the interval,
    /// while point-in-time gauges (queue depth, in-flight words) keep
    /// their current values. Quantiles are recomputed over the interval
    /// buckets, so `p50_ms` is the interval's median, not the lifetime
    /// one. Both snapshots must come from the same server; counters
    /// never decrease, but `saturating_sub` keeps a mismatched pair
    /// from panicking.
    pub fn delta_since(&self, prev: &Self) -> Self {
        let kernels = self
            .kernels
            .iter()
            .zip(&prev.kernels)
            .map(|(now, old)| {
                let buckets: Vec<u64> = now
                    .latency_buckets
                    .iter()
                    .zip(&old.latency_buckets)
                    .map(|(n, o)| n.saturating_sub(*o))
                    .collect();
                KernelSnapshot {
                    kernel: now.kernel,
                    submitted: now.submitted.saturating_sub(old.submitted),
                    completed: now.completed.saturating_sub(old.completed),
                    shed_queue_full: now.shed_queue_full.saturating_sub(old.shed_queue_full),
                    shed_deadline: now.shed_deadline.saturating_sub(old.shed_deadline),
                    shed_too_large: now.shed_too_large.saturating_sub(old.shed_too_large),
                    shed_not_certified: now
                        .shed_not_certified
                        .saturating_sub(old.shed_not_certified),
                    batches: now.batches.saturating_sub(old.batches),
                    batched_jobs: now.batched_jobs.saturating_sub(old.batched_jobs),
                    p50_ms: quantile_ms(&buckets, 0.50),
                    p99_ms: quantile_ms(&buckets, 0.99),
                    latency_sum_us: now.latency_sum_us.saturating_sub(old.latency_sum_us),
                    latency_buckets: buckets,
                    witness: std::array::from_fn(|i| now.witness[i].saturating_sub(old.witness[i])),
                    expected_transfers: std::array::from_fn(|i| {
                        now.expected_transfers[i].saturating_sub(old.expected_transfers[i])
                    }),
                }
            })
            .collect();
        let levels = self
            .levels
            .iter()
            .zip(&prev.levels)
            .map(|(now, old)| LevelSnapshot {
                admitted_jobs: now.admitted_jobs.saturating_sub(old.admitted_jobs),
                admitted_words: now.admitted_words.saturating_sub(old.admitted_words),
                ..now.clone()
            })
            .collect();
        Self {
            kernels,
            levels,
            queue_depth: self.queue_depth,
            queue_peak: self.queue_peak,
            rt: RtStats {
                parallel_forks: self
                    .rt
                    .parallel_forks
                    .saturating_sub(prev.rt.parallel_forks),
                serial_forks: self.rt.serial_forks.saturating_sub(prev.rt.serial_forks),
                denied_forks: self.rt.denied_forks.saturating_sub(prev.rt.denied_forks),
                steals: self.rt.steals.saturating_sub(prev.rt.steals),
                failed_steals: self.rt.failed_steals.saturating_sub(prev.rt.failed_steals),
                parks: self.rt.parks.saturating_sub(prev.rt.parks),
                injector_pops: self.rt.injector_pops.saturating_sub(prev.rt.injector_pops),
            },
            witness_available: self.witness_available,
            ring_dropped: self
                .ring_dropped
                .iter()
                .zip(&prev.ring_dropped)
                .map(|(n, o)| n.saturating_sub(*o))
                .collect(),
            // Burn rates are already windowed, so they stay point-in-time.
            slo: self.slo.clone(),
            slo_dumps: self.slo_dumps.saturating_sub(prev.slo_dumps),
            uptime: self.uptime.saturating_sub(prev.uptime),
        }
    }

    /// Render as a Prometheus text exposition (format 0.0.4): per-kernel
    /// job counters, the in-flight gauge, cumulative latency histograms
    /// in seconds, per-level admission gauges, and the runtime's
    /// scheduler counters. This is what `/metrics` serves.
    pub fn to_prometheus_text(&self) -> String {
        let mut w = mo_obs::prom::PromText::new();
        w.header(
            "moserve_jobs_submitted_total",
            "Jobs accepted into the queue.",
            "counter",
        );
        for k in &self.kernels {
            w.sample_u64(
                "moserve_jobs_submitted_total",
                &[("kernel", k.kernel.name())],
                k.submitted,
            );
        }
        w.header(
            "moserve_jobs_completed_total",
            "Jobs served to completion.",
            "counter",
        );
        for k in &self.kernels {
            w.sample_u64(
                "moserve_jobs_completed_total",
                &[("kernel", k.kernel.name())],
                k.completed,
            );
        }
        w.header(
            "moserve_jobs_shed_total",
            "Jobs shed, by kernel and reason.",
            "counter",
        );
        for k in &self.kernels {
            let name = k.kernel.name();
            for (reason, v) in [
                ("queue_full", k.shed_queue_full),
                ("deadline", k.shed_deadline),
                ("too_large", k.shed_too_large),
                ("not_certified", k.shed_not_certified),
            ] {
                w.sample_u64(
                    "moserve_jobs_shed_total",
                    &[("kernel", name), ("reason", reason)],
                    v,
                );
            }
        }
        w.header(
            "moserve_batches_total",
            "CGC=>SB batches executed (each >= 2 jobs).",
            "counter",
        );
        for k in &self.kernels {
            w.sample_u64(
                "moserve_batches_total",
                &[("kernel", k.kernel.name())],
                k.batches,
            );
        }
        w.header(
            "moserve_jobs_in_flight",
            "Accepted jobs not yet resolved.",
            "gauge",
        );
        for k in &self.kernels {
            w.sample_u64(
                "moserve_jobs_in_flight",
                &[("kernel", k.kernel.name())],
                k.in_flight(),
            );
        }
        w.header(
            "moserve_latency_seconds",
            "Total (queue + service) latency.",
            "histogram",
        );
        for k in &self.kernels {
            w.histogram_log2(
                "moserve_latency_seconds",
                &[("kernel", k.kernel.name())],
                &k.latency_buckets,
                k.latency_sum_us,
                1e6,
            );
        }
        w.header("moserve_queue_depth", "Jobs waiting in the queue.", "gauge");
        w.sample_u64("moserve_queue_depth", &[], self.queue_depth as u64);
        w.header(
            "moserve_queue_peak",
            "High-water mark of the queue depth.",
            "gauge",
        );
        w.sample_u64("moserve_queue_peak", &[], self.queue_peak as u64);
        w.header(
            "moserve_level_inflight_words",
            "Footprint words admitted against each cache level.",
            "gauge",
        );
        for l in &self.levels {
            w.sample_u64(
                "moserve_level_inflight_words",
                &[("level", &l.level.to_string())],
                l.inflight_words as u64,
            );
        }
        w.header(
            "moserve_level_admitted_jobs_total",
            "Jobs or batches admitted against each cache level.",
            "counter",
        );
        for l in &self.levels {
            w.sample_u64(
                "moserve_level_admitted_jobs_total",
                &[("level", &l.level.to_string())],
                l.admitted_jobs,
            );
        }
        w.header(
            "moserve_rt_forks_total",
            "SB scheduler fork decisions, by kind.",
            "counter",
        );
        for (kind, v) in [
            ("parallel", self.rt.parallel_forks),
            ("serial", self.rt.serial_forks),
            ("denied", self.rt.denied_forks),
        ] {
            w.sample_u64("moserve_rt_forks_total", &[("kind", kind)], v);
        }
        w.header(
            "moserve_rt_steals_total",
            "Tasks executed from another worker's deque.",
            "counter",
        );
        w.sample_u64("moserve_rt_steals_total", &[], self.rt.steals);
        w.header(
            "moserve_rt_failed_steals_total",
            "Work-finding scans that found nothing.",
            "counter",
        );
        w.sample_u64("moserve_rt_failed_steals_total", &[], self.rt.failed_steals);
        w.header(
            "moserve_rt_parks_total",
            "Times a runtime thread slept on the idle condvar.",
            "counter",
        );
        w.sample_u64("moserve_rt_parks_total", &[], self.rt.parks);
        w.header(
            "moserve_rt_injector_pops_total",
            "Tasks popped from the external-submission injector.",
            "counter",
        );
        w.sample_u64("moserve_rt_injector_pops_total", &[], self.rt.injector_pops);
        w.header(
            "moserve_cache_witness_available",
            "Whether the hardware cache witness (perf_event_open) is active.",
            "gauge",
        );
        w.sample_u64(
            "moserve_cache_witness_available",
            &[],
            self.witness_available as u64,
        );
        w.header(
            "moserve_cache_transfers_total",
            "Measured cache transfers attributed to each kernel's batches \
             (serving-thread traffic; see the cache-witness docs).",
            "counter",
        );
        let last_level = self.levels.len().max(1).to_string();
        for k in &self.kernels {
            let name = k.kernel.name();
            for (level, ctr) in [("1", CTR_L1D_MISS), (last_level.as_str(), CTR_LLC_MISS)] {
                w.sample_u64(
                    "moserve_cache_transfers_total",
                    &[("kernel", name), ("level", level), ("backend", "perf")],
                    k.witness[ctr as usize],
                );
            }
        }
        w.header(
            "moserve_cache_instructions_total",
            "Instructions retired by each kernel's batches (serving thread).",
            "counter",
        );
        for k in &self.kernels {
            w.sample_u64(
                "moserve_cache_instructions_total",
                &[("kernel", k.kernel.name()), ("backend", "perf")],
                k.witness[CTR_INSTRUCTIONS as usize],
            );
        }
        w.header(
            "moserve_witness_divergence",
            "Measured-over-analytic cache transfer ratio per kernel and \
             level (witnessed batches only; absent without both sides).",
            "gauge",
        );
        for k in &self.kernels {
            let div = k.witness_divergence();
            for (level, d) in [("1", div[0]), (last_level.as_str(), div[1])] {
                if let Some(d) = d {
                    w.sample_f64(
                        "moserve_witness_divergence",
                        &[("kernel", k.kernel.name()), ("level", level)],
                        d,
                    );
                }
            }
        }
        if !self.slo.is_empty() {
            w.header(
                "moserve_slo_target",
                "Required good fraction per SLO objective.",
                "gauge",
            );
            for o in &self.slo {
                w.sample_f64(
                    "moserve_slo_target",
                    &[("objective", &o.objective)],
                    o.target,
                );
            }
            w.header(
                "moserve_slo_burn_rate",
                "Error-budget burn rate per objective, window pair, and horizon.",
                "gauge",
            );
            for o in &self.slo {
                for (i, wd) in o.windows.iter().enumerate() {
                    let pair = i.to_string();
                    for (horizon, rate) in [("short", wd.burn_short), ("long", wd.burn_long)] {
                        w.sample_f64(
                            "moserve_slo_burn_rate",
                            &[
                                ("objective", &o.objective),
                                ("pair", &pair),
                                ("horizon", horizon),
                            ],
                            rate,
                        );
                    }
                }
            }
            w.header(
                "moserve_slo_burning",
                "1 while an objective's multi-window burn condition fires.",
                "gauge",
            );
            for o in &self.slo {
                w.sample_u64(
                    "moserve_slo_burning",
                    &[("objective", &o.objective)],
                    o.burning as u64,
                );
            }
            w.header(
                "moserve_slo_dumps_total",
                "Flight-recorder trace dumps written on burn edges.",
                "counter",
            );
            w.sample_u64("moserve_slo_dumps_total", &[], self.slo_dumps);
        }
        if !self.ring_dropped.is_empty() {
            w.header(
                "moserve_ring_dropped_total",
                "Trace events dropped at each worker's full ring.",
                "counter",
            );
            let last = self.ring_dropped.len() - 1;
            for (i, &v) in self.ring_dropped.iter().enumerate() {
                let worker = if i == last {
                    "external".to_string()
                } else {
                    i.to_string()
                };
                w.sample_u64("moserve_ring_dropped_total", &[("worker", &worker)], v);
            }
        }
        w.header(
            "moserve_uptime_seconds",
            "Time since the server started.",
            "gauge",
        );
        w.sample_f64("moserve_uptime_seconds", &[], self.uptime.as_secs_f64());
        w.finish()
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.2?}  queue depth {} (peak {})  rt forks: {} par / {} serial / {} denied",
            self.uptime,
            self.queue_depth,
            self.queue_peak,
            self.rt.parallel_forks,
            self.rt.serial_forks,
            self.rt.denied_forks
        )?;
        writeln!(
            f,
            "rt activity: {} steals ({} empty scans), {} injector pops, {} parks",
            self.rt.steals, self.rt.failed_steals, self.rt.injector_pops, self.rt.parks
        )?;
        writeln!(
            f,
            "{:<10} {:>9} {:>9} {:>6} {:>8} {:>7} {:>8} {:>7} {:>9} {:>9}",
            "kernel",
            "submitted",
            "completed",
            "shed",
            "deadline",
            "toobig",
            "uncert",
            "batches",
            "p50 ms",
            "p99 ms"
        )?;
        for k in &self.kernels {
            if k.submitted == 0 && k.shed_total() == 0 {
                continue;
            }
            let fmt_q = |q: Option<f64>| match q {
                Some(v) => format!("{v:.2}"),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "{:<10} {:>9} {:>9} {:>6} {:>8} {:>7} {:>8} {:>7} {:>9} {:>9}",
                k.kernel.name(),
                k.submitted,
                k.completed,
                k.shed_queue_full,
                k.shed_deadline,
                k.shed_too_large,
                k.shed_not_certified,
                k.batches,
                fmt_q(k.p50_ms),
                fmt_q(k.p99_ms),
            )?;
        }
        writeln!(
            f,
            "{:<6} {:>14} {:>12} {:>12} {:>10} {:>14}",
            "level", "capacity(w)", "inflight(w)", "peak(w)", "admitted", "admitted(w)"
        )?;
        for l in &self.levels {
            writeln!(
                f,
                "L{:<5} {:>14} {:>12} {:>12} {:>10} {:>14}",
                l.level + 1,
                l.capacity_words,
                l.inflight_words,
                l.peak_inflight_words,
                l.admitted_jobs,
                l.admitted_words,
            )?;
        }
        for o in &self.slo {
            let peak = o
                .windows
                .iter()
                .map(|w| w.burn_short.max(w.burn_long))
                .fold(0.0f64, f64::max);
            writeln!(
                f,
                "slo {:<13} target {:.4}  peak burn {:.2}  {}",
                o.objective,
                o.target,
                peak,
                if o.burning { "BURNING" } else { "ok" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_buckets() {
        let mut buckets = vec![0u64; NBUCKETS];
        // 99 samples in bucket 4 (≤16 µs), 1 in bucket 20 (≤ ~1 s).
        buckets[4] = 99;
        buckets[20] = 1;
        let p50 = quantile_ms(&buckets, 0.50).unwrap();
        let p99 = quantile_ms(&buckets, 0.99).unwrap();
        let p999 = quantile_ms(&buckets, 0.999).unwrap();
        assert!(p50 <= 0.016001, "{p50}");
        assert!(p99 <= 0.016001, "{p99}");
        assert!(p999 > 1.0, "{p999}");
        assert_eq!(quantile_ms(&vec![0u64; NBUCKETS], 0.5), None);
    }

    #[test]
    fn delta_since_saturates_across_racing_reset() {
        // An embedder calling `SbPool::run` resets RtStats between two
        // exposition scrapes, so "now" can carry *smaller* rt counters
        // than "prev". Every delta must saturate to zero, never panic.
        let m = Metrics::new(2);
        let c = m.kernel(Kernel::Sort);
        c.submitted.store(10, Ordering::SeqCst);
        c.completed.store(8, Ordering::SeqCst);
        c.latency.record(Duration::from_micros(100));
        m.add_witness(Kernel::Sort, [5, 2, 1000]);
        let rt_hi = RtStats {
            parallel_forks: 50,
            steals: 7,
            parks: 3,
            ..Default::default()
        };
        let caps = [1024usize, 4096];
        let infl = [0usize, 0];
        let prev = MetricsSnapshot::collect(
            &m,
            &caps,
            &infl,
            0,
            rt_hi,
            vec![4, 0, 0],
            Vec::new(),
            0,
            Duration::from_secs(10),
        );
        let rt_lo = RtStats {
            parallel_forks: 3,
            ..Default::default()
        };
        let now = MetricsSnapshot::collect(
            &m,
            &caps,
            &infl,
            0,
            rt_lo,
            vec![1, 0, 0],
            Vec::new(),
            0,
            Duration::from_secs(11),
        );
        let d = now.delta_since(&prev);
        assert_eq!(d.rt.parallel_forks, 0); // 3 - 50 saturates
        assert_eq!(d.rt.steals, 0);
        assert_eq!(d.rt.parks, 0);
        assert_eq!(d.ring_dropped, vec![0, 0, 0]); // 1 - 4 saturates
                                                   // Counters that did not move delta to zero.
        let row = &d.kernels[Kernel::Sort.index()];
        assert_eq!(row.submitted, 0);
        assert_eq!(row.witness, [0, 0, 0]);
        assert_eq!(row.p50_ms, None); // no interval samples
                                      // The fully swapped order (a mismatched pair) must not panic
                                      // either, in any field.
        let swapped = prev.delta_since(&now);
        assert_eq!(swapped.rt.parallel_forks, 47);
        assert_eq!(swapped.uptime, Duration::ZERO); // 10s - 11s saturates
    }

    #[test]
    fn witness_counts_flow_to_snapshot_and_prometheus() {
        let m = Metrics::new(3);
        m.witness_available.store(1, Ordering::Relaxed);
        m.add_witness(Kernel::Matmul, [40, 4, 9000]);
        m.add_witness(Kernel::Matmul, [2, 1, 1000]);
        m.add_expected_transfers(Kernel::Matmul, [21, 10]);
        let caps = [0usize; 3];
        let infl = [0usize; 3];
        let s = MetricsSnapshot::collect(
            &m,
            &caps,
            &infl,
            0,
            RtStats::default(),
            vec![0, 3, 0, 0],
            Vec::new(),
            0,
            Duration::ZERO,
        );
        assert!(s.witness_available);
        assert_eq!(s.kernels[Kernel::Matmul.index()].witness, [42, 5, 10000]);
        let text = s.to_prometheus_text();
        assert!(text.contains(
            "moserve_cache_transfers_total{kernel=\"matmul\",level=\"1\",backend=\"perf\"} 42"
        ));
        assert!(text.contains(
            "moserve_cache_transfers_total{kernel=\"matmul\",level=\"3\",backend=\"perf\"} 5"
        ));
        assert!(text.contains(
            "moserve_cache_instructions_total{kernel=\"matmul\",backend=\"perf\"} 10000"
        ));
        assert!(text.contains("moserve_cache_witness_available 1"));
        // 42 measured / 21 expected at L1, 5 / 10 at the LLC.
        let row = &s.kernels[Kernel::Matmul.index()];
        assert_eq!(row.witness_divergence(), [Some(2.0), Some(0.5)]);
        assert!(text.contains("moserve_witness_divergence{kernel=\"matmul\",level=\"1\"} 2"));
        assert!(text.contains("moserve_witness_divergence{kernel=\"matmul\",level=\"3\"} 0.5"));
        // Kernels with no witnessed batches render no divergence sample.
        assert!(!text.contains("moserve_witness_divergence{kernel=\"sort\""));
        assert!(text.contains("moserve_ring_dropped_total{worker=\"1\"} 3"));
        assert!(text.contains("moserve_ring_dropped_total{worker=\"external\"} 0"));
        let samples = mo_obs::prom::parse(&text).expect("valid exposition");
        mo_obs::prom::check_histograms(&samples).expect("consistent histograms");
        // Without a sink the drop family disappears entirely.
        let bare = MetricsSnapshot::collect(
            &m,
            &caps,
            &infl,
            0,
            RtStats::default(),
            Vec::new(),
            Vec::new(),
            0,
            Duration::ZERO,
        );
        assert!(!bare
            .to_prometheus_text()
            .contains("moserve_ring_dropped_total"));
    }

    #[test]
    fn slo_state_renders_typed_and_as_prometheus() {
        let m = Metrics::new(1);
        let slo = vec![SloObjectiveSnapshot {
            objective: "latency".into(),
            target: 0.99,
            burning: true,
            windows: vec![SloWindowSnapshot {
                short_secs: 5.0,
                long_secs: 60.0,
                factor: 10.0,
                burn_short: 25.0,
                burn_long: 12.5,
                burning: true,
            }],
        }];
        let s = MetricsSnapshot::collect(
            &m,
            &[0],
            &[0],
            0,
            RtStats::default(),
            Vec::new(),
            slo,
            3,
            Duration::ZERO,
        );
        let text = s.to_prometheus_text();
        assert!(text.contains("moserve_slo_target{objective=\"latency\"} 0.99"));
        assert!(text.contains(
            "moserve_slo_burn_rate{objective=\"latency\",pair=\"0\",horizon=\"short\"} 25"
        ));
        assert!(text.contains(
            "moserve_slo_burn_rate{objective=\"latency\",pair=\"0\",horizon=\"long\"} 12.5"
        ));
        assert!(text.contains("moserve_slo_burning{objective=\"latency\"} 1"));
        assert!(text.contains("moserve_slo_dumps_total 3"));
        let samples = mo_obs::prom::parse(&text).expect("valid exposition");
        mo_obs::prom::check_histograms(&samples).expect("consistent");
        assert!(s.to_string().contains("BURNING"));
        // The delta keeps windowed rates point-in-time but deltas dumps.
        let d = s.delta_since(&s);
        assert_eq!(d.slo_dumps, 0);
        assert_eq!(d.slo.len(), 1);
        // Without an SLO config the families disappear entirely.
        let bare = MetricsSnapshot::collect(
            &m,
            &[0],
            &[0],
            0,
            RtStats::default(),
            Vec::new(),
            Vec::new(),
            0,
            Duration::ZERO,
        );
        assert!(!bare.to_prometheus_text().contains("moserve_slo_"));
    }

    #[test]
    fn record_hits_expected_bucket() {
        let h = LatencyHist::new();
        h.record(Duration::from_micros(3)); // bucket: 64-62=2
        h.record(Duration::from_millis(10)); // 10_000 µs → bucket 14
        let snap = h.snapshot();
        assert_eq!(snap[2], 1);
        assert_eq!(snap[14], 1);
        assert_eq!(snap.iter().sum::<u64>(), 2);
    }
}
