//! # mo-serve — a space-bound-aware kernel service
//!
//! The paper's contract is that algorithms declare only a space bound
//! `s(τ)` and a machine-aware scheduler does the placement. This crate
//! lifts that contract one layer up, from tasks inside one computation
//! to **jobs inside a service**: clients submit kernel requests
//! (transpose, FFT, matmul, sort, SpM-DV over the real kernels of
//! `mo_algorithms::real`), each carrying a footprint derived from its
//! declared size by the registry's analytic space functions, and the
//! server decides *when* a job may run at all:
//!
//! * **SB admission control** — a job starts only when some cache level
//!   of the serving [`HwHierarchy`] fits its footprint per-instance and
//!   has that much aggregate capacity left over the jobs in flight;
//! * **backpressure** — a bounded queue with per-job deadlines and
//!   typed [`Rejected`] load-shedding instead of unbounded growth;
//! * **CGC⇒SB batching** — small queued jobs of the same kernel and
//!   size form equal-footprint batches that anchor where their total
//!   fits and spread evenly over the cores through one `join_all`;
//! * **observability** — per-kernel and per-level counters plus latency
//!   quantiles behind a cheap [`MetricsSnapshot`] API;
//! * **graceful drain** — shutdown stops intake, finishes (or sheds)
//!   the queue, and resolves every outstanding [`Ticket`].
//!
//! ```
//! use mo_serve::{JobSpec, Kernel, Server};
//!
//! let server = Server::detected();
//! let ticket = server.submit(JobSpec::new(Kernel::Sort, 10_000, 42)).unwrap();
//! assert!(ticket.wait().is_done());
//! let snapshot = server.drain();
//! assert_eq!(snapshot.completed_total(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod metrics;
mod server;

pub use job::{Done, JobSpec, Kernel, Outcome, Rejected, Ticket};
pub use metrics::{KernelSnapshot, LevelSnapshot, MetricsSnapshot};
pub use server::{ServeConfig, Server};

pub use mo_core::rt::HwHierarchy;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn small_server(queue_cap: usize, batch_max: usize) -> Server {
        Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 2,
                queue_cap,
                default_deadline: Duration::from_secs(10),
                batch_max,
                batch_words_max: Some(4096),
            },
        )
    }

    #[test]
    fn serves_one_job_per_kernel() {
        let server = small_server(64, 1);
        let tickets: Vec<_> = Kernel::ALL
            .iter()
            .map(|&k| {
                let n = match k {
                    Kernel::Transpose | Kernel::Matmul => 64,
                    // 19n + 1 words must stay inside the 64 KiW L2.
                    Kernel::SpmDv => 2048,
                    _ => 4096,
                };
                (k, server.submit(JobSpec::new(k, n, 7)).unwrap())
            })
            .collect();
        for (k, t) in tickets {
            match t.wait() {
                Outcome::Done(d) => assert_eq!(d.batch_size, 1, "{k}"),
                Outcome::Rejected(r) => panic!("{k} rejected: {r:?}"),
            }
        }
        let snap = server.drain();
        assert_eq!(snap.completed_total(), Kernel::ALL.len() as u64);
        assert_eq!(snap.shed_total(), 0);
        assert_eq!(snap.queue_depth, 0);
        assert!(snap.levels.iter().all(|l| l.inflight_words == 0));
    }

    #[test]
    fn results_are_deterministic_and_batch_independent() {
        // The same spec must hash identically whether it ran solo on a
        // fresh server or batched among strangers.
        let solo = {
            let server = small_server(64, 1);
            match server
                .submit(JobSpec::new(Kernel::Sort, 1000, 5))
                .unwrap()
                .wait()
            {
                Outcome::Done(d) => d.checksum,
                r => panic!("rejected: {r:?}"),
            }
        };
        let server = small_server(256, 8);
        let tickets: Vec<_> = (0..40)
            .map(|i| {
                server
                    .submit(JobSpec::new(Kernel::Sort, 1000, i % 10))
                    .unwrap()
            })
            .collect();
        let mut batched_seed5 = Vec::new();
        for (i, t) in tickets.into_iter().enumerate() {
            if let Outcome::Done(d) = t.wait() {
                if i % 10 == 5 {
                    batched_seed5.push(d.checksum);
                }
            } else {
                panic!("job {i} rejected");
            }
        }
        assert!(!batched_seed5.is_empty());
        assert!(batched_seed5.iter().all(|&c| c == solo));
    }

    #[test]
    fn small_same_kernel_jobs_batch() {
        let server = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 1,
                queue_cap: 256,
                default_deadline: Duration::from_secs(10),
                batch_max: 8,
                batch_words_max: Some(4096),
            },
        );
        // Block the single worker behind a slow unbatchable job so the
        // small sorts (n=1000 → 2000 words ≤ batch_words_max) pile up,
        // then get coalesced deterministically.
        let blocker = server.submit(JobSpec::new(Kernel::Matmul, 96, 0)).unwrap();
        let tickets: Vec<_> = (0..32)
            .map(|i| server.submit(JobSpec::new(Kernel::Sort, 1000, i)).unwrap())
            .collect();
        assert!(blocker.wait().is_done());
        let mut max_batch = 0usize;
        for t in tickets {
            if let Outcome::Done(d) = t.wait() {
                max_batch = max_batch.max(d.batch_size);
            }
        }
        let snap = server.drain();
        let sort = &snap.kernels[Kernel::Sort.index()];
        assert_eq!(sort.completed, 32);
        assert!(max_batch > 1, "no batch ever formed");
        assert!(sort.batches >= 1);
        assert!(sort.batched_jobs >= max_batch as u64);
    }

    #[test]
    fn too_large_jobs_are_refused_with_type() {
        let server = small_server(8, 1);
        // Matmul n=512 → 786432 words > L2 (65536): no level fits.
        match server.submit(JobSpec::new(Kernel::Matmul, 512, 0)) {
            Err(Rejected::TooLarge { footprint, largest }) => {
                assert!(footprint > largest);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let snap = server.drain();
        assert_eq!(snap.kernels[Kernel::Matmul.index()].shed_too_large, 1);
    }

    #[test]
    fn draining_server_refuses_new_work() {
        let server = small_server(8, 1);
        server.shutdown();
        match server.submit(JobSpec::new(Kernel::Sort, 100, 0)) {
            Err(Rejected::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_jobs_are_shed_not_hung() {
        let server = small_server(64, 1);
        // Saturate both workers with real work, then submit zero-deadline
        // jobs that must expire in the queue.
        let busy: Vec<_> = (0..4)
            .map(|i| server.submit(JobSpec::new(Kernel::Matmul, 96, i)).unwrap())
            .collect();
        let doomed = server
            .submit(JobSpec {
                kernel: Kernel::Sort,
                n: 4096,
                seed: 0,
                deadline: Some(Duration::ZERO),
            })
            .unwrap();
        match doomed.wait() {
            Outcome::Rejected(Rejected::DeadlineExpired { .. }) => {}
            Outcome::Done(_) => panic!("zero-deadline job must not run"),
            other => panic!("unexpected outcome {other:?}"),
        }
        for t in busy {
            assert!(t.wait().is_done());
        }
        let snap = server.drain();
        assert_eq!(snap.kernels[Kernel::Sort.index()].shed_deadline, 1);
    }
}
