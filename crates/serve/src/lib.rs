//! # mo-serve — a space-bound-aware kernel service
//!
//! The paper's contract is that algorithms declare only a space bound
//! `s(τ)` and a machine-aware scheduler does the placement. This crate
//! lifts that contract one layer up, from tasks inside one computation
//! to **jobs inside a service**: clients submit kernel requests
//! (transpose, FFT, matmul, sort, SpM-DV over the real kernels of
//! `mo_algorithms::real`), each carrying a footprint derived from its
//! declared size by the registry's analytic space functions, and the
//! server decides *when* a job may run at all:
//!
//! * **SB admission control** — a job starts only when some cache level
//!   of the serving [`HwHierarchy`] fits its footprint per-instance and
//!   has that much aggregate capacity left over the jobs in flight;
//! * **backpressure** — a bounded queue with per-job deadlines and
//!   typed [`Rejected`] load-shedding instead of unbounded growth;
//! * **CGC⇒SB batching** — small queued jobs of the same kernel and
//!   size form equal-footprint batches that anchor where their total
//!   fits and spread evenly over the cores through one `join_all`;
//! * **observability** — per-kernel and per-level counters plus latency
//!   quantiles behind a cheap [`MetricsSnapshot`] API, with interval
//!   deltas ([`MetricsSnapshot::delta_since`]) and a Prometheus text
//!   `/metrics` endpoint ([`Server::serve_metrics`]);
//! * **graceful drain** — shutdown stops intake, finishes (or sheds)
//!   the queue, and resolves every outstanding [`Ticket`];
//! * **request-path spans** — with the `obs` feature every submission
//!   carries a fleet-unique request id through `arrive → admit →
//!   enqueue → dequeue → batch-form → execute → respond` (or a typed
//!   shed) phase events in the pool's trace sink, reassembled by
//!   `mo_obs::span` into per-kernel per-phase tail-latency
//!   attributions;
//! * **SLO burn rates** — an optional [`SloConfig`] evaluates latency
//!   and availability objectives as multi-window error-budget burn
//!   rates (`moserve_slo_*` on `/metrics`) and dumps a validated
//!   Perfetto flight-recorder artifact on the burn edge.
//!
//! ```
//! use mo_serve::{JobSpec, Kernel, Server};
//!
//! let server = Server::detected();
//! let ticket = server.submit(JobSpec::new(Kernel::Sort, 10_000, 42)).unwrap();
//! assert!(ticket.wait().is_done());
//! let snapshot = server.drain();
//! assert_eq!(snapshot.completed_total(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod job;
mod metrics;
mod server;

pub use expose::MetricsExposition;
pub use job::{CertifyGap, Done, JobSpec, Kernel, Outcome, Rejected, Ticket};
pub use metrics::{
    KernelSnapshot, LevelSnapshot, MetricsSnapshot, SloObjectiveSnapshot, SloWindowSnapshot,
};
pub use server::{ServeConfig, Server, SloConfig};

pub use mo_core::rt::HwHierarchy;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn small_server(queue_cap: usize, batch_max: usize) -> Server {
        Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 2,
                queue_cap,
                default_deadline: Duration::from_secs(10),
                batch_max,
                batch_words_max: Some(4096),
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn serves_one_job_per_kernel() {
        let server = small_server(64, 1);
        let tickets: Vec<_> = Kernel::ALL
            .iter()
            .map(|&k| {
                let n = match k {
                    Kernel::Transpose | Kernel::Matmul => 64,
                    // 19n + 1 words must stay inside the 64 KiW L2.
                    Kernel::SpmDv => 2048,
                    _ => 4096,
                };
                (k, server.submit(JobSpec::new(k, n, 7)).unwrap())
            })
            .collect();
        for (k, t) in tickets {
            match t.wait() {
                Outcome::Done(d) => assert_eq!(d.batch_size, 1, "{k}"),
                Outcome::Rejected(r) => panic!("{k} rejected: {r:?}"),
            }
        }
        let snap = server.drain();
        assert_eq!(snap.completed_total(), Kernel::ALL.len() as u64);
        assert_eq!(snap.shed_total(), 0);
        assert_eq!(snap.queue_depth, 0);
        assert!(snap.levels.iter().all(|l| l.inflight_words == 0));
    }

    #[test]
    fn results_are_deterministic_and_batch_independent() {
        // The same spec must hash identically whether it ran solo on a
        // fresh server or batched among strangers.
        let solo = {
            let server = small_server(64, 1);
            match server
                .submit(JobSpec::new(Kernel::Sort, 1000, 5))
                .unwrap()
                .wait()
            {
                Outcome::Done(d) => d.checksum,
                r => panic!("rejected: {r:?}"),
            }
        };
        let server = small_server(256, 8);
        let tickets: Vec<_> = (0..40)
            .map(|i| {
                server
                    .submit(JobSpec::new(Kernel::Sort, 1000, i % 10))
                    .unwrap()
            })
            .collect();
        let mut batched_seed5 = Vec::new();
        for (i, t) in tickets.into_iter().enumerate() {
            if let Outcome::Done(d) = t.wait() {
                if i % 10 == 5 {
                    batched_seed5.push(d.checksum);
                }
            } else {
                panic!("job {i} rejected");
            }
        }
        assert!(!batched_seed5.is_empty());
        assert!(batched_seed5.iter().all(|&c| c == solo));
    }

    #[test]
    fn small_same_kernel_jobs_batch() {
        let server = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 1,
                queue_cap: 256,
                default_deadline: Duration::from_secs(10),
                batch_max: 8,
                batch_words_max: Some(4096),
                ..ServeConfig::default()
            },
        );
        // Block the single worker behind a slow unbatchable job so the
        // small sorts (n=1000 → 2000 words ≤ batch_words_max) pile up,
        // then get coalesced deterministically.
        let blocker = server.submit(JobSpec::new(Kernel::Matmul, 96, 0)).unwrap();
        let tickets: Vec<_> = (0..32)
            .map(|i| server.submit(JobSpec::new(Kernel::Sort, 1000, i)).unwrap())
            .collect();
        assert!(blocker.wait().is_done());
        let mut max_batch = 0usize;
        for t in tickets {
            if let Outcome::Done(d) = t.wait() {
                max_batch = max_batch.max(d.batch_size);
            }
        }
        let snap = server.drain();
        let sort = &snap.kernels[Kernel::Sort.index()];
        assert_eq!(sort.completed, 32);
        assert!(max_batch > 1, "no batch ever formed");
        assert!(sort.batches >= 1);
        assert!(sort.batched_jobs >= max_batch as u64);
    }

    #[test]
    fn counters_conserve_jobs_under_concurrent_load() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // Several submitter threads race the worker pool while a
        // snapshot loop continuously checks conservation: every
        // accepted job is exactly one of completed, deadline-shed, or
        // still in flight — never double-counted, never lost — in
        // *every* snapshot, not only at quiescence.
        let server = small_server(512, 4);
        // With tracing on, the same run must also conserve *spans*:
        // every submission opens one and closes it exactly once.
        #[cfg(feature = "obs")]
        let sink = {
            let sink = Arc::new(mo_obs::TraceSink::new(4));
            assert!(server.attach_sink(Arc::clone(&sink)));
            sink
        };
        let server = Arc::new(server);
        let stop = Arc::new(AtomicBool::new(false));
        let submitters: Vec<_> = (0..3)
            .map(|t| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut accepted = 0u64;
                    let mut tickets = Vec::new();
                    for i in 0..200u64 {
                        let spec = JobSpec {
                            kernel: Kernel::Sort,
                            n: 1000,
                            seed: t * 1000 + i,
                            // A sprinkle of instant deadlines exercises
                            // the shed_deadline leg of the invariant.
                            deadline: (i % 7 == 0).then_some(Duration::ZERO),
                            trace_id: None,
                        };
                        if let Ok(ticket) = server.submit(spec) {
                            accepted += 1;
                            tickets.push(ticket);
                        }
                    }
                    for t in tickets {
                        t.wait();
                    }
                    accepted
                })
            })
            .collect();
        let checker = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checks = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let snap = server.metrics();
                    for k in &snap.kernels {
                        assert!(
                            k.submitted >= k.completed + k.shed_deadline,
                            "{}: submitted {} < completed {} + deadline-shed {}",
                            k.kernel.name(),
                            k.submitted,
                            k.completed,
                            k.shed_deadline
                        );
                        // in_flight() is the same inequality rearranged;
                        // calling it proves it does not underflow-panic.
                        let _ = k.in_flight();
                    }
                    checks += 1;
                }
                checks
            })
        };
        let accepted: u64 = submitters.into_iter().map(|h| h.join().unwrap()).sum();
        stop.store(true, Ordering::Release);
        assert!(checker.join().unwrap() > 0);
        // Every ticket resolved, so nothing is in flight: accepted jobs
        // now split exactly into completed + deadline-shed.
        let snap = server.metrics();
        let sort = &snap.kernels[Kernel::Sort.index()];
        assert_eq!(sort.submitted, accepted);
        assert_eq!(sort.completed + sort.shed_deadline, accepted);
        assert_eq!(snap.in_flight_total(), 0);
        assert!(sort.completed > 0, "no job ever completed");
        #[cfg(feature = "obs")]
        {
            assert!(
                snap.ring_dropped.iter().all(|&d| d == 0),
                "rings dropped events; conservation check is void"
            );
            let set = mo_obs::span::assemble(&sink.drain());
            // 600 submissions attempted: every one opened a span
            // (queue-full rejects open and immediately close).
            assert_eq!(set.opened, 600);
            assert!(
                set.conserved(),
                "opened {} closed {}",
                set.opened,
                set.closed
            );
        }
    }

    #[test]
    fn metrics_endpoint_serves_parseable_prometheus_text() {
        use std::io::{Read, Write};
        // Scrape /metrics over real TCP while jobs are running, parse
        // the body with the mo-obs Prometheus parser, and validate the
        // latency histograms are cumulative with +Inf == _count.
        let server = small_server(256, 4);
        let endpoint = server.serve_metrics("127.0.0.1:0").unwrap();
        let tickets: Vec<_> = (0..60)
            .map(|i| server.submit(JobSpec::new(Kernel::Sort, 1000, i)).unwrap())
            .collect();
        let scrape = |path: &str| {
            let mut conn = std::net::TcpStream::connect(endpoint.addr()).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            response
        };
        // One scrape mid-load, one at quiescence.
        let early = scrape("/metrics");
        assert!(early.starts_with("HTTP/1.1 200 OK"), "{early}");
        for t in tickets {
            assert!(t.wait().is_done());
        }
        let full = scrape("/metrics");
        assert!(full.contains("text/plain; version=0.0.4"));
        assert!(scrape("/nope").starts_with("HTTP/1.1 404"));
        for response in [early, full] {
            let body = response.split("\r\n\r\n").nth(1).unwrap();
            let samples = mo_obs::prom::parse(body).unwrap();
            assert!(mo_obs::prom::check_histograms(&samples).unwrap() >= 1);
            assert!(samples
                .iter()
                .any(|s| s.name == "moserve_jobs_submitted_total"
                    && s.label("kernel") == Some("sort")));
        }
        // The quiescent scrape must show all 60 sorts completed.
        let body = scrape("/metrics");
        let samples = mo_obs::prom::parse(body.split("\r\n\r\n").nth(1).unwrap()).unwrap();
        let completed = samples
            .iter()
            .find(|s| s.name == "moserve_jobs_completed_total" && s.label("kernel") == Some("sort"))
            .unwrap();
        assert_eq!(completed.value, 60.0);
        let count = samples
            .iter()
            .find(|s| {
                s.name == "moserve_latency_seconds_count" && s.label("kernel") == Some("sort")
            })
            .unwrap();
        assert_eq!(count.value, 60.0);
        drop(endpoint); // stops the accept thread
        drop(server);
    }

    #[test]
    fn snapshot_deltas_isolate_interval_activity() {
        let server = small_server(64, 1);
        for i in 0..5 {
            assert!(server
                .submit(JobSpec::new(Kernel::Sort, 1000, i))
                .unwrap()
                .wait()
                .is_done());
        }
        let mid = server.metrics();
        for i in 0..3 {
            assert!(server
                .submit(JobSpec::new(Kernel::Fft, 4096, i))
                .unwrap()
                .wait()
                .is_done());
        }
        let delta = server.metrics().delta_since(&mid);
        assert_eq!(delta.kernels[Kernel::Sort.index()].completed, 0);
        assert_eq!(delta.kernels[Kernel::Fft.index()].completed, 3);
        assert_eq!(delta.kernels[Kernel::Fft.index()].latency_count(), 3);
        assert_eq!(delta.completed_total(), 3);
        // Full-lifetime counters are untouched by taking a delta.
        assert_eq!(server.metrics().completed_total(), 8);
    }

    #[test]
    fn pool_info_reports_serving_shape() {
        let server = small_server(8, 1);
        let info = server.pool_info();
        assert_eq!(info.cores, 4);
        assert_eq!(info.resident_workers, 4);
        assert!(info.started);
        assert_eq!(info.l1_words, 2048);
    }

    #[test]
    fn too_large_jobs_are_refused_with_type() {
        let server = small_server(8, 1);
        // Matmul n=512 → 786432 words > L2 (65536): no level fits.
        match server.submit(JobSpec::new(Kernel::Matmul, 512, 0)) {
            Err(Rejected::TooLarge { footprint, largest }) => {
                assert!(footprint > largest);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let snap = server.drain();
        assert_eq!(snap.kernels[Kernel::Matmul.index()].shed_too_large, 1);
    }

    #[test]
    fn secure_mode_gates_on_oblivious_certificates() {
        use mo_core::certify::{Certificate, Classification, Witness};
        use mo_core::CertificateSet;
        // A hand-built certificate set: sort is data-dependent (as the
        // real certifier finds), scan is oblivious, fft has no entry.
        let cert = |kernel: &str, class: Classification| Certificate {
            kernel: kernel.to_string(),
            n: 256,
            runs: 3,
            classification: class,
            witness: (class == Classification::DataDependent).then_some(Witness {
                seed_a: 0,
                seed_b: 1,
                divergence: mo_core::certify::Divergence {
                    kind: mo_core::certify::DivergenceKind::TraceEntry,
                    pos: 0,
                    a: None,
                    b: None,
                },
            }),
            declared_words: 512,
            recorded_words: 512,
            footprint_sound: true,
            schedule_clean: true,
        };
        let set = CertificateSet {
            certs: vec![
                cert("scan", Classification::Oblivious),
                cert("sort", Classification::DataDependent),
            ],
        };
        let server = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 1,
                queue_cap: 16,
                default_deadline: Duration::from_secs(10),
                batch_max: 1,
                batch_words_max: Some(4096),
                secure: true,
                certificates: Some(set),
                ..ServeConfig::default()
            },
        );
        // Certified oblivious: served normally.
        assert!(server
            .submit(JobSpec::new(Kernel::Scan, 1000, 1))
            .unwrap()
            .wait()
            .is_done());
        // Certified data-dependent: typed refusal.
        match server.submit(JobSpec::new(Kernel::Sort, 1000, 1)) {
            Err(Rejected::NotCertified {
                gap: CertifyGap::DataDependent,
            }) => {}
            other => panic!("expected NotCertified/DataDependent, got {other:?}"),
        }
        // No certificate at all: typed refusal.
        match server.submit(JobSpec::new(Kernel::Fft, 1024, 1)) {
            Err(Rejected::NotCertified {
                gap: CertifyGap::NoCertificate,
            }) => {}
            other => panic!("expected NotCertified/NoCertificate, got {other:?}"),
        }
        let snap = server.drain();
        assert_eq!(snap.kernels[Kernel::Sort.index()].shed_not_certified, 1);
        assert_eq!(snap.kernels[Kernel::Fft.index()].shed_not_certified, 1);
        assert_eq!(snap.kernels[Kernel::Scan.index()].completed, 1);
        assert_eq!(snap.shed_total(), 2);
    }

    #[test]
    fn secure_mode_without_certificates_refuses_everything() {
        let server = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 1,
                queue_cap: 16,
                default_deadline: Duration::from_secs(10),
                batch_max: 1,
                batch_words_max: Some(4096),
                secure: true,
                certificates: None,
                ..ServeConfig::default()
            },
        );
        for k in Kernel::ALL {
            match server.submit(JobSpec::new(k, 64, 0)) {
                Err(Rejected::NotCertified {
                    gap: CertifyGap::NoCertificate,
                }) => {}
                other => panic!("{k}: expected NotCertified, got {other:?}"),
            }
        }
    }

    #[test]
    fn draining_server_refuses_new_work() {
        let server = small_server(8, 1);
        server.shutdown();
        match server.submit(JobSpec::new(Kernel::Sort, 100, 0)) {
            Err(Rejected::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }

    /// Every typed shed path must close its request span exactly once,
    /// with the matching reason code (PR satellite: span lifecycle).
    #[cfg(feature = "obs")]
    #[test]
    fn every_shed_path_closes_its_span_exactly_once() {
        use mo_obs::span;
        use std::sync::Arc;
        // Secure server without certificates: the not_certified path.
        let secure = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 1,
                secure: true,
                ..ServeConfig::default()
            },
        );
        let secure_sink = Arc::new(mo_obs::TraceSink::new(4));
        assert!(secure.attach_sink(Arc::clone(&secure_sink)));
        assert!(matches!(
            secure.submit(JobSpec::new(Kernel::Sort, 1000, 0)),
            Err(Rejected::NotCertified { .. })
        ));
        drop(secure);
        let set = span::assemble(&secure_sink.drain());
        assert!(set.conserved());
        assert_eq!(
            set.spans[0].shed.map(|(r, _)| r),
            Some(span::SHED_NOT_CERTIFIED)
        );

        // One single-worker server walks the other four paths.
        let server = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 1,
                queue_cap: 1,
                default_deadline: Duration::from_secs(10),
                batch_max: 1,
                ..ServeConfig::default()
            },
        );
        let sink = Arc::new(mo_obs::TraceSink::new(4));
        assert!(server.attach_sink(Arc::clone(&sink)));
        // too_large: no level fits matmul n=512.
        assert!(matches!(
            server.submit(JobSpec::new(Kernel::Matmul, 512, 0)),
            Err(Rejected::TooLarge { .. })
        ));
        // One job that completes, so one span closes via respond.
        let blocker = server.submit(JobSpec::new(Kernel::Matmul, 96, 0)).unwrap();
        // Zero-deadline jobs always shed (the worker runs shed_expired
        // before admission, and their deadline is already past), and
        // with a 1-slot queue some submissions catch the slot occupied:
        // keep submitting until both legs have fired.
        let mut doomed = Vec::new();
        let mut queue_full = 0u64;
        // Cap keeps the external ring (64Ki events) from overflowing
        // even in the degenerate never-full case.
        for i in 0..10_000u64 {
            match server.submit(JobSpec {
                kernel: Kernel::Sort,
                n: 1000,
                seed: i,
                deadline: Some(Duration::ZERO),
                trace_id: None,
            }) {
                Ok(t) => doomed.push(t),
                Err(Rejected::QueueFull { .. }) => queue_full += 1,
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
            if !doomed.is_empty() && queue_full > 0 {
                break;
            }
        }
        assert!(!doomed.is_empty() && queue_full > 0);
        assert!(blocker.wait().is_done());
        let accepted = doomed.len() as u64;
        for t in doomed {
            assert!(matches!(
                t.wait(),
                Outcome::Rejected(Rejected::DeadlineExpired { .. })
            ));
        }
        // shutting_down: refused after shutdown.
        server.shutdown();
        assert!(matches!(
            server.submit(JobSpec::new(Kernel::Sort, 1000, 2)),
            Err(Rejected::ShuttingDown)
        ));
        drop(server);
        let set = span::assemble(&sink.drain());
        assert_eq!(set.opened, 2 + accepted + queue_full + 1);
        assert!(set.conserved());
        let count = |reason: u64| {
            set.spans
                .iter()
                .filter(|s| s.shed.map(|(r, _)| r) == Some(reason))
                .count() as u64
        };
        assert_eq!(count(span::SHED_TOO_LARGE), 1);
        assert_eq!(count(span::SHED_DEADLINE), accepted);
        assert_eq!(count(span::SHED_QUEUE_FULL), queue_full);
        assert_eq!(count(span::SHED_SHUTTING_DOWN), 1);
        // The completed span is fully attributable to phases.
        let done: Vec<_> = set.spans.iter().filter(|s| s.shed.is_none()).collect();
        assert_eq!(done.len(), 1);
        assert!(done[0].complete());
        assert_eq!(done[0].kernel, Kernel::Matmul.index() as u64);
        assert!(done[0].phase_ns(span::Phase::Execute).unwrap() > 0);
    }

    #[test]
    fn slo_families_stay_quiet_on_healthy_traffic() {
        let server = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 2,
                slo: Some(SloConfig::default()),
                ..ServeConfig::default()
            },
        );
        for i in 0..10 {
            assert!(server
                .submit(JobSpec::new(Kernel::Sort, 1000, i))
                .unwrap()
                .wait()
                .is_done());
        }
        let snap = server.metrics();
        assert_eq!(snap.slo.len(), 2);
        assert!(snap.slo.iter().all(|o| !o.burning));
        assert_eq!(snap.slo_dumps, 0);
        let text = snap.to_prometheus_text();
        assert!(text.contains("moserve_slo_target{objective=\"latency\"} 0.99"));
        assert!(text.contains("moserve_slo_burning{objective=\"availability\"} 0"));
        let samples = mo_obs::prom::parse(&text).expect("valid exposition");
        mo_obs::prom::check_histograms(&samples).expect("consistent");
    }

    /// An SLO burn must fire the flight recorder, and the artifact must
    /// be valid Perfetto JSON containing the request spans.
    #[cfg(feature = "obs")]
    #[test]
    fn slo_burn_writes_validated_perfetto_dump() {
        use std::sync::Arc;
        let dump =
            std::env::temp_dir().join(format!("moserve_slo_dump_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&dump);
        let server = Server::start(
            HwHierarchy::flat(4, 2048, 1 << 16),
            ServeConfig {
                workers: 1,
                default_deadline: Duration::from_secs(10),
                slo: Some(SloConfig {
                    latency: Duration::from_millis(100),
                    latency_target: 0.99,
                    availability_target: 0.9,
                    windows: vec![mo_obs::slo::BurnWindow {
                        short_ns: 50_000_000,
                        long_ns: 200_000_000,
                        factor: 0.5,
                    }],
                    dump_path: Some(dump.clone()),
                }),
                ..ServeConfig::default()
            },
        );
        let sink = Arc::new(mo_obs::TraceSink::new(4));
        assert!(server.attach_sink(Arc::clone(&sink)));
        // Drive 100%-shed traffic (instant deadlines) until the burn
        // edge fires the recorder; the background evaluator ticks every
        // 20ms, so this converges in a few hundred ms.
        let mut fired = false;
        for round in 0..200 {
            for i in 0..5u64 {
                let t = server
                    .submit(JobSpec {
                        kernel: Kernel::Sort,
                        n: 1000,
                        seed: round * 10 + i,
                        deadline: Some(Duration::ZERO),
                        trace_id: None,
                    })
                    .unwrap();
                let _ = t.wait();
            }
            let snap = server.metrics();
            if snap.slo_dumps >= 1 {
                assert!(
                    snap.slo.iter().any(|o| o.burning),
                    "dump without burn state"
                );
                fired = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(fired, "SLO burn never fired");
        let json = std::fs::read_to_string(&dump).expect("flight-recorder artifact written");
        mo_obs::chrome::validate(&json).expect("dump is valid Perfetto JSON");
        assert!(
            json.contains("serve_shed"),
            "dump carries the request spans"
        );
        let _ = std::fs::remove_file(&dump);
        drop(server);
    }

    #[test]
    fn zero_deadline_jobs_are_shed_not_hung() {
        let server = small_server(64, 1);
        // Saturate both workers with real work, then submit zero-deadline
        // jobs that must expire in the queue.
        let busy: Vec<_> = (0..4)
            .map(|i| server.submit(JobSpec::new(Kernel::Matmul, 96, i)).unwrap())
            .collect();
        let doomed = server
            .submit(JobSpec {
                kernel: Kernel::Sort,
                n: 4096,
                seed: 0,
                deadline: Some(Duration::ZERO),
                trace_id: None,
            })
            .unwrap();
        match doomed.wait() {
            Outcome::Rejected(Rejected::DeadlineExpired { .. }) => {}
            Outcome::Done(_) => panic!("zero-deadline job must not run"),
            other => panic!("unexpected outcome {other:?}"),
        }
        for t in busy {
            assert!(t.wait().is_done());
        }
        let snap = server.drain();
        assert_eq!(snap.kernels[Kernel::Sort.index()].shed_deadline, 1);
    }
}
