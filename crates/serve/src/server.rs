//! The space-bound kernel server.
//!
//! Submission → bounded queue → SB admission → (batched) execution:
//!
//! * **Admission control is the paper's space admission, lifted to whole
//!   jobs.** Every job declares its analytic footprint (via the kernel
//!   registry); it may *start* only when some cache level of the serving
//!   hierarchy both fits it per-instance and has that much machine-wide
//!   capacity left over the jobs already running — the level the job is
//!   "anchored" against, exactly like the SB scheduler anchors tasks at
//!   the smallest cache that fits `s(τ)`.
//! * **Backpressure instead of collapse.** The queue is bounded: a full
//!   queue rejects at submission ([`Rejected::QueueFull`]), a job that
//!   waits past its deadline is shed ([`Rejected::DeadlineExpired`]),
//!   and a job no cache level could ever hold is refused outright
//!   ([`Rejected::TooLarge`]). Memory stays bounded by
//!   `queue_cap · spec + Σ admitted footprints` by construction.
//! * **CGC⇒SB batching.** Queued jobs with the same `(kernel, n)` — and
//!   hence equal footprints — whose per-job footprint is small are
//!   coalesced into one batch that anchors where its *total* footprint
//!   fits, then expands evenly over the cores through one `join_all`
//!   whose per-child space bound is the per-job footprint: the serving
//!   analogue of a CGC⇒SB fork anchoring high and expanding its
//!   equal-sized children below.
//! * **Graceful drain.** [`Server::shutdown`] stops intake; workers
//!   finish the queue (still shedding whatever expires) and exit;
//!   [`Server::drain`] joins them and returns the final metrics
//!   snapshot. Every ticket resolves exactly once.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mo_algorithms::real::registry::{footprint_words, run_batch_in};
use mo_core::rt::{HwHierarchy, PoolInfo, SbPool};

use crate::job::{Done, JobSpec, Outcome, Rejected, Ticket};
use crate::metrics::{Metrics, MetricsSnapshot};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` uses the hierarchy's core count.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Default queue deadline for jobs that do not carry their own.
    pub default_deadline: Duration,
    /// Maximum jobs per CGC⇒SB batch (`1` disables batching).
    pub batch_max: usize,
    /// Only jobs whose footprint is at most this many words are
    /// batched; `None` uses the L1 capacity (the paper's "small task"
    /// regime where CGC⇒SB expansion pays off).
    pub batch_words_max: Option<usize>,
    /// Secure serving mode (`--secure`): refuse every kernel that does
    /// not hold an `oblivious` certificate in [`Self::certificates`]
    /// with the typed [`Rejected::NotCertified`] reason. Off by
    /// default.
    pub secure: bool,
    /// Value-obliviousness certificates (the `mo_certify` artifact,
    /// loaded via [`mo_core::CertificateSet::from_json_str`]) consulted
    /// by secure mode. `None` with `secure` refuses everything.
    pub certificates: Option<mo_core::CertificateSet>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_cap: 256,
            default_deadline: Duration::from_secs(5),
            batch_max: 16,
            batch_words_max: None,
            secure: false,
            certificates: None,
        }
    }
}

struct Queued {
    spec: JobSpec,
    footprint: usize,
    enqueued: Instant,
    deadline: Instant,
    tx: mpsc::Sender<Outcome>,
}

struct QueueState {
    queue: VecDeque<Queued>,
    /// Footprint words currently admitted, per cache level.
    inflight: Vec<usize>,
    draining: bool,
}

pub(crate) struct Shared {
    pool: SbPool,
    cfg: ServeConfig,
    batch_words_max: usize,
    /// Machine-wide capacity per cache level, cached at startup so
    /// snapshots and admission paths stop re-deriving it.
    level_caps: Vec<usize>,
    /// The pool's resolved shape, reported by [`SbPool::warm`] at
    /// startup.
    pool_info: PoolInfo,
    state: Mutex<QueueState>,
    cv: Condvar,
    metrics: Metrics,
    /// The hardware cache witness, when `perf_event_open` is available.
    /// Batch execution wraps a per-thread span around the pool entry,
    /// so the measured counts cover the serving thread's share of the
    /// work (the root task plus whatever it help-executed) — a lower
    /// bound on the batch's true traffic, attributed per kernel.
    witness: Option<mo_obs::witness::PerfWitness>,
    started: Instant,
}

impl Shared {
    /// Point-in-time copy of every metric (shared by [`Server::metrics`]
    /// and the `/metrics` exposition thread).
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(feature = "obs")]
        let ring_dropped = self
            .pool
            .sink()
            .map(|s| s.dropped_per_worker())
            .unwrap_or_default();
        #[cfg(not(feature = "obs"))]
        let ring_dropped = Vec::new();
        let st = self.state.lock().unwrap();
        MetricsSnapshot::collect(
            &self.metrics,
            &self.level_caps,
            &st.inflight,
            st.queue.len(),
            self.pool.stats(),
            ring_dropped,
            self.started.elapsed(),
        )
    }

    /// Smallest level that fits `footprint` per-instance *and* still has
    /// room for it machine-wide: the admission query.
    fn admissible_anchor(&self, st: &QueueState, footprint: usize) -> Option<usize> {
        let hier = self.pool.hierarchy();
        (0..hier.levels().len()).find(|&l| {
            hier.level_capacity(l).is_some_and(|cap| cap >= footprint)
                && st.inflight[l] + footprint <= hier.aggregate_capacity(l).unwrap_or(0)
        })
    }
}

/// A running space-bound kernel service. See the module docs.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("cfg", &self.shared.cfg)
            .finish()
    }
}

impl Server {
    /// Start a server over an explicit hierarchy.
    pub fn start(hier: HwHierarchy, cfg: ServeConfig) -> Self {
        let nlevels = hier.levels().len();
        let level_caps: Vec<usize> = (0..nlevels)
            .map(|l| hier.aggregate_capacity(l).unwrap_or(0))
            .collect();
        let batch_words_max = cfg.batch_words_max.unwrap_or_else(|| hier.l1_capacity());
        let pool = SbPool::new(hier);
        // Spawn the pool's resident stealing workers up front: every
        // batch runs on this long-lived pool via `enter`, so first-job
        // latency should not pay thread creation. `warm` reports the
        // resolved shape, which sizes the service workers and is kept
        // for snapshots.
        let pool_info = pool.warm();
        let workers = if cfg.workers == 0 {
            pool_info.cores.max(1)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            pool,
            cfg,
            batch_words_max,
            level_caps,
            pool_info,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                inflight: vec![0; nlevels],
                draining: false,
            }),
            cv: Condvar::new(),
            metrics: Metrics::new(nlevels),
            witness: mo_obs::witness::PerfWitness::try_new().ok(),
            started: Instant::now(),
        });
        shared.metrics.witness_available.store(
            shared.witness.is_some() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        let handles = (0..workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Start over the detected machine with default config.
    pub fn detected() -> Self {
        Self::start(HwHierarchy::detect(), ServeConfig::default())
    }

    /// The hierarchy the server admits against.
    pub fn hierarchy(&self) -> &HwHierarchy {
        self.shared.pool.hierarchy()
    }

    /// Submit a job. `Ok` hands back a [`Ticket`] resolving to the
    /// job's [`Outcome`]; `Err` is immediate, typed load-shedding.
    pub fn submit(&self, spec: JobSpec) -> Result<Ticket, Rejected> {
        let sh = &self.shared;
        let footprint = footprint_words(spec.kernel, spec.n);
        let cells = sh.metrics.kernel(spec.kernel);
        // The secure gate is checked first: certification is a static
        // property of the kernel, independent of load or size.
        if sh.cfg.secure {
            let cert = sh
                .cfg
                .certificates
                .as_ref()
                .and_then(|set| set.get(spec.kernel.name()));
            let gap = match cert {
                None => Some(crate::job::CertifyGap::NoCertificate),
                Some(c) if c.classification != mo_core::Classification::Oblivious => {
                    Some(crate::job::CertifyGap::DataDependent)
                }
                Some(_) => None,
            };
            if let Some(gap) = gap {
                cells.shed_not_certified.fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::NotCertified { gap });
            }
        }
        let hier = sh.pool.hierarchy();
        if hier.anchor_level(footprint).is_none() {
            cells.shed_too_large.fetch_add(1, Ordering::Relaxed);
            let largest = hier.levels().iter().map(|l| l.capacity).max().unwrap_or(0);
            return Err(Rejected::TooLarge { footprint, largest });
        }
        let mut st = sh.state.lock().unwrap();
        if st.draining {
            return Err(Rejected::ShuttingDown);
        }
        if st.queue.len() >= sh.cfg.queue_cap {
            cells.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::QueueFull {
                depth: st.queue.len(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let deadline = now + spec.deadline.unwrap_or(sh.cfg.default_deadline);
        st.queue.push_back(Queued {
            spec,
            footprint,
            enqueued: now,
            deadline,
            tx,
        });
        // SeqCst: part of the submitted >= completed + shed_deadline
        // conservation protocol (see `MetricsSnapshot::collect`).
        cells.submitted.fetch_add(1, Ordering::SeqCst);
        sh.metrics.note_queue_depth(st.queue.len());
        drop(st);
        sh.cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Stop accepting work; queued jobs still run (or expire).
    pub fn shutdown(&self) {
        self.shared.state.lock().unwrap().draining = true;
        self.shared.cv.notify_all();
    }

    /// Shut down, wait for the queue to empty and every worker to exit,
    /// and return the final metrics snapshot.
    pub fn drain(mut self) -> MetricsSnapshot {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.metrics()
    }

    /// Point-in-time snapshot of every service metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// The underlying pool's resolved shape, as reported by
    /// [`SbPool::warm`] at startup.
    pub fn pool_info(&self) -> &PoolInfo {
        &self.shared.pool_info
    }

    /// Attach a trace sink to the underlying pool (see
    /// [`mo_core::rt::SbPool::attach_sink`]); once attached, the
    /// per-worker ring overflow-drop counts surface in snapshots and as
    /// `moserve_ring_dropped_total{worker}` in the `/metrics`
    /// exposition. Returns `false` if a sink is already attached.
    #[cfg(feature = "obs")]
    pub fn attach_sink(&self, sink: std::sync::Arc<mo_obs::TraceSink>) -> bool {
        self.shared.pool.attach_sink(sink)
    }

    /// Serve a Prometheus text exposition of [`metrics`](Self::metrics)
    /// over HTTP on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port). See [`crate::MetricsExposition`].
    pub fn serve_metrics(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<crate::expose::MetricsExposition> {
        crate::expose::MetricsExposition::bind(Arc::clone(&self.shared), addr)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// How long an idle worker sleeps between queue scans; bounds how stale
/// a deadline check can get when no submissions or completions arrive.
const IDLE_TICK: Duration = Duration::from_millis(5);

fn worker_loop(sh: &Shared) {
    let mut st = sh.state.lock().unwrap();
    loop {
        shed_expired(sh, &mut st);
        if let Some((idx, anchor)) = first_admissible(sh, &st) {
            let batch = gather_batch(sh, &mut st, idx, anchor);
            let total: usize = batch.jobs.iter().map(|q| q.footprint).sum();
            st.inflight[batch.anchor] += total;
            sh.metrics
                .note_peak_inflight(batch.anchor, st.inflight[batch.anchor]);
            let lvl = &sh.metrics.levels[batch.anchor];
            lvl.admitted_jobs
                .fetch_add(batch.jobs.len() as u64, Ordering::Relaxed);
            lvl.admitted_words
                .fetch_add(total as u64, Ordering::Relaxed);
            drop(st);
            execute(sh, batch);
            st = sh.state.lock().unwrap();
            // Admitted footprint was released inside `execute`; wake
            // anyone waiting on that capacity.
            sh.cv.notify_all();
            continue;
        }
        if st.draining && st.queue.is_empty() {
            return;
        }
        let (guard, _) = sh.cv.wait_timeout(st, IDLE_TICK).unwrap();
        st = guard;
    }
}

fn shed_expired(sh: &Shared, st: &mut QueueState) {
    let now = Instant::now();
    let mut i = 0;
    while i < st.queue.len() {
        if st.queue[i].deadline <= now {
            let q = st.queue.remove(i).expect("index in bounds");
            let waited = now.saturating_duration_since(q.enqueued);
            sh.metrics
                .kernel(q.spec.kernel)
                .shed_deadline
                .fetch_add(1, Ordering::SeqCst); // conservation protocol
            let _ =
                q.tx.send(Outcome::Rejected(Rejected::DeadlineExpired { waited }));
        } else {
            i += 1;
        }
    }
}

/// First queued job (FIFO scan, so small jobs overtake a blocked large
/// head rather than convoying behind it) that admission would accept
/// right now, with its anchor level.
fn first_admissible(sh: &Shared, st: &QueueState) -> Option<(usize, usize)> {
    st.queue
        .iter()
        .enumerate()
        .find_map(|(i, q)| sh.admissible_anchor(st, q.footprint).map(|a| (i, a)))
}

struct Batch {
    jobs: Vec<Queued>,
    anchor: usize,
}

/// Pull the job at `idx` plus, when it is small and batching is on, up
/// to `batch_max - 1` queued jobs with the same `(kernel, n)` — equal
/// footprints — as long as the growing total still finds an admissible
/// anchor.
fn gather_batch(sh: &Shared, st: &mut QueueState, idx: usize, anchor: usize) -> Batch {
    let head = st.queue.remove(idx).expect("index in bounds");
    let (kernel, n, fp) = (head.spec.kernel, head.spec.n, head.footprint);
    let mut batch = Batch {
        jobs: vec![head],
        anchor,
    };
    if sh.cfg.batch_max <= 1 || fp > sh.batch_words_max {
        return batch;
    }
    let mut k = 0;
    while batch.jobs.len() < sh.cfg.batch_max && k < st.queue.len() {
        if st.queue[k].spec.kernel == kernel && st.queue[k].spec.n == n {
            let total = fp * (batch.jobs.len() + 1);
            match sh.admissible_anchor(st, total) {
                Some(a) => {
                    batch.anchor = a;
                    batch
                        .jobs
                        .push(st.queue.remove(k).expect("index in bounds"));
                    continue;
                }
                None => break,
            }
        }
        k += 1;
    }
    batch
}

fn execute(sh: &Shared, batch: Batch) {
    let Batch { jobs, anchor } = batch;
    let kernel = jobs[0].spec.kernel;
    let n = jobs[0].spec.n;
    let seeds: Vec<u64> = jobs.iter().map(|q| q.spec.seed).collect();
    let t0 = Instant::now();
    let span = sh.witness.as_ref().and_then(|w| w.span());
    let sums = sh.pool.enter(|ctx| run_batch_in(ctx, kernel, n, &seeds));
    if let (Some(w), Some(span)) = (sh.witness.as_ref(), span.as_ref()) {
        sh.metrics.add_witness(kernel, w.span_delta(span));
    }
    let service = t0.elapsed();
    let batch_size = jobs.len();
    let cells = sh.metrics.kernel(kernel);
    if batch_size > 1 {
        cells.batches.fetch_add(1, Ordering::Relaxed);
        cells
            .batched_jobs
            .fetch_add(batch_size as u64, Ordering::Relaxed);
    }
    let total: usize = jobs.iter().map(|q| q.footprint).sum();
    for (q, checksum) in jobs.into_iter().zip(sums) {
        let queued = t0.saturating_duration_since(q.enqueued);
        cells.completed.fetch_add(1, Ordering::SeqCst); // conservation protocol
        cells.latency.record(queued + service);
        let _ = q.tx.send(Outcome::Done(Done {
            checksum,
            queued,
            service,
            anchor_level: anchor,
            batch_size,
        }));
    }
    // Release the admitted footprint.
    let mut st = sh.state.lock().unwrap();
    st.inflight[anchor] -= total;
}
