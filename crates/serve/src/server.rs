//! The space-bound kernel server.
//!
//! Submission → bounded queue → SB admission → (batched) execution:
//!
//! * **Admission control is the paper's space admission, lifted to whole
//!   jobs.** Every job declares its analytic footprint (via the kernel
//!   registry); it may *start* only when some cache level of the serving
//!   hierarchy both fits it per-instance and has that much machine-wide
//!   capacity left over the jobs already running — the level the job is
//!   "anchored" against, exactly like the SB scheduler anchors tasks at
//!   the smallest cache that fits `s(τ)`.
//! * **Backpressure instead of collapse.** The queue is bounded: a full
//!   queue rejects at submission ([`Rejected::QueueFull`]), a job that
//!   waits past its deadline is shed ([`Rejected::DeadlineExpired`]),
//!   and a job no cache level could ever hold is refused outright
//!   ([`Rejected::TooLarge`]). Memory stays bounded by
//!   `queue_cap · spec + Σ admitted footprints` by construction.
//! * **CGC⇒SB batching.** Queued jobs with the same `(kernel, n)` — and
//!   hence equal footprints — whose per-job footprint is small are
//!   coalesced into one batch that anchors where its *total* footprint
//!   fits, then expands evenly over the cores through one `join_all`
//!   whose per-child space bound is the per-job footprint: the serving
//!   analogue of a CGC⇒SB fork anchoring high and expanding its
//!   equal-sized children below.
//! * **Graceful drain.** [`Server::shutdown`] stops intake; workers
//!   finish the queue (still shedding whatever expires) and exit;
//!   [`Server::drain`] joins them and returns the final metrics
//!   snapshot. Every ticket resolves exactly once.
//! * **Request-path spans.** With the `obs` feature and a sink attached
//!   ([`Server::attach_sink`]), every submission gets a fleet-unique
//!   request id (`(shard << 48) | seq`, or the [`JobSpec::trace_id`]
//!   the dist router already stamped) and emits monotonic
//!   phase-boundary events — `serve_arrive → serve_admit →
//!   serve_enqueue → serve_dequeue → serve_batch_form → serve_execute
//!   → serve_respond`, or a typed `serve_shed` — into the same
//!   timeline as the SB pool's scheduler and witness events. A span
//!   opens at arrival and closes exactly once; `mo_obs::span`
//!   reassembles the ring into per-kernel per-phase latency
//!   histograms. Without the feature the emission macro compiles to
//!   nothing.
//! * **SLO burn rates.** An optional [`SloConfig`] evaluates a latency
//!   and an availability objective as multi-window error-budget burn
//!   rates ([`mo_obs::slo`]), exported as `moserve_slo_*` families on
//!   `/metrics`; on the not-burning → burning edge a flight recorder
//!   drains the span rings into a validated Perfetto artifact.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mo_algorithms::real::registry::{
    analytic_transfers, footprint_words, run_batch_in, BLOCK_WORDS,
};
use mo_core::rt::{HwHierarchy, PoolInfo, SbPool};
use mo_obs::slo::{BurnTracker, BurnWindow, SloSpec};

use crate::job::{Done, JobSpec, Outcome, Rejected, Ticket};
use crate::metrics::{Metrics, MetricsSnapshot, SloObjectiveSnapshot, SloWindowSnapshot};

/// Emit one request-span event into the pool's trace sink. Compiles to
/// nothing — arguments unevaluated — without the `obs` feature, same
/// contract as the runtime's `obs_event!`. Serve events are emitted
/// from service threads (not pool residents), so they land in the
/// sink's external ring and merge into the worker timeline at drain.
macro_rules! serve_event {
    ($sh:expr, $kind:ident, $a:expr, $b:expr, $c:expr) => {{
        #[cfg(feature = "obs")]
        if let Some(sink) = $sh.pool.sink() {
            sink.emit(
                None,
                mo_obs::EventKind::$kind,
                $a as u64,
                $b as u64,
                $c as u64,
            );
        }
    }};
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` uses the hierarchy's core count.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Default queue deadline for jobs that do not carry their own.
    pub default_deadline: Duration,
    /// Maximum jobs per CGC⇒SB batch (`1` disables batching).
    pub batch_max: usize,
    /// Only jobs whose footprint is at most this many words are
    /// batched; `None` uses the L1 capacity (the paper's "small task"
    /// regime where CGC⇒SB expansion pays off).
    pub batch_words_max: Option<usize>,
    /// Secure serving mode (`--secure`): refuse every kernel that does
    /// not hold an `oblivious` certificate in [`Self::certificates`]
    /// with the typed [`Rejected::NotCertified`] reason. Off by
    /// default.
    pub secure: bool,
    /// Value-obliviousness certificates (the `mo_certify` artifact,
    /// loaded via [`mo_core::CertificateSet::from_json_str`]) consulted
    /// by secure mode. `None` with `secure` refuses everything.
    pub certificates: Option<mo_core::CertificateSet>,
    /// Shard id folded into server-minted request ids
    /// (`(shard << 48) | seq`) so spans stay unique across a fleet;
    /// the dist tier sets it to the worker's shard index.
    pub shard: u16,
    /// Latency/availability service-level objectives; `None` disables
    /// the burn-rate engine (no `moserve_slo_*` families, no dumps).
    pub slo: Option<SloConfig>,
}

/// Service-level objectives evaluated by the server's burn-rate engine.
///
/// Two objectives share the multi-window machinery of [`mo_obs::slo`]:
/// **latency** (a request is good when it completes within
/// [`Self::latency`]; sheds count bad) and **availability** (good =
/// completed; queue-full and deadline sheds count bad, while
/// `too_large` / `not_certified` rejections are client errors and count
/// toward neither). On the not-burning → burning edge the server
/// drains the trace sink (when the `obs` feature is on and a sink is
/// attached) into a validated Perfetto JSON flight-recorder artifact
/// at [`Self::dump_path`].
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Latency threshold: completions at or under this are good.
    pub latency: Duration,
    /// Required good fraction for the latency objective.
    pub latency_target: f64,
    /// Required good fraction for the availability objective.
    pub availability_target: f64,
    /// Burn window pairs; empty uses [`SloSpec::default_windows`].
    pub windows: Vec<BurnWindow>,
    /// Where the flight recorder writes its Perfetto dump; `None`
    /// counts burn edges without writing.
    pub dump_path: Option<std::path::PathBuf>,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            latency: Duration::from_millis(100),
            latency_target: 0.99,
            availability_target: 0.999,
            windows: Vec::new(),
            dump_path: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_cap: 256,
            default_deadline: Duration::from_secs(5),
            batch_max: 16,
            batch_words_max: None,
            secure: false,
            certificates: None,
            shard: 0,
            slo: None,
        }
    }
}

struct Queued {
    spec: JobSpec,
    footprint: usize,
    enqueued: Instant,
    deadline: Instant,
    tx: mpsc::Sender<Outcome>,
    /// Request id for this job's span (only minted when tracing can
    /// observe it).
    #[cfg(feature = "obs")]
    req: u64,
}

struct QueueState {
    queue: VecDeque<Queued>,
    /// Footprint words currently admitted, per cache level.
    inflight: Vec<usize>,
    draining: bool,
}

pub(crate) struct Shared {
    pool: SbPool,
    cfg: ServeConfig,
    batch_words_max: usize,
    /// Machine-wide capacity per cache level, cached at startup so
    /// snapshots and admission paths stop re-deriving it.
    level_caps: Vec<usize>,
    /// The pool's resolved shape, reported by [`SbPool::warm`] at
    /// startup.
    pool_info: PoolInfo,
    state: Mutex<QueueState>,
    cv: Condvar,
    metrics: Metrics,
    /// The hardware cache witness, when `perf_event_open` is available.
    /// Batch execution wraps a per-thread span around the pool entry,
    /// so the measured counts cover the serving thread's share of the
    /// work (the root task plus whatever it help-executed) — a lower
    /// bound on the batch's true traffic, attributed per kernel.
    witness: Option<mo_obs::witness::PerfWitness>,
    /// Sequence counter behind server-minted request ids.
    #[cfg(feature = "obs")]
    next_req: std::sync::atomic::AtomicU64,
    /// Burn-rate trackers, present when an SLO config was given.
    slo: Option<Mutex<SloRuntime>>,
    started: Instant,
}

/// Mutable state of the SLO burn-rate engine.
struct SloRuntime {
    cfg: SloConfig,
    latency: BurnTracker,
    availability: BurnTracker,
    /// Whether any objective was burning at the last evaluation; the
    /// false → true edge fires the flight recorder.
    burning: bool,
    /// Burn edges observed (dumps attempted).
    dumps: u64,
}

impl SloRuntime {
    fn new(cfg: SloConfig) -> Self {
        let windows = if cfg.windows.is_empty() {
            SloSpec::default_windows()
        } else {
            cfg.windows.clone()
        };
        let spec = |name: &str, target: f64| SloSpec {
            name: name.to_string(),
            target,
            windows: windows.clone(),
        };
        Self {
            latency: BurnTracker::new(spec("latency", cfg.latency_target)),
            availability: BurnTracker::new(spec("availability", cfg.availability_target)),
            cfg,
            burning: false,
            dumps: 0,
        }
    }
}

impl Shared {
    /// Point-in-time copy of every metric (shared by [`Server::metrics`]
    /// and the `/metrics` exposition thread).
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(feature = "obs")]
        let ring_dropped = self
            .pool
            .sink()
            .map(|s| s.dropped_per_worker())
            .unwrap_or_default();
        #[cfg(not(feature = "obs"))]
        let ring_dropped = Vec::new();
        // Evaluate SLOs before taking the state lock (the evaluator
        // only touches its own mutex and the metric atomics).
        let (slo, slo_dumps) = self.slo_eval();
        let st = self.state.lock().unwrap();
        MetricsSnapshot::collect(
            &self.metrics,
            &self.level_caps,
            &st.inflight,
            st.queue.len(),
            self.pool.stats(),
            ring_dropped,
            slo,
            slo_dumps,
            self.started.elapsed(),
        )
    }

    /// Mint a fleet-unique request id for a job that arrived without
    /// one: shard in the top 16 bits, a monotone sequence below.
    #[cfg(feature = "obs")]
    fn next_request_id(&self) -> u64 {
        ((self.cfg.shard as u64) << 48) | (self.next_req.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Feed the burn trackers the current good/total counters, fire the
    /// flight recorder on a fresh burn edge, and return the evaluated
    /// objective states. `(empty, 0)` without an SLO config.
    fn slo_eval(&self) -> (Vec<SloObjectiveSnapshot>, u64) {
        let Some(slot) = self.slo.as_ref() else {
            return (Vec::new(), 0);
        };
        let now_ns = self.started.elapsed().as_nanos() as u64;
        // Good-for-latency = completions whose whole log₂ bucket sits
        // at or under the threshold; sheds (overload-typed ones) count
        // bad for both objectives, client errors for neither.
        let mut rt = slot.lock().unwrap();
        let threshold_us = rt.cfg.latency.as_micros().max(1) as u64;
        let (mut lat_good, mut completed, mut shed) = (0u64, 0u64, 0u64);
        for cells in &self.metrics.kernels {
            for (idx, count) in cells.latency.snapshot().into_iter().enumerate() {
                if idx < 63 && (1u64 << idx) <= threshold_us {
                    lat_good += count;
                }
            }
            completed += cells.completed.load(Ordering::SeqCst);
            shed += cells.shed_queue_full.load(Ordering::Relaxed)
                + cells.shed_deadline.load(Ordering::SeqCst);
        }
        let total = completed + shed;
        rt.latency.observe(now_ns, lat_good.min(total), total);
        rt.availability.observe(now_ns, completed, total);
        let states = [rt.latency.state(now_ns), rt.availability.state(now_ns)];
        let burning = states.iter().any(|s| s.burning);
        if burning && !rt.burning {
            rt.dumps += 1;
            self.flight_record(&rt.cfg);
        }
        rt.burning = burning;
        let snaps = states
            .iter()
            .map(|s| SloObjectiveSnapshot {
                objective: s.name.clone(),
                target: if s.name == "latency" {
                    rt.latency.spec().target
                } else {
                    rt.availability.spec().target
                },
                burning: s.burning,
                windows: s
                    .windows
                    .iter()
                    .map(|w| SloWindowSnapshot {
                        short_secs: w.window.short_ns as f64 / 1e9,
                        long_secs: w.window.long_ns as f64 / 1e9,
                        factor: w.window.factor,
                        burn_short: w.burn_short,
                        burn_long: w.burn_long,
                        burning: w.burning(),
                    })
                    .collect(),
            })
            .collect();
        (snaps, rt.dumps)
    }

    /// Dump-on-burn flight recorder: drain the trace sink (request
    /// spans plus the scheduler events around them) into a validated
    /// Perfetto JSON artifact. Draining consumes the rings, so the dump
    /// captures the window since the last drain — exactly the flight
    /// these spans flew.
    #[cfg(feature = "obs")]
    fn flight_record(&self, cfg: &SloConfig) {
        let Some(path) = cfg.dump_path.as_ref() else {
            return;
        };
        let Some(sink) = self.pool.sink() else {
            return;
        };
        let events = sink.drain();
        let json = mo_obs::chrome::to_chrome_json(&events);
        if mo_obs::chrome::validate(&json).is_ok() {
            let _ = std::fs::write(path, json);
        }
    }

    #[cfg(not(feature = "obs"))]
    fn flight_record(&self, _cfg: &SloConfig) {}

    /// Smallest level that fits `footprint` per-instance *and* still has
    /// room for it machine-wide: the admission query.
    fn admissible_anchor(&self, st: &QueueState, footprint: usize) -> Option<usize> {
        let hier = self.pool.hierarchy();
        (0..hier.levels().len()).find(|&l| {
            hier.level_capacity(l).is_some_and(|cap| cap >= footprint)
                && st.inflight[l] + footprint <= hier.aggregate_capacity(l).unwrap_or(0)
        })
    }
}

/// A running space-bound kernel service. See the module docs.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("cfg", &self.shared.cfg)
            .finish()
    }
}

impl Server {
    /// Start a server over an explicit hierarchy.
    pub fn start(hier: HwHierarchy, cfg: ServeConfig) -> Self {
        let nlevels = hier.levels().len();
        let level_caps: Vec<usize> = (0..nlevels)
            .map(|l| hier.aggregate_capacity(l).unwrap_or(0))
            .collect();
        let batch_words_max = cfg.batch_words_max.unwrap_or_else(|| hier.l1_capacity());
        let pool = SbPool::new(hier);
        // Spawn the pool's resident stealing workers up front: every
        // batch runs on this long-lived pool via `enter`, so first-job
        // latency should not pay thread creation. `warm` reports the
        // resolved shape, which sizes the service workers and is kept
        // for snapshots.
        let pool_info = pool.warm();
        let workers = if cfg.workers == 0 {
            pool_info.cores.max(1)
        } else {
            cfg.workers
        };
        let slo = cfg.slo.clone().map(|c| Mutex::new(SloRuntime::new(c)));
        let has_slo = slo.is_some();
        let shared = Arc::new(Shared {
            pool,
            cfg,
            batch_words_max,
            level_caps,
            pool_info,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                inflight: vec![0; nlevels],
                draining: false,
            }),
            cv: Condvar::new(),
            metrics: Metrics::new(nlevels),
            witness: mo_obs::witness::PerfWitness::try_new().ok(),
            #[cfg(feature = "obs")]
            next_req: std::sync::atomic::AtomicU64::new(0),
            slo,
            started: Instant::now(),
        });
        shared.metrics.witness_available.store(
            shared.witness.is_some() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        let mut handles: Vec<thread::JoinHandle<()>> = (0..workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        if has_slo {
            // Online SLO evaluation: burn edges (and their dumps) must
            // fire even when nobody scrapes `/metrics`.
            let sh = Arc::clone(&shared);
            handles.push(thread::spawn(move || loop {
                if sh.state.lock().unwrap().draining {
                    return;
                }
                let _ = sh.slo_eval();
                thread::sleep(SLO_TICK);
            }));
        }
        Self {
            shared,
            workers: handles,
        }
    }

    /// Start over the detected machine with default config.
    pub fn detected() -> Self {
        Self::start(HwHierarchy::detect(), ServeConfig::default())
    }

    /// The hierarchy the server admits against.
    pub fn hierarchy(&self) -> &HwHierarchy {
        self.shared.pool.hierarchy()
    }

    /// Submit a job. `Ok` hands back a [`Ticket`] resolving to the
    /// job's [`Outcome`]; `Err` is immediate, typed load-shedding.
    pub fn submit(&self, spec: JobSpec) -> Result<Ticket, Rejected> {
        let sh = &self.shared;
        let footprint = footprint_words(spec.kernel, spec.n);
        let cells = sh.metrics.kernel(spec.kernel);
        // Span opens here; every return below closes it exactly once
        // (respond in `execute`, or one typed shed).
        #[cfg(feature = "obs")]
        let req = spec.trace_id.unwrap_or_else(|| sh.next_request_id());
        serve_event!(sh, ServeArrive, req, spec.kernel.index(), spec.n);
        // The secure gate is checked first: certification is a static
        // property of the kernel, independent of load or size.
        if sh.cfg.secure {
            let cert = sh
                .cfg
                .certificates
                .as_ref()
                .and_then(|set| set.get(spec.kernel.name()));
            let gap = match cert {
                None => Some(crate::job::CertifyGap::NoCertificate),
                Some(c) if c.classification != mo_core::Classification::Oblivious => {
                    Some(crate::job::CertifyGap::DataDependent)
                }
                Some(_) => None,
            };
            if let Some(gap) = gap {
                cells.shed_not_certified.fetch_add(1, Ordering::Relaxed);
                serve_event!(sh, ServeShed, req, mo_obs::span::SHED_NOT_CERTIFIED, 0);
                return Err(Rejected::NotCertified { gap });
            }
        }
        let hier = sh.pool.hierarchy();
        let Some(static_anchor) = hier.anchor_level(footprint) else {
            cells.shed_too_large.fetch_add(1, Ordering::Relaxed);
            serve_event!(sh, ServeShed, req, mo_obs::span::SHED_TOO_LARGE, 0);
            let largest = hier.levels().iter().map(|l| l.capacity).max().unwrap_or(0);
            return Err(Rejected::TooLarge { footprint, largest });
        };
        let mut st = sh.state.lock().unwrap();
        if st.draining {
            serve_event!(sh, ServeShed, req, mo_obs::span::SHED_SHUTTING_DOWN, 0);
            return Err(Rejected::ShuttingDown);
        }
        if st.queue.len() >= sh.cfg.queue_cap {
            cells.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            serve_event!(sh, ServeShed, req, mo_obs::span::SHED_QUEUE_FULL, 0);
            return Err(Rejected::QueueFull {
                depth: st.queue.len(),
            });
        }
        serve_event!(sh, ServeAdmit, req, footprint, static_anchor);
        #[cfg(not(feature = "obs"))]
        let _ = static_anchor; // only the admit event consumes it
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let budget = spec.deadline.unwrap_or(sh.cfg.default_deadline);
        let deadline = now + budget;
        st.queue.push_back(Queued {
            spec,
            footprint,
            enqueued: now,
            deadline,
            tx,
            #[cfg(feature = "obs")]
            req,
        });
        serve_event!(sh, ServeEnqueue, req, st.queue.len(), budget.as_nanos());
        // SeqCst: part of the submitted >= completed + shed_deadline
        // conservation protocol (see `MetricsSnapshot::collect`).
        cells.submitted.fetch_add(1, Ordering::SeqCst);
        sh.metrics.note_queue_depth(st.queue.len());
        drop(st);
        sh.cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Stop accepting work; queued jobs still run (or expire).
    pub fn shutdown(&self) {
        self.shared.state.lock().unwrap().draining = true;
        self.shared.cv.notify_all();
    }

    /// Shut down, wait for the queue to empty and every worker to exit,
    /// and return the final metrics snapshot.
    pub fn drain(mut self) -> MetricsSnapshot {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.metrics()
    }

    /// Point-in-time snapshot of every service metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// The underlying pool's resolved shape, as reported by
    /// [`SbPool::warm`] at startup.
    pub fn pool_info(&self) -> &PoolInfo {
        &self.shared.pool_info
    }

    /// Attach a trace sink to the underlying pool (see
    /// [`mo_core::rt::SbPool::attach_sink`]); once attached, the
    /// per-worker ring overflow-drop counts surface in snapshots and as
    /// `moserve_ring_dropped_total{worker}` in the `/metrics`
    /// exposition. Returns `false` if a sink is already attached.
    #[cfg(feature = "obs")]
    pub fn attach_sink(&self, sink: std::sync::Arc<mo_obs::TraceSink>) -> bool {
        self.shared.pool.attach_sink(sink)
    }

    /// Serve a Prometheus text exposition of [`metrics`](Self::metrics)
    /// over HTTP on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port). See [`crate::MetricsExposition`].
    pub fn serve_metrics(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<crate::expose::MetricsExposition> {
        crate::expose::MetricsExposition::bind(Arc::clone(&self.shared), addr)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// How long an idle worker sleeps between queue scans; bounds how stale
/// a deadline check can get when no submissions or completions arrive.
const IDLE_TICK: Duration = Duration::from_millis(5);

/// Cadence of the background SLO evaluator; bounds both burn-detection
/// latency and how long `drain` waits for the evaluator to exit.
const SLO_TICK: Duration = Duration::from_millis(20);

fn worker_loop(sh: &Shared) {
    let mut st = sh.state.lock().unwrap();
    loop {
        shed_expired(sh, &mut st);
        if let Some((idx, anchor)) = first_admissible(sh, &st) {
            let batch = gather_batch(sh, &mut st, idx, anchor);
            let total: usize = batch.jobs.iter().map(|q| q.footprint).sum();
            #[cfg(feature = "obs")]
            for q in &batch.jobs {
                serve_event!(
                    sh,
                    ServeDequeue,
                    q.req,
                    q.enqueued.elapsed().as_nanos(),
                    batch.anchor
                );
                serve_event!(sh, ServeBatchForm, q.req, batch.jobs.len(), total);
            }
            st.inflight[batch.anchor] += total;
            sh.metrics
                .note_peak_inflight(batch.anchor, st.inflight[batch.anchor]);
            let lvl = &sh.metrics.levels[batch.anchor];
            lvl.admitted_jobs
                .fetch_add(batch.jobs.len() as u64, Ordering::Relaxed);
            lvl.admitted_words
                .fetch_add(total as u64, Ordering::Relaxed);
            drop(st);
            execute(sh, batch);
            st = sh.state.lock().unwrap();
            // Admitted footprint was released inside `execute`; wake
            // anyone waiting on that capacity.
            sh.cv.notify_all();
            continue;
        }
        if st.draining && st.queue.is_empty() {
            return;
        }
        let (guard, _) = sh.cv.wait_timeout(st, IDLE_TICK).unwrap();
        st = guard;
    }
}

fn shed_expired(sh: &Shared, st: &mut QueueState) {
    let now = Instant::now();
    let mut i = 0;
    while i < st.queue.len() {
        if st.queue[i].deadline <= now {
            let q = st.queue.remove(i).expect("index in bounds");
            let waited = now.saturating_duration_since(q.enqueued);
            sh.metrics
                .kernel(q.spec.kernel)
                .shed_deadline
                .fetch_add(1, Ordering::SeqCst); // conservation protocol
            serve_event!(
                sh,
                ServeShed,
                q.req,
                mo_obs::span::SHED_DEADLINE,
                waited.as_nanos()
            );
            let _ =
                q.tx.send(Outcome::Rejected(Rejected::DeadlineExpired { waited }));
        } else {
            i += 1;
        }
    }
}

/// First queued job (FIFO scan, so small jobs overtake a blocked large
/// head rather than convoying behind it) that admission would accept
/// right now, with its anchor level.
fn first_admissible(sh: &Shared, st: &QueueState) -> Option<(usize, usize)> {
    st.queue
        .iter()
        .enumerate()
        .find_map(|(i, q)| sh.admissible_anchor(st, q.footprint).map(|a| (i, a)))
}

struct Batch {
    jobs: Vec<Queued>,
    anchor: usize,
}

/// Pull the job at `idx` plus, when it is small and batching is on, up
/// to `batch_max - 1` queued jobs with the same `(kernel, n)` — equal
/// footprints — as long as the growing total still finds an admissible
/// anchor.
fn gather_batch(sh: &Shared, st: &mut QueueState, idx: usize, anchor: usize) -> Batch {
    let head = st.queue.remove(idx).expect("index in bounds");
    let (kernel, n, fp) = (head.spec.kernel, head.spec.n, head.footprint);
    let mut batch = Batch {
        jobs: vec![head],
        anchor,
    };
    if sh.cfg.batch_max <= 1 || fp > sh.batch_words_max {
        return batch;
    }
    let mut k = 0;
    while batch.jobs.len() < sh.cfg.batch_max && k < st.queue.len() {
        if st.queue[k].spec.kernel == kernel && st.queue[k].spec.n == n {
            let total = fp * (batch.jobs.len() + 1);
            match sh.admissible_anchor(st, total) {
                Some(a) => {
                    batch.anchor = a;
                    batch
                        .jobs
                        .push(st.queue.remove(k).expect("index in bounds"));
                    continue;
                }
                None => break,
            }
        }
        k += 1;
    }
    batch
}

fn execute(sh: &Shared, batch: Batch) {
    let Batch { jobs, anchor } = batch;
    let kernel = jobs[0].spec.kernel;
    let n = jobs[0].spec.n;
    let seeds: Vec<u64> = jobs.iter().map(|q| q.spec.seed).collect();
    #[cfg(feature = "obs")]
    for q in &jobs {
        serve_event!(sh, ServeExecute, q.req, jobs.len(), anchor);
    }
    let t0 = Instant::now();
    let span = sh.witness.as_ref().and_then(|w| w.span());
    let sums = sh.pool.enter(|ctx| run_batch_in(ctx, kernel, n, &seeds));
    if let (Some(w), Some(span)) = (sh.witness.as_ref(), span.as_ref()) {
        sh.metrics.add_witness(kernel, w.span_delta(span));
        // Pair the measured transfers with the analytic expectation for
        // the same batch, per compared level, behind the
        // `moserve_witness_divergence` gauges.
        let hier = sh.pool.hierarchy();
        let llc = hier.levels().len().saturating_sub(1);
        let expected = [hier.l1_capacity(), hier.level_capacity(llc).unwrap_or(0)].map(|cap| {
            (analytic_transfers(kernel, n, cap, BLOCK_WORDS) * jobs.len() as f64) as u64
        });
        sh.metrics.add_expected_transfers(kernel, expected);
    }
    let service = t0.elapsed();
    let batch_size = jobs.len();
    let cells = sh.metrics.kernel(kernel);
    if batch_size > 1 {
        cells.batches.fetch_add(1, Ordering::Relaxed);
        cells
            .batched_jobs
            .fetch_add(batch_size as u64, Ordering::Relaxed);
    }
    let total: usize = jobs.iter().map(|q| q.footprint).sum();
    for (q, checksum) in jobs.into_iter().zip(sums) {
        let queued = t0.saturating_duration_since(q.enqueued);
        cells.completed.fetch_add(1, Ordering::SeqCst); // conservation protocol
        cells.latency.record(queued + service);
        // Respond closes the span; emitted before the ticket resolves
        // so a drain racing the waiter still sees a closed span.
        serve_event!(sh, ServeRespond, q.req, service.as_nanos(), batch_size);
        let _ = q.tx.send(Outcome::Done(Done {
            checksum,
            queued,
            service,
            anchor_level: anchor,
            batch_size,
        }));
    }
    // Release the admitted footprint.
    let mut st = sh.state.lock().unwrap();
    st.inflight[anchor] -= total;
}
