//! Job descriptions and typed outcomes.

use std::sync::mpsc;
use std::time::Duration;

pub use mo_algorithms::real::registry::Kernel;

/// One request to the server: a kernel, a problem size, a seed for the
/// deterministic input generator, and an optional per-job deadline
/// overriding the server default. The job's space bound is *derived*
/// from `(kernel, n)` by the registry's analytic footprint function —
/// clients never place themselves; they only declare what they need,
/// exactly like the paper's algorithms declare `s(τ)` per fork.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Which kernel to run.
    pub kernel: Kernel,
    /// Problem size (kernel-specific: matrix dimension, element count…).
    pub n: usize,
    /// Seed for the deterministic input generator.
    pub seed: u64,
    /// Maximum time the job may wait in the queue before it is shed;
    /// `None` uses the server's default.
    pub deadline: Option<Duration>,
    /// Fleet-unique request id carried by jobs that already belong to a
    /// trace — the dist router stamps one before forwarding so a routed
    /// job keeps a single span across shards. `None` lets the server
    /// mint a fresh id (`(shard << 48) | seq`) at arrival.
    pub trace_id: Option<u64>,
}

impl JobSpec {
    /// A job with the default deadline and a server-minted trace id.
    pub fn new(kernel: Kernel, n: usize, seed: u64) -> Self {
        Self {
            kernel,
            n,
            seed,
            deadline: None,
            trace_id: None,
        }
    }
}

/// Why a job was not served. Every rejection is typed and accounted —
/// under overload the server sheds with these, it never panics or
/// grows without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue was full at submission (backpressure).
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The declared footprint exceeds every cache level of the machine:
    /// no level could ever admit it.
    TooLarge {
        /// The job's footprint in words.
        footprint: usize,
        /// The largest per-instance level capacity available.
        largest: usize,
    },
    /// The job waited in the queue past its deadline and was shed.
    DeadlineExpired {
        /// How long the job had waited when it was shed.
        waited: Duration,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The server is in secure mode ([`crate::ServeConfig::secure`])
    /// and the kernel lacks an `oblivious` value-obliviousness
    /// certificate, so its address trace is not provably
    /// value-independent and it must not run next to secrets.
    NotCertified {
        /// What the loaded certificate set says about the kernel.
        gap: CertifyGap,
    },
}

/// Why a kernel fails the secure-mode certificate gate
/// ([`Rejected::NotCertified`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyGap {
    /// No certificate for this kernel was loaded into the server.
    NoCertificate,
    /// The kernel is certified `data-dependent`: the certifier holds a
    /// concrete witness pair of equal-size inputs whose address traces
    /// diverge, so the trace leaks information about the values.
    DataDependent,
}

/// A successfully served job.
#[derive(Debug, Clone, Copy)]
pub struct Done {
    /// Checksum of the kernel output (deterministic in the spec).
    pub checksum: u64,
    /// Time spent queued before execution started.
    pub queued: Duration,
    /// Execution time (shared with batch mates when batched).
    pub service: Duration,
    /// Cache level the job (or its batch) was admitted against.
    pub anchor_level: usize,
    /// Number of jobs in the batch this job ran in (1 = solo).
    pub batch_size: usize,
}

/// Terminal outcome of a submitted job.
#[derive(Debug, Clone, Copy)]
pub enum Outcome {
    /// The job ran to completion.
    Done(Done),
    /// The job was shed after admission to the queue.
    Rejected(Rejected),
}

impl Outcome {
    /// `true` for [`Outcome::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done(_))
    }
}

/// Handle to a queued job's eventual [`Outcome`].
///
/// Every admitted job resolves exactly once — at completion, at
/// deadline shedding, or during drain — so `wait` cannot hang on a
/// healthy server; a disconnected channel (a worker died) surfaces as
/// a [`Rejected::ShuttingDown`] outcome rather than a panic.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Outcome>,
}

impl Ticket {
    /// Block until the job resolves.
    pub fn wait(self) -> Outcome {
        self.rx
            .recv()
            .unwrap_or(Outcome::Rejected(Rejected::ShuttingDown))
    }

    /// Block up to `timeout`; `None` if the job is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        match self.rx.recv_timeout(timeout) {
            Ok(o) => Some(o),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Some(Outcome::Rejected(Rejected::ShuttingDown))
            }
        }
    }
}
