//! Crate-level invariant tests for the HM machine model.

use hm_model::{AccessKind, CacheId, CacheSystem, LevelSpec, MachineSpec, Metrics, Topology};

#[test]
fn catalog_topologies_are_self_consistent() {
    for (name, spec) in hm_model::catalog::all() {
        let t = Topology::new(&spec);
        assert_eq!(t.cores(), spec.cores(), "{name}");
        for level in 1..=t.cache_levels() {
            assert_eq!(
                t.caches_at(level) * t.cores_under(level),
                t.cores(),
                "{name} L{level}"
            );
        }
        // q_i is non-increasing with the level.
        for level in 2..=t.cache_levels() {
            assert!(t.caches_at(level) <= t.caches_at(level - 1), "{name}");
        }
    }
}

#[test]
fn asymmetric_fanouts_work() {
    // 3 cores per L2, 2 L2s per L3 => 6 cores.
    let spec = MachineSpec::new(vec![
        LevelSpec::new(512, 8, 1),
        LevelSpec::new(8192, 8, 3),
        LevelSpec::new(1 << 16, 16, 2),
    ])
    .unwrap();
    assert_eq!(spec.cores(), 6);
    let t = Topology::new(&spec);
    assert_eq!(t.shadow(CacheId::new(2, 1)).lo, 3);
    assert_eq!(t.shadow(CacheId::new(2, 1)).hi, 6);
    assert_eq!(t.caches_under(CacheId::new(3, 0), 2).len(), 2);
    assert_eq!(t.caches_under(CacheId::new(3, 0), 1).len(), 6);
}

#[test]
fn writeback_accounting_is_bounded_by_dirty_blocks() {
    let spec = MachineSpec::three_level(2, 256, 8, 4096, 8).unwrap();
    let mut sys = CacheSystem::new(&spec);
    // Write 64 blocks through a 32-block L1: every eviction is dirty.
    for w in 0..(64 * 8u64) {
        sys.write(0, w);
    }
    sys.flush();
    let c = sys.metrics().cache(1, 0);
    // 64 blocks written; every one must eventually be written back.
    assert_eq!(c.writebacks, 64);
    assert_eq!(c.misses, 64);
}

#[test]
fn read_only_traffic_never_writes_back() {
    let spec = MachineSpec::three_level(1, 256, 8, 4096, 8).unwrap();
    let mut sys = CacheSystem::new(&spec);
    for w in 0..4096u64 {
        sys.read(0, w % 1024);
    }
    sys.flush();
    for level in 1..=2 {
        assert_eq!(sys.metrics().cache(level, 0).writebacks, 0, "L{level}");
    }
}

#[test]
fn metrics_level_summary_totals_match_per_cache() {
    let spec = MachineSpec::three_level(4, 256, 8, 8192, 8).unwrap();
    let mut sys = CacheSystem::new(&spec);
    for c in 0..4 {
        for w in 0..128u64 {
            sys.read(c, (c as u64) * 4096 + w);
        }
    }
    let m: &Metrics = sys.metrics();
    let s = m.level(1);
    let total: u64 = (0..4).map(|j| m.cache(1, j).misses).sum();
    assert_eq!(s.total_misses, total);
    assert_eq!(s.max_misses, 128 / 8);
    assert_eq!(s.total_accesses, 4 * 128);
}

#[test]
fn lru_stack_property_smaller_cache_never_fewer_misses() {
    // LRU inclusion property: for the same trace, a larger cache never
    // misses more (fully-associative LRU is a stack algorithm).
    let trace: Vec<u64> = (0..4000u64)
        .map(|i| {
            let x = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % 96
        })
        .collect();
    let mut last = u64::MAX;
    for blocks in [4usize, 8, 16, 32, 64] {
        let mut cache = hm_model::LruCache::new(blocks);
        let mut misses = 0u64;
        for &b in &trace {
            if matches!(cache.access(b, false), hm_model::Probe::Miss { .. }) {
                misses += 1;
            }
        }
        assert!(misses <= last, "blocks={blocks}: {misses} > {last}");
        last = misses;
    }
}

#[test]
fn pingpong_counter_ignores_single_writer() {
    let spec = MachineSpec::three_level(4, 256, 8, 8192, 8).unwrap();
    let mut sys = CacheSystem::new(&spec);
    for w in 0..256u64 {
        sys.access(2, w, AccessKind::Write);
    }
    assert_eq!(sys.pingpongs(), 0);
}

#[test]
fn display_round_trips_key_parameters() {
    let spec = hm_model::catalog::epyc_like();
    let s = spec.to_string();
    assert!(s.contains(&format!("p = {} cores", spec.cores())));
    assert!(s.contains(&format!("h = {}", spec.h())));
}

#[test]
fn spec_errors_render_humane_messages() {
    use hm_model::SpecError;
    let cases: Vec<(SpecError, &str)> = vec![
        (SpecError::NoLevels, "at least one cache level"),
        (SpecError::PrivateL1 { fanout: 3 }, "p_1 must be 1"),
        (SpecError::ZeroFanout { level: 2 }, "p_2"),
        (SpecError::BadBlock { level: 1, block: 7 }, "power of two"),
        (
            SpecError::BadCapacity {
                level: 2,
                capacity: 13,
            },
            "C_2",
        ),
        (SpecError::BlockNotMonotone { level: 3 }, "non-decreasing"),
        (
            SpecError::CapacityConstraint { level: 2 },
            "capacity constraint",
        ),
    ];
    for (e, needle) in cases {
        let msg = e.to_string();
        assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
    }
}

#[test]
fn topology_count_matches_materialized_lists() {
    let spec = hm_model::catalog::epyc_like();
    let t = Topology::new(&spec);
    let top = spec.cache_levels();
    for anchor_level in 1..=top {
        for j in 0..t.caches_at(anchor_level) {
            let anchor = CacheId::new(anchor_level, j);
            for level in 1..=anchor_level {
                assert_eq!(
                    t.caches_under(anchor, level).len(),
                    t.count_caches_under(anchor, level),
                    "anchor L{anchor_level}#{j} level {level}"
                );
            }
        }
    }
}
