//! Coerce a *detected* host cache topology into a valid [`MachineSpec`].
//!
//! The cache-witness simulator backend replays a kernel's recorded
//! access trace against the machine it actually ran on, but real
//! topologies (as probed from sysfs) routinely violate the HM model's
//! validation rules: capacities are not multiples of the model's word
//! blocks, an L2 shared by 2 cores may be smaller than `2·C_1`, and
//! hybrid parts report L1s with odd sharing. This adapter rounds a raw
//! `(capacity_words, fanout)` list into the nearest *valid* spec:
//!
//! * every level gets the model's canonical 8-word block (64 bytes —
//!   the line size of every mainstream host);
//! * capacities round **down** to a block multiple (never credit the
//!   simulated cache with words the real one lacks), floored at one
//!   block;
//! * the L1 fanout is forced to 1 (the model's private-L1 axiom) and
//!   zero fanouts to 1;
//! * the inclusion constraint `C_i ≥ p_i · C_{i-1}` is repaired by
//!   **raising** `C_i` — the model requires room to hold every child's
//!   working set, and raising the outer capacity errs toward *fewer*
//!   simulated transfers at the levels whose bounds we gate on inner
//!   caches, keeping the witness conservative where it is compared.
//!
//! Only [`SpecError::NoLevels`] escapes: any non-empty detection maps
//! to some valid machine.

use crate::spec::{LevelSpec, MachineSpec, SpecError};

/// The canonical block size used for host-mapped specs, in words.
pub const HOST_BLOCK_WORDS: usize = 8;

/// Map a detected hierarchy — `(capacity_words, fanout)` per level, L1
/// first — to a valid [`MachineSpec`]. See the module docs for the
/// coercion rules.
pub fn spec_from_host(levels: &[(usize, usize)]) -> Result<MachineSpec, SpecError> {
    if levels.is_empty() {
        return Err(SpecError::NoLevels);
    }
    let mut out: Vec<LevelSpec> = Vec::with_capacity(levels.len());
    for (idx, &(capacity, fanout)) in levels.iter().enumerate() {
        let fanout = if idx == 0 { 1 } else { fanout.max(1) };
        let mut cap = (capacity / HOST_BLOCK_WORDS).max(1) * HOST_BLOCK_WORDS;
        if let Some(prev) = out.last() {
            cap = cap.max(fanout * prev.capacity);
        }
        out.push(LevelSpec::new(cap, HOST_BLOCK_WORDS, fanout));
    }
    MachineSpec::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_topology_maps_directly() {
        // A common desktop: 32 KiB L1 per core, 1 MiB L2 per core,
        // 32 MiB L3 over 8 cores (capacities in words).
        let spec = spec_from_host(&[(4096, 1), (131_072, 1), (4_194_304, 8)]).unwrap();
        assert_eq!(spec.cache_levels(), 3);
        assert_eq!(spec.cores(), 8);
        assert_eq!(spec.level(1).capacity, 4096);
        assert_eq!(spec.level(1).block, HOST_BLOCK_WORDS);
        assert_eq!(spec.level(3).capacity, 4_194_304);
        assert_eq!(spec.level(3).fanout, 8);
    }

    #[test]
    fn odd_capacities_round_down_to_blocks() {
        let spec = spec_from_host(&[(4099, 1), (131_075, 4)]).unwrap();
        assert_eq!(spec.level(1).capacity, 4096);
        assert_eq!(spec.level(2).capacity, 131_072);
    }

    #[test]
    fn tiny_capacity_floors_at_one_block() {
        let spec = spec_from_host(&[(3, 1)]).unwrap();
        assert_eq!(spec.level(1).capacity, HOST_BLOCK_WORDS);
    }

    #[test]
    fn l1_fanout_and_zero_fanouts_are_forced() {
        // Detected L1 "shared by 2" (SMT) and a zero fanout both repair.
        let spec = spec_from_host(&[(4096, 2), (65_536, 0)]).unwrap();
        assert_eq!(spec.level(1).fanout, 1);
        assert_eq!(spec.level(2).fanout, 1);
        assert_eq!(spec.cores(), 1);
    }

    #[test]
    fn inclusion_violation_raises_outer_capacity() {
        // An L2 shared by 8 cores but only 4x the L1 size: C_2 must be
        // raised to 8 * C_1.
        let spec = spec_from_host(&[(4096, 1), (16_384, 8)]).unwrap();
        assert_eq!(spec.level(2).capacity, 8 * 4096);
        assert_eq!(spec.cores(), 8);
    }

    #[test]
    fn empty_detection_is_the_only_error() {
        assert_eq!(spec_from_host(&[]), Err(SpecError::NoLevels));
    }

    #[test]
    fn non_power_of_two_capacities_survive_unrounded() {
        // 48 KiB L1s (Raptor Lake) and a 1.25 MiB L2 are not powers of
        // two; the adapter must keep them at the block multiple, not
        // round to a power of two.
        let spec = spec_from_host(&[(6144, 1), (163_840, 2)]).unwrap();
        assert_eq!(spec.level(1).capacity, 6144);
        assert_eq!(spec.level(2).capacity, 163_840);
        assert_eq!(spec.cores(), 2);
        // A capacity that is not even a block multiple rounds *down*.
        let spec = spec_from_host(&[(6004, 1)]).unwrap();
        assert_eq!(spec.level(1).capacity, 6000);
    }

    #[test]
    fn single_level_hierarchy_is_a_one_core_machine() {
        // Some container sandboxes expose only one cache index.
        let spec = spec_from_host(&[(4096, 1)]).unwrap();
        assert_eq!(spec.cache_levels(), 1);
        assert_eq!(spec.cores(), 1);
        assert_eq!(spec.level(1).capacity, 4096);
        assert_eq!(spec.level(1).block, HOST_BLOCK_WORDS);
    }

    #[test]
    fn missing_sysfs_fields_zeroed_out_still_map() {
        // A probe with unreadable `size`/`shared_cpu_list` files hands
        // us zeros; every zero must repair to a valid level rather
        // than error or produce a degenerate spec.
        let spec = spec_from_host(&[(0, 0)]).unwrap();
        assert_eq!(spec.level(1).capacity, HOST_BLOCK_WORDS);
        assert_eq!(spec.level(1).fanout, 1);
        // A zero-capacity outer level under a real L1 must still honour
        // inclusion: it is raised to fanout * C_1, not floored at one
        // block.
        let spec = spec_from_host(&[(4096, 1), (0, 8)]).unwrap();
        assert_eq!(spec.level(2).capacity, 8 * 4096);
        assert_eq!(spec.cores(), 8);
    }

    #[test]
    fn outer_level_smaller_than_inner_is_raised() {
        // Exclusive-cache hosts can report an L2 smaller than the L1
        // below it; inclusion repair raises it even at fanout 1.
        let spec = spec_from_host(&[(4096, 1), (1024, 1)]).unwrap();
        assert_eq!(spec.level(2).capacity, 4096);
    }
}
