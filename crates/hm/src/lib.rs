//! # hm-model — the HM multicore machine model
//!
//! This crate implements the *hierarchical multi-level multicore* (HM) model
//! of Chowdhury, Silvestri, Blakeley and Ramachandran (IPDPS 2010), §II.
//!
//! An HM machine with `h` levels consists of `p` cores under a tree of
//! caches: level-`i` (for `1 ≤ i ≤ h-1`) has `q_i` caches, each of size
//! `C_i` words with block size `B_i` words, shared by `p_i` level-`(i-1)`
//! caches (with the convention `p_1 = 1`: private L1s). Level `h` is an
//! arbitrarily large shared memory.
//!
//! The crate provides:
//!
//! * [`MachineSpec`] — a validated description of the hierarchy
//!   (sizes, block lengths, fanouts) with the paper's constraints checked
//!   (`C_i ≥ c_i · p_i · C_{i-1}`, tall caches, power-of-two blocks).
//! * [`Topology`] — the derived tree: cache instances per level, the
//!   *shadow* of each cache (the contiguous range of cores below it,
//!   cf. Fig. 1), and core→cache paths.
//! * [`LruCache`] — a fully-associative LRU cache over block ids, the
//!   ideal-cache convention used throughout the cache-oblivious literature
//!   the paper builds on.
//! * [`CacheSystem`] — the full simulator: every memory access by a core is
//!   probed at **each** level independently (each level-`i` cache models an
//!   LRU cache of size `C_i` observing the access stream of the cores in
//!   its shadow, which is exactly how the paper's per-level bounds are
//!   stated), and per-cache hit/miss/write-back counters are maintained.
//! * [`Metrics`] — per-level summaries, in particular the model's *cache
//!   complexity*: the maximum number of block transfers into/out of any
//!   single level-`i` cache.
//!
//! The scheduler and the virtual-time execution engine live in `mo-core`;
//! this crate is purely the machine.
//!
//! ```
//! use hm_model::{MachineSpec, CacheSystem};
//!
//! // A 3-level machine: 4 cores with 1 KiW private L1s (block 8 words)
//! // under one 64 KiW shared L2 (block 32 words).
//! let spec = MachineSpec::three_level(4, 1 << 10, 8, 1 << 16, 32).unwrap();
//! let mut sys = CacheSystem::new(&spec);
//! for w in 0..1024u64 {
//!     sys.read(0, w);
//! }
//! // A pure scan misses once per block at L1.
//! assert_eq!(sys.metrics().cache(1, 0).misses, 1024 / 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod hostmap;
mod lru;
mod metrics;
mod spec;
mod system;
mod topology;

pub use hostmap::{spec_from_host, HOST_BLOCK_WORDS};
pub use lru::{LruCache, Probe};
pub use metrics::{CacheCounters, LevelSummary, Metrics};
pub use spec::{LevelSpec, MachineSpec, SpecError};
pub use system::{AccessKind, CacheSystem};
pub use topology::{CacheId, Shadow, Topology};

/// Machine word index in the simulated flat address space.
pub type Addr = u64;

/// Identifier of a core, `0 ≤ core < p`.
pub type CoreId = usize;

/// A cache level, `1 ≤ level ≤ h-1`. Level 0 denotes the cores themselves
/// and level `h` the shared memory; neither has cache instances.
pub type Level = usize;
