//! Machine specifications: the `(C_i, B_i, p_i)` parameters of the HM model.

use std::fmt;

/// Parameters of one cache level of the HM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSpec {
    /// Cache size `C_i` in words.
    pub capacity: usize,
    /// Block (cache line) size `B_i` in words. Must be a power of two.
    pub block: usize,
    /// Fanout `p_i`: the number of level-`(i-1)` units (cores for level 1,
    /// caches otherwise) that share one cache at this level. The paper fixes
    /// `p_1 = 1` (private L1s); we keep the field for uniformity and
    /// validate it.
    pub fanout: usize,
}

impl LevelSpec {
    /// Convenience constructor.
    pub const fn new(capacity: usize, block: usize, fanout: usize) -> Self {
        Self {
            capacity,
            block,
            fanout,
        }
    }

    /// Number of blocks this cache can hold.
    pub const fn blocks(&self) -> usize {
        self.capacity / self.block
    }

    /// Whether the cache is *tall* (`C_i ≥ B_i²`), the standing assumption
    /// of Theorems 1–3.
    pub const fn is_tall(&self) -> bool {
        self.capacity >= self.block * self.block
    }
}

/// Errors returned by [`MachineSpec`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The hierarchy has no cache levels at all (`h < 2`).
    NoLevels,
    /// `p_1` must be 1: each core has a private level-1 cache.
    PrivateL1 {
        /// The offending fanout value.
        fanout: usize,
    },
    /// Some fanout is zero.
    ZeroFanout {
        /// 1-based cache level.
        level: usize,
    },
    /// A block size is zero or not a power of two.
    BadBlock {
        /// 1-based cache level.
        level: usize,
        /// The offending block size.
        block: usize,
    },
    /// A capacity is zero or not a multiple of the block size.
    BadCapacity {
        /// 1-based cache level.
        level: usize,
        /// The offending capacity.
        capacity: usize,
    },
    /// Block sizes must be non-decreasing with the level.
    BlockNotMonotone {
        /// 1-based cache level at which monotonicity is violated.
        level: usize,
    },
    /// The paper requires `C_i ≥ c_i · p_i · C_{i-1}` with `c_i ≥ 1`;
    /// we check the necessary condition `C_i ≥ p_i · C_{i-1}`.
    CapacityConstraint {
        /// 1-based cache level at which the constraint fails.
        level: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoLevels => write!(f, "machine must have at least one cache level"),
            SpecError::PrivateL1 { fanout } => {
                write!(f, "p_1 must be 1 (private L1 caches), got {fanout}")
            }
            SpecError::ZeroFanout { level } => write!(f, "fanout p_{level} must be positive"),
            SpecError::BadBlock { level, block } => {
                write!(
                    f,
                    "block size B_{level} = {block} must be a positive power of two"
                )
            }
            SpecError::BadCapacity { level, capacity } => write!(
                f,
                "capacity C_{level} = {capacity} must be positive and a multiple of B_{level}"
            ),
            SpecError::BlockNotMonotone { level } => {
                write!(
                    f,
                    "block sizes must be non-decreasing: B_{level} < B_{}",
                    level - 1
                )
            }
            SpecError::CapacityConstraint { level } => {
                write!(
                    f,
                    "capacity constraint C_{level} >= p_{level} * C_{} violated",
                    level - 1
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A validated HM machine description.
///
/// `levels[i]` holds the parameters of cache level `i+1` (1-based level in
/// paper notation). The shared memory at level `h` is implicit and
/// unbounded. The total number of cores is `p = ∏ p_i` taken over levels
/// `2..h-1` (with `p_1 = 1` and a single cache at the topmost cache level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    levels: Vec<LevelSpec>,
}

impl MachineSpec {
    /// Build and validate a machine from per-level parameters.
    ///
    /// `levels[0]` is L1 and must have `fanout == 1`. There is exactly one
    /// cache at the topmost level (`q_{h-1} = 1`, the paper's `p_h = 1`
    /// convention), so the number of cores equals the product of fanouts.
    pub fn new(levels: Vec<LevelSpec>) -> Result<Self, SpecError> {
        if levels.is_empty() {
            return Err(SpecError::NoLevels);
        }
        if levels[0].fanout != 1 {
            return Err(SpecError::PrivateL1 {
                fanout: levels[0].fanout,
            });
        }
        for (idx, l) in levels.iter().enumerate() {
            let level = idx + 1;
            if l.fanout == 0 {
                return Err(SpecError::ZeroFanout { level });
            }
            if l.block == 0 || !l.block.is_power_of_two() {
                return Err(SpecError::BadBlock {
                    level,
                    block: l.block,
                });
            }
            if l.capacity == 0 || l.capacity % l.block != 0 {
                return Err(SpecError::BadCapacity {
                    level,
                    capacity: l.capacity,
                });
            }
            if idx > 0 {
                if l.block < levels[idx - 1].block {
                    return Err(SpecError::BlockNotMonotone { level });
                }
                if l.capacity < l.fanout * levels[idx - 1].capacity {
                    return Err(SpecError::CapacityConstraint { level });
                }
            }
        }
        Ok(Self { levels })
    }

    /// A machine with `p` cores, each with a private cache of `c1` words
    /// (block `b1`), and a single shared cache of `c2` words (block `b2`):
    /// the 3-level multicore model of Blelloch et al. that HM generalizes.
    pub fn three_level(
        p: usize,
        c1: usize,
        b1: usize,
        c2: usize,
        b2: usize,
    ) -> Result<Self, SpecError> {
        Self::new(vec![LevelSpec::new(c1, b1, 1), LevelSpec::new(c2, b2, p)])
    }

    /// A machine with only private caches (`h = 2`): the simple multicore
    /// model of Arge et al. / Cole–Ramachandran.
    pub fn private_only(p: usize, c1: usize, b1: usize) -> Result<Self, SpecError> {
        // A single shared top-level cache is still required by the model
        // shape (the top two levels form a sequential hierarchy); we give it
        // the minimum legal size so it is effectively transparent.
        Self::new(vec![
            LevelSpec::new(c1, b1, 1),
            LevelSpec::new(c1 * p.max(1) * 4, b1, p),
        ])
    }

    /// The `h = 5` example machine of Fig. 1: private L1s, L2s shared by
    /// pairs of cores, L3s shared by pairs of L2s, one L4 over all L3s.
    ///
    /// Sizes follow the paper's constraint `C_i ≥ p_i · C_{i-1}` with a
    /// comfortable factor of 4 so that space-bound scheduling has slack.
    pub fn example_h5() -> Self {
        Self::new(vec![
            LevelSpec::new(1 << 10, 8, 1),  // L1: 1 KiW, 8-word lines, private
            LevelSpec::new(1 << 13, 16, 2), // L2: 8 KiW, shared by 2 cores
            LevelSpec::new(1 << 16, 32, 2), // L3: 64 KiW, shared by 2 L2s
            LevelSpec::new(1 << 19, 64, 2), // L4: 512 KiW, shared by 2 L3s
        ])
        .expect("example machine is valid")
    }

    /// Number of cache levels `h - 1`.
    pub fn cache_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of levels `h` including the shared memory.
    pub fn h(&self) -> usize {
        self.levels.len() + 1
    }

    /// Total number of cores `p`.
    pub fn cores(&self) -> usize {
        self.levels.iter().map(|l| l.fanout).product()
    }

    /// The parameters of cache level `i` (1-based, `1 ≤ i ≤ h-1`).
    pub fn level(&self, i: usize) -> &LevelSpec {
        assert!(i >= 1 && i <= self.levels.len(), "level {i} out of range");
        &self.levels[i - 1]
    }

    /// All level specs, L1 first.
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Number of caches `q_i` at level `i`.
    pub fn caches_at(&self, i: usize) -> usize {
        assert!(i >= 1 && i <= self.levels.len(), "level {i} out of range");
        self.levels[i..].iter().map(|l| l.fanout).product()
    }

    /// Number of cores `p'_i = p / q_i` subtended by one level-`i` cache.
    pub fn cores_under(&self, i: usize) -> usize {
        assert!(i >= 1 && i <= self.levels.len(), "level {i} out of range");
        self.levels[..i].iter().map(|l| l.fanout).product()
    }

    /// Whether every cache level is tall (`C_i ≥ B_i²`).
    pub fn all_tall(&self) -> bool {
        self.levels.iter().all(LevelSpec::is_tall)
    }

    /// The smallest cache level whose capacity is at least `words`, or
    /// `None` if only the shared memory is big enough. This is the level an
    /// SB-scheduled task of that space bound anchors at.
    pub fn smallest_level_fitting(&self, words: usize) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| l.capacity >= words)
            .map(|idx| idx + 1)
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "HM machine: h = {}, p = {} cores",
            self.h(),
            self.cores()
        )?;
        for (idx, l) in self.levels.iter().enumerate() {
            let i = idx + 1;
            writeln!(
                f,
                "  L{i}: q_{i} = {:>4} caches x {:>9} words, B_{i} = {:>3}, p_{i} = {}, p'_{i} = {}",
                self.caches_at(i),
                l.capacity,
                l.block,
                l.fanout,
                self.cores_under(i),
            )?;
        }
        write!(f, "  L{}: shared memory (unbounded)", self.h())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_level_shape() {
        let m = MachineSpec::three_level(8, 1 << 10, 8, 1 << 16, 32).unwrap();
        assert_eq!(m.h(), 3);
        assert_eq!(m.cores(), 8);
        assert_eq!(m.caches_at(1), 8);
        assert_eq!(m.caches_at(2), 1);
        assert_eq!(m.cores_under(1), 1);
        assert_eq!(m.cores_under(2), 8);
    }

    #[test]
    fn example_h5_matches_figure() {
        let m = MachineSpec::example_h5();
        assert_eq!(m.h(), 5);
        assert_eq!(m.cores(), 8);
        assert_eq!(m.caches_at(1), 8);
        assert_eq!(m.caches_at(2), 4);
        assert_eq!(m.caches_at(3), 2);
        assert_eq!(m.caches_at(4), 1);
        assert!(m.all_tall());
    }

    #[test]
    fn rejects_shared_l1() {
        let err = MachineSpec::new(vec![LevelSpec::new(1024, 8, 2)]).unwrap_err();
        assert_eq!(err, SpecError::PrivateL1 { fanout: 2 });
    }

    #[test]
    fn rejects_non_power_of_two_block() {
        let err = MachineSpec::new(vec![LevelSpec::new(1024, 7, 1)]).unwrap_err();
        assert!(matches!(err, SpecError::BadBlock { level: 1, block: 7 }));
    }

    #[test]
    fn rejects_capacity_below_children() {
        // L2 smaller than the 4 L1s it covers.
        let err = MachineSpec::new(vec![LevelSpec::new(1024, 8, 1), LevelSpec::new(2048, 8, 4)])
            .unwrap_err();
        assert!(matches!(err, SpecError::CapacityConstraint { level: 2 }));
    }

    #[test]
    fn rejects_shrinking_blocks() {
        let err = MachineSpec::new(vec![
            LevelSpec::new(1024, 16, 1),
            LevelSpec::new(1 << 16, 8, 4),
        ])
        .unwrap_err();
        assert!(matches!(err, SpecError::BlockNotMonotone { level: 2 }));
    }

    #[test]
    fn rejects_capacity_not_block_multiple() {
        let err = MachineSpec::new(vec![LevelSpec::new(1023, 8, 1)]).unwrap_err();
        assert!(matches!(err, SpecError::BadCapacity { level: 1, .. }));
    }

    #[test]
    fn smallest_level_fitting_walks_up() {
        let m = MachineSpec::example_h5();
        assert_eq!(m.smallest_level_fitting(100), Some(1));
        assert_eq!(m.smallest_level_fitting(1 << 10), Some(1));
        assert_eq!(m.smallest_level_fitting((1 << 10) + 1), Some(2));
        assert_eq!(m.smallest_level_fitting(1 << 19), Some(4));
        assert_eq!(m.smallest_level_fitting((1 << 19) + 1), None);
    }

    #[test]
    fn display_is_humane() {
        let s = MachineSpec::example_h5().to_string();
        assert!(s.contains("h = 5"));
        assert!(s.contains("p = 8 cores"));
        assert!(s.contains("shared memory"));
    }

    #[test]
    fn private_only_is_effectively_two_level() {
        let m = MachineSpec::private_only(4, 512, 8).unwrap();
        assert_eq!(m.cores(), 4);
        assert_eq!(m.caches_at(1), 4);
    }
}
