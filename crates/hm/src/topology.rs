//! The derived cache tree: instances, shadows, and core→cache paths.

use crate::{CoreId, Level, MachineSpec};

/// Identifies one cache instance: `(level, index)` with
/// `0 ≤ index < q_level`. Caches at each level are numbered left to right,
/// so index `j` at level `i` covers cores `[j·p'_i, (j+1)·p'_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheId {
    /// Cache level, 1-based.
    pub level: Level,
    /// Index within the level, left to right.
    pub index: usize,
}

impl CacheId {
    /// Convenience constructor.
    pub const fn new(level: Level, index: usize) -> Self {
        Self { level, index }
    }
}

/// The *shadow* of a cache (paper §III, Fig. 1): the contiguous range of
/// cores that share it, `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shadow {
    /// First core in the shadow.
    pub lo: CoreId,
    /// One past the last core in the shadow.
    pub hi: CoreId,
}

impl Shadow {
    /// Number of cores in the shadow (`p'_i` for a level-`i` cache).
    pub const fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the shadow is empty (never true for a valid topology).
    pub const fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    /// Whether `core` lies under this shadow.
    pub const fn contains(&self, core: CoreId) -> bool {
        core >= self.lo && core < self.hi
    }

    /// Whether `other` is fully contained in this shadow.
    pub const fn covers(&self, other: &Shadow) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

/// Precomputed topology queries for a [`MachineSpec`].
///
/// All sharing in the HM model is regular and contiguous, so every query is
/// O(1) arithmetic; this struct just caches the per-level constants.
#[derive(Debug, Clone)]
pub struct Topology {
    cores: usize,
    /// `cores_under[i-1] = p'_i` for cache level `i`.
    cores_under: Vec<usize>,
    /// `caches_at[i-1] = q_i` for cache level `i`.
    caches_at: Vec<usize>,
}

impl Topology {
    /// Derive the topology of `spec`.
    pub fn new(spec: &MachineSpec) -> Self {
        let levels = spec.cache_levels();
        Self {
            cores: spec.cores(),
            cores_under: (1..=levels).map(|i| spec.cores_under(i)).collect(),
            caches_at: (1..=levels).map(|i| spec.caches_at(i)).collect(),
        }
    }

    /// Total number of cores `p`.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of cache levels `h - 1`.
    pub fn cache_levels(&self) -> usize {
        self.cores_under.len()
    }

    /// Number of caches `q_i` at level `i`.
    pub fn caches_at(&self, level: Level) -> usize {
        self.caches_at[level - 1]
    }

    /// Number of cores `p'_i` under one level-`i` cache.
    pub fn cores_under(&self, level: Level) -> usize {
        self.cores_under[level - 1]
    }

    /// The level-`level` cache above `core`.
    pub fn cache_of(&self, core: CoreId, level: Level) -> CacheId {
        debug_assert!(core < self.cores);
        CacheId::new(level, core / self.cores_under[level - 1])
    }

    /// The path of caches above `core`, from L1 up to the top cache level.
    pub fn path(&self, core: CoreId) -> impl Iterator<Item = CacheId> + '_ {
        (1..=self.cache_levels()).map(move |l| self.cache_of(core, l))
    }

    /// The shadow of a cache: the contiguous core range sharing it.
    pub fn shadow(&self, cache: CacheId) -> Shadow {
        let span = self.cores_under[cache.level - 1];
        Shadow {
            lo: cache.index * span,
            hi: (cache.index + 1) * span,
        }
    }

    /// The parent of `cache` at the next level up, or `None` at the top.
    pub fn parent(&self, cache: CacheId) -> Option<CacheId> {
        if cache.level >= self.cache_levels() {
            return None;
        }
        let child_span = self.cores_under[cache.level - 1];
        let parent_span = self.cores_under[cache.level];
        Some(CacheId::new(
            cache.level + 1,
            cache.index * child_span / parent_span,
        ))
    }

    /// The children of `cache` one level down (cache ids), or an empty range
    /// for level-1 caches (whose children are cores).
    pub fn children(&self, cache: CacheId) -> Vec<CacheId> {
        if cache.level <= 1 {
            return Vec::new();
        }
        let shadow = self.shadow(cache);
        let child_span = self.cores_under[cache.level - 2];
        (shadow.lo / child_span..shadow.hi / child_span)
            .map(|j| CacheId::new(cache.level - 1, j))
            .collect()
    }

    /// The caches at `level` lying under the shadow of `anchor`
    /// (`level ≤ anchor.level`). Used by the SB and CGC⇒SB schedulers.
    pub fn caches_under(&self, anchor: CacheId, level: Level) -> Vec<CacheId> {
        debug_assert!(level >= 1 && level <= anchor.level);
        let shadow = self.shadow(anchor);
        let span = self.cores_under[level - 1];
        (shadow.lo / span..shadow.hi / span)
            .map(|j| CacheId::new(level, j))
            .collect()
    }

    /// Number of level-`level` caches under the shadow of `anchor`, without
    /// materializing them.
    pub fn count_caches_under(&self, anchor: CacheId, level: Level) -> usize {
        self.cores_under(anchor.level) / self.cores_under(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h5() -> Topology {
        Topology::new(&MachineSpec::example_h5())
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn shadows_partition_cores() {
        let t = h5();
        for level in 1..=t.cache_levels() {
            let mut covered = vec![false; t.cores()];
            for j in 0..t.caches_at(level) {
                let s = t.shadow(CacheId::new(level, j));
                assert_eq!(s.len(), t.cores_under(level));
                for c in s.lo..s.hi {
                    assert!(!covered[c], "core {c} covered twice at level {level}");
                    covered[c] = true;
                }
            }
            assert!(covered.iter().all(|&b| b));
        }
    }

    #[test]
    fn cache_of_is_consistent_with_shadow() {
        let t = h5();
        for core in 0..t.cores() {
            for level in 1..=t.cache_levels() {
                let c = t.cache_of(core, level);
                assert!(t.shadow(c).contains(core));
            }
        }
    }

    #[test]
    fn parent_shadow_covers_child_shadow() {
        let t = h5();
        for level in 1..t.cache_levels() {
            for j in 0..t.caches_at(level) {
                let c = CacheId::new(level, j);
                let p = t.parent(c).unwrap();
                assert!(t.shadow(p).covers(&t.shadow(c)));
            }
        }
        assert_eq!(t.parent(CacheId::new(t.cache_levels(), 0)), None);
    }

    #[test]
    fn children_invert_parent() {
        let t = h5();
        for level in 2..=t.cache_levels() {
            for j in 0..t.caches_at(level) {
                let c = CacheId::new(level, j);
                let kids = t.children(c);
                assert_eq!(kids.len(), 2, "fig-1 machine is binary above L1");
                for k in kids {
                    assert_eq!(t.parent(k), Some(c));
                }
            }
        }
    }

    #[test]
    fn caches_under_matches_figure_one_shading() {
        // In Fig. 1, an L3 cache's shadow covers 2 L2 caches and (here) 2
        // cores; check the generic query against the example machine.
        let t = h5();
        let l3 = CacheId::new(3, 1);
        assert_eq!(
            t.caches_under(l3, 2),
            vec![CacheId::new(2, 2), CacheId::new(2, 3)]
        );
        assert_eq!(t.caches_under(l3, 1).len(), 4);
        assert_eq!(t.count_caches_under(l3, 1), 4);
        assert_eq!(t.count_caches_under(l3, 3), 1);
    }

    #[test]
    fn path_is_monotone_in_level() {
        let t = h5();
        let path: Vec<_> = t.path(5).collect();
        assert_eq!(path.len(), 4);
        for (idx, c) in path.iter().enumerate() {
            assert_eq!(c.level, idx + 1);
            assert!(t.shadow(*c).contains(5));
        }
    }
}
