//! A fully-associative LRU cache over block ids (the ideal-cache model).
//!
//! Implemented as a hash map into a slab-backed intrusive doubly-linked
//! list, so that probe, promote, insert and evict are all O(1).

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    block: u64,
    prev: u32,
    next: u32,
    dirty: bool,
}

/// Outcome of an [`LruCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Block was resident.
    Hit,
    /// Block was not resident; it has been brought in. If the insertion
    /// evicted a dirty block, `writeback` is true (a block transfer *out*
    /// of the cache in the model's accounting).
    Miss {
        /// Whether a dirty block was evicted to make room.
        writeback: bool,
    },
}

/// A fully-associative LRU cache holding up to `capacity` blocks.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<u64, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
}

impl LruCache {
    /// Create an empty cache with room for `capacity` blocks
    /// (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache must hold at least one block");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no block is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `block` is currently resident (does not touch LRU order).
    pub fn contains(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    /// Access `block`; `write` marks it dirty. Returns hit/miss and whether
    /// a dirty eviction (write-back) occurred.
    pub fn access(&mut self, block: u64, write: bool) -> Probe {
        if let Some(&idx) = self.map.get(&block) {
            self.unlink(idx);
            self.push_front(idx);
            if write {
                self.nodes[idx as usize].dirty = true;
            }
            return Probe::Hit;
        }
        let mut writeback = false;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let node = self.nodes[victim as usize];
            writeback = node.dirty;
            self.map.remove(&node.block);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    block,
                    prev: NIL,
                    next: NIL,
                    dirty: write,
                };
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(Node {
                    block,
                    prev: NIL,
                    next: NIL,
                    dirty: write,
                });
                i
            }
        };
        self.map.insert(block, idx);
        self.push_front(idx);
        Probe::Miss { writeback }
    }

    /// Drop all resident blocks, returning the number that were dirty
    /// (write-backs the model would charge when flushing).
    pub fn flush(&mut self) -> u64 {
        let dirty = self.nodes_in_use().filter(|n| n.dirty).count() as u64;
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dirty
    }

    /// Resident blocks from most to least recently used (for tests and
    /// debugging; O(len)).
    pub fn blocks_mru_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            out.push(n.block);
            cur = n.next;
        }
        out
    }

    fn nodes_in_use(&self) -> impl Iterator<Item = &Node> {
        self.map.values().map(|&i| &self.nodes[i as usize])
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_then_hits() {
        let mut c = LruCache::new(4);
        for b in 0..4 {
            assert_eq!(c.access(b, false), Probe::Miss { writeback: false });
        }
        for b in 0..4 {
            assert_eq!(c.access(b, false), Probe::Hit);
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1, false);
        c.access(2, false);
        c.access(1, false); // 1 is now MRU
        assert_eq!(c.access(3, false), Probe::Miss { writeback: false }); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.blocks_mru_order(), vec![3, 1]);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = LruCache::new(1);
        c.access(7, true);
        assert_eq!(c.access(8, false), Probe::Miss { writeback: true });
        assert_eq!(c.access(9, false), Probe::Miss { writeback: false });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = LruCache::new(2);
        c.access(1, false);
        assert_eq!(c.access(1, true), Probe::Hit);
        c.access(2, false);
        // Evicting 1 must report a write-back even though it was inserted
        // clean and only dirtied by a later hit.
        assert_eq!(c.access(3, false), Probe::Miss { writeback: true });
    }

    #[test]
    fn flush_counts_dirty_blocks() {
        let mut c = LruCache::new(8);
        for b in 0..6 {
            c.access(b, b % 2 == 0);
        }
        assert_eq!(c.flush(), 3);
        assert!(c.is_empty());
        // Reusable after flush.
        assert_eq!(c.access(0, false), Probe::Miss { writeback: false });
    }

    #[test]
    fn sequential_scan_with_capacity_one() {
        let mut c = LruCache::new(1);
        for b in 0..100 {
            assert!(matches!(c.access(b, false), Probe::Miss { .. }));
            assert_eq!(c.access(b, false), Probe::Hit);
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn matches_naive_reference_on_random_trace() {
        // Cross-check against a straightforward Vec-based LRU.
        struct Naive {
            cap: usize,
            v: Vec<u64>, // MRU first
        }
        impl Naive {
            fn access(&mut self, b: u64) -> bool {
                if let Some(pos) = self.v.iter().position(|&x| x == b) {
                    self.v.remove(pos);
                    self.v.insert(0, b);
                    true
                } else {
                    if self.v.len() == self.cap {
                        self.v.pop();
                    }
                    self.v.insert(0, b);
                    false
                }
            }
        }
        let mut c = LruCache::new(16);
        let mut n = Naive {
            cap: 16,
            v: Vec::new(),
        };
        // Deterministic pseudo-random trace.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) % 48;
            let hit = matches!(c.access(b, false), Probe::Hit);
            assert_eq!(hit, n.access(b));
        }
        assert_eq!(c.blocks_mru_order(), n.v);
    }
}
