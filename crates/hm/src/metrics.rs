//! Per-cache counters and per-level summaries.

use crate::{Level, MachineSpec};

/// Counters for a single cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Accesses that found the block resident.
    pub hits: u64,
    /// Accesses that had to bring the block in (transfers *into* the cache).
    pub misses: u64,
    /// Dirty evictions (transfers *out of* the cache).
    pub writebacks: u64,
}

impl CacheCounters {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Block transfers into and out of the cache — the quantity the HM
    /// model's *cache complexity* bounds.
    pub fn transfers(&self) -> u64 {
        self.misses + self.writebacks
    }

    /// Miss rate in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }
}

/// Summary of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelSummary {
    /// Maximum misses over the `q_i` caches of the level — the paper's
    /// cache complexity `Q_i`.
    pub max_misses: u64,
    /// Maximum transfers (misses + write-backs) over the level's caches.
    pub max_transfers: u64,
    /// Total misses over the level.
    pub total_misses: u64,
    /// Total accesses over the level.
    pub total_accesses: u64,
}

/// Metrics for a whole [`crate::CacheSystem`] run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// `per_cache[i-1][j]` is the counter set of cache `j` at level `i`.
    per_cache: Vec<Vec<CacheCounters>>,
}

impl Metrics {
    /// Fresh zeroed metrics for `spec`.
    pub fn new(spec: &MachineSpec) -> Self {
        let per_cache = (1..=spec.cache_levels())
            .map(|i| vec![CacheCounters::default(); spec.caches_at(i)])
            .collect();
        Self { per_cache }
    }

    /// Counters of cache `index` at `level`.
    pub fn cache(&self, level: Level, index: usize) -> &CacheCounters {
        &self.per_cache[level - 1][index]
    }

    pub(crate) fn cache_mut(&mut self, level: Level, index: usize) -> &mut CacheCounters {
        &mut self.per_cache[level - 1][index]
    }

    /// Number of cache levels covered.
    pub fn cache_levels(&self) -> usize {
        self.per_cache.len()
    }

    /// All counters at `level`.
    pub fn level_caches(&self, level: Level) -> &[CacheCounters] {
        &self.per_cache[level - 1]
    }

    /// Per-level summary.
    pub fn level(&self, level: Level) -> LevelSummary {
        let caches = &self.per_cache[level - 1];
        LevelSummary {
            max_misses: caches.iter().map(|c| c.misses).max().unwrap_or(0),
            max_transfers: caches.iter().map(|c| c.transfers()).max().unwrap_or(0),
            total_misses: caches.iter().map(|c| c.misses).sum(),
            total_accesses: caches.iter().map(|c| c.accesses()).sum(),
        }
    }

    /// The model's cache complexity at `level`: the maximum number of
    /// misses over any single level-`level` cache.
    pub fn cache_complexity(&self, level: Level) -> u64 {
        self.level(level).max_misses
    }

    /// Reset all counters to zero (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        for level in &mut self.per_cache {
            for c in level.iter_mut() {
                *c = CacheCounters::default();
            }
        }
    }

    /// Merge another run's metrics into this one (same machine shape).
    pub fn merge(&mut self, other: &Metrics) {
        assert_eq!(self.per_cache.len(), other.per_cache.len());
        for (mine, theirs) in self.per_cache.iter_mut().zip(&other.per_cache) {
            assert_eq!(mine.len(), theirs.len());
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.merge(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineSpec;

    #[test]
    fn summary_takes_max_over_instances() {
        let spec = MachineSpec::three_level(4, 1024, 8, 1 << 16, 32).unwrap();
        let mut m = Metrics::new(&spec);
        m.cache_mut(1, 0).misses = 10;
        m.cache_mut(1, 2).misses = 25;
        m.cache_mut(1, 2).writebacks = 5;
        let s = m.level(1);
        assert_eq!(s.max_misses, 25);
        assert_eq!(s.max_transfers, 30);
        assert_eq!(s.total_misses, 35);
        assert_eq!(m.cache_complexity(1), 25);
        assert_eq!(m.cache_complexity(2), 0);
    }

    #[test]
    fn miss_rate_handles_zero() {
        let c = CacheCounters::default();
        assert_eq!(c.miss_rate(), 0.0);
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            writebacks: 0,
        };
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let spec = MachineSpec::three_level(2, 1024, 8, 1 << 13, 8).unwrap();
        let mut a = Metrics::new(&spec);
        let mut b = Metrics::new(&spec);
        a.cache_mut(2, 0).hits = 7;
        b.cache_mut(2, 0).hits = 5;
        b.cache_mut(2, 0).misses = 2;
        a.merge(&b);
        assert_eq!(a.cache(2, 0).hits, 12);
        assert_eq!(a.cache(2, 0).misses, 2);
        a.reset();
        assert_eq!(a.cache(2, 0).accesses(), 0);
    }
}
