//! A catalog of realistic machine shapes for sweeps and examples.
//!
//! Word = 8 bytes throughout (the simulator is word-addressed), so a
//! 32 KiB L1 is 4096 words. The shapes are stylized versions of common
//! parts — good enough to show how the *same* recorded program behaves
//! across genuinely different hierarchies, which is the paper's pitch.

use crate::{LevelSpec, MachineSpec};

/// A desktop Xeon-ish part: 16 cores, private L1 and L2, one big shared
/// L3 (`h = 4`).
pub fn xeon_like() -> MachineSpec {
    MachineSpec::new(vec![
        LevelSpec::new(4 << 10, 8, 1),   // L1: 32 KiB, 64 B lines
        LevelSpec::new(128 << 10, 8, 1), // L2: 1 MiB, private
        LevelSpec::new(4 << 20, 16, 16), // L3: 32 MiB shared by 16 cores
    ])
    .expect("xeon_like is valid")
}

/// A big.LITTLE-ish part: 8 cores in 2 clusters of 4, per-cluster L2,
/// shared system-level cache (`h = 4`).
pub fn m1_like() -> MachineSpec {
    MachineSpec::new(vec![
        LevelSpec::new(16 << 10, 16, 1), // L1: 128 KiB, 128 B lines
        LevelSpec::new(1 << 20, 16, 4),  // L2: 8 MiB per 4-core cluster
        LevelSpec::new(4 << 20, 16, 2),  // SLC: 32 MiB
    ])
    .expect("m1_like is valid")
}

/// A chiplet server-ish part: 32 cores in 4 CCX-ish groups (`h = 5`).
pub fn epyc_like() -> MachineSpec {
    MachineSpec::new(vec![
        LevelSpec::new(4 << 10, 8, 1),   // L1
        LevelSpec::new(64 << 10, 8, 1),  // L2 private
        LevelSpec::new(4 << 20, 8, 8),   // L3 per 8-core CCX
        LevelSpec::new(32 << 20, 16, 4), // memory-side cache over 4 CCX
    ])
    .expect("epyc_like is valid")
}

/// Every catalog machine with a label (includes the Fig. 1 example).
pub fn all() -> Vec<(&'static str, MachineSpec)> {
    vec![
        ("fig1_h5", MachineSpec::example_h5()),
        ("xeon_like", xeon_like()),
        ("m1_like", m1_like()),
        ("epyc_like", epyc_like()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_machines_are_valid_and_tall() {
        for (name, m) in all() {
            assert!(m.cores() >= 8, "{name}");
            assert!(m.all_tall(), "{name} must have tall caches");
            // The paper's core-count ceiling holds.
            let k = m.level(m.cache_levels()).capacity / m.level(1).capacity;
            assert!(m.cores() <= k, "{name}: p exceeds C_(h-1)/C_1");
        }
    }

    #[test]
    fn shapes_match_their_descriptions() {
        assert_eq!(xeon_like().cores(), 16);
        assert_eq!(xeon_like().h(), 4);
        assert_eq!(m1_like().cores(), 8);
        assert_eq!(m1_like().caches_at(2), 2);
        assert_eq!(epyc_like().cores(), 32);
        assert_eq!(epyc_like().caches_at(3), 4);
        assert_eq!(epyc_like().h(), 5);
    }

    #[test]
    fn private_l2_levels_are_supported() {
        // xeon_like has fanout-1 L2s: q2 == q1 == p.
        let m = xeon_like();
        assert_eq!(m.caches_at(1), 16);
        assert_eq!(m.caches_at(2), 16);
        assert_eq!(m.cores_under(2), 1);
    }
}
