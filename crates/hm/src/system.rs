//! The assembled machine: one LRU cache per instance, fed by core accesses.

use std::collections::HashMap;

use crate::{Addr, CoreId, LruCache, MachineSpec, Metrics, Probe, Topology};

/// Read or write, for trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// The HM cache hierarchy simulator.
///
/// Each cache level is modeled *independently*, exactly as in the paper's
/// analysis: the level-`i` cache above a core is a fully-associative LRU
/// cache of `C_i / B_i` blocks observing every access issued by the cores in
/// its shadow. An access therefore probes one cache per level and the
/// per-level hit/miss outcomes are independent (no inclusion or exclusion
/// policy couples them).
///
/// In addition to the per-cache counters the system tracks *ping-ponging*
/// (paper §III, "technical point"): a write to a `B_1`-sized block whose
/// previous writer was a different core. Schedulers are expected to respect
/// block boundaries to keep this counter near zero; exposing it lets the
/// benches verify that CGC's `≥ B_1` segment rule actually pays off.
#[derive(Debug)]
pub struct CacheSystem {
    spec: MachineSpec,
    topo: Topology,
    /// `caches[i-1][j]` is cache `j` of level `i`.
    caches: Vec<Vec<LruCache>>,
    metrics: Metrics,
    /// Last writer of each `B_1` block, for the ping-pong counter.
    last_writer: HashMap<u64, CoreId>,
    pingpongs: u64,
}

impl CacheSystem {
    /// Build a cold machine for `spec`.
    pub fn new(spec: &MachineSpec) -> Self {
        let caches = (1..=spec.cache_levels())
            .map(|i| {
                let l = spec.level(i);
                (0..spec.caches_at(i))
                    .map(|_| LruCache::new(l.blocks()))
                    .collect()
            })
            .collect();
        Self {
            spec: spec.clone(),
            topo: Topology::new(spec),
            caches,
            metrics: Metrics::new(spec),
            last_writer: HashMap::new(),
            pingpongs: 0,
        }
    }

    /// The machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The derived topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Accumulated counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Count of inter-core write interleavings at `B_1` granularity.
    pub fn pingpongs(&self) -> u64 {
        self.pingpongs
    }

    /// Issue an access from `core` to word address `addr`.
    pub fn access(&mut self, core: CoreId, addr: Addr, kind: AccessKind) {
        debug_assert!(core < self.topo.cores(), "core {core} out of range");
        let write = kind == AccessKind::Write;
        for level in 1..=self.spec.cache_levels() {
            let block = addr / self.spec.level(level).block as u64;
            let id = self.topo.cache_of(core, level);
            let probe = self.caches[level - 1][id.index].access(block, write);
            let ctr = self.metrics.cache_mut(level, id.index);
            match probe {
                Probe::Hit => ctr.hits += 1,
                Probe::Miss { writeback } => {
                    ctr.misses += 1;
                    if writeback {
                        ctr.writebacks += 1;
                    }
                }
            }
        }
        if write {
            let b1 = addr / self.spec.level(1).block as u64;
            if let Some(&prev) = self.last_writer.get(&b1) {
                if prev != core {
                    self.pingpongs += 1;
                }
            }
            self.last_writer.insert(b1, core);
        }
    }

    /// Convenience: a read access.
    pub fn read(&mut self, core: CoreId, addr: Addr) {
        self.access(core, addr, AccessKind::Read);
    }

    /// Convenience: a write access.
    pub fn write(&mut self, core: CoreId, addr: Addr) {
        self.access(core, addr, AccessKind::Write);
    }

    /// Flush every cache, charging dirty write-backs, and reset the
    /// ping-pong writer map. Counters are preserved.
    pub fn flush(&mut self) {
        for level in 1..=self.spec.cache_levels() {
            for (j, cache) in self.caches[level - 1].iter_mut().enumerate() {
                let dirty = cache.flush();
                self.metrics.cache_mut(level, j).writebacks += dirty;
            }
        }
        self.last_writer.clear();
    }

    /// Zero all counters (cache contents are kept — useful to exclude a
    /// warm-up phase from measurement).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
        self.pingpongs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        // 4 cores, private 1 KiW L1 (B=8), one shared 64 KiW L2 (B=32).
        MachineSpec::three_level(4, 1 << 10, 8, 1 << 16, 32).unwrap()
    }

    #[test]
    fn scan_misses_once_per_block_per_level() {
        let mut sys = CacheSystem::new(&machine());
        let n = 4096u64;
        for w in 0..n {
            sys.read(0, w);
        }
        assert_eq!(sys.metrics().cache(1, 0).misses, n / 8);
        assert_eq!(sys.metrics().cache(2, 0).misses, n / 32);
        // Other cores' L1s untouched.
        assert_eq!(sys.metrics().cache(1, 1).accesses(), 0);
    }

    #[test]
    fn working_set_within_cache_incurs_only_cold_misses() {
        let mut sys = CacheSystem::new(&machine());
        let n = 512u64; // fits in the 1024-word L1
        for _round in 0..10 {
            for w in 0..n {
                sys.read(0, w);
            }
        }
        assert_eq!(sys.metrics().cache(1, 0).misses, n / 8);
        assert_eq!(sys.metrics().cache(1, 0).hits, 10 * n - n / 8);
    }

    #[test]
    fn shared_l2_sees_all_cores_private_l1_does_not() {
        let mut sys = CacheSystem::new(&machine());
        // Core 0 warms a region; core 1 then reads it.
        for w in 0..256u64 {
            sys.read(0, w);
        }
        for w in 0..256u64 {
            sys.read(1, w);
        }
        // Core 1 misses in its own L1...
        assert_eq!(sys.metrics().cache(1, 1).misses, 256 / 8);
        // ...but hits in the shared L2 that core 0 already warmed.
        assert_eq!(sys.metrics().cache(2, 0).misses, 256 / 32);
        assert_eq!(sys.metrics().cache(2, 0).hits, 2 * 256 - 256 / 32);
    }

    #[test]
    fn thrashing_beyond_capacity_misses_every_block_again() {
        let mut sys = CacheSystem::new(&machine());
        let c1 = 1u64 << 10;
        let n = 2 * c1; // twice the L1
        for _ in 0..3 {
            for w in 0..n {
                sys.read(0, w);
            }
        }
        // Cyclic scan over 2x capacity under LRU hits never.
        assert_eq!(sys.metrics().cache(1, 0).misses, 3 * n / 8);
    }

    #[test]
    fn pingpong_counts_interleaved_writers() {
        let mut sys = CacheSystem::new(&machine());
        sys.write(0, 0);
        sys.write(1, 1); // same B1 block, different core
        sys.write(0, 2); // and back
        sys.write(0, 3); // same writer: no ping-pong
        sys.write(1, 64); // different block entirely: no ping-pong
        assert_eq!(sys.pingpongs(), 2);
    }

    #[test]
    fn flush_charges_writebacks() {
        let mut sys = CacheSystem::new(&machine());
        for w in 0..64u64 {
            sys.write(0, w);
        }
        let before = sys.metrics().cache(1, 0).writebacks;
        sys.flush();
        let after = sys.metrics().cache(1, 0).writebacks;
        assert_eq!(after - before, 64 / 8);
        // After the flush everything misses again.
        sys.read(0, 0);
        assert_eq!(sys.metrics().cache(1, 0).misses, 64 / 8 + 1);
    }

    #[test]
    fn distinct_l1s_have_distinct_state() {
        let mut sys = CacheSystem::new(&machine());
        sys.read(0, 0);
        sys.read(3, 0);
        assert_eq!(sys.metrics().cache(1, 0).misses, 1);
        assert_eq!(sys.metrics().cache(1, 3).misses, 1);
        // L2 is shared: second access hits.
        assert_eq!(sys.metrics().cache(2, 0).misses, 1);
        assert_eq!(sys.metrics().cache(2, 0).hits, 1);
    }

    #[test]
    fn reset_metrics_keeps_cache_contents() {
        let mut sys = CacheSystem::new(&machine());
        for w in 0..128u64 {
            sys.read(0, w);
        }
        sys.reset_metrics();
        for w in 0..128u64 {
            sys.read(0, w);
        }
        // Still warm: zero misses after reset.
        assert_eq!(sys.metrics().cache(1, 0).misses, 0);
        assert_eq!(sys.metrics().cache(1, 0).hits, 128);
    }

    #[test]
    fn five_level_machine_counts_each_level() {
        let spec = MachineSpec::example_h5();
        let mut sys = CacheSystem::new(&spec);
        let n = 1u64 << 15;
        for w in 0..n {
            sys.read(0, w);
        }
        for level in 1..=4 {
            let b = spec.level(level).block as u64;
            let id = sys.topology().cache_of(0, level);
            assert_eq!(
                sys.metrics().cache(level, id.index).misses,
                n / b,
                "level {level}"
            );
        }
    }
}
