//! Transposition baselines: the naive column walk and the parallelized
//! recursive cache-oblivious transpose (\[1\], discussed under Fig. 2).

use mo_core::{Arr, ForkHint, Program, Recorder};

/// Naive transpose: `out[j][i] = a[i][j]` scanned in input order, so the
/// writes stride by `n` and miss on every block once `n > C/B`.
pub fn naive_transpose_program(data: &[u64], n: usize) -> (Program, Arr) {
    assert_eq!(data.len(), n * n);
    let mut h = None;
    let program = Recorder::record(2 * n * n, |rec| {
        let a = rec.alloc_init(data);
        let out = rec.alloc(n * n);
        rec.cgc_for(n * n, |rec, k| {
            let (i, j) = (k / n, k % n);
            let v = rec.read(a, i * n + j);
            rec.write(out, j * n + i, v);
        });
        h = Some(out);
    });
    (program, h.unwrap())
}

/// Parallel recursive cache-oblivious transpose: quadrant recursion with
/// SB forks. Matches MO-MT's cache bound but has `Θ(log n)` critical
/// pathlength (the comparison the paper makes below Fig. 2).
pub fn recursive_transpose_program(data: &[u64], n: usize) -> (Program, Arr) {
    assert!(n.is_power_of_two());
    assert_eq!(data.len(), n * n);
    #[allow(clippy::too_many_arguments)]
    fn rec_t(
        rec: &mut Recorder,
        a: Arr,
        out: Arr,
        n: usize,
        i0: usize,
        j0: usize,
        ilen: usize,
        jlen: usize,
    ) {
        if ilen * jlen <= 64 {
            for i in i0..i0 + ilen {
                for j in j0..j0 + jlen {
                    let v = rec.read(a, i * n + j);
                    rec.write(out, j * n + i, v);
                }
            }
            return;
        }
        // Split the larger dimension; the two halves are independent.
        if ilen >= jlen {
            let h = ilen / 2;
            rec.fork2(
                ForkHint::Sb,
                2 * h * jlen,
                move |r| rec_t(r, a, out, n, i0, j0, h, jlen),
                2 * (ilen - h) * jlen,
                move |r| rec_t(r, a, out, n, i0 + h, j0, ilen - h, jlen),
            );
        } else {
            let h = jlen / 2;
            rec.fork2(
                ForkHint::Sb,
                2 * ilen * h,
                move |r| rec_t(r, a, out, n, i0, j0, ilen, h),
                2 * ilen * (jlen - h),
                move |r| rec_t(r, a, out, n, i0, j0 + h, ilen, jlen - h),
            );
        }
    }
    let mut hh = None;
    let program = Recorder::record(2 * n * n, |rec| {
        let a = rec.alloc_init(data);
        let out = rec.alloc(n * n);
        rec_t(rec, a, out, n, 0, 0, n, n);
        hh = Some(out);
    });
    (program, hh.unwrap())
}

/// Real (wall-clock) naive transpose for Criterion.
pub fn naive_transpose(a: &[f64], out: &mut [f64], n: usize) {
    for i in 0..n {
        for j in 0..n {
            out[j * n + i] = a[i * n + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_model::MachineSpec;
    use mo_core::sched::{simulate, Policy};

    fn data(n: usize) -> Vec<u64> {
        (0..(n * n) as u64).collect()
    }

    fn check(prog: &Program, out: Arr, d: &[u64], n: usize) {
        let got = prog.slice(out);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(got[j * n + i], d[i * n + j]);
            }
        }
    }

    #[test]
    fn both_baselines_transpose_correctly() {
        let n = 32;
        let d = data(n);
        let (p1, o1) = naive_transpose_program(&d, n);
        check(&p1, o1, &d, n);
        let (p2, o2) = recursive_transpose_program(&d, n);
        check(&p2, o2, &d, n);
    }

    /// The naive transpose misses ~once per element at L1 once rows
    /// exceed the cache, i.e. ~B× worse than MO-MT.
    #[test]
    fn naive_transpose_thrashes() {
        let n = 128; // n*n = 16384 >> C1 = 1024
        let d = data(n);
        let (prog, _) = naive_transpose_program(&d, n);
        let spec = MachineSpec::three_level(1, 1 << 10, 8, 1 << 17, 32).unwrap();
        let r = simulate(&prog, &spec, Policy::Serial);
        // Writes stride n: every write misses. Reads scan: n²/B.
        let floor = (n * n) as u64;
        assert!(
            r.cache_complexity(1) >= floor,
            "expected thrashing: {} < {floor}",
            r.cache_complexity(1)
        );
    }

    /// The recursive transpose is cache-efficient but pays Θ(log n)
    /// parallel depth versus MO-MT's O(B₁).
    #[test]
    fn recursive_transpose_is_cache_efficient() {
        let n = 128;
        let d = data(n);
        let (prog, _) = recursive_transpose_program(&d, n);
        let spec = MachineSpec::three_level(4, 1 << 10, 8, 1 << 17, 32).unwrap();
        let r = simulate(&prog, &spec, Policy::Mo);
        let scan = 2 * (n * n) as u64 / 8;
        assert!(
            r.cache_complexity(1) < 2 * scan / 4 + 200,
            "misses {} vs ~scan/p {}",
            r.cache_complexity(1),
            scan / 4
        );
    }
}
