//! # mo-baselines — comparators for the oblivious algorithms
//!
//! Every experiment needs a baseline. This crate provides:
//!
//! * **naive** variants (cache-hostile): column-walk transposition,
//!   unblocked `ijk` matrix multiplication, serial pointer-chase list
//!   ranking, natural-order SpM-DV — recorded as [`mo_core::Program`]s so
//!   the HM simulator can put numbers on the paper's claimed gaps;
//! * **resource-aware** variants: tiled GEP matrix multiplication with an
//!   explicit tile parameter (the paper's "tiled I-GEP runs in
//!   `O(n³/p + n)` … but is not multicore-oblivious" comparator) and a
//!   parallelized recursive cache-oblivious transpose whose `Θ(log n)`
//!   critical path contrasts with MO-MT's `O(B₁)`;
//! * the **hint-ignoring scheduler** comparison of §II needs no extra
//!   code: replay any recorded MO program under
//!   [`mo_core::sched::Policy::Flat`] instead of `Policy::Mo`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod listrank;
pub mod matmul;
pub mod spmdv;
pub mod transpose;
