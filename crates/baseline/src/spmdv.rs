//! SpM-DV baseline: the same mesh matrix in its natural (row-major grid)
//! order, without the separator-tree reordering Theorem 4 requires.

use mo_core::{Arr, Program, Recorder};

/// A `side × side` mesh Laplacian in natural row-major grid order
/// (no separator reordering), as `(rows of (col, value))`.
pub fn natural_mesh(side: usize) -> Vec<Vec<(usize, f64)>> {
    let n = side * side;
    let mut rows = vec![Vec::new(); n];
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            let mut entries = vec![(i, 4.0)];
            let mut push = |xx: isize, yy: isize| {
                if xx >= 0 && yy >= 0 && (xx as usize) < side && (yy as usize) < side {
                    entries.push((yy as usize * side + xx as usize, -1.0));
                }
            };
            push(x as isize - 1, y as isize);
            push(x as isize + 1, y as isize);
            push(x as isize, y as isize - 1);
            push(x as isize, y as isize + 1);
            entries.sort_unstable_by_key(|e| e.0);
            rows[i] = entries;
        }
    }
    rows
}

/// Record a straightforward CSR SpM-DV over the given rows (one CGC loop
/// over the rows; no recursive anchoring).
pub fn flat_spmdv_program(rows: &[Vec<(usize, f64)>], x: &[f64]) -> (Program, Arr) {
    let n = rows.len();
    assert_eq!(x.len(), n);
    let mut av = Vec::new();
    let mut a0 = Vec::with_capacity(n + 1);
    for row in rows {
        a0.push(av.len() as u64 / 2);
        for &(j, v) in row {
            av.push(j as u64);
            av.push(v.to_bits());
        }
    }
    a0.push(av.len() as u64 / 2);
    // Root space bound: the four arrays it touches (A_v, A_0, x, y).
    let root_space = av.len() + (n + 1) + 2 * n;
    let mut h = None;
    let program = Recorder::record(root_space, |rec| {
        let av = rec.alloc_init(&av);
        let a0 = rec.alloc_init(&a0);
        let xs = rec.alloc_init_f64(x);
        let y = rec.alloc(n);
        rec.cgc_for(n, |rec, i| {
            let lo = rec.read(a0, i) as usize;
            let hi = rec.read(a0, i + 1) as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                let j = rec.read(av, 2 * k) as usize;
                let a = f64::from_bits(rec.read(av, 2 * k + 1));
                acc += a * rec.read_f64(xs, j);
            }
            rec.write_f64(y, i, acc);
        });
        h = Some(y);
    });
    (program, h.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_spmdv_is_correct() {
        let side = 8;
        let rows = natural_mesh(side);
        let n = side * side;
        let x: Vec<f64> = (0..n).map(|i| (i % 11) as f64 - 3.0).collect();
        let (prog, y) = flat_spmdv_program(&rows, &x);
        for (i, row) in rows.iter().enumerate() {
            let want: f64 = row.iter().map(|&(j, v)| v * x[j]).sum();
            assert!((prog.get_f64(y, i) - want).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn natural_mesh_matches_separator_mesh_spectrally() {
        // Same multiset of row degree patterns as the reordered matrix.
        let side = 6;
        let rows = natural_mesh(side);
        let mut degs: Vec<usize> = rows.iter().map(Vec::len).collect();
        degs.sort_unstable();
        let sep = mo_algorithms::separator::mesh_matrix(side);
        let mut degs2: Vec<usize> = sep.rows.iter().map(Vec::len).collect();
        degs2.sort_unstable();
        assert_eq!(degs, degs2);
    }
}
