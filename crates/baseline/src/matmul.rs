//! Matrix-multiplication baselines: the unblocked triple loop and the
//! resource-aware tiled GEP (the paper's non-oblivious comparator).

use mo_core::{spawn, Arr, ForkHint, Program, Recorder, Spawn};

/// Naive `ijk` multiplication, recorded. For `n > C`, the column walk
/// over `B` misses on almost every access: `Θ(n³)` level-1 misses versus
/// I-GEP's `Θ(n³/(B√C))`.
pub fn naive_matmul_program(a: &[f64], b: &[f64], n: usize) -> (Program, Arr) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut h = None;
    let program = Recorder::record(4 * n * n, |rec| {
        let ma = rec.alloc_init_f64(a);
        let mb = rec.alloc_init_f64(b);
        let mc = rec.alloc(n * n);
        rec.cgc_for(n, |rec, i| {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    let av = rec.read_f64(ma, i * n + k);
                    let bv = rec.read_f64(mb, k * n + j);
                    acc += av * bv;
                }
                rec.write_f64(mc, i * n + j, acc);
            }
        });
        h = Some(mc);
    });
    (program, h.unwrap())
}

/// Resource-aware tiled multiplication: `tile` is chosen from the machine
/// (e.g. `√(C₁/4)`), which is exactly what a multicore-oblivious
/// algorithm is not allowed to do. Cache-optimal when tuned — the
/// interesting experiment is how it degrades on a *different* machine
/// than it was tuned for, while I-GEP does not.
pub fn tiled_matmul_program(a: &[f64], b: &[f64], n: usize, tile: usize) -> (Program, Arr) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert!(tile >= 1 && n.is_multiple_of(tile));
    let nt = n / tile;
    let mut h = None;
    let program = Recorder::record(4 * n * n, |rec| {
        let ma = rec.alloc_init_f64(a);
        let mb = rec.alloc_init_f64(b);
        let mc = rec.alloc(n * n);
        // One parallel task per C-tile; each walks its k-tiles serially.
        // The *resident* working set per k-step is ~4·tile² (how `tile`
        // is tuned), but s(τ) declares the task's full footprint: its C
        // tile plus the row band of A and column band of B it sweeps.
        let children: Vec<Spawn<'_>> = (0..nt * nt)
            .map(|t| {
                let (ti, tj) = (t / nt, t % nt);
                spawn(tile * tile + 2 * tile * n, move |rec: &mut Recorder| {
                    for tk in 0..nt {
                        for i in ti * tile..(ti + 1) * tile {
                            for k in tk * tile..(tk + 1) * tile {
                                let av = rec.read_f64(ma, i * n + k);
                                for j in tj * tile..(tj + 1) * tile {
                                    let bv = rec.read_f64(mb, k * n + j);
                                    let cv = rec.read_f64(mc, i * n + j);
                                    rec.write_f64(mc, i * n + j, cv + av * bv);
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        rec.fork(ForkHint::CgcSb, children);
        h = Some(mc);
    });
    (program, h.unwrap())
}

/// Real (wall-clock) naive multiplication for Criterion.
pub fn naive_matmul(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_model::MachineSpec;
    use mo_core::sched::{simulate, Policy};

    fn rand_mat(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n * n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 40) as f64) / 65536.0
            })
            .collect()
    }

    fn reference(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        c
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn baselines_multiply_correctly() {
        let n = 16;
        let (a, b) = (rand_mat(n, 1), rand_mat(n, 2));
        let want = reference(&a, &b, n);
        let (p1, c1) = naive_matmul_program(&a, &b, n);
        let (p2, c2) = tiled_matmul_program(&a, &b, n, 4);
        for t in 0..n * n {
            assert!((p1.get_f64(c1, t) - want[t]).abs() < 1e-9);
            assert!((p2.get_f64(c2, t) - want[t]).abs() < 1e-9);
        }
    }

    /// Tiling beats the naive loop on cache misses by ~the tile factor.
    #[test]
    fn tiled_beats_naive_on_misses() {
        let n = 64;
        let (a, b) = (rand_mat(n, 3), rand_mat(n, 4));
        let spec = MachineSpec::three_level(1, 1 << 10, 8, 1 << 16, 32).unwrap();
        let (pn, _) = naive_matmul_program(&a, &b, n);
        let (pt, _) = tiled_matmul_program(&a, &b, n, 16); // 4·16² = 1024 = C1
        let rn = simulate(&pn, &spec, Policy::Serial);
        let rt = simulate(&pt, &spec, Policy::Serial);
        assert!(
            rt.cache_complexity(1) * 3 < rn.cache_complexity(1),
            "tiled {} vs naive {}",
            rt.cache_complexity(1),
            rn.cache_complexity(1)
        );
    }
}
