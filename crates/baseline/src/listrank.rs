//! List-ranking baseline: the serial pointer chase.
//!
//! On a randomly permuted list every `succ` hop is a random access, so
//! the chase incurs ~one miss per node at every level the list does not
//! fit — versus MO-LR whose sorts and scans are blocked.

use mo_core::{Arr, Program, Recorder};

/// Record the serial chase: find the head, then walk, assigning ranks.
pub fn serial_chase_program(succ: &[u64]) -> (Program, Arr) {
    let n = succ.len();
    let mut h = None;
    let program = Recorder::record(3 * n, |rec| {
        let s = rec.alloc_init(succ);
        let rank = rec.alloc(n);
        // Head = the node nobody points at.
        let seen = rec.alloc(n);
        for v in 0..n {
            let sv = rec.read(s, v);
            if (sv as usize) < n {
                rec.write(seen, sv as usize, 1);
            }
        }
        let mut head = usize::MAX;
        for v in 0..n {
            if rec.read(seen, v) == 0 {
                head = v;
            }
        }
        let mut v = head;
        let mut remaining = (n - 1) as u64;
        loop {
            rec.write(rank, v, remaining);
            let sv = rec.read(s, v);
            if sv as usize >= n {
                break;
            }
            remaining -= 1;
            v = sv as usize;
        }
        h = Some(rank);
    });
    (program, h.unwrap())
}

/// Plain (host) reference chase for wall-clock comparisons.
pub fn serial_chase(succ: &[u64]) -> Vec<u64> {
    let n = succ.len();
    let mut pred = vec![u64::MAX; n];
    for (v, &s) in succ.iter().enumerate() {
        if (s as usize) < n {
            pred[s as usize] = v as u64;
        }
    }
    let head = (0..n).find(|&v| pred[v] == u64::MAX).expect("head");
    let mut rank = vec![0u64; n];
    let mut v = head;
    let mut remaining = (n - 1) as u64;
    loop {
        rank[v] = remaining;
        if succ[v] as usize >= n {
            break;
        }
        remaining -= 1;
        v = succ[v] as usize;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_model::MachineSpec;
    use mo_core::sched::{simulate, Policy};

    fn random_list(n: usize, seed: u64) -> Vec<u64> {
        let mut order: Vec<usize> = (0..n).collect();
        let mut x = seed | 1;
        for i in (1..n).rev() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((x >> 33) as usize) % (i + 1);
            order.swap(i, j);
        }
        let mut succ = vec![n as u64; n];
        for w in order.windows(2) {
            succ[w[0]] = w[1] as u64;
        }
        succ
    }

    #[test]
    fn chase_ranks_correctly() {
        let succ = random_list(500, 7);
        let (prog, rank) = serial_chase_program(&succ);
        assert_eq!(prog.slice(rank), serial_chase(&succ).as_slice());
    }

    /// On a random list larger than the cache, the chase misses on a
    /// constant fraction of the hops.
    #[test]
    fn chase_misses_per_hop() {
        let n = 1 << 13; // 8192 nodes >> C1 = 1024 words
        let succ = random_list(n, 3);
        let (prog, _) = serial_chase_program(&succ);
        let spec = MachineSpec::three_level(1, 1 << 10, 8, 1 << 15, 8).unwrap();
        let r = simulate(&prog, &spec, Policy::Serial);
        // At least ~0.5 misses per node at L1 (succ + rank are both
        // random-order accesses).
        assert!(
            r.cache_complexity(1) as usize > n / 2,
            "misses {} for n {n}",
            r.cache_complexity(1)
        );
    }
}
