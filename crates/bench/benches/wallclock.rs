//! Wall-clock benches: the real-machine implementations
//! (`mo_algorithms::real` on the SB pool) against the naive baselines.
//!
//! On a laptop-class box absolute numbers are machine-specific; the
//! reproduction criterion is the *shape*: the oblivious kernels must not
//! lose to the naive ones as sizes cross cache boundaries, and should
//! win increasingly as they do.

use std::hint::black_box;

use mo_algorithms::real::{
    par_fft, par_floyd_warshall, par_matmul, par_prefix_sum, par_sort, par_transpose, serial_fft,
};
use mo_baselines::matmul::naive_matmul;
use mo_baselines::transpose::naive_transpose;
use mo_bench::bench;
use mo_core::rt::{HwHierarchy, SbPool};

fn pool() -> SbPool {
    SbPool::new(HwHierarchy::detect())
}

fn rand_f64(seed: u64, n: usize) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f64) / 65536.0
        })
        .collect()
}

fn bench_transpose() {
    println!("transpose");
    for n in [256usize, 512, 1024] {
        let a = rand_f64(1, n * n);
        let mut out = vec![0.0; n * n];
        bench(&format!("naive/{n}"), || {
            naive_transpose(black_box(&a), black_box(&mut out), n)
        });
        let p = pool();
        bench(&format!("mo_real/{n}"), || {
            par_transpose(&p, black_box(&a), black_box(&mut out), n)
        });
    }
}

fn bench_matmul() {
    println!("matmul");
    for n in [128usize, 256] {
        let a = rand_f64(2, n * n);
        let bm = rand_f64(3, n * n);
        let mut cm = vec![0.0; n * n];
        bench(&format!("naive_ijk/{n}"), || {
            cm.iter_mut().for_each(|v| *v = 0.0);
            naive_matmul(black_box(&mut cm), black_box(&a), black_box(&bm), n)
        });
        let p = pool();
        bench(&format!("mo_real/{n}"), || {
            cm.iter_mut().for_each(|v| *v = 0.0);
            par_matmul(&p, black_box(&mut cm), black_box(&a), black_box(&bm), n)
        });
    }
}

fn bench_floyd_warshall() {
    println!("floyd_warshall");
    for n in [128usize, 256] {
        let d0 = rand_f64(4, n * n);
        let p = pool();
        bench(&format!("mo_real/{n}"), || {
            let mut d = d0.clone();
            par_floyd_warshall(&p, black_box(&mut d), n);
            d
        });
        bench(&format!("serial_triple_loop/{n}"), || {
            let mut x = d0.clone();
            for k in 0..n {
                for i in 0..n {
                    let dik = x[i * n + k];
                    for j in 0..n {
                        let via = dik + x[k * n + j];
                        if via < x[i * n + j] {
                            x[i * n + j] = via;
                        }
                    }
                }
            }
            x
        });
    }
}

fn bench_sort() {
    println!("sort");
    for n in [1usize << 14, 1 << 17] {
        let mut x = 5u64;
        let data: Vec<u64> = (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x >> 20
            })
            .collect();
        bench(&format!("std_unstable/{n}"), || {
            let mut d = data.clone();
            d.sort_unstable();
            d
        });
        let p = pool();
        bench(&format!("mo_sample_sort/{n}"), || {
            let mut d = data.clone();
            par_sort(&p, &mut d);
            d
        });
    }
}

fn bench_prefix_sum() {
    println!("prefix_sum");
    for n in [1usize << 16, 1 << 20] {
        let data: Vec<u64> = (0..n as u64).collect();
        bench(&format!("serial/{n}"), || {
            let mut d = data.clone();
            let mut acc = 0u64;
            for v in d.iter_mut() {
                let nv = acc.wrapping_add(*v);
                *v = acc;
                acc = nv;
            }
            d
        });
        let p = pool();
        bench(&format!("mo_block_scan/{n}"), || {
            let mut d = data.clone();
            par_prefix_sum(&p, &mut d);
            d
        });
    }
}

fn bench_fft() {
    println!("fft");
    for n in [1usize << 14, 1 << 17] {
        let input: Vec<(f64, f64)> = (0..n)
            .map(|t| ((t as f64 * 0.3).sin(), (t as f64 * 0.7).cos()))
            .collect();
        bench(&format!("serial_iterative/{n}"), || {
            let mut d = input.clone();
            serial_fft(black_box(&mut d));
            d
        });
        let p = pool();
        bench(&format!("mo_real_recursive/{n}"), || {
            let mut d = input.clone();
            par_fft(&p, black_box(&mut d));
            d
        });
    }
}

fn main() {
    bench_transpose();
    bench_matmul();
    bench_floyd_warshall();
    bench_sort();
    bench_prefix_sum();
    bench_fft();
}
