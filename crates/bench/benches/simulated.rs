//! Benches of the *infrastructure* itself: record and replay throughput
//! of the simulator stack (useful when extending the scheduler —
//! regressions here make every experiment slower).

use std::hint::black_box;

use hm_model::{CacheSystem, MachineSpec};
use mo_bench::{bench, default_machine, rand_u64};
use mo_core::sched::{simulate, Policy};
use mo_core::Recorder;

fn bench_cache_system() {
    println!("cache_system_access");
    let spec = MachineSpec::example_h5();
    bench("sequential_1M", || {
        let mut sys = CacheSystem::new(&spec);
        for w in 0..1_000_000u64 {
            sys.read(black_box(0), w);
        }
        sys.metrics().cache_complexity(1)
    });
}

fn bench_record_replay() {
    println!("record_replay");
    let spec = default_machine();
    for n in [1usize << 12, 1 << 14] {
        let data = rand_u64(1, n, 1 << 30);
        bench(&format!("record_sort/{n}"), || {
            mo_algorithms::sort::sort_program(black_box(&data))
        });
        let sp = mo_algorithms::sort::sort_program(&data);
        bench(&format!("replay_sort_mo/{n}"), || {
            simulate(black_box(&sp.program), &spec, Policy::Mo)
        });
    }
}

fn bench_scheduler_overhead() {
    println!("scheduler");
    let spec = default_machine();
    // A fork-heavy, compute-light program stresses anchoring decisions.
    let prog = Recorder::record(1 << 20, |rec| {
        fn tree(rec: &mut Recorder, a: mo_core::Arr, lo: usize, hi: usize) {
            if hi - lo <= 8 {
                for k in lo..hi {
                    rec.write(a, k, 1);
                }
                return;
            }
            let mid = (lo + hi) / 2;
            rec.fork2(
                mo_core::ForkHint::Sb,
                hi - lo,
                move |r| tree(r, a, lo, mid),
                hi - lo,
                move |r| tree(r, a, mid, hi),
            );
        }
        let a = rec.alloc(1 << 14);
        tree(rec, a, 0, 1 << 14);
    });
    bench("replay_forky_16k", || {
        simulate(black_box(&prog), &spec, Policy::Mo)
    });
}

fn main() {
    bench_cache_system();
    bench_record_replay();
    bench_scheduler_overhead();
}
