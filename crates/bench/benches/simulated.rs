//! Criterion benches of the *infrastructure* itself: record and replay
//! throughput of the simulator stack (useful when extending the
//! scheduler — regressions here make every experiment slower).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hm_model::{CacheSystem, MachineSpec};
use mo_bench::{default_machine, rand_u64};
use mo_core::sched::{simulate, Policy};
use mo_core::Recorder;

fn bench_cache_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_system_access");
    let spec = MachineSpec::example_h5();
    g.bench_function("sequential_1M", |b| {
        b.iter(|| {
            let mut sys = CacheSystem::new(&spec);
            for w in 0..1_000_000u64 {
                sys.read(black_box(0), w);
            }
            sys.metrics().cache_complexity(1)
        });
    });
    g.finish();
}

fn bench_record_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_replay");
    g.sample_size(10);
    let spec = default_machine();
    for n in [1usize << 12, 1 << 14] {
        let data = rand_u64(1, n, 1 << 30);
        g.bench_with_input(BenchmarkId::new("record_sort", n), &n, |b, _| {
            b.iter(|| mo_algorithms::sort::sort_program(black_box(&data)));
        });
        let sp = mo_algorithms::sort::sort_program(&data);
        g.bench_with_input(BenchmarkId::new("replay_sort_mo", n), &n, |b, _| {
            b.iter(|| simulate(black_box(&sp.program), &spec, Policy::Mo));
        });
    }
    g.finish();
}

fn bench_scheduler_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    let spec = default_machine();
    // A fork-heavy, compute-light program stresses anchoring decisions.
    let prog = Recorder::record(1 << 20, |rec| {
        fn tree(rec: &mut Recorder, a: mo_core::Arr, lo: usize, hi: usize) {
            if hi - lo <= 8 {
                for k in lo..hi {
                    rec.write(a, k, 1);
                }
                return;
            }
            let mid = (lo + hi) / 2;
            rec.fork2(
                mo_core::ForkHint::Sb,
                hi - lo,
                move |r| tree(r, a, lo, mid),
                hi - lo,
                move |r| tree(r, a, mid, hi),
            );
        }
        let a = rec.alloc(1 << 14);
        tree(rec, a, 0, 1 << 14);
    });
    g.bench_function("replay_forky_16k", |b| {
        b.iter(|| simulate(black_box(&prog), &spec, Policy::Mo));
    });
    g.finish();
}

criterion_group!(benches, bench_cache_system, bench_record_replay, bench_scheduler_overhead);
criterion_main!(benches);
