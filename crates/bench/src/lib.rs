//! # mo-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 and
//! EXPERIMENTS.md for the index):
//!
//! ```text
//! cargo run --release -p mo-bench --bin table_model      # Fig. 1
//! cargo run --release -p mo-bench --bin table_transpose  # Fig. 2 / Thm 1
//! cargo run --release -p mo-bench --bin table_fft        # Fig. 3 / Thm 2
//! cargo run --release -p mo-bench --bin table_sort       # Thm 3
//! cargo run --release -p mo-bench --bin table_spmdv      # Fig. 4 / Thm 4
//! cargo run --release -p mo-bench --bin table_gep        # Fig. 5 / Thm 5
//! cargo run --release -p mo-bench --bin table_dstar      # Table I
//! cargo run --release -p mo-bench --bin table_ngep       # Thm 6
//! cargo run --release -p mo-bench --bin table_listrank   # Fig. 6 / Thm 7
//! cargo run --release -p mo-bench --bin table_cc         # Thm 8
//! cargo run --release -p mo-bench --bin table_nolr       # Thm 9
//! cargo run --release -p mo-bench --bin table_nocc       # Thm 10
//! cargo run --release -p mo-bench --bin table_slice_vs_mo # §II claim
//! cargo run --release -p mo-bench --bin table_summary    # Table II
//! ```
//!
//! Each prints measured quantities next to the paper's Θ(·) prediction
//! and the measured/predicted ratio; ratio *stability across scale* is
//! the reproduction criterion (absolute constants are implementation-
//! specific). Criterion wall-clock benches live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hm_model::MachineSpec;
use mo_core::sched::{simulate, Policy, RunReport};
use mo_core::Program;

/// The default machine sweep used by the table binaries: a 3-level
/// machine (8 cores, 1 KiW L1 / B₁ = 8, 256 KiW shared L2 / B₂ = 32) and
/// the 5-level Fig. 1 machine.
pub fn machines() -> Vec<(String, MachineSpec)> {
    vec![
        (
            "3-level p=8".to_string(),
            MachineSpec::three_level(8, 1 << 10, 8, 1 << 18, 32).unwrap(),
        ),
        ("Fig.1 h=5 p=8".to_string(), MachineSpec::example_h5()),
    ]
}

/// A smaller single-machine default for the heavier experiments.
pub fn default_machine() -> MachineSpec {
    MachineSpec::three_level(8, 1 << 10, 8, 1 << 18, 32).unwrap()
}

/// Run a recorded program under the MO policy.
pub fn run_mo(prog: &Program, spec: &MachineSpec) -> RunReport {
    simulate(prog, spec, Policy::Mo)
}

/// Run under the hint-ignoring greedy policy (§II comparator).
pub fn run_flat(prog: &Program, spec: &MachineSpec) -> RunReport {
    simulate(prog, spec, Policy::Flat)
}

/// Run serially (sequential cache-oblivious behaviour).
pub fn run_serial(prog: &Program, spec: &MachineSpec) -> RunReport {
    simulate(prog, spec, Policy::Serial)
}

/// Print a header for one experiment.
pub fn header(id: &str, what: &str) {
    println!("==================================================================");
    println!("{id}: {what}");
    println!("==================================================================");
}

/// One measured-vs-predicted row.
pub fn row(label: &str, measured: f64, predicted: f64) {
    let ratio = if predicted > 0.0 {
        measured / predicted
    } else {
        f64::NAN
    };
    println!(
        "  {label:<44} measured {measured:>12.0}  Θ-pred {predicted:>12.0}  ratio {ratio:>7.2}"
    );
}

/// A plain annotated value.
pub fn val(label: &str, v: f64) {
    println!("  {label:<44} {v:>12.2}");
}

/// A dependency-free micro-benchmark timer for the `benches/` targets
/// (the container has no criterion): adaptive iteration count, median of
/// several timed batches, `ns/iter` output.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) {
    use std::hint::black_box;
    use std::time::Instant;
    // Warm up and size the batch to ~25 ms.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().as_nanos().max(1);
    let iters = ((25_000_000 / once) as usize).clamp(1, 1 << 20);
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(t.elapsed().as_nanos() / iters as u128);
    }
    samples.sort_unstable();
    let med = samples[samples.len() / 2];
    println!("  {label:<44} {med:>12} ns/iter   ({iters} iters x 5)");
}

/// Deterministic pseudo-random u64s.
pub fn rand_u64(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % modulus
        })
        .collect()
}

/// Deterministic pseudo-random f64s in ~[0.25, 16).
pub fn rand_f64(seed: u64, n: usize) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f64) / 1024.0 + 0.25
        })
        .collect()
}

/// A random Floyd–Warshall instance with integer weights (exact in f64).
pub fn fw_instance(n: usize, seed: u64) -> Vec<f64> {
    let mut d = vec![f64::INFINITY; n * n];
    let mut x = seed | 1;
    for i in 0..n {
        d[i * n + i] = 0.0;
        for _ in 0..3 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = ((x >> 33) as usize) % n;
            let w = 1.0 + ((x >> 20) % 9) as f64;
            if i != j {
                d[i * n + j] = d[i * n + j].min(w);
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_are_valid() {
        for (name, spec) in machines() {
            assert!(spec.cores() >= 1, "{name}");
            assert!(spec.all_tall(), "{name}");
        }
    }

    #[test]
    fn rand_helpers_are_deterministic() {
        assert_eq!(rand_u64(1, 5, 100), rand_u64(1, 5, 100));
        assert_eq!(rand_f64(2, 5), rand_f64(2, 5));
    }
}
