//! F4/T4 — Fig. 4 & Theorem 4: MO-SpM-DV on separator-reordered meshes,
//! vs the natural-order baseline.

use mo_algorithms::separator::mesh_matrix;
use mo_algorithms::spmdv::spmdv_program;
use mo_baselines::spmdv::{flat_spmdv_program, natural_mesh};
use mo_bench::{header, row, run_mo, val};

fn main() {
    header(
        "F4/T4",
        "MO-SpM-DV with n^(1/2)-edge-separator meshes (Fig. 4, Thm 4)",
    );
    for (name, spec) in mo_bench::machines() {
        println!("\n--- machine: {name} ---");
        let p = spec.cores() as f64;
        for side in [32usize, 48, 64] {
            let m = mesh_matrix(side);
            let n = m.n;
            let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
            let sp = spmdv_program(&m, &x);
            let r = run_mo(&sp.program, &spec);
            println!("mesh {side}x{side} (n = {n}, nnz = {}):", m.nnz());
            let nf = n as f64;
            row(
                "parallel steps vs n/p + B1 + log(n/B1)",
                r.makespan as f64,
                {
                    let b1 = spec.level(1).block as f64;
                    nf / p + b1 + (nf / b1).log2()
                },
            );
            for level in 1..=spec.cache_levels() {
                let qi = spec.caches_at(level) as f64;
                let bi = spec.level(level).block as f64;
                let ci = spec.level(level).capacity as f64;
                row(
                    &format!("L{level} misses vs (n/q_i)(1/B_i + 1/sqrt(C_i))"),
                    r.cache_complexity(level) as f64,
                    (nf / qi) * (1.0 / bi + 1.0 / ci.sqrt()),
                );
            }
            if side == 64 {
                let rows = natural_mesh(side);
                let (bp, _) = flat_spmdv_program(&rows, &x);
                let rb = run_mo(&bp, &spec);
                val(
                    "natural-order baseline L1 misses",
                    rb.cache_complexity(1) as f64,
                );
                val(
                    "separator-ordered MO L1 misses",
                    r.cache_complexity(1) as f64,
                );
                println!("  (the separator ordering keeps the x-window local; Thm 4 needs it)");
            }
        }
    }
}
