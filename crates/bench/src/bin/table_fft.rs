//! F3/T2 — Fig. 3 & Theorem 2: MO-FFT.
//!
//! Steps vs Θ((n/p + B₁)·log n) and per-level misses vs
//! Θ((n/(q_i·B_i))·log_{C_i} n) across sizes, plus the NO FFT's
//! communication complexity (Table II row 5).

use mo_algorithms::fft::fft_program;
use mo_bench::{header, row, run_mo};
use no_framework::algs::fft::no_fft;

fn signal(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|t| ((t as f64 * 0.37).sin(), (t as f64 * 0.11).cos() * 0.5))
        .collect()
}

fn main() {
    header("F3/T2", "MO-FFT (Fig. 3, Thm 2) and NO FFT");
    for (name, spec) in mo_bench::machines() {
        println!("\n--- machine: {name} ---");
        let p = spec.cores() as f64;
        let b1 = spec.level(1).block as f64;
        for n in [1usize << 10, 1 << 12, 1 << 14] {
            let fp = fft_program(&signal(n));
            let r = run_mo(&fp.program, &spec);
            println!("n = {n}:");
            let nf = n as f64;
            let logn = nf.log2();
            // Complex elements are 2 words and every element is touched
            // ~10x per level of the √n recursion; the Θ captures shape.
            row(
                "parallel steps vs (n/p + B1) log n",
                r.makespan as f64,
                (nf / p + b1) * logn,
            );
            for level in 1..=spec.cache_levels() {
                let qi = spec.caches_at(level) as f64;
                let bi = spec.level(level).block as f64;
                let ci = spec.level(level).capacity as f64;
                let logc = (logn / ci.log2()).max(1.0);
                row(
                    &format!("L{level} misses vs (n/(q_i B_i)) log_C n"),
                    r.cache_complexity(level) as f64,
                    (nf / (qi * bi)) * logc,
                );
            }
            row("speed-up vs p", r.speedup(), p);
        }
    }
    println!("\n--- NO FFT communication on M(p,B) (Table II row 5) ---");
    let n = 1 << 10;
    let (m, _) = no_fft(&signal(n));
    for (p, b) in [(16usize, 2usize), (16, 8), (64, 2)] {
        let comm = m.communication_complexity(p, b) as f64;
        let np = (n / p) as f64;
        let pred = (2.0 * n as f64 / (p * b) as f64) * ((n as f64).ln() / np.ln()).max(1.0);
        row(
            &format!("comm p={p} B={b} vs (n/pB) log_(n/p) n"),
            comm,
            pred,
        );
    }
}
