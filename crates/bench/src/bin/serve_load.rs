//! Load generator for the `mo-serve` kernel service.
//!
//! ```text
//! cargo run --release -p mo-bench --bin serve_load -- [flags]
//!
//!   --smoke               bounded CI run: boot, serve a mixed batch
//!                         closed-loop, assert a clean drain, exit
//!   --mode open|closed    open loop: fixed arrival rate regardless of
//!                         completions (measures shedding under a set
//!                         offered load); closed loop: each client
//!                         submits, waits, repeats (measures capacity)
//!   --rate R              open-loop arrivals per second   [default 200]
//!   --clients C           closed-loop client threads      [default 4]
//!   --duration SECS       run length in seconds           [default 5]
//!   --queue-cap N         server queue bound              [default 256]
//!   --deadline-ms MS      per-job queue deadline          [default 500]
//!   --scenario FILE       workload file: `kernel size weight` lines
//!                         (default: built-in mixed workload; see
//!                         crates/bench/scenarios/mixed.scn)
//!   --secure              refuse kernels without an `oblivious`
//!                         value-obliviousness certificate (typed
//!                         NotCertified shedding; sort is refused)
//!   --certs FILE          certificate artifact for --secure
//!                         [default certify/certificates.json]
//!   --phases              attach a trace sink and print the per-kernel
//!                         per-phase p50/p95/p99 attribution table
//!                         (requires the `obs` feature)
//!   --trace-out FILE      with --phases: write the request-span
//!                         timeline as validated chrome-trace JSON
//!   --report FILE         with --phases: write the closed-loop report
//!                         (tally, throughput, span accounting, phase
//!                         quantiles) as JSON
//!   --overhead-check      run traced-vs-untraced closed-loop controls
//!                         and exit non-zero if span emission costs
//!                         more than 5% throughput (requires `obs`)
//! ```
//!
//! Both modes print the server's final [`MetricsSnapshot`] plus a
//! client-side outcome tally, and exit non-zero if the drain left
//! anything queued or admitted — so the smoke run doubles as an
//! end-to-end assertion in CI. With `--phases` the run additionally
//! asserts span conservation: every span the rings did not drop must
//! close exactly once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mo_serve::{HwHierarchy, JobSpec, Kernel, Outcome, Rejected, ServeConfig, Server, Ticket};

/// One weighted line of the workload mix.
#[derive(Debug, Clone, Copy)]
struct Mix {
    kernel: Kernel,
    n: usize,
    weight: u32,
}

fn builtin_mix() -> Vec<Mix> {
    [
        (Kernel::Sort, 1024, 2),
        (Kernel::Sort, 4096, 4),
        (Kernel::Sort, 20_000, 1),
        (Kernel::Fft, 4096, 3),
        (Kernel::Fft, 16_384, 1),
        (Kernel::SpmDv, 2048, 3),
        (Kernel::Transpose, 128, 2),
        (Kernel::Transpose, 256, 1),
        (Kernel::Matmul, 96, 2),
        (Kernel::Matmul, 160, 1),
    ]
    .into_iter()
    .map(|(kernel, n, weight)| Mix { kernel, n, weight })
    .collect()
}

fn parse_scenario(path: &str) -> Result<Vec<Mix>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut mix = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let err = |what: &str| format!("{path}:{}: {what}: {line:?}", lineno + 1);
        let kernel = it
            .next()
            .and_then(Kernel::parse)
            .ok_or_else(|| err("unknown kernel"))?;
        let n = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad size"))?;
        let weight = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad weight"))?;
        if it.next().is_some() {
            return Err(err("trailing fields"));
        }
        mix.push(Mix { kernel, n, weight });
    }
    if mix.is_empty() {
        return Err(format!("{path}: no workload lines"));
    }
    Ok(mix)
}

/// Deterministic weighted draw.
struct Draw {
    mix: Vec<Mix>,
    total: u32,
    state: u64,
}

impl Draw {
    fn new(mix: Vec<Mix>, seed: u64) -> Self {
        let total = mix.iter().map(|m| m.weight).sum::<u32>().max(1);
        Self {
            mix,
            total,
            state: seed | 1,
        }
    }

    fn next(&mut self) -> (Kernel, usize, u64) {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut pick = ((self.state >> 33) as u32) % self.total;
        for m in &self.mix {
            if pick < m.weight {
                return (m.kernel, m.n, self.state);
            }
            pick -= m.weight;
        }
        let m = self.mix[0];
        (m.kernel, m.n, self.state)
    }
}

#[derive(Debug, Default)]
struct Tally {
    done: AtomicU64,
    shed_submit: AtomicU64,
    shed_deadline: AtomicU64,
}

impl Tally {
    fn count(&self, outcome: &Outcome) {
        match outcome {
            Outcome::Done(_) => self.done.fetch_add(1, Ordering::Relaxed),
            Outcome::Rejected(Rejected::DeadlineExpired { .. }) => {
                self.shed_deadline.fetch_add(1, Ordering::Relaxed)
            }
            Outcome::Rejected(_) => self.shed_submit.fetch_add(1, Ordering::Relaxed),
        };
    }
}

struct Args {
    smoke: bool,
    open_loop: bool,
    rate: f64,
    clients: usize,
    duration: Duration,
    queue_cap: usize,
    deadline: Duration,
    scenario: Option<String>,
    secure: bool,
    certs: String,
    phases: bool,
    trace_out: Option<String>,
    report: Option<String>,
    overhead_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        open_loop: false,
        rate: 200.0,
        clients: 4,
        duration: Duration::from_secs(5),
        queue_cap: 256,
        deadline: Duration::from_millis(500),
        scenario: None,
        secure: false,
        certs: "certify/certificates.json".to_string(),
        phases: false,
        trace_out: None,
        report: None,
        overhead_check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--mode" => {
                args.open_loop = match val("--mode")?.as_str() {
                    "open" => true,
                    "closed" => false,
                    m => return Err(format!("unknown mode {m:?}")),
                }
            }
            "--rate" => args.rate = val("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--clients" => {
                args.clients = val("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--duration" => {
                args.duration = Duration::from_secs_f64(
                    val("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--queue-cap" => {
                args.queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--deadline-ms" => {
                args.deadline = Duration::from_millis(
                    val("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--scenario" => args.scenario = Some(val("--scenario")?),
            "--secure" => args.secure = true,
            "--certs" => args.certs = val("--certs")?,
            "--phases" => args.phases = true,
            "--trace-out" => args.trace_out = Some(val("--trace-out")?),
            "--report" => args.report = Some(val("--report")?),
            "--overhead-check" => args.overhead_check = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Closed loop: each client thread submits one job, waits for its
/// outcome, and repeats until the deadline — offered load tracks
/// service capacity, so this measures throughput and latency.
fn closed_loop(server: &Server, draw: &mut Draw, tally: &Tally, clients: usize, until: Instant) {
    std::thread::scope(|s| {
        for c in 0..clients {
            let mut draw = Draw::new(draw.mix.clone(), draw.state ^ ((c as u64 + 1) << 32));
            s.spawn(move || {
                while Instant::now() < until {
                    let (kernel, n, seed) = draw.next();
                    match server.submit(JobSpec::new(kernel, n, seed)) {
                        Ok(ticket) => tally.count(&ticket.wait()),
                        Err(r) => tally.count(&Outcome::Rejected(r)),
                    }
                }
            });
        }
    });
}

/// Open loop: arrivals at a fixed rate no matter how the server is
/// doing — the saturating regime where admission control and shedding
/// must carry the overload. Tickets resolve on collector threads.
fn open_loop(server: &Server, draw: &mut Draw, tally: &Tally, rate: f64, until: Instant) {
    let interval = Duration::from_secs_f64(1.0 / rate.max(0.001));
    let (tx, rx) = mpsc::channel::<Ticket>();
    std::thread::scope(|s| {
        let collector = s.spawn(move || {
            while let Ok(ticket) = rx.recv() {
                tally.count(&ticket.wait());
            }
        });
        let mut next_at = Instant::now();
        while Instant::now() < until {
            let (kernel, n, seed) = draw.next();
            match server.submit(JobSpec::new(kernel, n, seed)) {
                Ok(ticket) => {
                    let _ = tx.send(ticket);
                }
                Err(r) => tally.count(&Outcome::Rejected(r)),
            }
            next_at += interval;
            if let Some(sleep) = next_at.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
        }
        drop(tx);
        let _ = collector.join();
    });
}

/// Kernel-code → name mapping for the phase table and the JSON report:
/// the arrive event carries [`Kernel::index`].
#[cfg(feature = "obs")]
fn kernel_name_of(code: u64) -> String {
    Kernel::ALL
        .get(code as usize)
        .map(|k| k.name().to_string())
        .unwrap_or_else(|| format!("kernel{code}"))
}

#[cfg(feature = "obs")]
fn phase_json(h: &mo_obs::span::Log2Hist) -> String {
    format!(
        "{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
        h.count,
        h.quantile_ns(0.50),
        h.quantile_ns(0.95),
        h.quantile_ns(0.99)
    )
}

/// `--phases` epilogue: reassemble the drained request spans, print the
/// per-kernel phase-attribution table, enforce span conservation, and
/// write the optional chrome-trace / JSON report artifacts. Returns
/// `false` when a drop-free run failed to conserve its spans.
#[cfg(feature = "obs")]
fn phase_report(args: &Args, sink: &mo_obs::TraceSink, tally: &Tally, duration: Duration) -> bool {
    use mo_obs::span::{self, Phase};
    let events = sink.drain();
    let dropped: u64 = sink.dropped_per_worker().iter().sum();
    let set = span::assemble(&events);
    let stats = span::phase_stats(&set);
    println!("== request-path phase attribution ==");
    print!("{}", span::format_phase_table(&stats, kernel_name_of));
    println!(
        "spans: {} opened, {} closed, {} orphan closes, {} ring events dropped ({})",
        set.opened,
        set.closed,
        set.orphan_closes,
        dropped,
        if set.conserved() {
            "conserved"
        } else {
            "NOT conserved"
        },
    );
    if let Some(path) = &args.trace_out {
        let json = mo_obs::chrome::to_chrome_json(&events);
        mo_obs::chrome::validate(&json).expect("emitted chrome trace must validate");
        std::fs::write(path, &json).expect("write chrome trace");
        println!("wrote {path}: {} events", events.len());
    }
    if let Some(path) = &args.report {
        let done = tally.done.load(Ordering::Relaxed);
        let kernels: Vec<String> = stats
            .iter()
            .map(|(code, k)| {
                let phases: Vec<String> = Phase::ALL
                    .iter()
                    .map(|p| format!("\"{}\":{}", p.name(), phase_json(&k.phases[*p as usize])))
                    .collect();
                format!(
                    "{{\"kernel\":\"{}\",\"complete_spans\":{},\"shed\":{},\"dominant_p99\":\"{}\",\"phases\":{{{}}},\"total\":{}}}",
                    kernel_name_of(*code),
                    k.count,
                    k.shed,
                    k.dominant_phase(0.99).0.name(),
                    phases.join(","),
                    phase_json(&k.total),
                )
            })
            .collect();
        let json = format!(
            "{{\"mode\":\"{}\",\"duration_secs\":{},\"served\":{},\"refused_at_submit\":{},\"shed_by_deadline\":{},\"jobs_per_sec\":{:.1},\"spans\":{{\"opened\":{},\"closed\":{},\"orphan_closes\":{},\"ring_dropped\":{},\"conserved\":{}}},\"kernels\":[{}]}}",
            if args.open_loop { "open" } else { "closed" },
            duration.as_secs_f64(),
            done,
            tally.shed_submit.load(Ordering::Relaxed),
            tally.shed_deadline.load(Ordering::Relaxed),
            done as f64 / duration.as_secs_f64(),
            set.opened,
            set.closed,
            set.orphan_closes,
            dropped,
            set.conserved(),
            kernels.join(","),
        );
        std::fs::write(path, &json).expect("write phase report");
        println!("wrote {path}");
    }
    // Dropped ring events legitimately orphan spans; only a drop-free
    // run is required to conserve.
    dropped > 0 || set.conserved()
}

/// `--overhead-check`: the acceptance gate that span emission is cheap.
/// Runs short closed-loop controls — untraced vs traced, same config
/// and mix — and fails if the traced server serves more than 5% fewer
/// jobs, minus a small fixed allowance absorbing scheduler noise at
/// sub-second run lengths.
#[cfg(feature = "obs")]
fn overhead_check(mix: &[Mix]) -> bool {
    let dur = Duration::from_millis(600);
    let run_once = |traced: bool, seed: u64| -> u64 {
        let hier = HwHierarchy::detect();
        let cores = hier.cores();
        let server = Server::start(hier, ServeConfig::default());
        let sink = traced.then(|| {
            let sink = std::sync::Arc::new(mo_obs::TraceSink::new(cores));
            assert!(server.attach_sink(std::sync::Arc::clone(&sink)));
            sink
        });
        let mut draw = Draw::new(mix.to_vec(), seed);
        let tally = Tally::default();
        closed_loop(&server, &mut draw, &tally, 2, Instant::now() + dur);
        let snapshot = server.drain();
        assert_eq!(snapshot.queue_depth, 0, "overhead control must drain clean");
        if let Some(sink) = sink {
            assert!(
                !sink.drain().is_empty(),
                "traced control emitted no span events"
            );
        }
        tally.done.load(Ordering::Relaxed)
    };
    let (mut plain, mut traced) = (0u64, 0u64);
    for round in 0..3 {
        plain = plain.max(run_once(false, 0x0dd5 ^ round));
        traced = traced.max(run_once(true, 0xace5 ^ round));
    }
    let floor = plain.saturating_sub(plain / 20 + 50);
    println!(
        "overhead: best-of-3 {dur:?} closed loops — untraced {plain} jobs, traced {traced} jobs (floor {floor})"
    );
    traced >= floor
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(2);
        }
    };
    let mix = match &args.scenario {
        Some(path) => match parse_scenario(path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("serve_load: {e}");
                std::process::exit(2);
            }
        },
        None => builtin_mix(),
    };
    let (duration, clients, rate) = if args.smoke {
        (Duration::from_millis(1500), 2, 100.0)
    } else {
        (args.duration, args.clients, args.rate)
    };
    let hier = HwHierarchy::detect();
    println!(
        "machine: {} cores, {} cache levels (L1 {} words); mode: {}; {} mix lines; {:?} run",
        hier.cores(),
        hier.levels().len(),
        hier.l1_capacity(),
        if args.open_loop { "open" } else { "closed" },
        mix.len(),
        duration,
    );
    let certificates = if args.secure {
        match std::fs::read_to_string(&args.certs)
            .map_err(|e| e.to_string())
            .and_then(|t| mo_core::CertificateSet::from_json_str(&t))
        {
            Ok(set) => {
                println!(
                    "secure mode: {} certificates loaded from {}; uncertified kernels are refused",
                    set.certs.len(),
                    args.certs
                );
                Some(set)
            }
            Err(e) => {
                eprintln!(
                    "serve_load: --secure with no usable certificates ({}: {e}); \
                     run `cargo run --release -p mo-bench --bin mo_certify` first",
                    args.certs
                );
                std::process::exit(2);
            }
        }
    } else {
        None
    };
    #[cfg(not(feature = "obs"))]
    if args.phases || args.overhead_check || args.trace_out.is_some() || args.report.is_some() {
        eprintln!(
            "serve_load: --phases/--trace-out/--report/--overhead-check need the traced build; \
             rerun with `--features obs`"
        );
        std::process::exit(2);
    }
    #[cfg(feature = "obs")]
    let cores = hier.cores();
    let server = Server::start(
        hier,
        ServeConfig {
            queue_cap: args.queue_cap,
            default_deadline: args.deadline,
            secure: args.secure,
            certificates,
            ..ServeConfig::default()
        },
    );
    #[cfg(feature = "obs")]
    let sink = args.phases.then(|| {
        // Serve events and the pool's helper-thread scheduler events
        // share the external ring, so a load run needs more headroom
        // than the default capacity to keep span conservation checkable.
        let sink = std::sync::Arc::new(mo_obs::TraceSink::with_capacity(cores, 1 << 18));
        assert!(server.attach_sink(std::sync::Arc::clone(&sink)));
        sink
    });
    let mut draw = Draw::new(mix, 0xfeed_face);
    let tally = Tally::default();
    let until = Instant::now() + duration;
    if args.open_loop {
        open_loop(&server, &mut draw, &tally, rate, until);
    } else {
        closed_loop(&server, &mut draw, &tally, clients, until);
    }
    let snapshot = server.drain();
    println!("\n{snapshot}");
    let done = tally.done.load(Ordering::Relaxed);
    let shed_submit = tally.shed_submit.load(Ordering::Relaxed);
    let shed_deadline = tally.shed_deadline.load(Ordering::Relaxed);
    println!(
        "client tally: {done} served, {shed_submit} refused at submit, {shed_deadline} shed by deadline ({:.1} jobs/s served)",
        done as f64 / duration.as_secs_f64()
    );
    #[cfg(feature = "obs")]
    let spans_ok = match &sink {
        Some(sink) => phase_report(&args, sink, &tally, duration),
        None => true,
    };
    #[cfg(not(feature = "obs"))]
    let spans_ok = true;
    // The run doubles as an assertion: the drain must be clean and the
    // server must have made progress. In smoke mode this gates CI.
    let clean = snapshot.queue_depth == 0
        && snapshot.levels.iter().all(|l| l.inflight_words == 0)
        && snapshot.completed_total() == done
        && done > 0;
    if !clean {
        eprintln!("serve_load: drain was not clean");
        std::process::exit(1);
    }
    if !spans_ok {
        eprintln!("serve_load: span conservation failed on a drop-free run");
        std::process::exit(1);
    }
    println!("drain clean");
    #[cfg(feature = "obs")]
    if args.overhead_check {
        if !overhead_check(&draw.mix) {
            eprintln!("serve_load: span overhead above the 5% gate");
            std::process::exit(1);
        }
        println!("overhead gate: traced within 5% of untraced");
    }
}
