//! F5/T5 — Fig. 5 & Theorem 5: I-GEP under the SB scheduler
//! (matrix multiplication, Floyd–Warshall, Gaussian elimination), vs the
//! naive and resource-aware tiled baselines.

use mo_algorithms::gep::{fw_update, ge_update, igep_program, matmul_program, UpdateSet};
use mo_baselines::matmul::{naive_matmul_program, tiled_matmul_program};
use mo_bench::{fw_instance, header, rand_f64, row, run_mo, run_serial, val};

fn main() {
    header("F5/T5", "I-GEP under SB (Fig. 5 + appendix, Thm 5)");
    for (name, spec) in mo_bench::machines() {
        println!("\n--- machine: {name} ---");
        let p = spec.cores() as f64;
        for n in [32usize, 64, 128] {
            let a = rand_f64(1 + n as u64, n * n);
            let b = rand_f64(2 + n as u64, n * n);
            let mp = matmul_program(&a, &b, n);
            let r = run_mo(&mp.program, &spec);
            println!("matrix multiplication, n = {n}:");
            let n3 = (n * n * n) as f64;
            // 5 traced ops per update.
            row("parallel steps vs n^3/p", r.makespan as f64, 5.0 * n3 / p);
            for level in 1..=spec.cache_levels() {
                let qi = spec.caches_at(level) as f64;
                let bi = spec.level(level).block as f64;
                let ci = spec.level(level).capacity as f64;
                row(
                    &format!("L{level} misses vs n^3/(q_i B_i sqrt(C_i))"),
                    r.cache_complexity(level) as f64,
                    n3 / (qi * bi * ci.sqrt()),
                );
            }
            row("speed-up vs p", r.speedup(), p);
        }
        // Other GEP instances at one size.
        let n = 64;
        let d = fw_instance(n, 5);
        let fw = igep_program(&d, n, fw_update, UpdateSet::All);
        let rfw = run_mo(&fw.program, &spec);
        println!("Floyd–Warshall APSP, n = {n}:");
        row(
            "L1 misses vs n^3/(q_1 B_1 sqrt(C_1))",
            rfw.cache_complexity(1) as f64,
            {
                let q1 = spec.caches_at(1) as f64;
                (n as f64).powi(3)
                    / (q1 * spec.level(1).block as f64 * (spec.level(1).capacity as f64).sqrt())
            },
        );
        let mut ge_in = rand_f64(9, n * n);
        for i in 0..n {
            ge_in[i * n + i] += 2.0 * n as f64;
        }
        let ge = igep_program(&ge_in, n, ge_update, UpdateSet::KBelowMin);
        let rge = run_mo(&ge.program, &spec);
        println!("Gaussian elimination (no pivoting), n = {n}:");
        val("work (≈ n^3/3 updates x 5 ops)", rge.work as f64);
        val("speed-up", rge.speedup());
    }

    // Baseline contrast at one machine/size.
    let spec = mo_bench::default_machine();
    let n = 64;
    let a = rand_f64(11, n * n);
    let b = rand_f64(12, n * n);
    println!("\n--- baselines (n = {n}, serial misses at L1) ---");
    let (nv, _) = naive_matmul_program(&a, &b, n);
    let rn = run_serial(&nv, &spec);
    val("naive ijk triple loop", rn.cache_complexity(1) as f64);
    let (tl, _) = tiled_matmul_program(&a, &b, n, 16);
    let rt = run_serial(&tl, &spec);
    val(
        "resource-aware tiled (tile=16, tuned to C1)",
        rt.cache_complexity(1) as f64,
    );
    let (tl2, _) = tiled_matmul_program(&a, &b, n, 4);
    let rt2 = run_serial(&tl2, &spec);
    val(
        "resource-aware tiled (tile=4, mistuned)",
        rt2.cache_complexity(1) as f64,
    );
    let mp = matmul_program(&a, &b, n);
    let rm = run_serial(&mp.program, &spec);
    val(
        "I-GEP (oblivious: no tuning parameter)",
        rm.cache_complexity(1) as f64,
    );
    println!("  (the oblivious recursion matches the tuned tile without knowing C1)");
}
