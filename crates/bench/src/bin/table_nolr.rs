//! T9 — Theorem 9: NO-LR communication/computation on M(p,B).

use mo_bench::{header, row, val};
use no_framework::algs::listrank::no_listrank;

fn random_list(n: usize, seed: u64) -> Vec<u64> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut x = seed | 1;
    for i in (1..n).rev() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((x >> 33) as usize) % (i + 1);
        order.swap(i, j);
    }
    let mut succ = vec![u64::MAX; n];
    for w in order.windows(2) {
        succ[w[0]] = w[1] as u64;
    }
    succ
}

fn main() {
    header("T9", "NO-LR on M(p,B) (Thm 9)");
    for n in [1usize << 10, 1 << 11, 1 << 12] {
        let succ = random_list(n, 1 + n as u64);
        let (m, _) = no_listrank(&succ);
        println!("\nn = {n} ({} supersteps):", m.supersteps());
        for (p, b) in [(16usize, 1usize), (16, 8), (64, 1)] {
            let comm = m.communication_complexity(p, b) as f64;
            // Thm 9 leading term: n/(pB) (the contraction volume).
            row(
                &format!("comm p={p} B={b} vs n/(pB)"),
                comm,
                n as f64 / (p * b) as f64,
            );
        }
        let comp = m.computation_complexity(16) as f64;
        row(
            "comp p=16 vs (n/p) log n",
            comp,
            (n as f64 / 16.0) * (n as f64).log2(),
        );
        // D-BSP time under a geometric profile.
        let p = 16usize;
        let logp = p.trailing_zeros() as usize;
        let g: Vec<f64> = (0..logp).map(|i| 2f64.powi((logp - i) as i32)).collect();
        let bs: Vec<usize> = vec![4; logp];
        val("D-BSP(16) communication time", m.dbsp_time(p, &g, &bs));
    }
    println!("\nshape check: comm/(n/pB) stays bounded as n doubles (Θ stability).");
}
