//! T8 — Theorem 8: MO connected components via contraction.

use mo_algorithms::graph::cc::{cc_program, reference_components};
use mo_bench::{header, row, run_mo};

fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut x = seed | 1;
    let mut rnd = move |k: usize| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) as usize) % k
    };
    (0..m)
        .map(|_| (rnd(n), rnd(n)))
        .filter(|&(u, v)| u != v)
        .collect()
}

fn main() {
    header("T8", "MO connected components (Thm 8)");
    for (name, spec) in mo_bench::machines() {
        println!("\n--- machine: {name} ---");
        let p = spec.cores() as f64;
        for (n, m_edges) in [(512usize, 768usize), (1024, 1536), (2048, 3072)] {
            let edges = random_graph(n, m_edges, 3 + n as u64);
            let cp = cc_program(n, &edges);
            assert_eq!(cp.normalized_labels(), reference_components(n, &edges));
            let r = run_mo(&cp.program, &spec);
            let big_n = (n + edges.len()) as f64;
            let logn = big_n.log2();
            println!("n = {n}, m = {} (N = n + m = {big_n}):", edges.len());
            row(
                "parallel steps vs (N/p) log N log(N/B1)",
                r.makespan as f64,
                big_n * logn * (big_n / spec.level(1).block as f64).log2() / p,
            );
            for level in 1..=spec.cache_levels() {
                let qi = spec.caches_at(level) as f64;
                let bi = spec.level(level).block as f64;
                let ci = spec.level(level).capacity as f64;
                let logc = (logn / ci.log2()).max(1.0);
                row(
                    &format!("L{level} misses vs (N/(q_i B_i)) log_C N log(N/B1)"),
                    r.cache_complexity(level) as f64,
                    (big_n / (qi * bi)) * logc * (big_n / spec.level(1).block as f64).log2(),
                );
            }
            row("speed-up vs p", r.speedup(), p);
        }
    }
}
