//! Scheduler-decision report: run the real kernels under runtime
//! tracing and print what the SB/CGC scheduler *did* next to what the
//! paper's analysis *predicts*, flagging divergences.
//!
//! For every kernel the report shows:
//!
//! * the analytic footprint (registry space function) and the cache
//!   level the SB scheduler should anchor the root task at, against the
//!   observed per-fork anchor-level distribution and the largest space
//!   bound any fork actually declared;
//! * steal counts and the steal rate (stolen tasks per executed queued
//!   task) — the work-stealing cost the HM analysis bounds via the
//!   O(depth) steal argument;
//! * the permit-denied rate: how often an above-cutoff fork could not
//!   get a core permit, i.e. how far execution diverged from the pure
//!   SB schedule that parallelizes every such fork;
//! * the CGC segment-length histogram (log₂ buckets) with the
//!   below-grain count (at most the tail chunk of each `pfor`).
//!
//! The merged event timeline of the whole suite is written as
//! chrome-trace JSON (`--out`, default `obs_trace.json`), loadable in
//! Perfetto / `chrome://tracing`.
//!
//! `--smoke` shrinks sizes for CI and additionally asserts that the
//! tracing machinery itself is cheap: matmul with a sink attached must
//! stay within 5% (plus a fixed noise floor) of the same build with no
//! sink, so an `obs`-enabled binary that never attaches a sink pays
//! nothing measurable.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use mo_algorithms::real::registry::{footprint_words, run_kernel, Kernel};
use mo_core::rt::{HwHierarchy, SbPool};
use mo_obs::{chrome, summary, EventKind, TraceSink};

/// Median-of-`reps` wall-clock nanoseconds of `f` (one warmup call).
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f());
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn level_name(level: u64) -> String {
    if level == u64::MAX {
        "none".to_string()
    } else {
        format!("L{}", level + 1)
    }
}

fn kernel_size(k: Kernel, smoke: bool) -> usize {
    match k {
        Kernel::Transpose => {
            if smoke {
                64
            } else {
                512
            }
        }
        Kernel::Matmul => {
            if smoke {
                64
            } else {
                256
            }
        }
        Kernel::Fft => {
            if smoke {
                1 << 12
            } else {
                1 << 16
            }
        }
        Kernel::Sort => {
            if smoke {
                1 << 12
            } else {
                1 << 18
            }
        }
        Kernel::SpmDv => {
            if smoke {
                2_000
            } else {
                100_000
            }
        }
    }
}

/// One kernel's traced run: execute, drain, summarize, and print the
/// observed-vs-predicted report. Returns the drained events (for the
/// merged chrome trace) and the number of divergences flagged.
fn report_kernel(
    pool: &SbPool,
    sink: &TraceSink,
    k: Kernel,
    n: usize,
) -> (Vec<mo_obs::Event>, usize) {
    let hier = pool.hierarchy();
    let checksum = run_kernel(pool, k, n, 42);
    let events = sink.drain();
    let s = summary::summarize(&events);

    let footprint = footprint_words(k, n);
    let predicted = hier.anchor_level(footprint).map_or(u64::MAX, |l| l as u64);
    let observed_top = s
        .anchor_levels
        .keys()
        .copied()
        .filter(|&l| l != u64::MAX)
        .max();

    println!("== {k} n={n} (checksum {checksum:#018x}) ==");
    println!(
        "  analytic: footprint {footprint} words -> root anchors at {}",
        level_name(predicted)
    );
    let dist: Vec<String> = s
        .anchor_levels
        .iter()
        .map(|(l, c)| format!("{}:{c}", level_name(*l)))
        .collect();
    println!(
        "  observed: max fork space {} words, fork anchors {{{}}}",
        s.max_fork_space,
        dist.join(", ")
    );
    println!(
        "  forks: {} parallel / {} serial / {} denied (denied rate {:.1}%)",
        s.count(EventKind::ForkParallel),
        s.count(EventKind::ForkSerial),
        s.count(EventKind::ForkDenied),
        s.denied_rate() * 100.0
    );
    println!(
        "  tasks: {} executed from queues, {} steals (steal rate {:.2}), {} injector pops, {} parks",
        s.count(EventKind::TaskEnter),
        s.count(EventKind::StealSuccess),
        s.steal_rate(),
        s.count(EventKind::InjectorPop),
        s.count(EventKind::Park),
    );
    let nsegs = s.count(EventKind::CgcSegment);
    if nsegs > 0 {
        let hist: Vec<String> = s
            .seg_log2
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| format!("<=2^{i}:{c}"))
            .collect();
        println!(
            "  cgc segments: {nsegs}, len {}..={}, below-grain {} [{}]",
            s.seg_min,
            s.seg_max,
            s.seg_below_grain,
            hist.join(" ")
        );
    }

    // Divergences between the observed schedule and the analysis.
    let mut flags = Vec::new();
    if s.max_fork_space > footprint as u64 {
        flags.push(format!(
            "fork declared {} words of space, above the analytic footprint {footprint}",
            s.max_fork_space
        ));
    }
    if let Some(top) = observed_top {
        if top > predicted {
            flags.push(format!(
                "forks anchored at {} but the whole kernel should fit at {}",
                level_name(top),
                level_name(predicted)
            ));
        }
    }
    if s.denied_rate() > 0.10 {
        flags.push(format!(
            "{:.1}% of above-cutoff forks were permit-denied: execution diverged from the pure SB schedule",
            s.denied_rate() * 100.0
        ));
    }
    if nsegs > 0 && s.seg_below_grain > nsegs.div_ceil(4) {
        flags.push(format!(
            "{} of {nsegs} CGC segments are below their grain (expected: at most the tail chunk per pfor)",
            s.seg_below_grain
        ));
    }
    if flags.is_empty() {
        println!("  divergences: none");
    } else {
        for f in &flags {
            println!("  divergence: {f}");
        }
    }
    println!();
    (events, flags.len())
}

/// `--smoke` overhead gate: tracing must cost < 5% on matmul.
fn assert_overhead_small(hier: &HwHierarchy) {
    let reps = 5;
    let n = 96;
    let plain_pool = SbPool::new(hier.clone());
    let plain = median_ns(reps, || run_kernel(&plain_pool, Kernel::Matmul, n, 7));
    let traced_pool = SbPool::new(hier.clone());
    traced_pool.attach_sink(Arc::new(TraceSink::new(hier.cores())));
    let traced = median_ns(reps, || run_kernel(&traced_pool, Kernel::Matmul, n, 7));
    // A fixed floor absorbs scheduler noise at these microsecond scales;
    // the 5% ratio is what the acceptance gate is about.
    let limit = plain + plain / 20 + 1_000_000;
    println!("overhead: matmul n={n} untraced {plain} ns, traced {traced} ns (limit {limit} ns)");
    assert!(
        traced <= limit,
        "tracing overhead too high: {traced} ns vs {plain} ns untraced"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "obs_trace.json".to_string());

    // Tracing a 1-core machine shows no steals and no parallel forks;
    // substitute a flat 4-core shape so the report exercises the
    // scheduler even on small CI boxes.
    let mut hier = HwHierarchy::detect();
    if hier.cores() < 2 {
        hier = HwHierarchy::flat(4, hier.l1_capacity(), 1 << 22);
        println!("single-core machine detected; tracing a flat 4-core hierarchy instead\n");
    }

    let pool = SbPool::new(hier.clone());
    let info = pool.warm();
    let sink = Arc::new(TraceSink::new(info.cores));
    assert!(pool.attach_sink(Arc::clone(&sink)));
    println!(
        "pool: {} cores, {} resident workers, L1 {} words, {} cache levels\n",
        info.cores,
        info.resident_workers,
        info.l1_words,
        info.levels.len()
    );

    let mut all_events = Vec::new();
    let mut divergences = 0;
    for k in Kernel::ALL {
        let (events, flags) = report_kernel(&pool, &sink, k, kernel_size(k, smoke));
        all_events.extend(events);
        divergences += flags;
    }

    // One merged timeline: every kernel ran against the same sink, so
    // the timestamps are already a single coherent clock.
    all_events.sort_by_key(|e| e.ts_ns);
    let json = chrome::to_chrome_json(&all_events);
    chrome::validate(&json).expect("emitted chrome trace must validate");
    std::fs::write(&out_path, &json).expect("write chrome trace");
    println!(
        "wrote {out_path}: {} events ({} dropped at the rings), load it in Perfetto or chrome://tracing",
        all_events.len(),
        sink.dropped()
    );
    println!("divergences flagged across the suite: {divergences}");

    if smoke {
        assert_overhead_small(&hier);
        println!("obs_report smoke: OK");
    }
}
