//! Scheduler-decision and cache-witness report: run the real kernels
//! under runtime tracing and print what the SB/CGC scheduler *did* next
//! to what the paper's analysis *predicts*, flagging divergences.
//!
//! For every kernel the report shows:
//!
//! * the analytic footprint (registry space function) and the cache
//!   level the SB scheduler should anchor the root task at, against the
//!   observed per-fork anchor-level distribution and the largest space
//!   bound any fork actually declared;
//! * steal counts and the steal rate (stolen tasks per executed queued
//!   task) — the work-stealing cost the HM analysis bounds via the
//!   O(depth) steal argument;
//! * the permit-denied rate: how often an above-cutoff fork could not
//!   get a core permit, i.e. how far execution diverged from the pure
//!   SB schedule that parallelizes every such fork;
//! * the CGC segment-length histogram (log₂ buckets) with the
//!   below-grain count (at most the tail chunk of each `pfor`).
//!
//! **Cache witness** (`== cache witness ==` section): measured
//! per-level block transfers for every registry kernel, from up to two
//! backends, against the analytic `Q_i` bounds of the paper:
//!
//! * the **sim backend** records each kernel as an access trace and
//!   replays it through the `hm` LRU simulator on a [`spec_from_host`]
//!   map of the detected hierarchy — portable, deterministic, and the
//!   backend the CI gate runs on;
//! * the **perf backend** reads hardware L1D/LLC miss counters scoped
//!   around every task the pool executes (attached via
//!   `SbPool::attach_witness`); when `perf_event_open` is unavailable
//!   (containers, `perf_event_paranoid`), the report says so and
//!   continues on the sim backend alone.
//!
//! `--gate <factor>` turns the comparison into an acceptance check:
//! exit nonzero if any kernel's *sim-measured* transfers exceed the
//! analytic bound times `factor` at any level.
//!
//! The merged event timeline of the whole suite — including the
//! witness counter tracks — is written as chrome-trace JSON (`--out`,
//! default `obs_trace.json`), loadable in Perfetto /
//! `chrome://tracing`; `--validate <file>` re-runs the structural
//! validator on a previously exported file and exits.
//!
//! `--smoke` shrinks sizes for CI and additionally asserts that the
//! tracing machinery itself is cheap: matmul with a sink attached must
//! stay within 5% (plus a fixed noise floor) of the same build with no
//! sink, so an `obs`-enabled binary that never attaches a sink pays
//! nothing measurable.
//!
//! **Serve mode** (`--serve`): instead of tracing the pool directly,
//! boot an in-process `mo-serve` server with a trace sink attached,
//! burst-submit every registry kernel so the bounded queue and the
//! CGC⇒SB batcher engage, and print the request-path **phase
//! attribution table** — per-kernel p50/p95/p99 for the
//! admission/queue/batch/execute phases with the dominant phase named
//! at each quantile (`mo_obs::span`). For each kernel the report
//! compares queue p99 against what the analytic batch cost explains —
//! the burst drains in `per/batch` waves, so queueing beyond
//! `waves × execute p99` is divergence the batching model cannot
//! account for — and `--gate <factor>` turns that comparison into an
//! acceptance check. The span timeline is written to `--out` as
//! validated chrome-trace JSON.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use hm_model::{spec_from_host, MachineSpec};
use mo_algorithms::real::registry::{
    analytic_transfers, footprint_words, run_kernel, Kernel, BLOCK_WORDS,
};
use mo_core::rt::{HwHierarchy, SbPool};
use mo_core::sched::{simulate, Policy};
use mo_obs::witness::{
    CacheWitness, LevelTransfers, PerfWitness, ReplayWitness, TracedRunWitness, WitnessMeasurement,
};
use mo_obs::{chrome, summary, EventKind, TraceSink};

/// Median-of-`reps` wall-clock nanoseconds of `f` (one warmup call).
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f());
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn level_name(level: u64) -> String {
    if level == u64::MAX {
        "none".to_string()
    } else {
        format!("L{}", level + 1)
    }
}

fn kernel_size(k: Kernel, smoke: bool) -> usize {
    match k {
        Kernel::Transpose => {
            if smoke {
                64
            } else {
                512
            }
        }
        Kernel::Matmul => {
            if smoke {
                64
            } else {
                256
            }
        }
        Kernel::Fft => {
            if smoke {
                1 << 12
            } else {
                1 << 16
            }
        }
        Kernel::Sort => {
            if smoke {
                1 << 12
            } else {
                1 << 18
            }
        }
        Kernel::SpmDv => {
            if smoke {
                2_000
            } else {
                100_000
            }
        }
        Kernel::Scan => {
            if smoke {
                1 << 12
            } else {
                1 << 18
            }
        }
    }
}

/// One kernel's traced run: execute, drain, summarize, and print the
/// observed-vs-predicted report. Returns the drained events (for the
/// merged chrome trace and the perf-witness rollup) and the number of
/// divergences flagged.
fn report_kernel(
    pool: &SbPool,
    sink: &TraceSink,
    k: Kernel,
    n: usize,
) -> (Vec<mo_obs::Event>, usize) {
    let hier = pool.hierarchy();
    let checksum = run_kernel(pool, k, n, 42);
    let events = sink.drain();
    let s = summary::summarize(&events);

    let footprint = footprint_words(k, n);
    let predicted = hier.anchor_level(footprint).map_or(u64::MAX, |l| l as u64);
    let observed_top = s
        .anchor_levels
        .keys()
        .copied()
        .filter(|&l| l != u64::MAX)
        .max();

    println!("== {k} n={n} (checksum {checksum:#018x}) ==");
    println!(
        "  analytic: footprint {footprint} words -> root anchors at {}",
        level_name(predicted)
    );
    let dist: Vec<String> = s
        .anchor_levels
        .iter()
        .map(|(l, c)| format!("{}:{c}", level_name(*l)))
        .collect();
    println!(
        "  observed: max fork space {} words, fork anchors {{{}}}",
        s.max_fork_space,
        dist.join(", ")
    );
    println!(
        "  forks: {} parallel / {} serial / {} denied (denied rate {:.1}%)",
        s.count(EventKind::ForkParallel),
        s.count(EventKind::ForkSerial),
        s.count(EventKind::ForkDenied),
        s.denied_rate() * 100.0
    );
    println!(
        "  tasks: {} executed from queues, {} steals (steal rate {:.2}), {} injector pops, {} parks",
        s.count(EventKind::TaskEnter),
        s.count(EventKind::StealSuccess),
        s.steal_rate(),
        s.count(EventKind::InjectorPop),
        s.count(EventKind::Park),
    );
    let nsegs = s.count(EventKind::CgcSegment);
    if nsegs > 0 {
        let hist: Vec<String> = s
            .seg_log2
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| format!("<=2^{i}:{c}"))
            .collect();
        println!(
            "  cgc segments: {nsegs}, len {}..={}, below-grain {} [{}]",
            s.seg_min,
            s.seg_max,
            s.seg_below_grain,
            hist.join(" ")
        );
    }

    // Divergences between the observed schedule and the analysis.
    let mut flags = Vec::new();
    if s.max_fork_space > footprint as u64 {
        flags.push(format!(
            "fork declared {} words of space, above the analytic footprint {footprint}",
            s.max_fork_space
        ));
    }
    if let Some(top) = observed_top {
        if top > predicted {
            flags.push(format!(
                "forks anchored at {} but the whole kernel should fit at {}",
                level_name(top),
                level_name(predicted)
            ));
        }
    }
    if s.denied_rate() > 0.10 {
        flags.push(format!(
            "{:.1}% of above-cutoff forks were permit-denied: execution diverged from the pure SB schedule",
            s.denied_rate() * 100.0
        ));
    }
    if nsegs > 0 && s.seg_below_grain > nsegs.div_ceil(4) {
        flags.push(format!(
            "{} of {nsegs} CGC segments are below their grain (expected: at most the tail chunk per pfor)",
            s.seg_below_grain
        ));
    }
    if flags.is_empty() {
        println!("  divergences: none");
    } else {
        for f in &flags {
            println!("  divergence: {f}");
        }
    }
    println!();
    (events, flags.len())
}

/// `--smoke` overhead gate: tracing must cost < 5% on matmul.
fn assert_overhead_small(hier: &HwHierarchy) {
    let reps = 5;
    let n = 96;
    let plain_pool = SbPool::new(hier.clone());
    let plain = median_ns(reps, || run_kernel(&plain_pool, Kernel::Matmul, n, 7));
    let traced_pool = SbPool::new(hier.clone());
    traced_pool.attach_sink(Arc::new(TraceSink::new(hier.cores())));
    let traced = median_ns(reps, || run_kernel(&traced_pool, Kernel::Matmul, n, 7));
    // A fixed floor absorbs scheduler noise at these microsecond scales;
    // the 5% ratio is what the acceptance gate is about.
    let limit = plain + plain / 20 + 1_000_000;
    println!("overhead: matmul n={n} untraced {plain} ns, traced {traced} ns (limit {limit} ns)");
    assert!(
        traced <= limit,
        "tracing overhead too high: {traced} ns vs {plain} ns untraced"
    );
}

// ---------------------------------------------------------------------------
// Cache witness: measured per-level Q_i vs the analytic bounds.
// ---------------------------------------------------------------------------

/// Which witness backends the report should run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    Sim,
    Perf,
    Both,
}

impl Backend {
    fn wants_sim(self) -> bool {
        self != Backend::Perf
    }
    fn wants_perf(self) -> bool {
        self != Backend::Sim
    }
}

/// Problem size for the *simulated* witness run: the LRU replay
/// interprets every memory operation, so these stay small. For SpmDv
/// the size is the mesh side (`n = side²`).
fn sim_size(k: Kernel, smoke: bool) -> usize {
    match k {
        Kernel::Transpose => {
            if smoke {
                32
            } else {
                64
            }
        }
        Kernel::Matmul => {
            if smoke {
                32
            } else {
                64
            }
        }
        Kernel::Fft => {
            if smoke {
                1 << 10
            } else {
                1 << 12
            }
        }
        Kernel::Sort => {
            if smoke {
                1 << 10
            } else {
                1 << 12
            }
        }
        Kernel::SpmDv => {
            if smoke {
                16
            } else {
                32
            }
        }
        Kernel::Scan => {
            if smoke {
                1 << 10
            } else {
                1 << 12
            }
        }
    }
}

/// A recorded kernel instance ready for replay: the program plus the
/// effective problem dimension the analytic bound is parameterized on.
struct SimProgram {
    program: mo_core::Program,
    /// The `n` of the analytic bound (elements; `side²` for SpmDv).
    n: usize,
    /// Nonzero count, for the SpmDv bound.
    nnz: usize,
}

fn build_program(k: Kernel, size: usize) -> SimProgram {
    match k {
        Kernel::Transpose => {
            let data: Vec<u64> = (0..size * size).map(|i| i as u64).collect();
            SimProgram {
                program: mo_algorithms::transpose::transpose_program(&data, size).program,
                n: size * size,
                nnz: 0,
            }
        }
        Kernel::Matmul => {
            let a: Vec<f64> = (0..size * size).map(|i| (i % 13) as f64 * 0.5).collect();
            let b: Vec<f64> = (0..size * size).map(|i| (i % 7) as f64 * 0.25).collect();
            SimProgram {
                program: mo_algorithms::gep::matmul_program(&a, &b, size).program,
                n: size,
                nnz: 0,
            }
        }
        Kernel::Fft => {
            let input: Vec<(f64, f64)> = (0..size)
                .map(|i| ((i % 17) as f64, (i % 5) as f64 * 0.1))
                .collect();
            SimProgram {
                program: mo_algorithms::fft::fft_program(&input).program,
                n: size,
                nnz: 0,
            }
        }
        Kernel::Sort => {
            let data: Vec<u64> = (0..size as u64)
                .map(|i| i.wrapping_mul(0x9e37) % 8191)
                .collect();
            SimProgram {
                program: mo_algorithms::sort::sort_program(&data).program,
                n: size,
                nnz: 0,
            }
        }
        Kernel::SpmDv => {
            let m = mo_algorithms::separator::mesh_matrix(size);
            let x: Vec<f64> = (0..m.n).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
            let nnz = m.nnz();
            SimProgram {
                program: mo_algorithms::spmdv::spmdv_program(&m, &x).program,
                n: m.n,
                nnz,
            }
        }
        Kernel::Scan => {
            // `sim_size` only hands out powers of two, which is what the
            // in-place tree scan requires.
            let len = size.next_power_of_two();
            let data: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9e37) % 8191)
                .collect();
            let program = mo_core::Recorder::record(2 * len, |rec| {
                let a = rec.alloc_init(&data);
                mo_algorithms::scan::mo_prefix_sum(rec, a, len);
            });
            SimProgram {
                program,
                n: len,
                nnz: 0,
            }
        }
    }
}

/// Number of level-`level` cache instances on `spec` (the paper's
/// `q_i`): cores divided by how many cores share one such cache.
fn caches_at(spec: &MachineSpec, level: usize) -> usize {
    let sharing: usize = (1..=level).map(|i| spec.level(i).fanout).product();
    (spec.cores() / sharing.max(1)).max(1)
}

/// Analytic per-level transfer bound: the paper's cache complexity
/// `Q(n; C_i, B_i)` for the kernel, distributed over the `q_i` caches
/// of the level (Theorems 1–4 bound the per-cache maximum by the
/// sequential complexity divided by `q_i`, up to constants), plus the
/// compulsory footprint term that every cache pays at least once.
///
/// The constants are calibrated against the LRU replay so measured
/// ratios sit below 1 with headroom on the `--gate` factor; they are
/// deliberately generous — the point is the *shape* `Q_i(n, C_i, B_i)`
/// and catching order-of-magnitude regressions, not tight-constant
/// bounds.
///
/// `n` is the kernel's analytic dimension (elements for transpose /
/// FFT / sort / SpmDv, matrix side for matmul); `nnz` only matters for
/// SpmDv.
fn analytic_q(k: Kernel, n: usize, nnz: usize, spec: &MachineSpec, level: usize) -> f64 {
    let l = spec.level(level);
    let b = l.block as f64;
    let c = l.capacity as f64;
    let q = caches_at(spec, level) as f64;
    let n = n as f64;
    match k {
        // Q(n²; C, B) = O(n²/B): scan-bound (tall caches).
        Kernel::Transpose => 8.0 * (n / (b * q) + n / b + b + 1.0),
        // Q = O(n³ / (B·√C)) + the n²/B compulsory reads of A, B, X.
        Kernel::Matmul => {
            let n3 = n * n * n;
            16.0 * (n3 / (b * c.sqrt() * q) + 3.0 * n * n / b + b + 1.0)
        }
        // Q = O((n/B)·log_C n) with at least one pass.
        Kernel::Fft => {
            let passes = (n.log2() / c.log2()).max(1.0);
            16.0 * ((n / b) * passes / q + n / b + b + 1.0)
        }
        // Same recurrence shape as FFT; sample sort's constant is larger.
        Kernel::Sort => {
            let passes = (n.log2() / c.log2()).max(1.0);
            48.0 * ((n / b) * passes / q + n / b + b + 1.0)
        }
        // Q = O(nnz/B + n/√C) for n^(1/2)-edge-separator matrices.
        Kernel::SpmDv => {
            let nnz = nnz as f64;
            16.0 * ((nnz / b + n / c.sqrt()) / q + nnz / b + b + 1.0)
        }
        // Scan-bound like transpose: Q = O(n/B), two tree sweeps.
        Kernel::Scan => 8.0 * (n / (b * q) + n / b + b + 1.0),
    }
}

/// One (kernel, level) comparison row of the witness table.
struct WitnessRow {
    kernel: Kernel,
    level: usize,
    measured: u64,
    analytic: f64,
}

impl WitnessRow {
    fn ratio(&self) -> f64 {
        self.measured as f64 / self.analytic.max(1.0)
    }
}

/// Map the detected hardware hierarchy onto an HM [`MachineSpec`] for
/// the replay backend.
fn host_spec(hier: &HwHierarchy) -> Result<MachineSpec, String> {
    let levels: Vec<(usize, usize)> = hier
        .levels()
        .iter()
        .map(|l| (l.capacity, l.fanout))
        .collect();
    spec_from_host(&levels).map_err(|e| format!("host hierarchy rejected: {e:?}"))
}

fn describe_spec(spec: &MachineSpec) -> String {
    (1..=spec.cache_levels())
        .map(|i| {
            let l = spec.level(i);
            format!(
                "L{i} {} w (B={}, q={})",
                l.capacity,
                l.block,
                caches_at(spec, i)
            )
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Run the sim-backend witness for one kernel: record, replay through
/// the LRU simulator on the host map, and print measured-vs-analytic
/// per level. Returns the comparison rows for the gate.
fn sim_witness_kernel(k: Kernel, size: usize, spec: &MachineSpec) -> Vec<WitnessRow> {
    let sp = build_program(k, size);
    let report = simulate(&sp.program, spec, Policy::Mo);
    let mut witness = ReplayWitness::new(|| {
        let levels: Vec<LevelTransfers> = (1..=report.metrics.cache_levels())
            .map(|i| LevelTransfers {
                level: i,
                transfers: report.metrics.level(i).max_transfers,
            })
            .collect();
        Ok((
            levels,
            format!(
                "{} mem-ops replayed, makespan {} steps",
                report.work, report.makespan
            ),
        ))
    });
    let m = witness.measure().expect("LRU replay cannot fail");
    print_witness_kernel(k, sp.n, sp.nnz, &m, spec)
}

/// Print one kernel's witness measurement against the analytic bounds;
/// returns the rows (empty for levels the backend did not measure).
fn print_witness_kernel(
    k: Kernel,
    n: usize,
    nnz: usize,
    m: &WitnessMeasurement,
    spec: &MachineSpec,
) -> Vec<WitnessRow> {
    println!("{k} n={n} [{}]: {}", m.backend.name(), m.detail);
    let mut rows = Vec::new();
    for lt in &m.levels {
        if lt.level > spec.cache_levels() {
            continue;
        }
        let bound = analytic_q(k, n, nnz, spec, lt.level);
        let row = WitnessRow {
            kernel: k,
            level: lt.level,
            measured: lt.transfers,
            analytic: bound,
        };
        println!(
            "  Q_{}: measured {:>10} transfers, analytic {:>12.0}, ratio {:.3}",
            lt.level,
            row.measured,
            row.analytic,
            row.ratio()
        );
        rows.push(row);
    }
    if let Some(instr) = m.instructions {
        println!("  instructions: {instr}");
    }
    rows
}

/// Certificate summary section: load the `mo_certify` artifact (if one
/// has been generated) and print one row per kernel — classification,
/// declared vs recorded footprint, soundness flags — so the obs report
/// carries the verification posture next to the performance posture.
fn print_certificate_summary(path: &str) {
    println!("== certificates ({path}) ==");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            println!("no certificate artifact found; run `cargo run --release -p mo-bench --bin mo_certify` to generate one\n");
            return;
        }
    };
    let set = match mo_core::CertificateSet::from_json_str(&text) {
        Ok(s) => s,
        Err(e) => {
            println!("artifact unreadable: {e}\n");
            return;
        }
    };
    println!(
        "{:<10} {:>5} {:>4} {:<15} {:>9} {:>9} {:>6} {:>6}",
        "kernel", "n", "runs", "classification", "declared", "recorded", "fpOK", "schedOK"
    );
    for c in &set.certs {
        println!(
            "{:<10} {:>5} {:>4} {:<15} {:>9} {:>9} {:>6} {:>6}",
            c.kernel,
            c.n,
            c.runs,
            c.classification.name(),
            c.declared_words,
            c.recorded_words,
            if c.footprint_sound { "yes" } else { "NO" },
            if c.schedule_clean { "yes" } else { "NO" },
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Serve mode: request-path phase attribution for every registry kernel.
// ---------------------------------------------------------------------------

/// Problem size for the serve-mode phase report: big enough that
/// execution is visible in the spans, small enough that a burst of
/// jobs drains in well under the queue deadline.
fn serve_size(k: Kernel, smoke: bool) -> usize {
    match k {
        Kernel::Transpose => {
            if smoke {
                64
            } else {
                128
            }
        }
        Kernel::Matmul => {
            if smoke {
                48
            } else {
                96
            }
        }
        Kernel::Fft | Kernel::Sort | Kernel::Scan => {
            if smoke {
                1 << 10
            } else {
                1 << 12
            }
        }
        Kernel::SpmDv => {
            if smoke {
                1_000
            } else {
                2_048
            }
        }
    }
}

/// `--serve` mode: burst-submit every registry kernel through an
/// in-process server, reassemble the request spans, print the phase
/// attribution table, and gate queueing latency against what the
/// analytic batch cost explains. Never returns.
fn serve_phase_report(smoke: bool, gate: Option<f64>, out_path: &str) -> ! {
    use mo_obs::span::{self, Phase};
    use mo_serve::{JobSpec, ServeConfig, Server};

    let hier = HwHierarchy::detect();
    let cores = hier.cores();
    let l1 = hier.l1_capacity();
    let llc = hier
        .level_capacity(hier.levels().len().saturating_sub(1))
        .unwrap_or(l1);
    let batch_max = 8;
    let per: usize = if smoke { 12 } else { 48 };
    let server = Server::start(
        hier,
        ServeConfig {
            queue_cap: per.max(64),
            default_deadline: std::time::Duration::from_secs(30),
            batch_max,
            ..ServeConfig::default()
        },
    );
    let sink = Arc::new(TraceSink::new(cores));
    assert!(server.attach_sink(Arc::clone(&sink)));
    println!(
        "== serve phase attribution: burst of {per} jobs per kernel, batch_max {batch_max} ==\n"
    );
    for k in Kernel::ALL {
        let n = serve_size(k, smoke);
        let tickets: Vec<_> = (0..per)
            .map(|i| {
                server
                    .submit(JobSpec::new(k, n, 0x5eed ^ i as u64))
                    .unwrap_or_else(|r| panic!("{k} n={n} refused at submit: {r:?}"))
            })
            .collect();
        for t in tickets {
            let _ = t.wait();
        }
    }
    let snapshot = server.drain();
    let events = sink.drain();
    let set = span::assemble(&events);
    let stats = span::phase_stats(&set);
    print!(
        "{}",
        span::format_phase_table(&stats, |code| {
            Kernel::ALL
                .get(code as usize)
                .map(|k| k.name().to_string())
                .unwrap_or_else(|| format!("kernel{code}"))
        })
    );
    let dropped: u64 = sink.dropped_per_worker().iter().sum();
    println!(
        "spans: {} opened, {} closed, {} orphan closes, {} ring events dropped",
        set.opened, set.closed, set.orphan_closes, dropped
    );
    if dropped == 0 && !set.conserved() {
        eprintln!("serve report: span conservation failed on a drop-free run");
        std::process::exit(1);
    }

    println!("\n== queueing vs analytic batch cost ==");
    let mut breaches = Vec::new();
    for k in Kernel::ALL {
        let code = k.index() as u64;
        let Some(kp) = stats.get(&code).filter(|kp| kp.count > 0) else {
            breaches.push(format!(
                "{k}: no complete spans — phase attribution impossible"
            ));
            continue;
        };
        let (dom, dom_ns) = kp.dominant_phase(0.99);
        let q99 = kp.phases[Phase::Queue as usize].quantile_ns(0.99);
        let x99 = kp.phases[Phase::Execute as usize].quantile_ns(0.99);
        let sizes: Vec<u64> = set
            .spans
            .iter()
            .filter(|s| s.kernel == code && s.shed.is_none() && s.complete())
            .map(|s| s.batch_size.max(1))
            .collect();
        let avg_batch = sizes.iter().sum::<u64>() as f64 / sizes.len().max(1) as f64;
        // A burst of `per` same-kernel jobs drains in `per / batch`
        // waves, so the last arrival queues for at most that many batch
        // services — queueing beyond it is latency the analytic batch
        // cost cannot explain. The 1 ms floor absorbs wakeup jitter.
        let waves = (per as f64 / avg_batch.max(1.0)).ceil();
        let explained = waves * x99 as f64 + 1_000_000.0;
        let n = serve_size(k, smoke);
        let q_l1 = analytic_transfers(k, n, l1, BLOCK_WORDS) * avg_batch;
        let q_llc = analytic_transfers(k, n, llc, BLOCK_WORDS) * avg_batch;
        println!(
            "{k}: p99 dominant {} ({dom_ns} ns); queue p99 {q99} ns vs {waves:.0} waves of ~{avg_batch:.1}-job \
             batches x execute p99 {x99} ns; analytic batch cost L1 {q_l1:.0} / LLC {q_llc:.0} transfers",
            dom.name()
        );
        if let Some(factor) = gate {
            if q99 as f64 > factor * explained {
                breaches.push(format!(
                    "{k}: queue p99 {q99} ns > {factor} x batch-explained {explained:.0} ns — \
                     queueing diverges from the analytic batch cost"
                ));
            }
        }
    }
    // Hardware-witness divergence (measured/analytic transfers per
    // batch) rides along when `perf_event_open` is available; the same
    // ratios back the `moserve_witness_divergence` gauges.
    let divs: Vec<String> = snapshot
        .kernels
        .iter()
        .filter_map(|row| {
            let [d1, dl] = row.witness_divergence();
            (d1.is_some() || dl.is_some()).then(|| {
                let fmt = |d: Option<f64>| {
                    d.map(|d| format!("{d:.2}"))
                        .unwrap_or_else(|| "-".to_string())
                };
                format!("{} L1 {} LLC {}", row.kernel, fmt(d1), fmt(dl))
            })
        })
        .collect();
    if divs.is_empty() {
        println!("witness divergence: hardware witness unavailable (perf_event_open)");
    } else {
        println!(
            "witness divergence (measured/analytic): {}",
            divs.join("; ")
        );
    }

    let json = chrome::to_chrome_json(&events);
    chrome::validate(&json).expect("emitted chrome trace must validate");
    std::fs::write(out_path, &json).expect("write chrome trace");
    println!("wrote {out_path}: {} events", events.len());

    if !breaches.is_empty() {
        for b in &breaches {
            eprintln!("serve gate BREACH: {b}");
        }
        std::process::exit(1);
    }
    if let Some(factor) = gate {
        println!(
            "serve gate: queue p99 within {factor} x batch-explained latency for every kernel"
        );
    }
    std::process::exit(0);
}

/// Standalone `--validate <file>` mode: structural chrome-trace check.
fn validate_file(path: &str) -> ! {
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match chrome::validate(&json) {
        Ok(()) => {
            println!("validate: {path} is a well-formed chrome trace");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("validate: {path} FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if let Some(path) = flag_value("--validate") {
        validate_file(&path);
    }
    let out_path = flag_value("--out").unwrap_or_else(|| "obs_trace.json".to_string());
    let gate: Option<f64> = flag_value("--gate").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--gate takes a positive factor, got {v:?}"))
    });
    let backend = match flag_value("--backend").as_deref() {
        None | Some("both") => Backend::Both,
        Some("sim") => Backend::Sim,
        Some("perf") => Backend::Perf,
        Some(other) => panic!("--backend takes sim|perf|both, got {other:?}"),
    };
    if args.iter().any(|a| a == "--serve") {
        serve_phase_report(smoke, gate, &out_path);
    }

    // Tracing a 1-core machine shows no steals and no parallel forks;
    // substitute a flat 4-core shape so the report exercises the
    // scheduler even on small CI boxes.
    let mut hier = HwHierarchy::detect();
    if hier.cores() < 2 {
        hier = HwHierarchy::flat(4, hier.l1_capacity(), 1 << 22);
        println!("single-core machine detected; tracing a flat 4-core hierarchy instead\n");
    }

    let pool = SbPool::new(hier.clone());
    let info = pool.warm();
    let sink = Arc::new(TraceSink::new(info.cores));
    assert!(pool.attach_sink(Arc::clone(&sink)));
    let perf_attached = if backend.wants_perf() {
        match PerfWitness::try_new() {
            Ok(w) => {
                assert!(pool.attach_witness(Arc::new(w)));
                true
            }
            Err(e) => {
                println!("perf witness unavailable ({e}); continuing without hardware counters");
                false
            }
        }
    } else {
        false
    };
    println!(
        "pool: {} cores, {} resident workers, L1 {} words, {} cache levels\n",
        info.cores,
        info.resident_workers,
        info.l1_words,
        info.levels.len()
    );

    print_certificate_summary(
        &flag_value("--certs").unwrap_or_else(|| "certify/certificates.json".to_string()),
    );

    let last_level = hier.levels().len();
    let spec = host_spec(&hier);
    let mut all_events = Vec::new();
    let mut divergences = 0;
    for k in Kernel::ALL {
        let n = kernel_size(k, smoke);
        let (events, flags) = report_kernel(&pool, &sink, k, n);
        if perf_attached {
            // Per-task hardware deltas are already in the drain; roll
            // them up to a kernel-level measurement. The registry sizes
            // kernels by side (transpose/matmul), length (fft/sort) or
            // rows (spmdv, ~8 nonzeros per row) — map to the analytic
            // dimension the bound is parameterized on.
            let (n_eff, nnz) = match k {
                Kernel::Transpose => (n * n, 0),
                Kernel::SpmDv => (n, 8 * n),
                _ => (n, 0),
            };
            let run_events = events.clone();
            let mut w = TracedRunWitness::new(last_level, move || Ok(run_events.clone()));
            match (w.measure(), &spec) {
                (Ok(m), Ok(spec)) => {
                    print_witness_kernel(k, n_eff, nnz, &m, spec);
                    println!();
                }
                (Ok(m), Err(_)) => {
                    println!("{k} n={n} [perf]: {}", m.detail);
                }
                (Err(e), _) => println!("{k} n={n} [perf]: no measurement ({e})"),
            }
        }
        all_events.extend(events);
        divergences += flags;
    }

    let mut gate_breaches = Vec::new();
    if backend.wants_sim() {
        println!("== cache witness: measured per-level transfers vs analytic Q_i ==");
        match &spec {
            Ok(spec) => {
                println!("host map: {}\n", describe_spec(spec));
                for k in Kernel::ALL {
                    let rows = sim_witness_kernel(k, sim_size(k, smoke), spec);
                    for r in rows {
                        if let Some(factor) = gate {
                            if r.ratio() > factor {
                                gate_breaches.push(format!(
                                    "{} Q_{}: measured {} > analytic {:.0} x factor {}",
                                    r.kernel, r.level, r.measured, r.analytic, factor
                                ));
                            }
                        }
                    }
                }
                println!();
            }
            Err(e) => println!("sim backend skipped: {e}\n"),
        }
    }

    // One merged timeline: every kernel ran against the same sink, so
    // the timestamps are already a single coherent clock.
    all_events.sort_by_key(|e| e.ts_ns);
    let json = chrome::to_chrome_json(&all_events);
    chrome::validate(&json).expect("emitted chrome trace must validate");
    std::fs::write(&out_path, &json).expect("write chrome trace");
    println!(
        "wrote {out_path}: {} events ({} dropped at the rings), load it in Perfetto or chrome://tracing",
        all_events.len(),
        sink.dropped()
    );
    let drops = sink.dropped_per_worker();
    let per: Vec<String> = drops
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if i + 1 == drops.len() {
                format!("external:{d}")
            } else {
                format!("w{i}:{d}")
            }
        })
        .collect();
    println!("ring drops per worker: {}", per.join(" "));
    println!("divergences flagged across the suite: {divergences}");

    if let Some(factor) = gate {
        if gate_breaches.is_empty() {
            println!("gate: all sim-measured transfers within analytic bounds x {factor}");
        } else {
            for b in &gate_breaches {
                eprintln!("gate BREACH: {b}");
            }
            std::process::exit(1);
        }
    }

    if smoke {
        assert_overhead_small(&hier);
        println!("obs_report smoke: OK");
    }
}
