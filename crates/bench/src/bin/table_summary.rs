//! TabII — Table II: the consolidated summary. For each row of the
//! paper's results table, measure the quantity at two sizes and report
//! the measured/Θ ratio at both — stability of the ratio across scale is
//! the reproduction criterion.

use mo_algorithms::fft::fft_program;
use mo_algorithms::gep::matmul_program;
use mo_algorithms::listrank::{listrank_program, random_list};
use mo_algorithms::sort::sort_program;
use mo_algorithms::transpose::transpose_program;
use mo_bench::{default_machine, header, rand_f64, rand_u64, run_mo};
use mo_core::Recorder;
use no_framework::algs::fft::no_fft;
use no_framework::algs::listrank::no_listrank;
use no_framework::algs::ngep::{ngep_matmul, DOrder};
use no_framework::algs::scan::no_prefix_sum;
use no_framework::algs::sort::no_sort;
use no_framework::algs::transpose::no_transpose;

struct Row {
    problem: &'static str,
    time_ratios: (f64, f64),
    cache_ratios: (f64, f64),
    comm_ratios: (f64, f64),
}

fn print_rows(rows: &[Row]) {
    println!(
        "{:<22} {:>18} {:>18} {:>18}",
        "problem", "time ratio (2 n's)", "MO cache ratio", "NO comm ratio"
    );
    for r in rows {
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            r.problem,
            r.time_ratios.0,
            r.time_ratios.1,
            r.cache_ratios.0,
            r.cache_ratios.1,
            r.comm_ratios.0,
            r.comm_ratios.1,
        );
    }
    println!("\neach pair of columns = the measured/Θ ratio at the two problem sizes;");
    println!("a reproduced row is one whose pair is (close to) constant.");
}

fn main() {
    header(
        "TabII",
        "summary of results (Table II): ratio stability across scale",
    );
    let spec = default_machine();
    let p = spec.cores() as f64;
    let (q2, b2) = (spec.caches_at(2) as f64, spec.level(2).block as f64);
    let c2 = spec.level(2).capacity as f64;
    let (np, nb) = (16usize, 4usize); // NO evaluation point

    let mut rows = Vec::new();

    // --- prefix sums ---
    let mut t = (0.0, 0.0);
    let mut c = (0.0, 0.0);
    let mut cm = (0.0, 0.0);
    for (k, n) in [1usize << 12, 1 << 14].into_iter().enumerate() {
        let data = vec![1u64; n];
        let prog = Recorder::record(2 * n, |rec| {
            let a = rec.alloc_init(&data);
            mo_algorithms::scan::mo_reduce_sum(rec, a, n);
        });
        let r = run_mo(&prog, &spec);
        let tr = r.makespan as f64 / (n as f64 / p);
        let cr = r.cache_complexity(2) as f64 / (n as f64 / (q2 * b2));
        let (m, _) = no_prefix_sum(&vec![1u64; n]);
        let nr = m.communication_complexity(np, nb) as f64 / (np as f64).log2();
        if k == 0 {
            t.0 = tr;
            c.0 = cr;
            cm.0 = nr;
        } else {
            t.1 = tr;
            c.1 = cr;
            cm.1 = nr;
        }
    }
    rows.push(Row {
        problem: "prefix sum",
        time_ratios: t,
        cache_ratios: c,
        comm_ratios: cm,
    });

    // --- matrix transposition ---
    let mut t = (0.0, 0.0);
    let mut c = (0.0, 0.0);
    let mut cm = (0.0, 0.0);
    for (k, n) in [64usize, 128].into_iter().enumerate() {
        let data = rand_u64(n as u64, n * n, 1 << 30);
        let mt = transpose_program(&data, n);
        let r = run_mo(&mt.program, &spec);
        let n2 = (n * n) as f64;
        let tr = r.makespan as f64 / (n2 / p);
        let cr = r.cache_complexity(2) as f64 / (n2 / (q2 * b2));
        let (m, _) = no_transpose(&data, n);
        let nr = m.communication_complexity(np, nb) as f64 / (n2 / (np * nb) as f64);
        if k == 0 {
            t.0 = tr;
            c.0 = cr;
            cm.0 = nr;
        } else {
            t.1 = tr;
            c.1 = cr;
            cm.1 = nr;
        }
    }
    rows.push(Row {
        problem: "matrix transposition",
        time_ratios: t,
        cache_ratios: c,
        comm_ratios: cm,
    });

    // --- matrix multiplication (GEP row shares these bounds) ---
    let mut t = (0.0, 0.0);
    let mut c = (0.0, 0.0);
    let mut cm = (0.0, 0.0);
    for (k, n) in [32usize, 64].into_iter().enumerate() {
        let a = rand_f64(1, n * n);
        let b = rand_f64(2, n * n);
        let mp = matmul_program(&a, &b, n);
        let r = run_mo(&mp.program, &spec);
        let n3 = (n * n * n) as f64;
        let tr = r.makespan as f64 / (n3 / p);
        let cr = r.cache_complexity(2) as f64 / (n3 / (q2 * b2 * c2.sqrt()));
        let (m, _) = ngep_matmul(&a, &b, n, 4, DOrder::DStar);
        let nr = m.communication_complexity(np, nb) as f64
            / ((n * n) as f64 / ((np as f64).sqrt() * nb as f64));
        if k == 0 {
            t.0 = tr;
            c.0 = cr;
            cm.0 = nr;
        } else {
            t.1 = tr;
            c.1 = cr;
            cm.1 = nr;
        }
    }
    rows.push(Row {
        problem: "matmul / GEP",
        time_ratios: t,
        cache_ratios: c,
        comm_ratios: cm,
    });

    // --- FFT ---
    let mut t = (0.0, 0.0);
    let mut c = (0.0, 0.0);
    let mut cm = (0.0, 0.0);
    for (k, n) in [1usize << 10, 1 << 12].into_iter().enumerate() {
        let sig: Vec<(f64, f64)> = (0..n).map(|i| ((i as f64).sin(), 0.0)).collect();
        let fp = fft_program(&sig);
        let r = run_mo(&fp.program, &spec);
        let nf = n as f64;
        let tr = r.makespan as f64 / (nf * nf.log2() / p);
        let cr =
            r.cache_complexity(2) as f64 / ((nf / (q2 * b2)) * (nf.log2() / c2.log2()).max(1.0));
        let (m, _) = no_fft(&sig);
        let nr = m.communication_complexity(np, nb) as f64
            / ((nf / (np * nb) as f64) * (nf.ln() / ((n / np) as f64).ln()));
        if k == 0 {
            t.0 = tr;
            c.0 = cr;
            cm.0 = nr;
        } else {
            t.1 = tr;
            c.1 = cr;
            cm.1 = nr;
        }
    }
    rows.push(Row {
        problem: "FFT",
        time_ratios: t,
        cache_ratios: c,
        comm_ratios: cm,
    });

    // --- sorting ---
    let mut t = (0.0, 0.0);
    let mut c = (0.0, 0.0);
    let mut cm = (0.0, 0.0);
    for (k, n) in [1usize << 10, 1 << 12].into_iter().enumerate() {
        let data = rand_u64(9 + n as u64, n, 1 << 30);
        let sp = sort_program(&data);
        let r = run_mo(&sp.program, &spec);
        let nf = n as f64;
        let tr = r.makespan as f64 / (nf * nf.log2() / p);
        let cr =
            r.cache_complexity(2) as f64 / ((nf / (q2 * b2)) * (nf.log2() / c2.log2()).max(1.0));
        let (m, _) = no_sort(&data);
        let nr = m.communication_complexity(np, nb) as f64 / (nf / (np * nb) as f64);
        if k == 0 {
            t.0 = tr;
            c.0 = cr;
            cm.0 = nr;
        } else {
            t.1 = tr;
            c.1 = cr;
            cm.1 = nr;
        }
    }
    rows.push(Row {
        problem: "sorting",
        time_ratios: t,
        cache_ratios: c,
        comm_ratios: cm,
    });

    // --- list ranking ---
    let mut t = (0.0, 0.0);
    let mut c = (0.0, 0.0);
    let mut cm = (0.0, 0.0);
    for (k, n) in [1usize << 10, 1 << 12].into_iter().enumerate() {
        let succ = random_list(n, 21);
        let lp = listrank_program(&succ);
        let r = run_mo(&lp.program, &spec);
        let nf = n as f64;
        let tr = r.makespan as f64 / (nf * nf.log2() / p);
        let cr =
            r.cache_complexity(2) as f64 / ((nf / (q2 * b2)) * (nf.log2() / c2.log2()).max(1.0));
        let mut s2 = succ.clone();
        for v in s2.iter_mut() {
            if *v == n as u64 {
                *v = u64::MAX;
            }
        }
        let (m, _) = no_listrank(&s2);
        let nr = m.communication_complexity(np, nb) as f64 / (nf / (np * nb) as f64);
        if k == 0 {
            t.0 = tr;
            c.0 = cr;
            cm.0 = nr;
        } else {
            t.1 = tr;
            c.1 = cr;
            cm.1 = nr;
        }
    }
    rows.push(Row {
        problem: "list ranking",
        time_ratios: t,
        cache_ratios: c,
        comm_ratios: cm,
    });

    println!("machine: {spec}");
    println!("NO evaluation point: M(p = {np}, B = {nb})\n");
    print_rows(&rows);
}
