//! T3 — Theorem 3: SPMS-structured sorting, plus the NO column sort
//! (Table II row 6).

use mo_algorithms::sort::sort_program;
use mo_bench::{header, rand_u64, row, run_mo};
use no_framework::algs::sort::no_sort;

fn main() {
    header("T3", "multicore-oblivious sorting (SPMS structure, Thm 3)");
    for (name, spec) in mo_bench::machines() {
        println!("\n--- machine: {name} ---");
        let p = spec.cores() as f64;
        let b1 = spec.level(1).block as f64;
        for n in [1usize << 10, 1 << 12, 1 << 14] {
            let data = rand_u64(n as u64, n, u64::MAX >> 20);
            let sp = sort_program(&data);
            let r = run_mo(&sp.program, &spec);
            println!("n = {n}:");
            let nf = n as f64;
            let logn = nf.log2();
            let loglog = logn.log2().max(1.0);
            row(
                "parallel steps vs (n/(p loglog) + B1) log n loglog n",
                r.makespan as f64,
                (nf / (p * loglog) + b1) * logn * loglog,
            );
            for level in 1..=spec.cache_levels() {
                let qi = spec.caches_at(level) as f64;
                let bi = spec.level(level).block as f64;
                let ci = spec.level(level).capacity as f64;
                let logc = (logn / ci.log2()).max(1.0);
                row(
                    &format!("L{level} misses vs (n/(q_i B_i)) log_C n"),
                    r.cache_complexity(level) as f64,
                    (nf / (qi * bi)) * logc,
                );
            }
            row("speed-up vs p", r.speedup(), p);
        }
    }
    println!("\n--- NO column sort communication on M(p,B) (Table II row 6) ---");
    let n = 1 << 12;
    let (m, out) = no_sort(&rand_u64(3, n, u64::MAX >> 20));
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
    for (p, b) in [(16usize, 4usize), (16, 16), (64, 4)] {
        let comm = m.communication_complexity(p, b) as f64;
        row(
            &format!("comm p={p} B={b} vs n/(pB) per pass"),
            comm,
            n as f64 / (p * b) as f64,
        );
    }
    println!(
        "  (column sort runs a polylog number of passes; the paper notes the NO sort is slower)"
    );
}
