//! Launch a real multi-process D-BSP fleet and check it against the
//! simulator.
//!
//! ```text
//! cargo run --release -p mo-bench --bin mo_dist -- [flags]
//!
//!   --smoke        bounded CI run (small sizes, 4 workers)
//!   --workers W    fleet size, a power of two          [default 4]
//!   --sort-n N     distributed sort size (N PEs)       [default 1024]
//!   --ngep-n N     N-GEP matrix side                   [default 32]
//!   --kappa K      N-GEP block side                    [default 4]
//!   --out FILE     write the merged fleet /metrics artifact here
//!   --trace        fleet tracing: calibrate worker clocks, collect
//!                  and merge every worker's trace, write a Perfetto
//!                  artifact, print the observed-vs-analytic per-level
//!                  table and the straggler report, and gate trace
//!                  overhead against an untraced fleet (<5% + floor)
//!   --trace-out F  fleet trace artifact path (implies --trace)
//!                  [default mo_dist_fleet_trace.json]
//!
//!   worker --index I --workers W --coord ADDR [--trace 0|1]
//!                  internal: run one shard process (the parent
//!                  re-execs itself with this subcommand)
//! ```
//!
//! The parent binds the router, re-execs itself `W` times as `worker`
//! processes, and drives both network-oblivious kernels across the
//! fleet. For each kernel it re-runs the identical driver on the
//! in-process `NoMachine` and asserts:
//!
//! - bit-identical outputs (FNV checksum over the assembled words);
//! - identical per-superstep traffic signatures;
//! - socket words per D-BSP cluster level equal to the words the
//!   simulator's signature implies for a `W`-processor machine;
//!
//! then reports measured words-per-superstep against the analytic
//! M(p, B) communication complexity H(n, p, B), scrapes the merged
//! fleet `/metrics` view over HTTP, and exits non-zero on any
//! divergence — so the smoke run doubles as the end-to-end assertion
//! in CI.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command};

use mo_dist::{pair_level, DistOutcome, Partition, Router, WorkerConfig};
use no_framework::algs::{ngep, sort};
use no_framework::NoMachine;

struct Args {
    smoke: bool,
    workers: usize,
    sort_n: usize,
    ngep_n: usize,
    kappa: usize,
    out: Option<String>,
    trace: bool,
    trace_out: String,
}

fn usage(err: &str) -> ! {
    eprintln!("mo_dist: {err}");
    eprintln!(
        "usage: mo_dist [--smoke] [--workers W] [--sort-n N] [--ngep-n N] [--kappa K] \
         [--out FILE] [--trace] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        smoke: false,
        workers: 4,
        sort_n: 1024,
        ngep_n: 32,
        kappa: 4,
        out: None,
        trace: false,
        trace_out: "mo_dist_fleet_trace.json".to_string(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                .clone()
        };
        match flag.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.sort_n = 256;
                args.ngep_n = 16;
            }
            "--workers" => {
                args.workers = val("--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --workers"))
            }
            "--sort-n" => {
                args.sort_n = val("--sort-n")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --sort-n"))
            }
            "--ngep-n" => {
                args.ngep_n = val("--ngep-n")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --ngep-n"))
            }
            "--kappa" => {
                args.kappa = val("--kappa")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --kappa"))
            }
            "--out" => args.out = Some(val("--out")),
            "--trace" => args.trace = true,
            "--trace-out" => {
                args.trace = true;
                args.trace_out = val("--trace-out");
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if !args.workers.is_power_of_two() {
        usage("--workers must be a power of two");
    }
    args
}

/// The `worker` subcommand: one shard process.
fn run_worker_proc(argv: &[String]) -> ! {
    let (mut index, mut workers, mut coord, mut trace) = (None, None, None, false);
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let v = it
            .next()
            .unwrap_or_else(|| usage("worker flag needs a value"));
        match flag.as_str() {
            "--index" => index = v.parse().ok(),
            "--workers" => workers = v.parse().ok(),
            "--coord" => coord = Some(v.clone()),
            "--trace" => trace = v == "1",
            other => usage(&format!("unknown worker flag {other}")),
        }
    }
    let (Some(index), Some(workers), Some(coord)) = (index, workers, coord) else {
        usage("worker needs --index, --workers, --coord");
    };
    let mut cfg = WorkerConfig::new(index, workers, coord);
    cfg.trace = trace;
    match mo_dist::run_worker(cfg) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker {index}: {e}");
            std::process::exit(1);
        }
    }
}

fn spawn_fleet(workers: usize, trace: bool) -> (Router, Vec<Child>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let coord = listener.local_addr().expect("router addr").to_string();
    let exe = std::env::current_exe().expect("current_exe");
    let children: Vec<Child> = (0..workers)
        .map(|i| {
            Command::new(&exe)
                .args([
                    "worker",
                    "--index",
                    &i.to_string(),
                    "--workers",
                    &workers.to_string(),
                    "--coord",
                    &coord,
                    "--trace",
                    if trace { "1" } else { "0" },
                ])
                .spawn()
                .expect("spawn worker process")
        })
        .collect();
    let router = Router::accept_fleet(&listener, workers).expect("fleet bootstrap");
    (router, children)
}

/// Median wall time of `reps` fleet sorts — the traced-vs-untraced
/// overhead probe (median, not mean: loopback TCP runs jitter).
fn median_sort_ns(router: &Router, n: usize, reps: usize) -> u64 {
    let mut t: Vec<u64> = (0..reps.max(1))
        .map(|i| {
            let start = std::time::Instant::now();
            router.run_sort(n, 0x7ace + i as u64).expect("timed sort");
            start.elapsed().as_nanos() as u64
        })
        .collect();
    t.sort_unstable();
    t[t.len() / 2]
}

/// Plain HTTP GET (loopback, one shot).
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut s = TcpStream::connect(addr)?;
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)?;
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    if !buf.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::other(format!(
            "GET {path}: {}",
            buf.lines().next().unwrap_or("no response")
        )));
    }
    Ok(body)
}

/// Map the simulator's PE-level signature onto `W` workers: total
/// cross-worker words per D-BSP cluster level — what the sockets must
/// carry if the tier is faithful.
fn expected_socket_words(sig: &[Vec<(u32, u32, u64)>], n_pes: usize, workers: usize) -> Vec<u64> {
    let part = Partition::new(n_pes, workers);
    let levels = workers.trailing_zeros() as usize;
    let mut per_level = vec![0u64; levels.max(1)];
    for rows in sig {
        for &(s, d, w) in rows {
            let (sw, dw) = (part.owner(s as usize), part.owner(d as usize));
            if sw != dw {
                per_level[pair_level(sw, dw, workers)] += w;
            }
        }
    }
    per_level
}

/// Per-superstep cross-worker word totals (machine-wide), for the
/// words-per-superstep report.
fn words_per_superstep(sig: &[Vec<(u32, u32, u64)>], n_pes: usize, workers: usize) -> Vec<u64> {
    let part = Partition::new(n_pes, workers);
    sig.iter()
        .map(|rows| {
            rows.iter()
                .filter(|&&(s, d, _)| part.owner(s as usize) != part.owner(d as usize))
                .map(|&(_, _, w)| w)
                .sum()
        })
        .collect()
}

struct Verdict {
    label: String,
    ok: bool,
    report: String,
}

fn check_kernel(
    label: &str,
    sim: &NoMachine,
    sim_out: &[u64],
    got: &DistOutcome,
    n_pes: usize,
    workers: usize,
) -> Verdict {
    let sig = sim.traffic_signature();
    let mut problems = Vec::new();
    if got.output != sim_out {
        problems.push("output words diverge".to_string());
    }
    if got.supersteps != sim.supersteps() {
        problems.push(format!(
            "supersteps: fleet {} vs sim {}",
            got.supersteps,
            sim.supersteps()
        ));
    }
    if got.signature != sig {
        let at = got
            .signature
            .iter()
            .zip(&sig)
            .position(|(a, b)| a != b)
            .map(|s| s.to_string())
            .unwrap_or_else(|| "length".into());
        problems.push(format!("traffic signature diverges at superstep {at}"));
    }
    let expect_socket = expected_socket_words(&sig, n_pes, workers);
    if got.socket_words_per_level != expect_socket {
        problems.push(format!(
            "socket words per level {:?} != signature-implied {:?}",
            got.socket_words_per_level, expect_socket
        ));
    }
    // The analytic bound: H(n, p, B) on M(W, B), words-measure (B = 1)
    // and one blocked size, vs the measured per-superstep maxima.
    let h_words = sim
        .try_communication_complexity(workers, 1)
        .expect("valid M(p,1)");
    let h_blocked = sim
        .try_communication_complexity(workers, 32)
        .expect("valid M(p,32)");
    let wps = words_per_superstep(&sig, n_pes, workers);
    let busiest = wps.iter().copied().max().unwrap_or(0);
    let total_socket: u64 = got.socket_words_per_level.iter().sum();
    let report = format!(
        "{label}: {} supersteps, {} socket words by level {:?}\n\
         {label}: words/superstep total={} max={} mean={:.1}\n\
         {label}: analytic H(n,p=W,B=1)={h_words} blocks, H(n,p=W,B=32)={h_blocked} blocks",
        got.supersteps,
        total_socket,
        got.socket_words_per_level,
        wps.iter().sum::<u64>(),
        busiest,
        wps.iter().sum::<u64>() as f64 / wps.len().max(1) as f64,
    );
    Verdict {
        label: label.to_string(),
        ok: problems.is_empty(),
        report: if problems.is_empty() {
            report
        } else {
            format!("{report}\n{label}: FAILED: {}", problems.join("; "))
        },
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("worker") {
        run_worker_proc(&argv[1..]);
    }
    let args = parse_args(&argv);
    let seed = 0x5eed;

    println!(
        "mo_dist: spawning {} worker processes (sort n={}, ngep n={} kappa={})",
        args.workers, args.sort_n, args.ngep_n, args.kappa
    );
    let (router, mut children) = spawn_fleet(args.workers, args.trace);
    let metrics = router
        .serve_fleet_metrics("127.0.0.1:0")
        .expect("fleet metrics endpoint");
    if args.trace {
        let cals = router.calibrate_clocks(8).expect("clock calibration");
        for (w, c) in cals.iter().enumerate() {
            println!(
                "clock: worker {w} offset {} ns (min rtt {} ns)",
                c.offset_ns, c.rtt_ns
            );
        }
    }

    let mut verdicts = Vec::new();
    let mut outcomes: Vec<(&'static str, DistOutcome, usize)> = Vec::new();

    // Distributed NO sort vs simulator.
    {
        let input = mo_dist::data::sort_input(args.sort_n, seed);
        let mut sim = NoMachine::new(args.sort_n);
        sort::sort_program(&mut sim, &input);
        let sim_out: Vec<u64> = (0..args.sort_n).map(|pe| sim.mem(pe)[0]).collect();
        let got = router.run_sort(args.sort_n, seed).expect("fleet sort");
        verdicts.push(check_kernel(
            "no_sort",
            &sim,
            &sim_out,
            &got,
            args.sort_n,
            args.workers,
        ));
        outcomes.push(("no_sort", got, args.sort_n));
    }

    // Distributed N-GEP (Floyd–Warshall) vs simulator.
    {
        let (n, kappa) = (args.ngep_n, args.kappa);
        let input = mo_dist::data::ngep_input(n, seed);
        let nb = n / kappa;
        let mut sim = NoMachine::new(nb * nb);
        ngep::ngep_program_on(
            &mut sim,
            &input,
            n,
            kappa,
            mo_dist::data::fw_update,
            ngep::UpdateSet::All,
            ngep::DOrder::DStar,
        );
        let mut sim_out = vec![0u64; n * n];
        for bi in 0..nb {
            for bj in 0..nb {
                let block = sim.mem(ngep::morton(bi, bj));
                for i in 0..kappa {
                    for j in 0..kappa {
                        sim_out[(bi * kappa + i) * n + bj * kappa + j] = block[i * kappa + j];
                    }
                }
            }
        }
        let got = router.run_ngep(n, kappa, seed).expect("fleet ngep");
        verdicts.push(check_kernel(
            "ngep",
            &sim,
            &sim_out,
            &got,
            nb * nb,
            args.workers,
        ));
        outcomes.push(("ngep", got, nb * nb));
    }

    for v in &verdicts {
        println!("{}", v.report);
    }

    // --trace: the fleet observability pass — live per-level tables,
    // the overhead gate, and the merged Perfetto artifact.
    let mut trace_ok = true;
    if args.trace {
        for (label, got, n_pes) in &outcomes {
            let rows = mo_dist::level_table(got, *n_pes, args.workers);
            if rows.iter().any(|r| r.divergent) {
                eprintln!("{label}: measured wire words diverge from the signature");
                trace_ok = false;
            }
            println!(
                "{label}: observed vs analytic per cluster level:\n{}",
                mo_dist::format_level_table(&rows)
            );
        }

        // Overhead gate, in the obs_report mold: tracing must cost the
        // fleet < 5% wall time plus a fixed floor for loopback jitter.
        let reps = if args.smoke { 5 } else { 3 };
        let traced_ns = median_sort_ns(&router, args.sort_n, reps);
        let (plain_router, mut plain_children) = spawn_fleet(args.workers, false);
        let plain_ns = median_sort_ns(&plain_router, args.sort_n, reps);
        plain_router.shutdown();
        for child in &mut plain_children {
            let _ = child.wait();
        }
        let limit_ns = plain_ns + plain_ns / 20 + 25_000_000;
        println!(
            "trace overhead: traced {:.3} ms vs plain {:.3} ms (limit {:.3} ms)",
            traced_ns as f64 / 1e6,
            plain_ns as f64 / 1e6,
            limit_ns as f64 / 1e6
        );
        if traced_ns > limit_ns {
            eprintln!("trace overhead gate FAILED: tracing perturbs the fleet");
            trace_ok = false;
        }

        // Collect, merge, validate, and persist the fleet timeline.
        let streams = router.collect_trace().expect("collect fleet trace");
        let json = mo_obs::fleet::to_chrome_json(&streams);
        if let Err(e) = mo_obs::chrome::validate(&json) {
            eprintln!("fleet trace artifact does not validate: {e}");
            trace_ok = false;
        }
        std::fs::write(&args.trace_out, &json).expect("write fleet trace artifact");
        println!(
            "fleet trace: {} events from {} workers written to {}",
            streams.iter().map(|s| s.events.len()).sum::<usize>(),
            streams.len(),
            args.trace_out
        );
        print!(
            "{}",
            mo_dist::straggler_report(&mo_obs::fleet::summarize(&streams))
        );
    }

    // The merged fleet view over HTTP, with per-shard sanity checks.
    let fleet_text = http_get(&metrics.addr().to_string(), "/metrics").expect("scrape fleet view");
    let mut metrics_ok = true;
    for shard in 0..args.workers {
        let needle = format!("shard=\"{shard}\"");
        if !fleet_text.contains(&needle) {
            eprintln!("fleet view: no samples labeled {needle}");
            metrics_ok = false;
        }
    }
    let mut families = vec![
        "modist_fleet_workers",
        "modist_socket_words_total",
        "modist_recv_words_total",
        "moserve_jobs_submitted_total",
    ];
    if args.trace {
        // The trace collection ran, so the merged view must carry the
        // barrier-wait histograms and per-shard ring-drop counters.
        families.push("modist_barrier_wait_seconds_bucket");
        families.push("modist_trace_ring_dropped_total");
    }
    for family in families {
        if !fleet_text.contains(family) {
            eprintln!("fleet view: missing family {family}");
            metrics_ok = false;
        }
    }
    println!(
        "fleet view: {} lines from {} shards at http://{}/metrics{}",
        fleet_text.lines().count(),
        args.workers,
        metrics.addr(),
        if metrics_ok { "" } else { " (INCOMPLETE)" }
    );

    if let Some(path) = &args.out {
        std::fs::write(path, &fleet_text).expect("write fleet metrics artifact");
        println!("fleet view written to {path}");
    }

    drop(metrics);
    router.shutdown();
    let mut clean = true;
    for (i, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait worker");
        if !status.success() {
            eprintln!("worker {i} exited with {status}");
            clean = false;
        }
    }

    let all_ok = verdicts.iter().all(|v| v.ok) && metrics_ok && clean && trace_ok;
    for v in &verdicts {
        println!(
            "{}: {}",
            v.label,
            if v.ok {
                "sim == sockets (bit-identical)"
            } else {
                "DIVERGED"
            }
        );
    }
    if !all_ok {
        std::process::exit(1);
    }
    println!(
        "mo_dist: {} worker processes, all checks passed{}",
        args.workers,
        if args.smoke { " (smoke)" } else { "" }
    );
}
