//! TabI — Table I: I-GEP's 𝒟 vs N-GEP's 𝒟*.
//!
//! Verifies (a) identical results on commutative GEP computations,
//! (b) equal communication volume but a strictly lower per-processor
//! h-relation for 𝒟* (no U/V quadrant is consumed twice per round).

use mo_bench::{header, rand_f64, val};
use no_framework::algs::ngep::{ngep_matmul, ngep_program, DOrder, UpdateSet};

fn fw(x: f64, u: f64, v: f64, _w: f64) -> f64 {
    x.min(u + v)
}

fn main() {
    header(
        "TabI",
        "recursive call orders: I-GEP 𝒟 vs N-GEP 𝒟* (Table I)",
    );
    let n = 32;
    let kappa = 4;
    let a = rand_f64(1, n * n);
    let b = rand_f64(2, n * n);
    let (m_d, out_d) = ngep_matmul(&a, &b, n, kappa, DOrder::IGep);
    let (m_ds, out_ds) = ngep_matmul(&a, &b, n, kappa, DOrder::DStar);
    val(
        "matmul results identical (commutative)",
        (out_d == out_ds) as u64 as f64,
    );
    val("total words moved, D", m_d.total_words() as f64);
    val("total words moved, D*", m_ds.total_words() as f64);
    println!("\nper-processor communication complexity (the h-relation that M(p,B) charges):");
    for (p, bsz) in [(16usize, 4usize), (64, 4), (64, 16)] {
        let hd = m_d.communication_complexity(p, bsz) as f64;
        let hds = m_ds.communication_complexity(p, bsz) as f64;
        println!(
            "  p={p:<3} B={bsz:<3}  D: {hd:>8.0}   D*: {hds:>8.0}   D* saves {:.1}%",
            100.0 * (1.0 - hds / hd)
        );
    }

    println!("\nnon-commutative check: D and D* may differ when f is not commutative");
    // f(x,u,v,w) = x*2 + u - v is NOT commutative in the §V-B sense.
    fn nc(x: f64, u: f64, v: f64, _w: f64) -> f64 {
        2.0 * x + u - v
    }
    let d0 = rand_f64(3, n * n);
    let (_, r1) = ngep_program(&d0, n, kappa, nc, UpdateSet::All, DOrder::IGep);
    let (_, r2) = ngep_program(&d0, n, kappa, nc, UpdateSet::All, DOrder::DStar);
    let diff = r1.iter().zip(&r2).filter(|(a, b)| a != b).count();
    val("entries that differ under reordering", diff as f64);

    println!("\ncommutative instance (Floyd–Warshall): orders agree");
    let d = mo_bench::fw_instance(n, 7);
    let (_, f1) = ngep_program(&d, n, kappa, fw, UpdateSet::All, DOrder::IGep);
    let (_, f2) = ngep_program(&d, n, kappa, fw, UpdateSet::All, DOrder::DStar);
    val("FW results identical", (f1 == f2) as u64 as f64);
}
