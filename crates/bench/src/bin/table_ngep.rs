//! T6 — Theorem 6: N-GEP on M(p,B) and D-BSP.
//!
//! Communication vs Θ(n²/(√p·B) + n·log²n), computation vs Θ(n³/p), and
//! D-BSP communication time under a geometric (g, B) profile.

use mo_bench::{fw_instance, header, row, val};
use no_framework::algs::ngep::{ngep_program, DOrder, UpdateSet};

fn fw(x: f64, u: f64, v: f64, _w: f64) -> f64 {
    x.min(u + v)
}

fn main() {
    header("T6", "N-GEP costs on M(p,B) and D-BSP (Thm 6)");
    for n in [16usize, 32, 64] {
        let kappa = 4;
        let d = fw_instance(n, 3);
        let (m, _) = ngep_program(&d, n, kappa, fw, UpdateSet::All, DOrder::DStar);
        println!(
            "\nn = {n} (kappa = {kappa}, N = {} PEs):",
            (n / kappa) * (n / kappa)
        );
        val("supersteps", m.supersteps() as f64);
        for (p, b) in [(4usize, 4usize), (16, 4), (16, 16)] {
            if p > (n / kappa) * (n / kappa) {
                continue;
            }
            let comm = m.communication_complexity(p, b) as f64;
            let pred = (n * n) as f64 / ((p as f64).sqrt() * b as f64);
            row(&format!("comm p={p} B={b} vs n^2/(sqrt(p) B)"), comm, pred);
            let compute = m.computation_complexity(p) as f64;
            row(
                &format!("comp p={p} vs n^3/p"),
                compute,
                (n * n * n) as f64 / p as f64,
            );
        }
        // D-BSP with geometric bandwidth/block profiles: g_i halves and
        // B_i shrinks toward the leaves (as in the theorem's premise).
        let p = 16usize;
        let logp = p.trailing_zeros() as usize;
        let g: Vec<f64> = (0..logp).map(|i| 2f64.powi((logp - i) as i32)).collect();
        let bs: Vec<usize> = (0..logp).map(|i| 8usize >> i.min(3)).collect();
        let t = m.dbsp_time(p, &g, &bs);
        val(&format!("D-BSP(16, g={g:?}, B={bs:?}) time"), t);
    }
    println!("\nshape check: comm ratios stable across n; comp ratio ≈ updates/PE constant.");
}
