//! CSV scaling series for plotting: for each problem, the measured
//! parallel steps and per-level misses across a size sweep on the stock
//! machines, plus NO communication across (p, B). This regenerates the
//! *data series* behind every Table II row; pipe to a file and plot.
//!
//! ```sh
//! cargo run --release -p mo-bench --bin table_scaling > scaling.csv
//! ```

use mo_algorithms::fft::fft_program;
use mo_algorithms::gep::matmul_program;
use mo_algorithms::listrank::{listrank_program, random_list};
use mo_algorithms::sort::sort_program;
use mo_algorithms::transpose::transpose_program;
use mo_bench::{machines, rand_f64, rand_u64, run_mo};
use mo_core::Program;

fn emit(problem: &str, machine: &str, n: usize, prog: &Program, spec: &hm_model::MachineSpec) {
    let r = run_mo(prog, spec);
    let mut misses = String::new();
    for level in 1..=4 {
        if level <= spec.cache_levels() {
            misses.push_str(&format!(",{}", r.cache_complexity(level)));
        } else {
            misses.push(',');
        }
    }
    println!(
        "{problem},{machine},{n},{},{},{:.3}{misses}",
        r.work,
        r.makespan,
        r.speedup()
    );
}

fn main() {
    println!("problem,machine,n,work,steps,speedup,l1_miss,l2_miss,l3_miss,l4_miss");
    for (mname, spec) in machines() {
        for n in [256usize, 1024, 4096] {
            let sp = sort_program(&rand_u64(n as u64, n, 1 << 30));
            emit("sort", &mname, n, &sp.program, &spec);
            let lp = listrank_program(&random_list(n, n as u64));
            emit("listrank", &mname, n, &lp.program, &spec);
            let sig: Vec<(f64, f64)> = (0..n).map(|t| ((t as f64).sin(), 0.0)).collect();
            let fp = fft_program(&sig);
            emit("fft", &mname, n, &fp.program, &spec);
        }
        for n in [32usize, 64, 128] {
            let mt = transpose_program(&rand_u64(7, n * n, 1 << 30), n);
            emit("transpose", &mname, n, &mt.program, &spec);
            let mm = matmul_program(&rand_f64(1, n * n), &rand_f64(2, n * n), n);
            emit("matmul", &mname, n, &mm.program, &spec);
        }
    }
    // NO communication sweep (CSV section 2).
    println!();
    println!("problem,n,p,B,comm_blocks,comp_ops,supersteps");
    for n in [256usize, 1024] {
        let data = rand_u64(3, n, 1 << 30);
        let (m, _) = no_framework::algs::sort::no_sort(&data);
        for p in [4usize, 16, 64] {
            for b in [1usize, 4, 16] {
                println!(
                    "no_sort,{n},{p},{b},{},{},{}",
                    m.communication_complexity(p, b),
                    m.computation_complexity(p),
                    m.supersteps()
                );
            }
        }
        let sig: Vec<(f64, f64)> = (0..n).map(|t| (t as f64, 0.0)).collect();
        let (mf, _) = no_framework::algs::fft::no_fft(&sig);
        for p in [4usize, 16, 64] {
            for b in [1usize, 4, 16] {
                println!(
                    "no_fft,{n},{p},{b},{},{},{}",
                    mf.communication_complexity(p, b),
                    mf.computation_complexity(p),
                    mf.supersteps()
                );
            }
        }
    }
}
