//! F1 — Fig. 1: the HM model instantiated for h = 5, with shadows.

use hm_model::{CacheId, MachineSpec, Topology};

fn main() {
    mo_bench::header("F1", "the HM model (Fig. 1, h = 5)");
    let spec = MachineSpec::example_h5();
    println!("{spec}\n");
    let topo = Topology::new(&spec);
    println!("shadows (cf. the shaded region of Fig. 1):");
    for level in (1..=spec.cache_levels()).rev() {
        print!("  L{level}: ");
        for j in 0..topo.caches_at(level) {
            let s = topo.shadow(CacheId::new(level, j));
            print!("[cores {}..{}] ", s.lo, s.hi - 1);
        }
        println!();
    }
    println!("\ncapacity constraint C_i >= p_i * C_(i-1):");
    for i in 2..=spec.cache_levels() {
        let (ci, ci1, pi) = (
            spec.level(i).capacity,
            spec.level(i - 1).capacity,
            spec.level(i).fanout,
        );
        println!("  C_{i} = {ci} >= p_{i} * C_{} = {}", i - 1, pi * ci1);
    }
    println!(
        "\nmax cores bound p <= K * C_(h-1)/C_1 = {}  (actual p = {})",
        spec.level(spec.cache_levels()).capacity / spec.level(1).capacity,
        spec.cores()
    );
}
