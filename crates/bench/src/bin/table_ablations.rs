//! Ablations of the design choices DESIGN.md calls out:
//!
//! A1. Theorem 5's cache-size proviso: I-GEP speed-up as the
//!     `C_i / (p_i·C_{i-1})` slack shrinks (the `c_i = 2log²(C_i/C_{i-1})`
//!     condition in the theorem statement).
//! A2. The CGC `≥ B₁` segment rule: ping-ponging and misses as the block
//!     size grows (the "technical point" of §III).
//! A3. Footnote 3/4: deterministic-coin-flipping rounds in MO-IS — color
//!     count, independent-set size, and total work vs `k`.
//! A4. SB admission: least-loaded anchoring vs what happens under the
//!     hint-ignoring policy (makespan and top-level misses).

use hm_model::MachineSpec;
use mo_algorithms::gep::matmul_program;
use mo_algorithms::listrank::{listrank_program_with_rounds, random_list, reference_ranks};
use mo_algorithms::transpose::transpose_program;
use mo_bench::{header, rand_f64, rand_u64, run_flat, run_mo, val};

fn main() {
    header("A1", "Thm 5 proviso: I-GEP vs shrinking shared-cache slack");
    let n = 64;
    let a = rand_f64(1, n * n);
    let b = rand_f64(2, n * n);
    let mp = matmul_program(&a, &b, n);
    for slack in [1usize, 4, 16, 64] {
        // C2 = slack * p * C1; smaller slack starves concurrent anchors.
        let c1 = 1 << 10;
        let p = 8;
        let spec = MachineSpec::three_level(p, c1, 8, slack * p * c1, 32).unwrap();
        let r = run_mo(&mp.program, &spec);
        println!(
            "  C2/(p*C1) = {slack:>3}: speed-up {:>5.2}, L2 misses {:>8}",
            r.speedup(),
            r.cache_complexity(2)
        );
    }

    header("A2", "CGC >= B1 segment rule: ping-ponging vs block size");
    let n = 128;
    let data = rand_u64(3, n * n, 1 << 30);
    let mt = transpose_program(&data, n);
    for b1 in [1usize, 4, 8, 16] {
        let spec = MachineSpec::three_level(8, 1 << 10, b1, 1 << 18, 32.max(b1)).unwrap();
        let r = run_mo(&mt.program, &spec);
        println!(
            "  B1 = {b1:>2}: units {:>5}, ping-pongs {:>6}, L1 misses {:>7}",
            r.units,
            r.pingpongs,
            r.cache_complexity(1)
        );
    }
    println!("  (larger B1 => coarser segments => fewer write interleavings)");

    header("A3", "footnote 3/4: DCF coloring rounds k in MO-IS / MO-LR");
    let n = 1 << 12;
    let succ = random_list(n, 9);
    let want = reference_ranks(&succ);
    for k in [1usize, 2, 3, 4] {
        let lp = listrank_program_with_rounds(&succ, k);
        assert_eq!(lp.ranks(), want, "k = {k}");
        let spec = mo_bench::default_machine();
        let r = run_mo(&lp.program, &spec);
        println!(
            "  k = {k}: total work {:>9}, steps {:>9}, speed-up {:>5.2}",
            r.work,
            r.makespan,
            r.speedup()
        );
    }
    println!("  (k = 2 is the paper's choice; more rounds shrink colors, add passes)");

    header("A4", "anchoring vs none: makespan and shared misses");
    let data = rand_u64(4, 1 << 12, 1 << 30);
    let sp = mo_algorithms::sort::sort_program(&data);
    let spec = MachineSpec::example_h5();
    let mo = run_mo(&sp.program, &spec);
    let flat = run_flat(&sp.program, &spec);
    val("MO   makespan", mo.makespan as f64);
    val("flat makespan", flat.makespan as f64);
    for level in 1..=spec.cache_levels() {
        println!(
            "  L{level} misses: MO {:>8}  flat {:>8}",
            mo.cache_complexity(level),
            flat.cache_complexity(level)
        );
    }
}
