//! Per-algorithm verification table: run `mo_core::verify` over every
//! shipped MO algorithm and print tasks, strands, swept operations,
//! conflicting accesses, hint findings, and footprint slack.
//!
//! Every row of a healthy build reads `0` conflicts and `0` violations:
//! the acceptance gate for the scheduler theorems (§IV–§V) applies to
//! the hint semantics, and this table is the evidence the shipped
//! algorithms satisfy them. Warnings flag structure that weakens only
//! constant factors (e.g. empty CGC iterations on non-leaf tree nodes).

use mo_algorithms as algs;
use mo_bench::{header, rand_f64, rand_u64};
use mo_core::{verify, Program, Recorder, VerifyReport};

fn report_row(name: &str, prog: &Program) -> VerifyReport {
    let r = verify(prog);
    println!(
        "  {name:<14} {:>6} tasks {:>8} strands {:>10} ops | {:>4} conflicts {:>4} violations \
         {:>4} warnings | footprint {:>9} slack {:>6}..{}",
        r.tasks,
        r.strands,
        r.work,
        r.conflicts,
        r.violation_count,
        r.warnings.len(),
        r.max_footprint,
        r.min_slack,
        r.max_slack,
    );
    for race in &r.races {
        println!("      !! {race}");
    }
    for v in &r.violations {
        println!("      !! {v}");
    }
    r
}

fn main() {
    header(
        "V",
        "mo-verify: race & hint verification of every MO algorithm",
    );
    let mut dirty = 0u32;

    let n = 64;
    let mt = algs::transpose::transpose_program(&rand_u64(1, n * n, 1 << 30), n);
    dirty += !report_row("transpose", &mt.program).is_clean() as u32;

    let input: Vec<(f64, f64)> = rand_f64(2, 1 << 12).iter().map(|&x| (x, 0.0)).collect();
    let fp = algs::fft::fft_program(&input);
    dirty += !report_row("fft", &fp.program).is_clean() as u32;

    let sp = algs::sort::sort_program(&rand_u64(3, 1 << 12, u64::MAX >> 33));
    dirty += !report_row("sort", &sp.program).is_clean() as u32;

    let mesh = algs::separator::mesh_matrix(32);
    let x = rand_f64(4, mesh.n);
    let sv = algs::spmdv::spmdv_program(&mesh, &x);
    dirty += !report_row("spmdv", &sv.program).is_clean() as u32;

    let gn = 64;
    let gp = algs::gep::igep_program(
        &mo_bench::fw_instance(gn, 5),
        gn,
        algs::gep::fw_update,
        algs::gep::UpdateSet::All,
    );
    dirty += !report_row("igep-fw", &gp.program).is_clean() as u32;

    let a = rand_f64(6, gn * gn);
    let b = rand_f64(7, gn * gn);
    let mm = algs::gep::matmul_program(&a, &b, gn);
    dirty += !report_row("igep-matmul", &mm.program).is_clean() as u32;

    let sn = 1 << 12;
    let data = rand_u64(8, sn, 1 << 20);
    let scan_prog = Recorder::record(2 * sn, |rec| {
        let arr = rec.alloc_init(&data);
        let _ = algs::scan::mo_prefix_sum_total(rec, arr, sn);
    });
    dirty += !report_row("prefix-sum", &scan_prog).is_clean() as u32;

    let lp = algs::listrank::listrank_program(&algs::listrank::random_list(2000, 9));
    dirty += !report_row("listrank", &lp.program).is_clean() as u32;

    let cn = 400usize;
    let edges: Vec<(usize, usize)> = (0..cn)
        .map(|v| (v, (v * 13 + 7) % cn))
        .filter(|&(u, v)| u != v)
        .collect();
    let cp = algs::graph::cc::cc_program(cn, &edges);
    dirty += !report_row("cc", &cp.program).is_clean() as u32;

    let tree = algs::graph::Tree::random(1000, 11);
    let ep = algs::graph::euler::euler_program(&tree);
    dirty += !report_row("euler-tour", &ep.program).is_clean() as u32;

    println!();
    if dirty == 0 {
        println!("  all algorithms verify clean");
    } else {
        println!("  {dirty} algorithm(s) FAILED verification");
        std::process::exit(1);
    }
}
