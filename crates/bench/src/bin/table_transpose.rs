//! F2/T1 — Fig. 2 & Theorem 1: MO-MT matrix transposition.
//!
//! Checks, per machine and size:
//! * parallel steps vs Θ(n²/p + B₁),
//! * per-level misses vs Θ(n²/(q_i·B_i) + B_i),
//! * the naive baseline's thrashing and the recursive baseline's depth.

use mo_algorithms::transpose::transpose_program;
use mo_baselines::transpose::{naive_transpose_program, recursive_transpose_program};
use mo_bench::{header, rand_u64, row, run_mo, run_serial, val};

fn main() {
    header("F2/T1", "MO-MT matrix transposition (Fig. 2, Thm 1)");
    for (name, spec) in mo_bench::machines() {
        println!("\n--- machine: {name} ---");
        let p = spec.cores() as f64;
        let b1 = spec.level(1).block as f64;
        for n in [64usize, 128, 256] {
            let data = rand_u64(7 + n as u64, n * n, u64::MAX >> 20);
            let mt = transpose_program(&data, n);
            let r = run_mo(&mt.program, &spec);
            println!("n = {n}:");
            let n2 = (n * n) as f64;
            row(
                "parallel steps vs n^2/p + B1",
                r.makespan as f64,
                4.0 * n2 / p + b1,
            );
            for level in 1..=spec.cache_levels() {
                let qi = spec.caches_at(level) as f64;
                let bi = spec.level(level).block as f64;
                row(
                    &format!("L{level} misses vs n^2/(q_i B_i) + B_i"),
                    r.cache_complexity(level) as f64,
                    n2 / (qi * bi) + bi,
                );
            }
            // Baselines at the largest size only (serial cache behaviour).
            if n == 256 {
                let (nav, _) = naive_transpose_program(&data, n);
                let (rec, _) = recursive_transpose_program(&data, n);
                let rn = run_serial(&nav, &spec);
                let rr = run_mo(&rec, &spec);
                val(
                    "naive baseline L1 misses (thrashes ~n^2)",
                    rn.cache_complexity(1) as f64,
                );
                val(
                    "recursive CO baseline L1 misses",
                    rr.cache_complexity(1) as f64,
                );
                val(
                    "recursive CO baseline steps (Θ(log n) depth)",
                    rr.makespan as f64,
                );
                val("MO-MT steps (O(B1) depth)", r.makespan as f64);
            }
        }
    }
    println!("\nshape check: ratios should be stable across n (constant factors ok).");
}
