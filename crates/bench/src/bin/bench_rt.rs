//! Runtime perf trajectory: every real kernel against its serial
//! baseline, written to `BENCH_rt.json` at the repo root.
//!
//! Unlike the Criterion-style `wallclock` bench (interactive, shape
//! oriented), this binary produces a small machine-readable record —
//! median-of-k nanoseconds per kernel, serial vs pool, plus the core
//! count — so successive PRs can track the runtime's wall-clock
//! trajectory in version control.
//!
//! `--smoke` runs tiny sizes and asserts that every kernel's checksum
//! (via the registry's deterministic seed-generated jobs) is identical
//! on a 1-core pool and on the detected pool: a cheap CI guard that the
//! work-stealing runtime never changes results.
//!
//! The record is stamped with a schema version and the host topology
//! (cores plus every cache level) so numbers from different machines or
//! record layouts are never silently compared: when the output file
//! already exists with a different schema, the run refuses to overwrite
//! it unless `--force` is given.

use std::hint::black_box;
use std::time::Instant;

use mo_algorithms::gep::floyd_warshall_reference;
use mo_algorithms::real::registry::{run_kernel, Kernel};
use mo_algorithms::real::{
    par_fft_with_scratch, par_floyd_warshall, par_matmul, par_sort_with_scratch, par_spmdv,
    par_transpose, serial_fft, C64,
};
use mo_baselines::matmul::naive_matmul;
use mo_baselines::transpose::naive_transpose;
use mo_core::rt::{HwHierarchy, SbPool};

/// Median-of-`reps` wall-clock nanoseconds of `f` (one warmup call).
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f());
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn rand_f64(seed: u64, n: usize) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f64) / 65536.0
        })
        .collect()
}

fn rand_u64(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 20
        })
        .collect()
}

/// Deterministic CSR instance: `m` rows, ~`deg` nonzeros each.
fn csr(m: usize, deg: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut x = seed | 1;
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..m {
        for _ in 0..deg {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cols.push(((x >> 33) as usize) % m);
            vals.push(((x >> 20) % 1000) as f64 * 0.125);
        }
        row_ptr.push(cols.len());
    }
    (row_ptr, cols, vals)
}

struct Row {
    kernel: &'static str,
    n: usize,
    serial_ns: u64,
    pool_ns: u64,
}

fn run_suite(pool: &SbPool, reps: usize, smoke: bool) -> Vec<Row> {
    let mut rows = Vec::new();

    // Transpose.
    let n = if smoke { 128 } else { 1024 };
    let a = rand_f64(1, n * n);
    let mut out = vec![0.0; n * n];
    rows.push(Row {
        kernel: "transpose",
        n,
        serial_ns: median_ns(reps, || naive_transpose(&a, &mut out, n)),
        pool_ns: median_ns(reps, || par_transpose(pool, &a, &mut out, n)),
    });

    // Matmul.
    let n = if smoke { 64 } else { 256 };
    let a = rand_f64(2, n * n);
    let b = rand_f64(3, n * n);
    let mut c = vec![0.0; n * n];
    rows.push(Row {
        kernel: "matmul",
        n,
        serial_ns: median_ns(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            naive_matmul(&mut c, &a, &b, n)
        }),
        pool_ns: median_ns(reps, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            par_matmul(pool, &mut c, &a, &b, n)
        }),
    });

    // FFT.
    let n = if smoke { 1 << 10 } else { 1 << 18 };
    let input: Vec<C64> = (0..n)
        .map(|t| ((t as f64 * 0.3).sin(), (t as f64 * 0.7).cos()))
        .collect();
    let mut buf = input.clone();
    rows.push(Row {
        kernel: "fft",
        n,
        serial_ns: median_ns(reps, || {
            buf.copy_from_slice(&input);
            serial_fft(&mut buf);
        }),
        pool_ns: {
            let mut scratch = Vec::new();
            median_ns(reps, || {
                buf.copy_from_slice(&input);
                par_fft_with_scratch(pool, &mut buf, &mut scratch);
            })
        },
    });

    // Sort.
    let n = if smoke { 1 << 12 } else { 1 << 20 };
    let data = rand_u64(5, n);
    let mut buf = data.clone();
    rows.push(Row {
        kernel: "sort",
        n,
        serial_ns: median_ns(reps, || {
            buf.copy_from_slice(&data);
            buf.sort_unstable();
        }),
        pool_ns: {
            let mut scratch = Vec::new();
            median_ns(reps, || {
                buf.copy_from_slice(&data);
                par_sort_with_scratch(pool, &mut buf, &mut scratch);
            })
        },
    });

    // SpM-DV.
    let m = if smoke { 2_000 } else { 200_000 };
    let (row_ptr, cols, vals) = csr(m, 8, 7);
    let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut y = vec![0.0f64; m];
    rows.push(Row {
        kernel: "spmdv",
        n: m,
        serial_ns: median_ns(reps, || {
            for (r, yr) in y.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in row_ptr[r]..row_ptr[r + 1] {
                    acc += vals[k] * x[cols[k]];
                }
                *yr = acc;
            }
        }),
        pool_ns: median_ns(reps, || par_spmdv(pool, &row_ptr, &cols, &vals, &x, &mut y)),
    });

    // Floyd–Warshall.
    let n = if smoke { 64 } else { 256 };
    let d0 = rand_f64(9, n * n);
    rows.push(Row {
        kernel: "floyd_warshall",
        n,
        serial_ns: median_ns(reps, || floyd_warshall_reference(&d0, n)),
        pool_ns: median_ns(reps, || {
            let mut d = d0.clone();
            par_floyd_warshall(pool, &mut d, n);
            d
        }),
    });

    rows
}

/// The smoke correctness gate: registry checksums on a 1-core pool must
/// equal the detected pool's, for every kernel at a couple of sizes.
fn smoke_checksums(pool: &SbPool) {
    let serial = SbPool::new(HwHierarchy::flat(1, 1 << 12, 1 << 22));
    for k in Kernel::ALL {
        for n in [48usize, 2000] {
            let n = match k {
                Kernel::Transpose | Kernel::Matmul => n.min(64),
                _ => n,
            };
            let want = run_kernel(&serial, k, n, 42);
            let got = run_kernel(pool, k, n, 42);
            assert_eq!(
                got, want,
                "{k} n={n}: pool checksum {got:#x} != serial {want:#x}"
            );
        }
    }
    println!("smoke checksums: all kernels match the 1-core registry runs");
}

/// Record layout version. Bump when the JSON shape changes; `bench_rt`
/// refuses to overwrite a file with a different schema without
/// `--force`, so a layout change can never masquerade as a perf change.
/// Schema 3 added the `"regressions"` array: kernels whose pool run is
/// slower than their serial baseline (speedup < 1.0).
const SCHEMA: u64 = 3;

/// The `"schema"` value of an existing record, if the file parses far
/// enough to have one (the pre-versioning layout reports `None`).
fn existing_schema(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find("\"schema\"")?;
    let rest = text[at + "\"schema\"".len()..]
        .trim_start()
        .strip_prefix(':')?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let force = args.iter().any(|a| a == "--force");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_rt.json".to_string());
    let reps = if smoke { 3 } else { 5 };

    if std::path::Path::new(&out_path).exists() && !force {
        let found = existing_schema(&out_path);
        if found != Some(SCHEMA) {
            eprintln!(
                "refusing to overwrite {out_path}: its schema is {} but this binary writes schema {SCHEMA}; \
                 rerun with --force to replace it",
                found.map_or("absent".to_string(), |v| v.to_string()),
            );
            std::process::exit(2);
        }
    }

    let pool = SbPool::new(HwHierarchy::detect());
    let cores = pool.hierarchy().cores();
    if smoke {
        smoke_checksums(&pool);
    }
    let rows = run_suite(&pool, reps, smoke);

    let levels: Vec<String> = pool
        .hierarchy()
        .levels()
        .iter()
        .map(|l| {
            format!(
                "{{\"capacity_words\": {}, \"fanout\": {}}}",
                l.capacity, l.fanout
            )
        })
        .collect();
    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"host\": {{\"cores\": {cores}, \"levels\": [{}]}},\n  \"cores\": {cores},\n  \"smoke\": {smoke},\n  \"median_of\": {reps},\n  \"kernels\": [\n",
        levels.join(", ")
    ));
    let mut regressions = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.serial_ns as f64 / r.pool_ns.max(1) as f64;
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"serial_ns\": {}, \"pool_ns\": {}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.n,
            r.serial_ns,
            r.pool_ns,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
        let marker = if speedup < 1.0 { "  REGRESSION" } else { "" };
        println!(
            "{:>16} n={:<8} serial {:>12} ns   pool {:>12} ns   speedup {:.3}x{marker}",
            r.kernel, r.n, r.serial_ns, r.pool_ns, speedup
        );
        if speedup < 1.0 {
            regressions.push(r.kernel);
        }
    }
    let regs: Vec<String> = regressions.iter().map(|k| format!("\"{k}\"")).collect();
    json.push_str(&format!(
        "  ],\n  \"regressions\": [{}]\n}}\n",
        regs.join(", ")
    ));
    std::fs::write(&out_path, &json).expect("write bench json");
    if regressions.is_empty() {
        println!("wrote {out_path}");
    } else {
        println!(
            "wrote {out_path} — {} kernel(s) slower under the pool than serial: {}",
            regressions.len(),
            regressions.join(", ")
        );
    }
}
