//! Runtime perf trajectory: every real kernel against its serial
//! baseline, written to `BENCH_rt.json` at the repo root.
//!
//! Unlike the Criterion-style `wallclock` bench (interactive, shape
//! oriented), this binary produces a small machine-readable record —
//! median-of-k nanoseconds per kernel, serial vs pool, plus the core
//! count — so successive PRs can track the runtime's wall-clock
//! trajectory in version control.
//!
//! `--smoke` runs tiny sizes and asserts that every kernel's checksum
//! (via the registry's deterministic seed-generated jobs) is identical
//! on a 1-core pool and on the detected pool: a cheap CI guard that the
//! work-stealing runtime never changes results.
//!
//! The record is stamped with a schema version and the host topology
//! (cores plus every cache level) so numbers from different machines or
//! record layouts are never silently compared: when the output file
//! already exists with a different schema, the run refuses to overwrite
//! it unless `--force` is given.

use std::hint::black_box;
use std::time::Instant;

use mo_algorithms::gep::floyd_warshall_reference;
use mo_algorithms::real::registry::{run_kernel, Kernel};
use mo_algorithms::real::{
    par_fft_with_scratch, par_floyd_warshall, par_matmul, par_sort_with_scratch, par_spmdv,
    par_transpose, serial_fft, spms_sort_in_ctx, C64,
};
use mo_baselines::matmul::naive_matmul;
use mo_baselines::transpose::naive_transpose;
use mo_core::rt::{HwHierarchy, SbPool};

/// Interleaved paired measurement: `f(false)` is the serial side,
/// `f(true)` the pool side. The two are sampled alternately —
/// serial, pool, serial, pool, … — so a slow phase on a shared host
/// taxes both sides of every pair about equally, and the speedup is
/// the *median of per-pair ratios*, which shrugs off drift that a
/// ratio of two block medians (all serial reps first, all pool reps
/// a hundred milliseconds later) soaks up whole. Returns
/// `(serial_median_ns, pool_median_ns, speedup)`.
fn paired_ns(reps: usize, mut f: impl FnMut(bool)) -> (u64, u64, f64) {
    f(false);
    f(true);
    let mut ser = Vec::with_capacity(reps);
    let mut pool = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    let mut time_one = |par: bool| {
        let t = Instant::now();
        f(par);
        t.elapsed().as_nanos() as u64
    };
    for i in 0..reps {
        // Alternate which side leads the pair: the trailing position
        // carries a small systematic cost (timer tick alignment, warmed
        // predictors from the leader), and alternation cancels it.
        let (s, p) = if i % 2 == 0 {
            let s = time_one(false);
            let p = time_one(true);
            (s, p)
        } else {
            let p = time_one(true);
            let s = time_one(false);
            (s, p)
        };
        ser.push(s);
        pool.push(p);
        ratios.push(s as f64 / p.max(1) as f64);
    }
    ser.sort_unstable();
    pool.sort_unstable();
    ratios.sort_by(f64::total_cmp);
    (ser[reps / 2], pool[reps / 2], ratios[reps / 2])
}

fn rand_f64(seed: u64, n: usize) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f64) / 65536.0
        })
        .collect()
}

fn rand_u64(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 20
        })
        .collect()
}

/// Deterministic CSR instance: `m` rows, ~`deg` nonzeros each.
fn csr(m: usize, deg: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut x = seed | 1;
    let mut row_ptr = vec![0usize];
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for _ in 0..m {
        for _ in 0..deg {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cols.push(((x >> 33) as usize) % m);
            vals.push(((x >> 20) % 1000) as f64 * 0.125);
        }
        row_ptr.push(cols.len());
    }
    (row_ptr, cols, vals)
}

struct Row {
    kernel: &'static str,
    n: usize,
    serial_ns: u64,
    pool_ns: u64,
    speedup: f64,
}

fn run_suite(pool: &SbPool, reps: usize, smoke: bool) -> Vec<Row> {
    let mut rows = Vec::new();

    // Transpose.
    let n = if smoke { 128 } else { 1024 };
    let a = rand_f64(1, n * n);
    let mut out = vec![0.0; n * n];
    let (serial_ns, pool_ns, speedup) = paired_ns(reps, |par| {
        if par {
            par_transpose(pool, &a, &mut out, n);
        } else {
            naive_transpose(&a, &mut out, n);
        }
    });
    rows.push(Row {
        kernel: "transpose",
        n,
        serial_ns,
        pool_ns,
        speedup,
    });

    // Matmul.
    let n = if smoke { 64 } else { 256 };
    let a = rand_f64(2, n * n);
    let b = rand_f64(3, n * n);
    let mut c = vec![0.0; n * n];
    let (serial_ns, pool_ns, speedup) = paired_ns(reps, |par| {
        c.iter_mut().for_each(|v| *v = 0.0);
        if par {
            par_matmul(pool, &mut c, &a, &b, n);
        } else {
            naive_matmul(&mut c, &a, &b, n);
        }
    });
    rows.push(Row {
        kernel: "matmul",
        n,
        serial_ns,
        pool_ns,
        speedup,
    });

    // FFT.
    let n = if smoke { 1 << 10 } else { 1 << 18 };
    let input: Vec<C64> = (0..n)
        .map(|t| ((t as f64 * 0.3).sin(), (t as f64 * 0.7).cos()))
        .collect();
    let mut buf = input.clone();
    let mut scratch = Vec::new();
    let (serial_ns, pool_ns, speedup) = paired_ns(reps, |par| {
        buf.copy_from_slice(&input);
        if par {
            par_fft_with_scratch(pool, &mut buf, &mut scratch);
        } else {
            serial_fft(&mut buf);
        }
    });
    rows.push(Row {
        kernel: "fft",
        n,
        serial_ns,
        pool_ns,
        speedup,
    });

    // Sort.
    let n = if smoke { 1 << 12 } else { 1 << 20 };
    let data = rand_u64(5, n);
    let mut buf = data.clone();
    let mut scratch = Vec::new();
    let (serial_ns, pool_ns, speedup) = paired_ns(reps, |par| {
        buf.copy_from_slice(&data);
        if par {
            par_sort_with_scratch(pool, &mut buf, &mut scratch);
        } else {
            buf.sort_unstable();
        }
    });
    rows.push(Row {
        kernel: "sort",
        n,
        serial_ns,
        pool_ns,
        speedup,
    });

    // SpM-DV.
    let m = if smoke { 2_000 } else { 200_000 };
    let (row_ptr, cols, vals) = csr(m, 8, 7);
    let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut y = vec![0.0f64; m];
    let (serial_ns, pool_ns, speedup) = paired_ns(reps, |par| {
        if par {
            par_spmdv(pool, &row_ptr, &cols, &vals, &x, &mut y);
        } else {
            for (r, yr) in y.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in row_ptr[r]..row_ptr[r + 1] {
                    acc += vals[k] * x[cols[k]];
                }
                *yr = acc;
            }
        }
    });
    rows.push(Row {
        kernel: "spmdv",
        n: m,
        serial_ns,
        pool_ns,
        speedup,
    });

    // Floyd–Warshall.
    let n = if smoke { 64 } else { 256 };
    let d0 = rand_f64(9, n * n);
    let (serial_ns, pool_ns, speedup) = paired_ns(reps, |par| {
        if par {
            let mut d = d0.clone();
            par_floyd_warshall(pool, &mut d, n);
            black_box(d);
        } else {
            black_box(floyd_warshall_reference(&d0, n));
        }
    });
    rows.push(Row {
        kernel: "floyd_warshall",
        n,
        serial_ns,
        pool_ns,
        speedup,
    });

    rows
}

/// The smoke correctness gate: registry checksums on a 1-core pool must
/// equal the detected pool's, for every kernel at a couple of sizes.
fn smoke_checksums(pool: &SbPool) {
    let serial = SbPool::new(HwHierarchy::flat(1, 1 << 12, 1 << 22));
    for k in Kernel::ALL {
        for n in [48usize, 2000] {
            let n = match k {
                Kernel::Transpose | Kernel::Matmul => n.min(64),
                _ => n,
            };
            let want = run_kernel(&serial, k, n, 42);
            let got = run_kernel(pool, k, n, 42);
            assert_eq!(
                got, want,
                "{k} n={n}: pool checksum {got:#x} != serial {want:#x}"
            );
        }
    }
    println!("smoke checksums: all kernels match the 1-core registry runs");
}

/// Record layout version. Bump when the JSON shape changes; `bench_rt`
/// refuses to overwrite a file with a different schema without
/// `--force`, so a layout change can never masquerade as a perf change.
/// Schema 3 added the `"regressions"` array: kernels whose pool run
/// loses to their serial baseline beyond the noise floor.
const SCHEMA: u64 = 3;

/// A kernel below this speedup is a regression — the run exits nonzero
/// (the hard CI gate) and the kernel lands in the record's
/// `"regressions"` array. The floor sits below exact parity because
/// interleaved medians on a shared runner jitter by ~10–15%; a
/// *structural* regression — the class this gate exists for, like the
/// pre-SPMS sort at 0.46x — sits far below it. Kernels in the
/// `[floor, 1.0)` band are printed as below parity but do not fail.
const REGRESSION_FLOOR: f64 = 0.8;

/// `--sweep`: sort-only size sweep for leaf tuning. Always drives the
/// structured SPMS path (`spms_sort_in_ctx`), even at sizes where
/// `par_sort` itself would pick the serial plan on a width-1 pool —
/// the point is to see the structure's constants move as `n` crosses
/// the leaf and fan-in boundaries, not to re-measure plan selection.
fn sweep_sort(pool: &SbPool, reps: usize) {
    println!(
        "sort sweep (structured SPMS path, leaf = {} keys, median of {reps}):",
        mo_algorithms::real::SPMS_LEAF
    );
    let sizes = [1usize << 16, 1 << 18, 1 << 20, 1 << 22];
    let nmax = *sizes.last().expect("sizes");
    let data = rand_u64(5, nmax);
    let mut buf = data.clone();
    let mut scratch = vec![0u64; nmax];
    for n in sizes {
        let (serial_ns, pool_ns, speedup) = paired_ns(reps, |par| {
            buf[..n].copy_from_slice(&data[..n]);
            if par {
                let (b, s) = (&mut buf[..n], &mut scratch[..n]);
                pool.run(|ctx| spms_sort_in_ctx(ctx, b, s));
            } else {
                buf[..n].sort_unstable();
            }
        });
        println!(
            "{:>16} n={:<8} serial {:>12} ns   spms {:>12} ns   speedup {:.3}x",
            "sort", n, serial_ns, pool_ns, speedup
        );
    }
}

/// The `"schema"` value of an existing record, if the file parses far
/// enough to have one (the pre-versioning layout reports `None`).
fn existing_schema(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find("\"schema\"")?;
    let rest = text[at + "\"schema\"".len()..]
        .trim_start()
        .strip_prefix(':')?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let force = args.iter().any(|a| a == "--force");
    if args.iter().any(|a| a == "--sweep") {
        let pool = SbPool::new(HwHierarchy::detect());
        sweep_sort(&pool, 5);
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_rt.json".to_string());
    let reps = if smoke { 3 } else { 7 };

    if std::path::Path::new(&out_path).exists() && !force {
        let found = existing_schema(&out_path);
        if found != Some(SCHEMA) {
            eprintln!(
                "refusing to overwrite {out_path}: its schema is {} but this binary writes schema {SCHEMA}; \
                 rerun with --force to replace it",
                found.map_or("absent".to_string(), |v| v.to_string()),
            );
            std::process::exit(2);
        }
    }

    let pool = SbPool::new(HwHierarchy::detect());
    let cores = pool.hierarchy().cores();
    if smoke {
        smoke_checksums(&pool);
    }
    let rows = run_suite(&pool, reps, smoke);

    let levels: Vec<String> = pool
        .hierarchy()
        .levels()
        .iter()
        .map(|l| {
            format!(
                "{{\"capacity_words\": {}, \"fanout\": {}}}",
                l.capacity, l.fanout
            )
        })
        .collect();
    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"host\": {{\"cores\": {cores}, \"levels\": [{}]}},\n  \"cores\": {cores},\n  \"smoke\": {smoke},\n  \"median_of\": {reps},\n  \"kernels\": [\n",
        levels.join(", ")
    ));
    let mut regressions = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.speedup;
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"serial_ns\": {}, \"pool_ns\": {}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.n,
            r.serial_ns,
            r.pool_ns,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
        let marker = if speedup < REGRESSION_FLOOR {
            "  REGRESSION"
        } else if speedup < 1.0 {
            "  (below parity)"
        } else {
            ""
        };
        println!(
            "{:>16} n={:<8} serial {:>12} ns   pool {:>12} ns   speedup {:.3}x{marker}",
            r.kernel, r.n, r.serial_ns, r.pool_ns, speedup
        );
        if speedup < REGRESSION_FLOOR {
            regressions.push(r.kernel);
        }
    }
    let regs: Vec<String> = regressions.iter().map(|k| format!("\"{k}\"")).collect();
    json.push_str(&format!(
        "  ],\n  \"regressions\": [{}]\n}}\n",
        regs.join(", ")
    ));
    std::fs::write(&out_path, &json).expect("write bench json");
    if regressions.is_empty() {
        println!("wrote {out_path}");
    } else {
        // The hard gate: a non-empty regressions array fails the run
        // (and with it the CI bench step) — no advisory-marker path.
        eprintln!(
            "wrote {out_path} — {} kernel(s) below the {REGRESSION_FLOOR} regression floor: {}",
            regressions.len(),
            regressions.join(", ")
        );
        std::process::exit(1);
    }
}
