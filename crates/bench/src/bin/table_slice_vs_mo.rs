//! §II claim — hint-driven scheduling vs hint-ignoring greedy
//! scheduling: shared-cache misses.
//!
//! §II argues that schedulers which just give each core a proportionate
//! slice of each shared cache are "a factor of p'_i worse than the best
//! possible for each cache level i". We replay the *same recorded
//! programs* under `Policy::Mo` (hints honored) and `Policy::Flat`
//! (hints ignored, earliest-core greedy) and compare misses at the
//! shared levels.

use mo_algorithms::fft::fft_program;
use mo_algorithms::gep::matmul_program;
use mo_algorithms::sort::sort_program;
use mo_bench::{header, rand_f64, rand_u64, run_flat, run_mo, val};

fn main() {
    header(
        "§II",
        "MO hints vs hint-ignoring greedy: shared-cache misses",
    );
    let spec = hm_model::MachineSpec::example_h5();
    println!("machine: {spec}\n");

    let n = 1 << 12;
    let signal: Vec<(f64, f64)> = (0..n)
        .map(|t| ((t as f64 * 0.3).sin(), (t as f64 * 0.7).cos()))
        .collect();
    let fft = fft_program(&signal);
    let sort = sort_program(&rand_u64(5, n, u64::MAX >> 20));
    let nm = 64;
    let mm = matmul_program(&rand_f64(1, nm * nm), &rand_f64(2, nm * nm), nm);

    for (what, prog) in [
        ("MO-FFT (n=4096)", &fft.program),
        ("sort (n=4096)", &sort.program),
        ("I-GEP matmul (n=64)", &mm.program),
    ] {
        let mo = run_mo(prog, &spec);
        let flat = run_flat(prog, &spec);
        println!("{what}:");
        for level in 1..=spec.cache_levels() {
            let (a, b) = (mo.cache_complexity(level), flat.cache_complexity(level));
            println!(
                "  L{level} misses: MO {a:>9}  greedy {b:>9}  greedy/MO = {:.2}",
                b as f64 / a.max(1) as f64
            );
        }
        val("MO makespan", mo.makespan as f64);
        val("greedy makespan", flat.makespan as f64);
        val("MO ping-pongs", mo.pingpongs as f64);
        val("greedy ping-pongs", flat.pingpongs as f64);
        println!();
    }
    println!("expectation: greedy roughly matches MO at L1 but pays extra misses at the");
    println!("shared levels and far more ping-ponging, as §II predicts.");
}
