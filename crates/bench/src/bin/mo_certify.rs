//! Value-obliviousness certifier, footprint auditor, and registry lint
//! driver — the static-analysis pass suite over the recorded kernel
//! registry (`mo_core::certify` + `mo_algorithms::certify`).
//!
//! For every registry kernel the certifier:
//!
//! 1. records the kernel under `--runs` paired inputs — same size,
//!    independently seeded *values* — canonicalizes the address traces
//!    modulo base-pointer relocation, and diffs them: every pair
//!    indistinguishable certifies `oblivious`; any divergence certifies
//!    `data-dependent` with the seed pair and first divergent entry as
//!    a machine-checkable witness;
//! 2. audits the footprint: the true max working set over all
//!    SP-consistent schedules of the recorded DAG (subtree footprints
//!    are schedule-invariant, so the root's distinct-word count is the
//!    max) against the analytic words admission control charges;
//! 3. verifies schedule-obliviousness: the SP-order race sweep plus the
//!    hint invariants (`mo_core::verify`) must come back clean;
//! 4. lints registry metadata: grain hints vs recorded leaf footprints,
//!    sibling scratch block-sharing, and measured-bounds recording
//!    without the data-dependent marker (or vice versa).
//!
//! The certificates are written as a JSON artifact (`--out`, default
//! `certify/certificates.json`) which `mo-serve` loads to gate its
//! `--secure` mode and `obs_report` renders as a summary table.
//!
//! `--gate` turns the run into a CI acceptance check, exiting nonzero
//! when:
//!
//! * any kernel's classification drifts from the checked-in
//!   `certify/expected.json`;
//! * any kernel understates its footprint (declared < recorded) without
//!   a justified entry in `certify/exceptions.json` — or holds an entry
//!   whose gap has closed (stale exception);
//! * the exceptions file disagrees with
//!   [`mo_algorithms::certify::footprint_exception`] (file and code
//!   must list the same kernels);
//! * any registry lint other than the tolerated sibling block-sharing
//!   fires, or the race/hint verification is not clean.

use std::process::ExitCode;

use mo_algorithms::certify::{
    certify_size, declared_words, effective_n, footprint_exception, lint_kernel, record_kernel,
    RegistryLint,
};
use mo_algorithms::real::registry::Kernel;
use mo_core::certify::{classify, json, json::Json, max_working_set};
use mo_core::{Certificate, CertificateSet, Classification};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Load `{"version":1,"expected":[{"kernel":..,"classification":..}]}`.
fn load_expected(path: &str) -> Result<Vec<(String, Classification)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let j = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = j
        .get("expected")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"expected\" array"))?;
    rows.iter()
        .map(|r| {
            let kernel = r
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: row missing \"kernel\""))?;
            let class = r
                .get("classification")
                .and_then(Json::as_str)
                .and_then(Classification::parse)
                .ok_or_else(|| format!("{path}: bad classification for {kernel}"))?;
            Ok((kernel.to_string(), class))
        })
        .collect()
}

/// Load `{"version":1,"exceptions":[{"kernel":..,"justification":..}]}`.
fn load_exceptions(path: &str) -> Result<Vec<(String, String)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let j = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows = j
        .get("exceptions")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"exceptions\" array"))?;
    rows.iter()
        .map(|r| {
            let kernel = r
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: row missing \"kernel\""))?;
            let why = r
                .get("justification")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: {kernel} missing justification"))?;
            Ok((kernel.to_string(), why.to_string()))
        })
        .collect()
}

struct KernelResult {
    cert: Certificate,
    lints: Vec<RegistryLint>,
    verify_clean: bool,
}

fn certify_kernel(kernel: Kernel, runs: u64) -> KernelResult {
    let n = certify_size(kernel);
    let recordings: Vec<(u64, mo_core::Program)> = (1..=runs)
        .map(|seed| (seed, record_kernel(kernel, n, seed)))
        .collect();
    let (classification, witness) = classify(&recordings);
    let base = &recordings[0].1;
    let recorded_words = max_working_set(base);
    let declared = declared_words(kernel, effective_n(kernel, n));
    let report = mo_core::verify(base);
    let verify_clean = report.races.is_empty() && report.is_clean();
    let lints = lint_kernel(kernel, base);
    KernelResult {
        cert: Certificate {
            kernel: kernel.name().to_string(),
            n,
            runs: runs as usize,
            classification,
            witness,
            declared_words: declared,
            recorded_words,
            footprint_sound: declared >= recorded_words,
            schedule_clean: verify_clean,
        },
        lints,
        verify_clean,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let out_path =
        flag_value(&args, "--out").unwrap_or_else(|| "certify/certificates.json".to_string());
    let expected_path =
        flag_value(&args, "--expected").unwrap_or_else(|| "certify/expected.json".to_string());
    let exceptions_path =
        flag_value(&args, "--exceptions").unwrap_or_else(|| "certify/exceptions.json".to_string());
    let runs: u64 = flag_value(&args, "--runs")
        .map(|v| v.parse().expect("--runs takes a positive integer"))
        .unwrap_or(3);
    assert!(runs >= 2, "--runs must be at least 2 to form a pair");

    let mut results = Vec::new();
    println!("== mo-certify: {runs} paired runs per kernel ==\n");
    for kernel in Kernel::ALL {
        let r = certify_kernel(kernel, runs);
        println!("{}", r.cert);
        // Block-sharing advisories come one per fork; a count keeps the
        // report readable. Everything else prints in full.
        let advisories = r
            .lints
            .iter()
            .filter(|l| matches!(l, RegistryLint::SiblingScratchAliasing { .. }))
            .count();
        if advisories > 0 {
            println!(
                "  advisory: {advisories} fork(s) have cache blocks written by multiple \
                 sibling subtrees (false sharing; word-level overlap would be a race)"
            );
        }
        for l in &r.lints {
            if !matches!(l, RegistryLint::SiblingScratchAliasing { .. }) {
                println!("  lint: {l}");
            }
        }
        results.push(r);
    }

    // Write the artifact.
    let set = CertificateSet {
        certs: results.iter().map(|r| r.cert.clone()).collect(),
    };
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, set.to_json_string()).expect("write certificate artifact");
    println!("\nwrote {out_path} ({} certificates)", set.certs.len());

    if !gate {
        return ExitCode::SUCCESS;
    }

    // --gate: fail CI on classification drift, unjustified or stale
    // footprint exceptions, disagreement between the exceptions file and
    // the code, sanitizer findings, or unexpected lints.
    let mut breaches: Vec<String> = Vec::new();

    match load_expected(&expected_path) {
        Ok(expected) => {
            for (kernel, want) in &expected {
                match set.get(kernel) {
                    Some(c) if c.classification == *want => {}
                    Some(c) => breaches.push(format!(
                        "classification drift: {kernel} expected {}, got {}",
                        want.name(),
                        c.classification.name()
                    )),
                    None => breaches.push(format!("expected kernel {kernel} was not certified")),
                }
            }
            for c in &set.certs {
                if !expected.iter().any(|(k, _)| k == &c.kernel) {
                    breaches.push(format!(
                        "kernel {} has no entry in {expected_path}: update the expected set",
                        c.kernel
                    ));
                }
            }
        }
        Err(e) => breaches.push(format!("cannot load expected classifications: {e}")),
    }

    match load_exceptions(&exceptions_path) {
        Ok(exceptions) => {
            for r in &results {
                let excused = exceptions.iter().any(|(k, _)| k == &r.cert.kernel);
                if !r.cert.footprint_sound && !excused {
                    breaches.push(format!(
                        "footprint understated: {} declares {} words but the recording \
                         touches {} — add a justified entry to {exceptions_path} or fix \
                         the registry bound",
                        r.cert.kernel, r.cert.declared_words, r.cert.recorded_words
                    ));
                }
                if r.cert.footprint_sound && excused {
                    breaches.push(format!(
                        "stale exception: {} is listed in {exceptions_path} but declared \
                         ({}) now covers recorded ({})",
                        r.cert.kernel, r.cert.declared_words, r.cert.recorded_words
                    ));
                }
            }
            // The file and `footprint_exception` must agree kernel-for-kernel.
            for kernel in Kernel::ALL {
                let in_code = footprint_exception(kernel).is_some();
                let in_file = exceptions.iter().any(|(k, _)| k == kernel.name());
                if in_code != in_file {
                    breaches.push(format!(
                        "exceptions drift: {kernel} is {} footprint_exception() but {} {exceptions_path}",
                        if in_code { "in" } else { "not in" },
                        if in_file { "in" } else { "not in" },
                    ));
                }
            }
        }
        Err(e) => breaches.push(format!("cannot load footprint exceptions: {e}")),
    }

    for r in &results {
        if !r.verify_clean {
            breaches.push(format!(
                "sanitizer: {} recording has races or hint violations",
                r.cert.kernel
            ));
        }
        for l in &r.lints {
            // Block-level sibling sharing is a false-sharing advisory,
            // expected for kernels tiling one output array; everything
            // else gates.
            if !matches!(l, RegistryLint::SiblingScratchAliasing { .. }) {
                breaches.push(format!("lint: {l}"));
            }
        }
    }

    if breaches.is_empty() {
        println!("gate: classifications match {expected_path}, footprints sound modulo {exceptions_path}, lints clean");
        ExitCode::SUCCESS
    } else {
        for b in &breaches {
            eprintln!("gate BREACH: {b}");
        }
        ExitCode::FAILURE
    }
}
