//! F6/T7 — Fig. 6 & Theorem 7: MO-IS / MO-LR list ranking, vs the serial
//! pointer-chase baseline.

use mo_algorithms::listrank::{listrank_program, random_list, reference_ranks};
use mo_baselines::listrank::serial_chase_program;
use mo_bench::{header, row, run_mo, run_serial, val};

fn main() {
    header("F6/T7", "MO-IS and MO-LR list ranking (Fig. 6, Thm 7)");
    for (name, spec) in mo_bench::machines() {
        println!("\n--- machine: {name} ---");
        let p = spec.cores() as f64;
        for n in [1usize << 10, 1 << 11, 1 << 12] {
            let succ = random_list(n, 17 + n as u64);
            let lp = listrank_program(&succ);
            assert_eq!(lp.ranks(), reference_ranks(&succ));
            let r = run_mo(&lp.program, &spec);
            println!("n = {n}:");
            let nf = n as f64;
            let logn = nf.log2();
            // Work is Θ(n log n) across the contraction levels.
            row(
                "parallel steps vs (n/p) log n",
                r.makespan as f64,
                nf * logn / p,
            );
            for level in 1..=spec.cache_levels() {
                let qi = spec.caches_at(level) as f64;
                let bi = spec.level(level).block as f64;
                let ci = spec.level(level).capacity as f64;
                let logc = (logn / ci.log2()).max(1.0);
                row(
                    &format!("L{level} misses vs (n/(q_i B_i)) log_C n"),
                    r.cache_complexity(level) as f64,
                    (nf / (qi * bi)) * logc,
                );
            }
            row("speed-up vs p", r.speedup(), p);
        }
        // Baseline: the pointer chase has no parallelism and random
        // misses.
        let n = 1 << 12;
        let succ = random_list(n, 5);
        let (bp, _) = serial_chase_program(&succ);
        let rb = run_serial(&bp, &spec);
        val("serial chase steps (no parallelism)", rb.makespan as f64);
        val(
            "serial chase L1 misses (~1 per hop)",
            rb.cache_complexity(1) as f64,
        );
    }
}
