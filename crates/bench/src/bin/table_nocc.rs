//! T10 — Theorem 10: NO connected components on M(p,B).

use mo_bench::{header, row, val};
use no_framework::algs::cc::no_cc;

fn main() {
    header("T10", "NO connected components on M(p,B) (Thm 10)");
    for n in [256usize, 512, 1024] {
        // A sparse graph: a few long cycles plus chords.
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push((v, (v + 1) % n));
            if v % 3 == 0 {
                edges.push((v, (v * 7 + 5) % n));
            }
        }
        let (m, labels) = no_cc(n, &edges);
        assert!(labels.iter().all(|&l| l == 0), "one cycle => one component");
        let nn = (n + edges.len()) as f64;
        println!(
            "\nn = {n}, m = {} ({} supersteps):",
            edges.len(),
            m.supersteps()
        );
        for (p, b) in [(16usize, 1usize), (16, 8), (64, 8)] {
            let comm = m.communication_complexity(p, b) as f64;
            row(
                &format!("comm p={p} B={b} vs (N/pB) log N"),
                comm,
                nn * nn.log2() / (p * b) as f64,
            );
        }
        let comp = m.computation_complexity(16) as f64;
        row("comp p=16 vs (N/p) log N", comp, nn * nn.log2() / 16.0);
        val("total words", m.total_words() as f64);
    }
    println!("\nnote: the label-propagation substitute concentrates traffic at component");
    println!("roots (see DESIGN.md); the paper's sort-based contraction removes that hotspot.");
}
