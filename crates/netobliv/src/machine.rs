//! The M(N) superstep machine with deferred M(p,B) / D-BSP accounting.

use std::collections::HashMap;

/// One processing element's view during a superstep.
pub struct Pe<'a> {
    /// This PE's unbounded local memory.
    pub mem: &'a mut Vec<u64>,
    /// Messages delivered from the previous superstep, in `(src, word)`
    /// form, ordered by source PE (stable within a source).
    pub inbox: &'a [(u32, u64)],
    outbox: &'a mut Vec<(u32, u64)>,
    ops: &'a mut u64,
    pe: usize,
    n: usize,
}

impl<'a> Pe<'a> {
    /// Construct a PE view over externally owned state.
    ///
    /// This is the hook for alternative [`Comm`](crate::Comm) backends
    /// (e.g. the socket-based D-BSP tier): a backend that owns a PE's
    /// memory and message buffers builds the same per-superstep view
    /// the simulator hands to its closures. `ops` accumulates the
    /// computation charged through [`Pe::work`].
    pub fn new(
        mem: &'a mut Vec<u64>,
        inbox: &'a [(u32, u64)],
        outbox: &'a mut Vec<(u32, u64)>,
        ops: &'a mut u64,
        pe: usize,
        n: usize,
    ) -> Pe<'a> {
        Pe {
            mem,
            inbox,
            outbox,
            ops,
            pe,
            n,
        }
    }
}

impl Pe<'_> {
    /// This PE's index.
    pub fn id(&self) -> usize {
        self.pe
    }

    /// Total number of PEs.
    pub fn n_pes(&self) -> usize {
        self.n
    }

    /// Send one word to `dst` (delivered at the start of the next
    /// superstep).
    pub fn send(&mut self, dst: usize, word: u64) {
        debug_assert!(dst < self.n, "send to PE {dst} out of range");
        self.outbox.push((dst as u32, word));
    }

    /// Send several words to `dst` (arrive contiguously, in order).
    pub fn send_words(&mut self, dst: usize, words: &[u64]) {
        for &w in words {
            self.send(dst, w);
        }
    }

    /// Charge local computation.
    pub fn work(&mut self, ops: u64) {
        *self.ops += ops;
    }

    /// All inbox words from a given source, in send order.
    pub fn from(&self, src: usize) -> impl Iterator<Item = u64> + '_ {
        let src = src as u32;
        self.inbox.iter().filter(move |m| m.0 == src).map(|m| m.1)
    }
}

/// A malformed cost-model query: the machine parameters handed to
/// [`NoMachine::try_communication_complexity`] or
/// [`NoMachine::try_dbsp_time`] do not describe a valid M(p,B)/D-BSP
/// instance.
///
/// The unchecked variants ([`NoMachine::communication_complexity`],
/// [`NoMachine::dbsp_time`]) panic on these conditions; benches and
/// services evaluating user- or config-supplied parameters should use
/// the `try_` forms and surface the error instead of dying mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModelError {
    /// `p == 0`: there is no zero-processor machine.
    ZeroProcessors,
    /// `B == 0`: blocks must hold at least one word.
    ZeroBlockSize {
        /// Index of the offending entry in the `b` vector (0 for the
        /// scalar M(p,B) query).
        level: usize,
    },
    /// D-BSP requires `p` to be a power of two (clusters halve).
    NotPowerOfTwo {
        /// The offending processor count.
        p: usize,
    },
    /// `g`/`b` must each carry one entry per cluster level, `log₂ p`.
    LengthMismatch {
        /// Required length, `log₂ p`.
        expected: usize,
        /// Supplied `g.len()`.
        g_len: usize,
        /// Supplied `b.len()`.
        b_len: usize,
    },
}

impl std::fmt::Display for CostModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CostModelError::ZeroProcessors => write!(f, "p must be >= 1"),
            CostModelError::ZeroBlockSize { level } => {
                write!(f, "block size B must be >= 1 (level {level})")
            }
            CostModelError::NotPowerOfTwo { p } => {
                write!(f, "D-BSP processor count must be a power of two, got {p}")
            }
            CostModelError::LengthMismatch {
                expected,
                g_len,
                b_len,
            } => write!(
                f,
                "D-BSP parameter vectors must have log2(p) = {expected} entries, \
                 got g.len() = {g_len}, b.len() = {b_len}"
            ),
        }
    }
}

impl std::error::Error for CostModelError {}

/// Per-superstep log: pair-aggregated traffic and per-PE op counts
/// (sparse).
#[derive(Debug, Clone, Default)]
struct StepLog {
    /// `(src_pe, dst_pe) → words` for cross-PE messages.
    traffic: Vec<(u32, u32, u64)>,
    /// `(pe, ops)` for PEs that charged work.
    ops: Vec<(u32, u64)>,
}

/// The M(N) machine: executes supersteps and logs costs.
///
/// Execution is sequential and deterministic: within a superstep PEs run
/// in index order, and messages are delivered sorted by source.
pub struct NoMachine {
    n: usize,
    mem: Vec<Vec<u64>>,
    inbox: Vec<Vec<(u32, u64)>>,
    log: Vec<StepLog>,
}

impl NoMachine {
    /// A machine with `n` PEs, all memories empty.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            n,
            mem: vec![Vec::new(); n],
            inbox: vec![Vec::new(); n],
            log: Vec::new(),
        }
    }

    /// Number of PEs `N`.
    pub fn n_pes(&self) -> usize {
        self.n
    }

    /// Read access to a PE's memory (host-side input/output marshalling).
    pub fn mem(&self, pe: usize) -> &[u64] {
        &self.mem[pe]
    }

    /// Mutable access to a PE's memory (input loading only — does not
    /// count as communication).
    pub fn mem_mut(&mut self, pe: usize) -> &mut Vec<u64> {
        &mut self.mem[pe]
    }

    /// Execute one superstep: `f(pe, ctx)` runs for every PE; messages
    /// sent become visible in the next superstep.
    pub fn step<F: FnMut(usize, &mut Pe<'_>)>(&mut self, mut f: F) {
        self.step_impl(&mut f);
    }

    fn step_impl(&mut self, f: &mut dyn FnMut(usize, &mut Pe<'_>)) {
        let mut outboxes: Vec<Vec<(u32, u64)>> = vec![Vec::new(); self.n];
        let mut slog = StepLog::default();
        #[allow(clippy::needless_range_loop)] // pe is also the PE id handed to f
        for pe in 0..self.n {
            let mut ops = 0u64;
            {
                let mut ctx = Pe {
                    mem: &mut self.mem[pe],
                    inbox: &self.inbox[pe],
                    outbox: &mut outboxes[pe],
                    ops: &mut ops,
                    pe,
                    n: self.n,
                };
                f(pe, &mut ctx);
            }
            if ops > 0 {
                slog.ops.push((pe as u32, ops));
            }
        }
        // Deliver and log.
        let mut pair_words: HashMap<(u32, u32), u64> = HashMap::new();
        for ib in &mut self.inbox {
            ib.clear();
        }
        for (src, out) in outboxes.into_iter().enumerate() {
            for (dst, word) in out {
                if dst as usize != src {
                    *pair_words.entry((src as u32, dst)).or_insert(0) += 1;
                }
                self.inbox[dst as usize].push((src as u32, word));
            }
        }
        for ib in &mut self.inbox {
            ib.sort_by_key(|m| m.0); // deterministic delivery order
        }
        slog.traffic = pair_words
            .into_iter()
            .map(|((s, d), w)| (s, d, w))
            .collect();
        slog.traffic.sort_unstable();
        self.log.push(slog);
    }

    /// Number of supersteps executed.
    pub fn supersteps(&self) -> usize {
        self.log.len()
    }

    /// The communication pattern as data: per superstep, the sorted
    /// `(src_pe, dst_pe, words)` triples of cross-PE traffic.
    ///
    /// A *network-oblivious* algorithm's signature depends only on the
    /// input size, never on the input values — comparing signatures
    /// across same-size inputs is the machine-level obliviousness check
    /// (the D-BSP optimality theorems of §VI quantify over the pattern,
    /// not the data).
    pub fn traffic_signature(&self) -> Vec<Vec<(u32, u32, u64)>> {
        self.log.iter().map(|s| s.traffic.clone()).collect()
    }

    /// Total words sent across all supersteps (PE-level, excluding
    /// same-PE messages).
    pub fn total_words(&self) -> u64 {
        self.log.iter().flat_map(|s| &s.traffic).map(|t| t.2).sum()
    }

    fn proc_of(&self, pe: u32, p: usize) -> usize {
        // p contiguous groups of ⌈N/p⌉ PEs.
        let per = self.n.div_ceil(p);
        pe as usize / per
    }

    /// Communication complexity on M(p, B): Σ_steps max_proc
    /// max(blocks sent, blocks received), with per-destination block
    /// packing (`⌈words/B⌉` per (src,dst) processor pair).
    ///
    /// Panics on `p == 0` or `b == 0`; see
    /// [`try_communication_complexity`](Self::try_communication_complexity)
    /// for the checked form.
    pub fn communication_complexity(&self, p: usize, b: usize) -> u64 {
        self.try_communication_complexity(p, b)
            .expect("invalid M(p,B) parameters")
    }

    /// Checked [`communication_complexity`](Self::communication_complexity):
    /// returns a typed [`CostModelError`] instead of panicking on
    /// degenerate machine parameters.
    pub fn try_communication_complexity(&self, p: usize, b: usize) -> Result<u64, CostModelError> {
        if p == 0 {
            return Err(CostModelError::ZeroProcessors);
        }
        if b == 0 {
            return Err(CostModelError::ZeroBlockSize { level: 0 });
        }
        let mut total = 0u64;
        for step in &self.log {
            let mut pair: HashMap<(usize, usize), u64> = HashMap::new();
            for &(s, d, w) in &step.traffic {
                let (sp, dp) = (self.proc_of(s, p), self.proc_of(d, p));
                if sp != dp {
                    *pair.entry((sp, dp)).or_insert(0) += w;
                }
            }
            let mut sent = vec![0u64; p];
            let mut recv = vec![0u64; p];
            for (&(sp, dp), &w) in &pair {
                let blocks = w.div_ceil(b as u64);
                sent[sp] += blocks;
                recv[dp] += blocks;
            }
            let h = (0..p).map(|i| sent[i].max(recv[i])).max().unwrap_or(0);
            total += h;
        }
        Ok(total)
    }

    /// Computation complexity on M(p, ·): Σ_steps max_proc Σ ops of its
    /// PEs.
    pub fn computation_complexity(&self, p: usize) -> u64 {
        let mut total = 0u64;
        for step in &self.log {
            let mut per = vec![0u64; p];
            for &(pe, ops) in &step.ops {
                per[self.proc_of(pe, p)] += ops;
            }
            total += per.iter().max().copied().unwrap_or(0);
        }
        total
    }

    /// Communication time on D-BSP(P, g, B): for each superstep, find the
    /// finest cluster level `i` containing all traffic (clusters of size
    /// `P/2^i`), and charge `h_s(B_i) · g_i`.
    ///
    /// `g.len() == b.len() == log₂ P`; index 0 is the whole machine.
    ///
    /// Panics on non-power-of-two `p` or mis-sized `g`/`b`; see
    /// [`try_dbsp_time`](Self::try_dbsp_time) for the checked form.
    pub fn dbsp_time(&self, p: usize, g: &[f64], b: &[usize]) -> f64 {
        self.try_dbsp_time(p, g, b)
            .expect("invalid D-BSP parameters")
    }

    /// Checked [`dbsp_time`](Self::dbsp_time): returns a typed
    /// [`CostModelError`] instead of panicking when `p` is not a power
    /// of two, `g`/`b` do not carry `log₂ p` entries, or a block size
    /// is zero.
    pub fn try_dbsp_time(&self, p: usize, g: &[f64], b: &[usize]) -> Result<f64, CostModelError> {
        if p == 0 {
            return Err(CostModelError::ZeroProcessors);
        }
        if !p.is_power_of_two() {
            return Err(CostModelError::NotPowerOfTwo { p });
        }
        let logp = p.trailing_zeros() as usize;
        if g.len() != logp || b.len() != logp {
            return Err(CostModelError::LengthMismatch {
                expected: logp,
                g_len: g.len(),
                b_len: b.len(),
            });
        }
        if let Some(level) = b.iter().position(|&bs| bs == 0) {
            return Err(CostModelError::ZeroBlockSize { level });
        }
        if logp == 0 {
            return Ok(0.0);
        }
        let mut time = 0.0;
        for step in &self.log {
            // Finest level whose clusters contain all (src,dst) pairs.
            let mut level = logp - 1; // smallest clusters (size 2)
            let mut any = false;
            for &(s, d, _) in &step.traffic {
                let (sp, dp) = (self.proc_of(s, p), self.proc_of(d, p));
                if sp == dp {
                    continue;
                }
                any = true;
                // Largest i with sp,dp in one cluster of size p/2^i:
                // common high bits of sp,dp.
                let diff = sp ^ dp;
                let top = usize::BITS as usize - diff.leading_zeros() as usize; // bits needed
                let i = logp - top; // cluster level containing both
                level = level.min(i);
            }
            if !any {
                continue;
            }
            // h at block size B_level within this step.
            let mut pair: HashMap<(usize, usize), u64> = HashMap::new();
            for &(s, d, w) in &step.traffic {
                let (sp, dp) = (self.proc_of(s, p), self.proc_of(d, p));
                if sp != dp {
                    *pair.entry((sp, dp)).or_insert(0) += w;
                }
            }
            let bs = b[level] as u64;
            let mut sent = vec![0u64; p];
            let mut recv = vec![0u64; p];
            for (&(sp, dp), &w) in &pair {
                let blocks = w.div_ceil(bs);
                sent[sp] += blocks;
                recv[dp] += blocks;
            }
            let h = (0..p).map(|i| sent[i].max(recv[i])).max().unwrap_or(0);
            time += h as f64 * g[level];
        }
        Ok(time)
    }
}

impl crate::Comm for NoMachine {
    fn n_pes(&self) -> usize {
        self.n
    }

    fn owns(&self, pe: usize) -> bool {
        pe < self.n
    }

    fn pe_mem_mut(&mut self, pe: usize) -> Option<&mut Vec<u64>> {
        self.mem.get_mut(pe)
    }

    fn pe_mem(&self, pe: usize) -> Option<&[u64]> {
        self.mem.get(pe).map(Vec::as_slice)
    }

    fn step_dyn(&mut self, f: &mut dyn FnMut(usize, &mut Pe<'_>)) {
        self.step_impl(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_delivered_next_step() {
        let mut m = NoMachine::new(4);
        m.step(|pe, ctx| {
            ctx.send((pe + 1) % 4, pe as u64 * 10);
        });
        m.step(|pe, ctx| {
            let got: Vec<u64> = ctx.inbox.iter().map(|m| m.1).collect();
            assert_eq!(got, vec![((pe + 3) % 4) as u64 * 10]);
        });
        assert_eq!(m.supersteps(), 2);
    }

    #[test]
    fn same_processor_messages_are_free() {
        let mut m = NoMachine::new(8);
        // Ring of single-word messages.
        m.step(|pe, ctx| ctx.send((pe + 1) % 8, 1));
        // On p=8 every message crosses processors: h = 1.
        assert_eq!(m.communication_complexity(8, 1), 1);
        // On p=2, only PEs 3→4 and 7→0 cross: each processor sends or
        // receives 1 block.
        assert_eq!(m.communication_complexity(2, 1), 1);
        // On p=1 everything is local.
        assert_eq!(m.communication_complexity(1, 1), 0);
    }

    #[test]
    fn block_packing_rounds_up_per_pair() {
        let mut m = NoMachine::new(4);
        // PE0 sends 5 words to PE2 and 3 words to PE3.
        m.step(|pe, ctx| {
            if pe == 0 {
                ctx.send_words(2, &[1, 2, 3, 4, 5]);
                ctx.send_words(3, &[6, 7, 8]);
            }
        });
        // p = 4, B = 4: ceil(5/4) + ceil(3/4) = 3 blocks sent by proc 0.
        assert_eq!(m.communication_complexity(4, 4), 3);
        // B = 8: 1 + 1 = 2.
        assert_eq!(m.communication_complexity(4, 8), 2);
        // p = 2: PEs {2,3} on proc 1: pairs (0,2),(0,3) both cross but
        // aggregate per processor pair: (p0,p1): 8 words => ceil(8/4)=2.
        assert_eq!(m.communication_complexity(2, 4), 2);
    }

    #[test]
    fn receive_side_counts_too() {
        let mut m = NoMachine::new(4);
        // All PEs send 1 word to PE0: proc0 receives 3 blocks (p=4,B=1).
        m.step(|pe, ctx| {
            if pe != 0 {
                ctx.send(0, 7);
            }
        });
        assert_eq!(m.communication_complexity(4, 1), 3);
    }

    #[test]
    fn computation_takes_max_over_processors() {
        let mut m = NoMachine::new(4);
        m.step(|pe, ctx| ctx.work(pe as u64 + 1));
        assert_eq!(m.computation_complexity(4), 4);
        assert_eq!(m.computation_complexity(2), 3 + 4);
        assert_eq!(m.computation_complexity(1), 10);
    }

    #[test]
    fn dbsp_uses_cluster_locality() {
        let mut m = NoMachine::new(8);
        // Neighbour exchange within pairs: finest clusters (size 2).
        m.step(|pe, ctx| ctx.send(pe ^ 1, 1));
        // Far exchange: whole machine.
        m.step(|pe, ctx| ctx.send(pe ^ 4, 1));
        let g = [8.0, 4.0, 1.0]; // g_0 (global) .. g_2 (pairs)
        let b = [1usize, 1, 1];
        // Step 1: level 2 (pairs), h = 1 → cost 1; step 2: level 0, h=1 →
        // cost 8.
        let t = m.dbsp_time(8, &g, &b);
        assert!((t - 9.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn inbox_is_sorted_by_source() {
        let mut m = NoMachine::new(4);
        m.step(|pe, ctx| {
            if pe > 0 {
                ctx.send(0, pe as u64);
            }
        });
        m.step(|pe, ctx| {
            if pe == 0 {
                let srcs: Vec<u32> = ctx.inbox.iter().map(|m| m.0).collect();
                assert_eq!(srcs, vec![1, 2, 3]);
            }
        });
    }
}
