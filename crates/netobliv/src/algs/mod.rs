//! The paper's network-oblivious algorithms, written for [`crate::NoMachine`].
//!
//! | Paper artifact | Module |
//! |---|---|
//! | prefix sums (Table II row 1) | [`scan`] |
//! | matrix transposition (from \[4\]) | [`transpose`] |
//! | FFT (from \[4\]) | [`fft`] |
//! | N-GEP with `𝒟` vs `𝒟*` (Table I, Thm 6) | [`ngep`] |
//! | column-sort-based sorting | [`sort`] |
//! | NO-LR / NO-IS (Thm 9) | [`listrank`] |
//! | NO Euler tour / tree problems (§VI-B) | [`euler`] |
//! | NO connected components (Thm 10) | [`cc`] |

pub mod cc;
pub mod euler;
pub mod fft;
pub mod listrank;
pub mod ngep;
pub mod scan;
pub mod sort;
pub mod transpose;
