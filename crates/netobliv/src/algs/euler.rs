//! NO Euler tour and tree computations (§VI-B: "it is easy to derive NO
//! algorithms with the same complexities as NO-LR for Euler tour and many
//! tree problems").
//!
//! Same construction as the MO version: every tree edge contributes a
//! down and an up arc (one arc per PE); the tour successor is computed in
//! one superstep from the twin/ring representation; the resulting list is
//! ranked twice with the in-machine NO-LR (unit weights for positions,
//! offset ±1 weights for depth sums); a handful of supersteps extract
//! rooting, depth, subtree size and preorder per vertex.

use crate::NoMachine;

use super::listrank::{lr_level, SENT, SLOTS, S_DIST, S_PRED, S_RANK, S_SUCC};

/// Per-PE slots after the list-ranking frames: pristine arc inputs and
/// saved intermediates. `EOFF` is the first Euler slot.
const E_TWIN: usize = 0;
const E_RING: usize = 1;
const E_SUCC: usize = 2; // pristine tour successor
const E_PRED: usize = 3;
const E_RANK1: usize = 4; // unit-weight ranks (saved between runs)
const E_POS: usize = 5;
const E_CHILD: usize = 6; // child vertex of this arc's edge
const E_SLOTS: usize = 7;
// Per-vertex outputs (stored at PE = vertex id).
const V_PARENT: usize = 0;
const V_DEPTH: usize = 1;
const V_SIZE: usize = 2;
const V_PRE: usize = 3;
const V_SLOTS: usize = 4;

/// Results of the NO Euler-tour pipeline.
pub struct NoEuler {
    /// The machine (for cost evaluation).
    pub machine: NoMachine,
    /// Parent per vertex (root self-parented).
    pub parent: Vec<u64>,
    /// Depth per vertex.
    pub depth: Vec<u64>,
    /// Subtree size per vertex.
    pub size: Vec<u64>,
    /// Preorder number per vertex (root 0).
    pub preorder: Vec<u64>,
}

/// Run the NO Euler tour on the rooted tree given by `parent`
/// (`parent[root] == root`). One arc per PE.
pub fn no_euler(parent: &[usize], root: usize) -> NoEuler {
    let n = parent.len();
    assert!(n >= 2, "need at least one edge");
    assert_eq!(parent[root], root);
    // Host-side arc construction (the input representation), identical to
    // the MO version: edge of child v gets arcs 2e (down) / 2e+1 (up).
    let mut child_edge = vec![usize::MAX; n];
    let mut e = 0usize;
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        if v != root {
            child_edge[v] = e;
            e += 1;
        }
    }
    let num_arcs = 2 * e;
    let mut out = vec![Vec::new(); n];
    for v in 0..n {
        if v != root {
            out[v].push(2 * child_edge[v] + 1);
            out[parent[v]].push(2 * child_edge[v]);
        }
    }
    for ring in &mut out {
        ring.sort_unstable();
    }
    let mut twin = vec![0u64; num_arcs];
    let mut ring_next = vec![0u64; num_arcs];
    for v in 0..n {
        if v != root {
            twin[2 * child_edge[v]] = (2 * child_edge[v] + 1) as u64;
            twin[2 * child_edge[v] + 1] = (2 * child_edge[v]) as u64;
        }
    }
    for ring in &out {
        for (i, &a) in ring.iter().enumerate() {
            ring_next[a] = ring[(i + 1) % ring.len()] as u64;
        }
    }
    let a0 = out[root][0] as u64;

    // Machine: one PE per arc (padded to a power of two for the scans).
    let n_pes = num_arcs.next_power_of_two().max(n.next_power_of_two());
    let mut m = NoMachine::new(n_pes);
    // Depth bound for the LR frames.
    let mut depths = 2usize;
    let mut sz = num_arcs;
    while sz > super::listrank::BASE {
        sz -= (sz - 2) / 3;
        depths += 1;
    }
    let eoff = SLOTS * (depths + 2);
    let frame = eoff + E_SLOTS + V_SLOTS;
    for pe in 0..n_pes {
        let mem = m.mem_mut(pe);
        mem.resize(frame, 0);
        if pe < num_arcs {
            mem[eoff + E_TWIN] = twin[pe];
            mem[eoff + E_RING] = ring_next[pe];
            mem[eoff + E_CHILD] = (pe / 2) as u64; // edge index; child below
        }
    }

    // Superstep: tour successor succ(a) = ring_next[twin(a)], cut at a0.
    // Each arc asks its twin for the twin's ring_next.
    m.step(|pe, ctx| {
        if pe >= num_arcs {
            return;
        }
        let t = ctx.mem[eoff + E_TWIN];
        let r = ctx.mem[eoff + E_RING];
        ctx.send(t as usize, r); // deliver my ring_next to my twin
    });
    m.step(|pe, ctx| {
        if pe >= num_arcs {
            return;
        }
        let s = ctx.inbox[0].1;
        ctx.mem[eoff + E_SUCC] = if s == a0 { SENT } else { s };
        // Announce myself to my successor so it learns its predecessor.
        if ctx.mem[eoff + E_SUCC] != SENT {
            let s = ctx.mem[eoff + E_SUCC] as usize;
            ctx.send(s, pe as u64);
        }
        ctx.mem[eoff + E_PRED] = SENT;
    });
    m.step(|pe, ctx| {
        if pe >= num_arcs {
            return;
        }
        if let Some(&(_, w)) = ctx.inbox.first() {
            ctx.mem[eoff + E_PRED] = w;
        }
    });

    // Run 1: unit weights → positions.
    m.step(|pe, ctx| {
        if pe >= num_arcs {
            return;
        }
        ctx.mem[S_SUCC] = ctx.mem[eoff + E_SUCC];
        ctx.mem[S_PRED] = ctx.mem[eoff + E_PRED];
        ctx.mem[S_DIST] = 1;
    });
    lr_level(&mut m, num_arcs, 0);
    m.step(|pe, ctx| {
        if pe >= num_arcs {
            return;
        }
        let r1 = ctx.mem[S_RANK];
        ctx.mem[eoff + E_RANK1] = r1;
        ctx.mem[eoff + E_POS] = (num_arcs as u64 - 1) - r1;
        // Reload pristine list state for run 2 with offset ±1 weights.
        ctx.mem[S_SUCC] = ctx.mem[eoff + E_SUCC];
        ctx.mem[S_PRED] = ctx.mem[eoff + E_PRED];
        ctx.mem[S_DIST] = if pe % 2 == 0 { 2 } else { 0 };
    });
    lr_level(&mut m, num_arcs, 0);

    // Down arcs exchange positions with their up twins, then deliver the
    // per-vertex outputs to PE = child vertex.
    let edge_child: Vec<u64> = {
        let mut ec = vec![0u64; e];
        for v in 0..n {
            if v != root {
                ec[child_edge[v]] = v as u64;
            }
        }
        ec
    };
    m.step(|pe, ctx| {
        if pe >= num_arcs || pe % 2 == 0 {
            return;
        }
        // Up arc: send my position to my (down) twin.
        let p = ctx.mem[eoff + E_POS];
        ctx.send(pe - 1, p);
    });
    m.step(|pe, ctx| {
        if pe >= num_arcs || pe % 2 != 0 {
            return;
        }
        let pu = ctx.inbox[0].1;
        let pd = ctx.mem[eoff + E_POS];
        debug_assert!(pd < pu, "down arc precedes up arc");
        let r1 = ctx.mem[eoff + E_RANK1];
        let r2 = ctx.mem[S_RANK];
        let sw = r2.wrapping_sub(r1);
        let depth = 2u64.wrapping_sub(sw);
        let size = (pu - pd).div_ceil(2);
        let pre = (pd + 1 + depth) >> 1; // even by construction
        let v = edge_child[pe / 2];
        ctx.send_words(v as usize, &[depth, size, pre]);
        ctx.work(1);
    });
    let parent_in: Vec<u64> = parent.iter().map(|&p| p as u64).collect();
    m.step(|pe, ctx| {
        if pe >= n {
            return;
        }
        let base = eoff + E_SLOTS;
        if pe == root {
            ctx.mem[base + V_PARENT] = root as u64;
            ctx.mem[base + V_DEPTH] = 0;
            ctx.mem[base + V_SIZE] = n as u64;
            ctx.mem[base + V_PRE] = 0;
        } else {
            ctx.mem[base + V_PARENT] = parent_in[pe];
            ctx.mem[base + V_DEPTH] = ctx.inbox[0].1;
            ctx.mem[base + V_SIZE] = ctx.inbox[1].1;
            ctx.mem[base + V_PRE] = ctx.inbox[2].1;
        }
    });

    let base = eoff + E_SLOTS;
    let grab = |slot: usize, m: &NoMachine| -> Vec<u64> {
        (0..n).map(|v| m.mem(v)[base + slot]).collect()
    };
    let parent_out = grab(V_PARENT, &m);
    let depth = grab(V_DEPTH, &m);
    let size = grab(V_SIZE, &m);
    let preorder = grab(V_PRE, &m);
    NoEuler {
        machine: m,
        parent: parent_out,
        depth,
        size,
        preorder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_range_loop)]
    fn reference_depths(parent: &[usize], root: usize) -> Vec<u64> {
        let n = parent.len();
        let mut kids = vec![Vec::new(); n];
        for v in 0..n {
            if v != root {
                kids[parent[v]].push(v);
            }
        }
        let mut depth = vec![0u64; n];
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            for &c in &kids[u] {
                depth[c] = depth[u] + 1;
                stack.push(c);
            }
        }
        depth
    }

    fn reference_sizes(parent: &[usize], root: usize) -> Vec<u64> {
        let n = parent.len();
        let depth = reference_depths(parent, root);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(depth[v]));
        let mut size = vec![1u64; n];
        for v in order {
            if v != root {
                size[parent[v]] += size[v];
            }
        }
        size
    }

    #[allow(clippy::needless_range_loop)]
    fn random_tree(n: usize, seed: u64) -> Vec<usize> {
        let mut x = seed | 1;
        let mut parent = vec![0usize; n];
        for v in 1..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            parent[v] = ((x >> 33) as usize) % v;
        }
        parent
    }

    #[test]
    fn path_and_star() {
        // Path 0-1-2-...-9.
        let parent: Vec<usize> = (0..10usize).map(|v| v.saturating_sub(1)).collect();
        let r = no_euler(&parent, 0);
        assert_eq!(r.depth, (0..10u64).collect::<Vec<_>>());
        assert_eq!(r.size, (1..=10u64).rev().collect::<Vec<_>>());
        assert_eq!(r.preorder, (0..10u64).collect::<Vec<_>>());
        // Star.
        let parent = vec![0usize; 12];
        let r = no_euler(&parent, 0);
        assert_eq!(r.size[0], 12);
        assert!(r.depth[1..].iter().all(|&d| d == 1));
    }

    #[test]
    fn random_trees_match_reference() {
        for n in [2usize, 5, 17, 100, 300] {
            let parent = random_tree(n, 7 + n as u64);
            let r = no_euler(&parent, 0);
            assert_eq!(r.depth, reference_depths(&parent, 0), "depths n={n}");
            assert_eq!(r.size, reference_sizes(&parent, 0), "sizes n={n}");
            assert_eq!(
                r.parent,
                parent.iter().map(|&p| p as u64).collect::<Vec<_>>()
            );
            // Preorder: parent strictly before child.
            for (v, &pv) in parent.iter().enumerate().skip(1) {
                assert!(r.preorder[pv] < r.preorder[v]);
            }
        }
    }

    /// §VI-B: same communication shape as NO-LR (two rankings dominate).
    #[test]
    fn communication_tracks_listrank() {
        let n = 512;
        let parent = random_tree(n, 3);
        let r = no_euler(&parent, 0);
        let comm = r.machine.communication_complexity(16, 1) as f64;
        // Leading term ~ 2 rankings of 2(n-1) arcs: Θ(n/p) with the LR
        // constant (~12 steps/level × Σn_j = 3n × two runs).
        let per = comm / (2.0 * 2.0 * (n as f64 - 1.0) / 16.0);
        assert!(per > 2.0 && per < 100.0, "constant {per} out of range");
    }
}
