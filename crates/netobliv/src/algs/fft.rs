//! NO FFT on M(n) (adapted from \[4\], Table II row 5:
//! Θ(n/(pB)·log_{n/p} n) communication).
//!
//! The √n-recursive decomposition executed *level-synchronously*: at any
//! point every PE group has the same size `g`, so all groups share
//! supersteps — transposition permutations are one global superstep each
//! and the recursion is driven host-side on the uniform group size.
//! Convention matches MO-FFT: `Y[i] = Σ_j X[j]·ω_n^{-ij}`.

use std::f64::consts::PI;

use crate::NoMachine;

const BASE: usize = 4;

#[inline]
fn omega(n: usize, t: usize) -> (f64, f64) {
    let ang = -2.0 * PI * (t as f64) / (n as f64);
    (ang.cos(), ang.sin())
}

#[inline]
fn cmul(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Apply one permutation superstep within every group of size `g`:
/// local index `t` moves to local index `perm(t)`.
fn permute(m: &mut NoMachine, g: usize, perm: impl Fn(usize) -> usize) {
    m.step(|pe, ctx| {
        let lo = pe - pe % g;
        let t = pe % g;
        let (re, im) = (ctx.mem[0], ctx.mem[1]);
        ctx.send_words(lo + perm(t), &[re, im]);
        ctx.work(1);
    });
    m.step(|_pe, ctx| {
        ctx.mem[0] = ctx.inbox[0].1;
        ctx.mem[1] = ctx.inbox[1].1;
    });
}

/// Recursive driver: FFT every group of `g` consecutive PEs, all groups
/// in lock-step.
fn fft_groups(m: &mut NoMachine, g: usize) {
    if g <= BASE {
        // Gather to the group leader, direct DFT, scatter.
        m.step(|pe, ctx| {
            let lo = pe - pe % g;
            let (re, im) = (ctx.mem[0], ctx.mem[1]);
            ctx.send_words(lo, &[re, im]);
        });
        m.step(|pe, ctx| {
            if pe % g != 0 {
                return;
            }
            // Leader: inbox sorted by source = local order.
            let vals: Vec<(f64, f64)> = (0..g)
                .map(|t| {
                    (
                        f64::from_bits(ctx.inbox[2 * t].1),
                        f64::from_bits(ctx.inbox[2 * t + 1].1),
                    )
                })
                .collect();
            for i in 0..g {
                let mut acc = (0.0, 0.0);
                for (j, &v) in vals.iter().enumerate() {
                    let t = cmul(v, omega(g, (i * j) % g));
                    acc = (acc.0 + t.0, acc.1 + t.1);
                }
                ctx.send_words(pe + i, &[acc.0.to_bits(), acc.1.to_bits()]);
            }
            ctx.work((g * g) as u64);
        });
        m.step(|_pe, ctx| {
            ctx.mem[0] = ctx.inbox[0].1;
            ctx.mem[1] = ctx.inbox[1].1;
        });
        return;
    }
    let k = g.trailing_zeros() as usize;
    let g1 = 1usize << k.div_ceil(2);
    let g2 = g / g1;
    // Regroup by j2: index j1·g2 + j2 → j2·g1 + j1.
    permute(m, g, |t| (t % g2) * g1 + t / g2);
    // Sub-FFTs of length g1 (contiguous runs, fixed j2).
    fft_groups(m, g1);
    // Twiddle: local position j2·g1 + k1 scaled by ω_g^{-j2·k1}.
    m.step(|pe, ctx| {
        let t = pe % g;
        let (j2, k1) = (t / g1, t % g1);
        let v = (f64::from_bits(ctx.mem[0]), f64::from_bits(ctx.mem[1]));
        let w = cmul(v, omega(g, (j2 * k1) % g));
        ctx.mem[0] = w.0.to_bits();
        ctx.mem[1] = w.1.to_bits();
        ctx.work(1);
    });
    // Regroup by k1: j2·g1 + k1 → k1·g2 + j2.
    permute(m, g, |t| (t % g1) * g2 + t / g1);
    // Sub-FFTs of length g2.
    fft_groups(m, g2);
    // Final order: k1·g2 + k2 → k2·g1 + k1.
    permute(m, g, |t| (t % g2) * g1 + t / g2);
}

/// Run the NO FFT of `input` (length a power of two, one complex element
/// per PE). Returns the machine and the transform.
pub fn no_fft(input: &[(f64, f64)]) -> (NoMachine, Vec<(f64, f64)>) {
    let n = input.len();
    assert!(n.is_power_of_two());
    let mut m = NoMachine::new(n);
    for (pe, &(re, im)) in input.iter().enumerate() {
        m.mem_mut(pe).extend([re.to_bits(), im.to_bits()]);
    }
    fft_groups(&mut m, n);
    let out = (0..n)
        .map(|pe| (f64::from_bits(m.mem(pe)[0]), f64::from_bits(m.mem(pe)[1])))
        .collect();
    (m, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_dft(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let n = input.len();
        (0..n)
            .map(|i| {
                let mut acc = (0.0, 0.0);
                for (j, &v) in input.iter().enumerate() {
                    let t = cmul(v, omega(n, (i * j) % n));
                    acc = (acc.0 + t.0, acc.1 + t.1);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let input: Vec<(f64, f64)> = (0..n)
                .map(|t| ((t as f64 * 0.3).sin(), (t as f64 * 0.7).cos() * 0.5))
                .collect();
            let (_, got) = no_fft(&input);
            let want = reference_dft(&input);
            for k in 0..n {
                assert!(
                    (got[k].0 - want[k].0).abs() < 1e-6 && (got[k].1 - want[k].1).abs() < 1e-6,
                    "n={n} k={k}: {:?} vs {:?}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    /// Table II row 5 shape: communication ≈ (n/(pB))·log_{n/p} n.
    #[test]
    fn communication_scales_with_the_bound() {
        let n = 1024usize;
        let input: Vec<(f64, f64)> = (0..n).map(|t| (t as f64, 0.0)).collect();
        let (m, _) = no_fft(&input);
        for (p, b) in [(16usize, 2usize), (64, 2), (16, 8)] {
            let comm = m.communication_complexity(p, b) as f64;
            let np = (n / p) as f64;
            let predicted =
                (2.0 * n as f64 / (p as f64 * b as f64)) * ((n as f64).ln() / np.ln()).max(1.0);
            assert!(
                comm <= 8.0 * predicted && comm >= 0.2 * predicted,
                "p={p} B={b}: comm {comm} vs Θ({predicted})"
            );
        }
    }
}
