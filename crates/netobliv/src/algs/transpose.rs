//! NO matrix transposition on M(n²) (adapted from \[4\], Table II row 2:
//! Θ(n²/(Bp)) communication).

use crate::NoMachine;

/// Transpose an `n × n` matrix distributed one element per PE (row-major
/// PE numbering): a single all-to-all permutation superstep plus the
/// delivery step.
pub fn no_transpose(a: &[u64], n: usize) -> (NoMachine, Vec<u64>) {
    assert_eq!(a.len(), n * n);
    let mut m = NoMachine::new((n * n).max(1));
    for (pe, &v) in a.iter().enumerate() {
        m.mem_mut(pe).push(v);
    }
    m.step(|pe, ctx| {
        let (i, j) = (pe / n, pe % n);
        let v = ctx.mem[0];
        ctx.send(j * n + i, v);
        ctx.work(1);
    });
    m.step(|_pe, ctx| {
        let v = ctx.inbox[0].1;
        ctx.mem[0] = v;
    });
    let out = (0..n * n).map(|pe| m.mem(pe)[0]).collect();
    (m, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposes() {
        let n = 8;
        let a: Vec<u64> = (0..(n * n) as u64).collect();
        let (_, t) = no_transpose(&a, n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(t[j * n + i], a[i * n + j]);
            }
        }
    }

    /// Table II row 2: Θ(n²/(Bp)) for B up to n²/p².
    #[test]
    fn communication_matches_theta_bound() {
        let n = 32usize; // N = 1024 PEs
        let a = vec![1u64; n * n];
        let (m, _) = no_transpose(&a, n);
        for (p, b) in [(4usize, 4usize), (16, 4), (16, 1), (64, 2)] {
            let comm = m.communication_complexity(p, b) as f64;
            let predicted = (n * n) as f64 / (b * p) as f64;
            assert!(
                comm >= 0.4 * predicted && comm <= 4.0 * predicted,
                "p={p} B={b}: comm {comm} vs Θ({predicted})"
            );
        }
    }
}
