//! NO sorting based on Leighton's column sort (§IV: "for sorting, a
//! slower NO algorithm is presented in \[4\] based on column sort";
//! Table II row 6: Θ(n/(pB)) communication).
//!
//! One key per PE. A group of `g` consecutive PEs is viewed column-major
//! as an `r × s` matrix with `2(s-1)² ≤ r`; the classic eight steps
//! become: recursive column sorts interleaved with two transposition
//! permutations, followed by overlapping even/odd/even block sorts of
//! size `2r` that play the role of the shift step (after step 5 every
//! element is within half a column of its final position, so the
//! overlapping passes finish the job without the ±∞ padding columns).
//!
//! All groups at a recursion level share supersteps (level-synchronous),
//! so M(p,B) costs are measured with full concurrency.

use crate::{Comm, NoMachine};

/// Gather-sort-scatter base size.
const BASE: usize = 32;

/// One permutation superstep applied within every group in `starts`
/// (all of size `g`): local index `t` moves to `perm(t)`.
fn permute<C: Comm>(m: &mut C, starts: &[usize], g: usize, perm: impl Fn(usize) -> usize) {
    let mut group_of = std::collections::HashMap::new();
    for &lo in starts {
        for t in 0..g {
            group_of.insert(lo + t, lo);
        }
    }
    m.step(|pe, ctx| {
        let Some(&lo) = group_of.get(&pe) else { return };
        let t = pe - lo;
        let v = ctx.mem[0];
        ctx.send(lo + perm(t), v);
        ctx.work(1);
    });
    m.step(|pe, ctx| {
        if group_of.contains_key(&pe) {
            ctx.mem[0] = ctx.inbox[0].1;
        }
    });
}

/// Largest power-of-two `s ≥ 2` with `2(s-1)² ≤ g/s` (column-sort
/// requirement), or `None` if even `s = 2` fails.
fn pick_s(g: usize) -> Option<usize> {
    let mut best = None;
    let mut s = 2usize;
    while s < g {
        if g.is_multiple_of(s) && 2 * (s - 1) * (s - 1) <= g / s {
            best = Some(s);
        }
        s *= 2;
    }
    best
}

/// Sort every group `[lo, lo + g)` for `lo ∈ starts`, ascending.
fn sort_groups<C: Comm>(m: &mut C, starts: &[usize], g: usize) {
    if starts.is_empty() || g <= 1 {
        return;
    }
    if g <= BASE || pick_s(g).is_none() {
        // Gather to the group leader, sort, scatter.
        let leaders: std::collections::HashSet<usize> = starts.iter().copied().collect();
        let mut leader_of = std::collections::HashMap::new();
        for &lo in starts {
            for t in 0..g {
                leader_of.insert(lo + t, lo);
            }
        }
        m.step(|pe, ctx| {
            if let Some(&lo) = leader_of.get(&pe) {
                let v = ctx.mem[0];
                ctx.send(lo, v);
            }
        });
        m.step(|pe, ctx| {
            if !leaders.contains(&pe) {
                return;
            }
            let mut vals: Vec<u64> = ctx.inbox.iter().map(|&(_, w)| w).collect();
            vals.sort_unstable();
            ctx.work((vals.len() * vals.len().max(2).ilog2() as usize) as u64);
            for (t, v) in vals.into_iter().enumerate() {
                ctx.send(pe + t, v);
            }
        });
        m.step(|pe, ctx| {
            if leader_of.contains_key(&pe) {
                ctx.mem[0] = ctx.inbox[0].1;
            }
        });
        return;
    }
    let s = pick_s(g).unwrap();
    let r = g / s;
    let col_starts: Vec<usize> = starts
        .iter()
        .flat_map(|&lo| (0..s).map(move |c| lo + c * r))
        .collect();
    // 1: sort columns.
    sort_groups(m, &col_starts, r);
    // 2: transpose-reshape (Leighton): pick the matrix up in
    // column-major order and lay it down in row-major order — the
    // element with column-major rank t lands at row-major rank t, i.e.
    // at column-major position (t mod s)·r + t div s.
    permute(m, starts, g, |t| (t % s) * r + t / s);
    // 3: sort columns.
    sort_groups(m, &col_starts, r);
    // 4: untranspose (the exact inverse of step 2).
    permute(m, starts, g, |t| (t % r) * s + t / r);
    // 5: sort columns.
    sort_groups(m, &col_starts, r);
    // 6-8: after step 5 every element sits within half a column of its
    // final position, so the ±∞ shift can be replaced by overlapping
    // block sorts: half-offset r-blocks fix the column-boundary windows
    // and re-sorting the columns restores alignment; one more round
    // absorbs the corner cases of the displacement bound.
    let offset: Vec<usize> = starts
        .iter()
        .flat_map(|&lo| (0..s - 1).map(move |k| lo + r / 2 + k * r))
        .collect();
    for _ in 0..2 {
        sort_groups(m, &offset, r);
        sort_groups(m, &col_starts, r);
    }
}

/// Run the column sort on an arbitrary [`Comm`] backend with
/// `data.len()` PEs (one key per PE, a power of two). Loads owned PEs
/// and executes every superstep; afterwards each owned PE's memory
/// word 0 holds its key of the ascending result.
pub fn sort_program<C: Comm>(m: &mut C, data: &[u64]) {
    let n = data.len().max(1);
    assert!(n.is_power_of_two(), "pad to a power of two");
    assert_eq!(m.n_pes(), n, "backend must expose one PE per key");
    for (pe, &v) in data.iter().enumerate() {
        if let Some(mem) = m.pe_mem_mut(pe) {
            mem.clear();
            mem.push(v);
        }
    }
    sort_groups(m, &[0], n);
}

/// Sort `data` on M(n) (one key per PE, `n` a power of two). Returns the
/// machine and the sorted keys.
pub fn no_sort(data: &[u64]) -> (NoMachine, Vec<u64>) {
    let mut m = NoMachine::new(data.len().max(1));
    sort_program(&mut m, data);
    let out = (0..data.len()).map(|pe| m.mem(pe)[0]).collect();
    (m, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % modulus
            })
            .collect()
    }

    fn check(data: &[u64]) {
        let (_, got) = no_sort(data);
        let mut want = data.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn sorts_random_inputs() {
        for n in [1usize, 2, 32, 64, 128, 256, 1024, 4096] {
            check(&lcg(7 + n as u64, n, u64::MAX >> 33));
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        let n = 1024;
        check(&(0..n as u64).collect::<Vec<_>>());
        check(&(0..n as u64).rev().collect::<Vec<_>>());
        check(&vec![5u64; n]);
        check(&lcg(3, n, 4));
        let mut organ: Vec<u64> = (0..n as u64 / 2).collect();
        organ.extend((0..n as u64 / 2).rev());
        check(&organ);
        // Interleaved halves (worst case for column locality).
        let inter: Vec<u64> = (0..n as u64).map(|i| (i % 2) * 1000 + i / 2).collect();
        check(&inter);
    }

    /// Table II row 6 shape: every pass moves Θ(n/(pB)) blocks per
    /// processor; column sort performs a polylog number of passes (7 per
    /// recursion level — the paper itself notes the NO sort is "slower").
    /// The per-pass bound shows as clean 1/B scaling and a bounded
    /// pass-count multiplier.
    #[test]
    fn communication_matches_theta_bound() {
        let n = 4096usize;
        let (m, _) = no_sort(&lcg(1, n, 1 << 20));
        let per_pass = |p: usize, b: usize| n as f64 / (p * b) as f64;
        // Pass multiplier: 2 permutes per level over 3 levels of
        // recursion plus cleanup => bounded by a small power.
        let c = m.communication_complexity(16, 4) as f64;
        let mult = c / per_pass(16, 4);
        assert!(
            (2.0..300.0).contains(&mult),
            "pass multiplier {mult} out of the polylog envelope"
        );
        // Doubling B halves the per-processor block count (up to ceils).
        let c2 = m.communication_complexity(16, 8) as f64;
        assert!(
            c2 < 0.7 * c && c2 > 0.3 * c,
            "B-scaling broken: {c2} vs {c}"
        );
        // More processors never increases any processor's block count.
        let c64 = m.communication_complexity(64, 4) as f64;
        assert!(c64 <= 4.0 * c, "p=64 comm {c64} vs p=16 comm {c}");
    }
}
