//! NO prefix sums: a Blelloch tree over the PEs
//! (Table II row 1: Θ(log p) communication, Θ(n/p) computation).

use crate::NoMachine;

/// Run an exclusive prefix sum over `values` on M(N) with `N =
/// values.len()` (a power of two), one value per PE. Returns the machine
/// (for cost evaluation) and the result.
pub fn no_prefix_sum(values: &[u64]) -> (NoMachine, Vec<u64>) {
    let n = values.len();
    assert!(n.is_power_of_two(), "pad to a power of two");
    let mut m = NoMachine::new(n);
    for (pe, &v) in values.iter().enumerate() {
        // mem[0] = working value; mem[1 + d] = left-child subtotal
        // captured during up-sweep level d.
        m.mem_mut(pe).push(v);
    }
    let levels = n.trailing_zeros() as usize;

    // Up-sweep: level d senders are left children (index ≡ 2^d − 1 mod
    // 2^{d+1}); the message is applied at the start of the next step.
    for d in 0..levels {
        let stride = 1usize << (d + 1);
        m.step(|pe, ctx| {
            // Apply level d-1 receipt.
            if let Some(&(_, w)) = ctx.inbox.first() {
                ctx.mem.push(w); // record child subtotal
                ctx.mem[0] = ctx.mem[0].wrapping_add(w);
                ctx.work(1);
            }
            if pe % stride == stride / 2 - 1 {
                let v = ctx.mem[0];
                ctx.send(pe + stride / 2, v);
            }
        });
    }
    // Root applies the final receipt and clears itself for the
    // down-sweep.
    m.step(|pe, ctx| {
        if let Some(&(_, w)) = ctx.inbox.first() {
            ctx.mem.push(w);
            ctx.mem[0] = ctx.mem[0].wrapping_add(w);
            ctx.work(1);
        }
        if pe == ctx.n_pes() - 1 {
            ctx.mem[0] = 0;
        }
    });
    // Down-sweep: level d from coarse to fine; parent sends its prefix
    // to the left child and absorbs the stored subtotal.
    for d in (0..levels).rev() {
        let stride = 1usize << (d + 1);
        m.step(|pe, ctx| {
            if let Some(&(_, w)) = ctx.inbox.first() {
                ctx.mem[0] = w;
            }
            if pe % stride == stride - 1 {
                let subtotal = ctx.mem.pop().expect("up-sweep stored a subtotal");
                let mine = ctx.mem[0];
                ctx.send(pe - stride / 2, mine);
                ctx.mem[0] = mine.wrapping_add(subtotal);
                ctx.work(1);
            }
        });
    }
    // Deliver the last level.
    m.step(|_pe, ctx| {
        if let Some(&(_, w)) = ctx.inbox.first() {
            ctx.mem[0] = w;
        }
    });

    let out = (0..n).map(|pe| m.mem(pe)[0]).collect();
    (m, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_exclusive_scan() {
        for n in [1usize, 2, 8, 64, 256] {
            let vals: Vec<u64> = (0..n as u64).map(|x| x * 7 + 1).collect();
            let (_, got) = no_prefix_sum(&vals);
            let mut acc = 0u64;
            for k in 0..n {
                assert_eq!(got[k], acc, "n={n} k={k}");
                acc += vals[k];
            }
        }
    }

    /// Table II row 1: communication Θ(log p) on M(p, 1), independent of n.
    #[test]
    fn communication_is_logarithmic_in_p() {
        let n = 1 << 10;
        let vals = vec![1u64; n];
        let (m, _) = no_prefix_sum(&vals);
        for p in [2usize, 4, 16, 64] {
            let comm = m.communication_complexity(p, 1);
            let logp = p.trailing_zeros() as u64;
            // Tree exchanges: ~2 crossing messages per level near the
            // processor boundaries, up+down sweeps.
            assert!(
                comm <= 8 * (logp + 1) + 8,
                "p={p}: comm {comm} not O(log p)"
            );
            assert!(comm >= logp, "p={p}: comm {comm} too low");
        }
        // Computation Θ(n/p): dominated by... the scan charges O(1) per
        // tree node; just check it shrinks with p.
        assert!(m.computation_complexity(64) <= m.computation_complexity(2));
    }
}
