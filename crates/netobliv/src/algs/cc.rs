//! NO connected components (§VI-B, Theorem 10).
//!
//! Vertices occupy PEs `[0, n)` and edges PEs `[n, n + m)`. Each round
//! (at most `O(log n)` of them):
//!
//! 1. every edge queries its endpoints' current labels (request/reply
//!    supersteps);
//! 2. an edge whose endpoints disagree proposes the smaller label to the
//!    *root vertex* of the larger label (min-hooking);
//! 3. roots adopt the best proposal, then `O(log n)` pointer-jumping
//!    exchanges collapse the trees to stars.
//!
//! The paper's algorithm obtains a better superstep/communication profile
//! by contracting the adjacency lists with NO sorting; we keep the
//! simpler label-propagation choreography (the communication volume per
//! round is the same Θ((n+m)/p) shape) and document the substitution in
//! DESIGN.md.

use crate::NoMachine;

/// Vertex memory: `[0]` = label, `[1]` = best proposal.
/// Edge memory: `[0]` = u, `[1]` = v, `[2]` = label(u), `[3]` = label(v).
///
/// Labels converge to the minimum vertex id of each component.
pub fn no_cc(n: usize, edges: &[(usize, usize)]) -> (NoMachine, Vec<u64>) {
    assert!(n >= 1);
    let m_edges = edges.len();
    let mut m = NoMachine::new(n + m_edges.max(1));
    for pe in 0..n {
        m.mem_mut(pe).extend([pe as u64, u64::MAX]);
    }
    for (k, &(u, v)) in edges.iter().enumerate() {
        assert!(u < n && v < n);
        m.mem_mut(n + k).extend([u as u64, v as u64, 0, 0]);
    }
    let max_rounds = (usize::BITS - n.leading_zeros()) as usize + 1;
    for _round in 0..max_rounds {
        // 1a: edges ask both endpoints.
        m.step(|pe, ctx| {
            if pe < n || pe >= n + m_edges {
                return;
            }
            let (u, v) = (ctx.mem[0], ctx.mem[1]);
            ctx.send(u as usize, pe as u64);
            ctx.send(v as usize, pe as u64);
        });
        // 1b: vertices reply with their label.
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            let label = ctx.mem[0];
            let asks: Vec<u64> = ctx.inbox.iter().map(|&(_, w)| w).collect();
            for e in asks {
                ctx.send(e as usize, label);
            }
        });
        // 2: edges propose min(label) to the root of max(label).
        m.step(|pe, ctx| {
            if pe < n || pe >= n + m_edges {
                return;
            }
            let (u, v) = (ctx.mem[0] as usize, ctx.mem[1] as usize);
            let mut lu = 0;
            let mut lv = 0;
            for &(src, w) in ctx.inbox {
                if src as usize == u {
                    lu = w;
                } else if src as usize == v {
                    lv = w;
                }
            }
            // Self-loop at a vertex: u == v means one reply serves both.
            if u == v {
                lv = lu;
            }
            ctx.mem[2] = lu;
            ctx.mem[3] = lv;
            if lu != lv {
                let (lo, hi) = (lu.min(lv), lu.max(lv));
                ctx.send(hi as usize, lo);
                ctx.work(1);
            }
        });
        // 3a: hooked roots adopt the minimum proposal.
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            let best = ctx.inbox.iter().map(|&(_, w)| w).min();
            if let Some(b) = best {
                if ctx.mem[0] == pe as u64 && b < ctx.mem[0] {
                    ctx.mem[0] = b;
                    ctx.work(1);
                }
            }
        });
        // 3b: pointer jumping to stars: label(v) ← label(label(v)).
        let jump_rounds = (usize::BITS - n.leading_zeros()) as usize;
        for _ in 0..jump_rounds {
            m.step(|pe, ctx| {
                if pe >= n {
                    return;
                }
                let l = ctx.mem[0];
                ctx.send(l as usize, pe as u64);
            });
            m.step(|pe, ctx| {
                if pe >= n {
                    return;
                }
                let label = ctx.mem[0];
                let asks: Vec<u64> = ctx.inbox.iter().map(|&(_, w)| w).collect();
                for v in asks {
                    ctx.send(v as usize, label);
                }
            });
            m.step(|pe, ctx| {
                if pe >= n {
                    return;
                }
                // Exactly one reply: from label(pe).
                if let Some(&(_, w)) = ctx.inbox.first() {
                    ctx.mem[0] = w;
                }
            });
        }
        // Host-side convergence check (the scheduler's O(log n) bound
        // guarantees termination; this just cuts idle rounds).
        let stable = edges.iter().all(|&(u, v)| m.mem(u)[0] == m.mem(v)[0]);
        if stable {
            break;
        }
    }
    let labels = (0..n).map(|v| m.mem(v)[0]).collect();
    (m, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(n: usize, edges: &[(usize, usize)]) -> Vec<u64> {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, v: usize) -> usize {
            if p[v] != v {
                let r = find(p, p[v]);
                p[v] = r;
            }
            p[v]
        }
        for &(u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi] = lo;
            }
        }
        (0..n).map(|v| find(&mut parent, v) as u64).collect()
    }

    fn check(n: usize, edges: &[(usize, usize)]) {
        let (_, got) = no_cc(n, edges);
        assert_eq!(got, reference(n, edges));
    }

    #[test]
    fn basic_graphs() {
        check(5, &[]);
        check(5, &[(0, 1), (2, 3)]);
        check(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        check(4, &[(0, 0), (1, 2)]); // self loop
    }

    #[test]
    fn cycles_and_paths() {
        let n = 60;
        let cycle: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        check(n, &cycle);
        let path: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
        check(n, &path);
        // Worst case for hooking: a path ordered high-to-low.
        let rev_path: Vec<_> = (1..n).map(|v| (v, v - 1)).collect();
        check(n, &rev_path);
    }

    #[test]
    fn random_graphs() {
        let mut x = 5u64;
        let mut rnd = move |k: usize| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as usize) % k
        };
        for (n, m) in [(50, 30), (100, 80), (200, 400)] {
            let edges: Vec<_> = (0..m).map(|_| (rnd(n), rnd(n))).collect();
            check(n, &edges);
        }
    }

    /// Communication shape: pointer jumping concentrates traffic on the
    /// component roots, so (unlike the paper's sort-based contraction,
    /// which Theorem 10 relies on) the per-processor max does NOT drop
    /// with p on a single-component graph — but block aggregation of the
    /// hotspot traffic does help, and the volume is Θ(rounds · (n + m)).
    #[test]
    fn communication_aggregates_with_blocks() {
        let n = 256;
        let edges: Vec<_> = (0..n).map(|v| (v, (v * 7 + 1) % n)).collect();
        let (m, _) = no_cc(n, &edges);
        let c1 = m.communication_complexity(16, 1);
        let c8 = m.communication_complexity(16, 8);
        assert!(
            c8 < c1 / 2,
            "blocking should compress the root hotspot: {c8} vs {c1}"
        );
        // Volume sanity: O(supersteps · n) words in total.
        assert!(m.total_words() <= (m.supersteps() as u64) * 4 * n as u64);
    }
}
