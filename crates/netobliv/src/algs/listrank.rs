//! NO-LR: network-oblivious list ranking (§VI-B, Theorem 9).
//!
//! One list node per PE. Each contraction level finds an independent set
//! with NO-IS — a `log log n` deterministic-coin-flipping coloring, then
//! one superstep per color class — splices it out, and **redistributes
//! the survivors evenly across the prefix of the PEs** (the paper's key
//! deviation from MO-IS: even distribution keeps the recursive sorts and
//! scans fully parallel). Compaction offsets come from an in-machine
//! Blelloch scan over the PEs.
//!
//! Per-PE memory is organized in per-recursion-depth slot frames, since a
//! PE that receives a contracted node plays a role at two depths at once.

use crate::NoMachine;

pub(crate) const SENT: u64 = u64::MAX;
/// Slots per recursion depth.
pub(crate) const SLOTS: usize = 10;
pub(crate) const S_SUCC: usize = 0;
pub(crate) const S_PRED: usize = 1;
pub(crate) const S_DIST: usize = 2;
pub(crate) const S_RANK: usize = 3;
const S_COLOR: usize = 4;
const S_NEWCOLOR: usize = 5;
const S_INS: usize = 6;
const S_EXCL: usize = 7;
const S_NEWID: usize = 8;
const S_OLD: usize = 9;

/// Serial base-case size.
pub(crate) const BASE: usize = 8;

fn slot(depth: usize, s: usize) -> usize {
    SLOTS * depth + s
}

/// In-machine Blelloch exclusive scan over PEs `[0, m_pad)` of the value
/// in `slot_idx` (overwritten with the exclusive prefix). Returns the
/// grand total (host-read).
fn scan_slot(m: &mut NoMachine, m_pad: usize, slot_idx: usize) -> u64 {
    debug_assert!(m_pad.is_power_of_two());
    let levels = m_pad.trailing_zeros() as usize;
    for d in 0..levels {
        let stride = 1usize << (d + 1);
        m.step(|pe, ctx| {
            if pe >= m_pad {
                return;
            }
            if let Some(&(_, w)) = ctx.inbox.first() {
                ctx.mem.push(w);
                ctx.mem[slot_idx] = ctx.mem[slot_idx].wrapping_add(w);
                ctx.work(1);
            }
            if pe % stride == stride / 2 - 1 {
                let v = ctx.mem[slot_idx];
                ctx.send(pe + stride / 2, v);
            }
        });
    }
    m.step(|pe, ctx| {
        if pe >= m_pad {
            return;
        }
        if let Some(&(_, w)) = ctx.inbox.first() {
            ctx.mem.push(w);
            ctx.mem[slot_idx] = ctx.mem[slot_idx].wrapping_add(w);
        }
        if pe == m_pad - 1 {
            ctx.mem.push(ctx.mem[slot_idx]); // stash the total
            ctx.mem[slot_idx] = 0;
        }
    });
    let total = *m.mem(m_pad - 1).last().unwrap();
    m.mem_mut(m_pad - 1).pop();
    for d in (0..levels).rev() {
        let stride = 1usize << (d + 1);
        m.step(|pe, ctx| {
            if pe >= m_pad {
                return;
            }
            if let Some(&(_, w)) = ctx.inbox.first() {
                ctx.mem[slot_idx] = w;
            }
            if pe % stride == stride - 1 {
                let subtotal = ctx.mem.pop().expect("scan stack");
                let mine = ctx.mem[slot_idx];
                ctx.send(pe - stride / 2, mine);
                ctx.mem[slot_idx] = mine.wrapping_add(subtotal);
                ctx.work(1);
            }
        });
    }
    m.step(|pe, ctx| {
        if pe >= m_pad {
            return;
        }
        if let Some(&(_, w)) = ctx.inbox.first() {
            ctx.mem[slot_idx] = w;
        }
    });
    total
}

/// NO-IS at `depth` over active PEs `[0, n)`: sets `S_INS`.
fn no_is(m: &mut NoMachine, n: usize, depth: usize) {
    let b = |s| slot(depth, s);
    // Trivial id-coloring; head/tail pre-excluded; clear inS.
    m.step(|pe, ctx| {
        if pe >= n {
            return;
        }
        ctx.mem[b(S_COLOR)] = pe as u64;
        let excl = (ctx.mem[b(S_PRED)] == SENT || ctx.mem[b(S_SUCC)] == SENT) as u64;
        ctx.mem[b(S_EXCL)] = excl;
        ctx.mem[b(S_INS)] = 0;
        ctx.work(1);
    });
    // Two deterministic coin-flipping rounds.
    for _ in 0..2 {
        // (a) tell my pred my color (so everyone learns succ's color).
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            let p = ctx.mem[b(S_PRED)];
            if p != SENT {
                let c = ctx.mem[b(S_COLOR)];
                ctx.send(p as usize, c);
            }
        });
        // (b) compute the new color; tell my succ (for the tail fix).
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            let cv = ctx.mem[b(S_COLOR)];
            let nc = if let Some(&(_, cs)) = ctx.inbox.first() {
                debug_assert_ne!(cv, cs);
                let l = (cv ^ cs).trailing_zeros() as u64;
                2 * l + ((cv >> l) & 1)
            } else {
                0 // tail placeholder, fixed next step
            };
            ctx.mem[b(S_NEWCOLOR)] = nc;
            ctx.work(1);
            let s = ctx.mem[b(S_SUCC)];
            if s != SENT {
                ctx.send(s as usize, nc);
            }
        });
        // (c) tail recolors against its predecessor; commit.
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            if ctx.mem[b(S_SUCC)] == SENT {
                let pc = ctx.inbox.first().map(|&(_, c)| c).unwrap_or(1);
                ctx.mem[b(S_NEWCOLOR)] = if pc == 0 { 1 } else { 0 };
            }
            ctx.mem[b(S_COLOR)] = ctx.mem[b(S_NEWCOLOR)];
        });
    }
    // Host reads the color bound (the scheduler knows it is O(log log n)).
    let max_color = (0..n).map(|pe| m.mem(pe)[b(S_COLOR)]).max().unwrap_or(0);
    // One admission superstep per color; exclusions are applied at the
    // start of the next color's step.
    for c in 0..=max_color + 1 {
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            if !ctx.inbox.is_empty() {
                ctx.mem[b(S_EXCL)] = 1;
            }
            if c <= max_color && ctx.mem[b(S_COLOR)] == c && ctx.mem[b(S_EXCL)] == 0 {
                ctx.mem[b(S_INS)] = 1;
                ctx.work(1);
                let p = ctx.mem[b(S_PRED)];
                let s = ctx.mem[b(S_SUCC)];
                ctx.send(p as usize, 1);
                ctx.send(s as usize, 1);
            }
        });
    }
}

/// Rank the active list at `depth` over PEs `[0, n)`; `S_SUCC`, `S_PRED`,
/// `S_DIST` must be loaded. Writes `S_RANK`.
pub(crate) fn lr_level(m: &mut NoMachine, n: usize, depth: usize) {
    let b = |s| slot(depth, s);
    if n <= BASE {
        // Gather (succ, dist) to PE 0, chase serially, scatter ranks.
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            let (s, d) = (ctx.mem[b(S_SUCC)], ctx.mem[b(S_DIST)]);
            ctx.send_words(0, &[pe as u64, s, d]);
        });
        m.step(|pe, ctx| {
            if pe != 0 {
                return;
            }
            let mut succ = vec![SENT; n];
            let mut dist = vec![0u64; n];
            let mut chunks = ctx.inbox.chunks_exact(3);
            for ch in &mut chunks {
                let (id, s, d) = (ch[0].1 as usize, ch[1].1, ch[2].1);
                succ[id] = s;
                dist[id] = d;
            }
            // Find the head (no one points at it).
            let mut has_pred = vec![false; n];
            for &s in &succ {
                if s != SENT {
                    has_pred[s as usize] = true;
                }
            }
            let head = (0..n).find(|&v| !has_pred[v]).expect("list head");
            let mut total = 0u64;
            let mut v = head;
            while succ[v] != SENT {
                total += dist[v];
                v = succ[v] as usize;
            }
            let mut remaining = total;
            let mut v = head;
            loop {
                ctx.send(v, remaining);
                ctx.work(1);
                if succ[v] == SENT {
                    break;
                }
                remaining -= dist[v];
                v = succ[v] as usize;
            }
        });
        m.step(|pe, ctx| {
            if pe >= n {
                return;
            }
            ctx.mem[b(S_RANK)] = ctx.inbox[0].1;
        });
        return;
    }

    no_is(m, n, depth);

    // Splice: S-nodes hand (succ, dist) to pred and (pred) to succ.
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] != 1 {
            return;
        }
        let (p, s) = (ctx.mem[b(S_PRED)], ctx.mem[b(S_SUCC)]);
        let d = ctx.mem[b(S_DIST)];
        ctx.send_words(p as usize, &[0, s, d]); // tag 0: new succ + extra dist
        ctx.send_words(s as usize, &[1, p]); // tag 1: new pred
        ctx.work(1);
    });
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] == 1 {
            return;
        }
        let mut i = 0;
        while i < ctx.inbox.len() {
            match ctx.inbox[i].1 {
                0 => {
                    ctx.mem[b(S_SUCC)] = ctx.inbox[i + 1].1;
                    ctx.mem[b(S_DIST)] = ctx.mem[b(S_DIST)].wrapping_add(ctx.inbox[i + 2].1);
                    i += 3;
                }
                _ => {
                    ctx.mem[b(S_PRED)] = ctx.inbox[i + 1].1;
                    i += 2;
                }
            }
        }
    });
    // Compaction ids for survivors.
    let m_pad = n.next_power_of_two();
    m.step(|pe, ctx| {
        if pe >= m_pad {
            return;
        }
        ctx.mem[b(S_NEWID)] = if pe < n { 1 - ctx.mem[b(S_INS)] } else { 0 };
    });
    let n1 = scan_slot(m, m_pad, b(S_NEWID)) as usize;
    debug_assert!(n1 > 0 && n1 < n);
    // Survivors tell their predecessor their new id.
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] == 1 {
            return;
        }
        let p = ctx.mem[b(S_PRED)];
        if p != SENT {
            let id = ctx.mem[b(S_NEWID)];
            ctx.send(p as usize, id);
        }
    });
    // Redistribute: survivor sends (succ_newid, dist, oldid) to its slot.
    let nb = |s| slot(depth + 1, s);
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] == 1 {
            return;
        }
        let succ_new = ctx.inbox.first().map(|&(_, w)| w).unwrap_or(SENT);
        let dst = ctx.mem[b(S_NEWID)] as usize;
        let d = ctx.mem[b(S_DIST)];
        ctx.send_words(dst, &[succ_new, d, pe as u64]);
        ctx.work(1);
    });
    m.step(|pe, ctx| {
        if pe >= n1 {
            return;
        }
        ctx.mem[nb(S_SUCC)] = ctx.inbox[0].1;
        ctx.mem[nb(S_DIST)] = ctx.inbox[1].1;
        ctx.mem[nb(S_OLD)] = ctx.inbox[2].1;
        ctx.mem[nb(S_PRED)] = SENT;
        let s = ctx.mem[nb(S_SUCC)];
        if s != SENT {
            ctx.send(s as usize, pe as u64);
        }
    });
    m.step(|pe, ctx| {
        if pe >= n1 {
            return;
        }
        if let Some(&(_, w)) = ctx.inbox.first() {
            ctx.mem[nb(S_PRED)] = w;
        }
    });

    lr_level(m, n1, depth + 1);

    // Ranks travel back to the old ids...
    m.step(|pe, ctx| {
        if pe >= n1 {
            return;
        }
        let old = ctx.mem[nb(S_OLD)] as usize;
        let r = ctx.mem[nb(S_RANK)];
        ctx.send(old, r);
    });
    // ...and the survivors store them.
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] == 1 {
            return;
        }
        ctx.mem[b(S_RANK)] = ctx.inbox[0].1;
    });
    // Extension: S-nodes ask their successor for its rank.
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] != 1 {
            return;
        }
        let s = ctx.mem[b(S_SUCC)];
        ctx.send(s as usize, pe as u64);
    });
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] == 1 {
            return;
        }
        let r = ctx.mem[b(S_RANK)];
        let msgs: Vec<u64> = ctx.inbox.iter().map(|&(_, w)| w).collect();
        for asker in msgs {
            ctx.send(asker as usize, r);
        }
    });
    m.step(|pe, ctx| {
        if pe >= n || ctx.mem[b(S_INS)] != 1 {
            return;
        }
        let r = ctx.inbox[0].1;
        ctx.mem[b(S_RANK)] = r.wrapping_add(ctx.mem[b(S_DIST)]);
        ctx.work(1);
    });
}

/// Run NO-LR on the list `succ` (sentinel `u64::MAX` or `succ.len()`
/// marks the tail). Returns the machine and the ranks (distance to the
/// end of the list).
pub fn no_listrank(succ: &[u64]) -> (NoMachine, Vec<u64>) {
    let n = succ.len();
    assert!(n >= 1);
    let n_pes = n.next_power_of_two();
    let mut m = NoMachine::new(n_pes);
    // Depth bound: each level removes ≥ (n-2)/3 nodes.
    let mut depths = 2usize;
    let mut sz = n;
    while sz > BASE {
        sz -= (sz - 2) / 3;
        depths += 1;
    }
    let frame = SLOTS * (depths + 2);
    let sent_in = n as u64;
    let mut pred = vec![SENT; n];
    for (v, &s) in succ.iter().enumerate() {
        if s != SENT && s != sent_in {
            pred[s as usize] = v as u64;
        }
    }
    for pe in 0..n_pes {
        let mem = m.mem_mut(pe);
        mem.resize(frame, 0);
        if pe < n {
            let s = succ[pe];
            mem[S_SUCC] = if s == sent_in { SENT } else { s };
            mem[S_PRED] = pred[pe];
            mem[S_DIST] = 1;
        }
    }
    lr_level(&mut m, n, 0);
    let ranks = (0..n).map(|pe| m.mem(pe)[S_RANK]).collect();
    (m, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_ranks(succ: &[u64]) -> Vec<u64> {
        let n = succ.len();
        let mut pred = vec![SENT; n];
        for (v, &s) in succ.iter().enumerate() {
            if s != SENT {
                pred[s as usize] = v as u64;
            }
        }
        let head = (0..n).find(|&v| pred[v] == SENT).unwrap();
        let mut order = vec![head];
        while succ[*order.last().unwrap()] != SENT {
            order.push(succ[*order.last().unwrap()] as usize);
        }
        let mut rank = vec![0u64; n];
        for (pos, &v) in order.iter().enumerate() {
            rank[v] = (n - 1 - pos) as u64;
        }
        rank
    }

    fn random_list(n: usize, seed: u64) -> Vec<u64> {
        let mut order: Vec<usize> = (0..n).collect();
        let mut x = seed | 1;
        for i in (1..n).rev() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((x >> 33) as usize) % (i + 1);
            order.swap(i, j);
        }
        let mut succ = vec![SENT; n];
        for w in order.windows(2) {
            succ[w[0]] = w[1] as u64;
        }
        succ
    }

    #[test]
    fn ranks_identity_and_random_lists() {
        for n in [1usize, 2, 5, 8, 9, 50, 300, 1000] {
            let succ = random_list(n, 13 + n as u64);
            let (_, got) = no_listrank(&succ);
            assert_eq!(got, reference_ranks(&succ), "n = {n}");
        }
    }

    /// Theorem 9 shape: communication is Θ(n/p) at B = 1 — the measured
    /// constant (~12 send-bearing supersteps per contraction level, times
    /// the geometric Σ n_j = 3n) stays stable as n doubles — and blocking
    /// reduces it.
    #[test]
    fn communication_shape() {
        let p = 16;
        let comm = |n: usize| {
            let succ = random_list(n, 3);
            let (m, _) = no_listrank(&succ);
            (
                m.communication_complexity(p, 1) as f64,
                m.communication_complexity(p, 8) as f64,
            )
        };
        let (a1, a8) = comm(1024);
        let (b1, _) = comm(2048);
        let ratio = b1 / a1;
        assert!(
            (1.5..=2.5).contains(&ratio),
            "comm not linear in n: x{ratio}"
        );
        // Blocking helps substantially (redistribution is contiguous).
        assert!(a8 < 0.7 * a1, "B=8 {a8} vs B=1 {a1}");
    }
}
