//! N-GEP: the network-oblivious Gaussian Elimination Paradigm
//! (§V-B, Table I, Theorem 6).
//!
//! The matrix is distributed block-wise: PE `t` owns the `κ × κ` block
//! with Morton (bit-interleaved) index `t`, so every aligned quadrant of
//! every region is a *contiguous* PE subrange and the recursion maps
//! directly onto PE groups. Functions `𝒜`, `ℬ`, `𝒞` follow I-GEP; the
//! eighth-order recursion of `𝒟` can run in either of Table I's orders:
//!
//! * [`DOrder::IGep`] — I-GEP's `𝒟`: quadrants `U11`, `U21` (round 1)
//!   and `U12`, `U22` (round 2) are each consumed by **two** parallel
//!   sub-calls, so their owners send every block twice;
//! * [`DOrder::DStar`] — N-GEP's `𝒟*`: rounds are reordered so no `U` or
//!   `V` quadrant is needed twice per round (only the diagonal `W`
//!   blocks are duplicated, which the paper shows is free of memory
//!   blow-up). For *commutative* GEP computations the two orders give
//!   identical results; Table I's point is the communication difference:
//!   the volume is the same, but 𝒟 doubles the sending load of the
//!   duplicated quadrants' owners, so the max-per-processor measure (and
//!   hence the communication complexity) is strictly worse.
//!
//! Every stage of the recursion is level-synchronous: sibling sub-calls
//! share the same routing superstep, so M(p,B) communication complexity
//! is measured with full concurrency, as the model requires.
//!
//! Operand routing sources the *live* values: an operand aliased to the
//! call's own `X` region reads the in-place blocks; any other operand was
//! finalized before the call started (the I-GEP correctness order) and is
//! routed from the parent's immutable operand frame.

use std::collections::HashMap;

use crate::{Comm, NoMachine};

/// The GEP update function (as in the MO side; kept as a plain `fn` so
/// schedules stay `Copy`).
pub type GepF = fn(f64, f64, f64, f64) -> f64;

/// The update set `Σ_f` with box pruning (mirrors `mo_algorithms`; kept
/// local so the NO framework stands alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateSet {
    /// All triplets.
    All,
    /// `k < min(i, j)` (Gaussian elimination / LU).
    KBelowMin,
}

impl UpdateSet {
    fn contains(self, i: usize, j: usize, k: usize) -> bool {
        match self {
            UpdateSet::All => true,
            UpdateSet::KBelowMin => k < i && k < j,
        }
    }
    fn intersects(self, i0: usize, j0: usize, k0: usize, m: usize) -> bool {
        match self {
            UpdateSet::All => true,
            UpdateSet::KBelowMin => k0 < i0 + m - 1 && k0 < j0 + m - 1,
        }
    }
}

/// Which order `𝒟` executes its eight recursive calls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DOrder {
    /// I-GEP's order (Table I left column).
    IGep,
    /// N-GEP's `𝒟*` (Table I right column).
    DStar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fun {
    A,
    B,
    C,
    D,
}

/// An aligned square region: `base`/`s` in Morton block space,
/// `(row0, col0, m)` in element space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    base: usize,
    s: usize,
    row0: usize,
    col0: usize,
    m: usize,
    /// Which matrix the region lives in (0 = the in-place `x`; matmul
    /// gives `A`/`B` their own spaces so quadrants never falsely alias).
    space: u8,
}

impl Region {
    /// Quadrant `q` (0 = 11, 1 = 12, 2 = 21, 3 = 22).
    fn quadrant(&self, q: usize) -> Region {
        let s4 = self.s / 4;
        Region {
            base: self.base + q * s4,
            s: s4,
            row0: self.row0 + (q / 2) * (self.m / 2),
            col0: self.col0 + (q % 2) * (self.m / 2),
            m: self.m / 2,
            space: self.space,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Call {
    fun: Fun,
    x: Region,
    u: Region,
    v: Region,
    w: Region,
    /// `group == x.base`: the PE subrange executing the call.
    group: usize,
    /// Word offset of this call's operand frame in each group PE's
    /// memory (`usize::MAX` when all operands alias `X`).
    frame: usize,
    /// Alias flags: operand region equals the `X` region.
    alias: [bool; 3],
    /// Parent storage for routing: per operand, `(group, frame_or_x)`
    /// where `frame_or_x == usize::MAX` means the parent's live `X`
    /// blocks.
    src: [(usize, usize); 3],
}

/// One sub-call spec: `(fun, x_q, u_q, v_q, w_q)`.
type Spec = (Fun, usize, usize, usize, usize);

fn stages(fun: Fun, order: DOrder) -> Vec<Vec<Spec>> {
    use Fun::*;
    match fun {
        A => vec![
            vec![(A, 0, 0, 0, 0)],
            vec![(B, 1, 0, 1, 0), (C, 2, 2, 0, 0)],
            vec![(D, 3, 2, 1, 0)],
            vec![(A, 3, 3, 3, 3)],
            vec![(B, 2, 3, 2, 3), (C, 1, 1, 3, 3)],
            vec![(D, 0, 1, 2, 3)],
        ],
        B => vec![
            vec![(B, 0, 0, 0, 0), (B, 1, 0, 1, 0)],
            vec![(D, 2, 2, 0, 0), (D, 3, 2, 1, 0)],
            vec![(B, 2, 3, 2, 3), (B, 3, 3, 3, 3)],
            vec![(D, 0, 1, 2, 3), (D, 1, 1, 3, 3)],
        ],
        C => vec![
            vec![(C, 0, 0, 0, 0), (C, 2, 2, 0, 0)],
            vec![(D, 1, 0, 1, 0), (D, 3, 2, 1, 0)],
            vec![(C, 1, 1, 3, 3), (C, 3, 3, 3, 3)],
            vec![(D, 0, 1, 2, 3), (D, 2, 3, 2, 3)],
        ],
        D => match order {
            DOrder::IGep => vec![
                vec![
                    (D, 0, 0, 0, 0),
                    (D, 1, 0, 1, 0),
                    (D, 2, 2, 0, 0),
                    (D, 3, 2, 1, 0),
                ],
                vec![
                    (D, 0, 1, 2, 3),
                    (D, 1, 1, 3, 3),
                    (D, 2, 3, 2, 3),
                    (D, 3, 3, 3, 3),
                ],
            ],
            DOrder::DStar => vec![
                vec![
                    (D, 0, 0, 0, 0),
                    (D, 1, 1, 3, 3),
                    (D, 2, 3, 2, 3),
                    (D, 3, 2, 1, 0),
                ],
                vec![
                    (D, 0, 1, 2, 3),
                    (D, 1, 0, 1, 0),
                    (D, 2, 2, 0, 0),
                    (D, 3, 3, 3, 3),
                ],
            ],
        },
    }
}

struct Engine<'m, C: Comm> {
    m: &'m mut C,
    kappa: usize,
    bsz: usize,
    f: GepF,
    sigma: UpdateSet,
    order: DOrder,
}

impl<C: Comm> Engine<'_, C> {
    /// Execute all `calls` (same family, same size) in lock-step.
    fn run_level(&mut self, calls: Vec<Call>) {
        let calls: Vec<Call> = calls
            .into_iter()
            .filter(|c| self.sigma.intersects(c.x.row0, c.x.col0, c.u.col0, c.x.m))
            .collect();
        if calls.is_empty() {
            return;
        }
        let s = calls[0].s();
        if s == 1 {
            self.leaf_step(&calls);
            return;
        }
        let nstages = stages(calls[0].fun, self.order).len();
        debug_assert!(calls
            .iter()
            .all(|c| stages(c.fun, self.order).len() == nstages));
        for stage in 0..nstages {
            let mut subcalls = Vec::new();
            for call in &calls {
                for &(fun, xq, uq, vq, wq) in &stages(call.fun, self.order)[stage] {
                    subcalls.push(self.make_subcall(call, fun, [xq, uq, vq, wq]));
                }
            }
            self.route(&subcalls);
            self.run_level(subcalls);
        }
    }

    fn make_subcall(&self, parent: &Call, fun: Fun, q: [usize; 4]) -> Call {
        let x = parent.x.quadrant(q[0]);
        let u = parent.u.quadrant(q[1]);
        let v = parent.v.quadrant(q[2]);
        let w = parent.w.quadrant(q[3]);
        let s4 = parent.s() / 4;
        let alias = [u == x, v == x, w == x];
        // Parent-side source of each operand quadrant: a slice of the
        // parent's X blocks (if that operand aliased X) or of the
        // parent's frame slot.
        let src = [
            (
                parent.group + q[1] * s4,
                if parent.alias[0] {
                    usize::MAX
                } else {
                    parent.frame
                },
            ),
            (
                parent.group + q[2] * s4,
                if parent.alias[1] {
                    usize::MAX
                } else {
                    parent.frame + self.bsz
                },
            ),
            (
                parent.group + q[3] * s4,
                if parent.alias[2] {
                    usize::MAX
                } else {
                    parent.frame + 2 * self.bsz
                },
            ),
        ];
        let frame = if parent.frame == usize::MAX {
            self.bsz // first frame
        } else {
            parent.frame + 3 * self.bsz
        };
        let frame = if alias.iter().all(|&a| a) {
            usize::MAX
        } else {
            frame
        };
        Call {
            fun,
            x,
            u,
            v,
            w,
            group: x.base,
            frame,
            alias,
            src,
        }
    }

    /// One routing superstep (+ delivery) bringing every sub-call's
    /// non-alias operands into its group's frames.
    fn route(&mut self, subcalls: &[Call]) {
        let bsz = self.bsz;
        // (src_pe) → [(dst_pe, src_off, dst_off)] and the receiver's view.
        let mut sends: HashMap<usize, Vec<(usize, usize, usize)>> = HashMap::new();
        let mut recvs: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        for call in subcalls {
            for (slot, &alias) in call.alias.iter().enumerate() {
                if alias {
                    continue;
                }
                let (src_group, src_off) = call.src[slot];
                let dst_off = call.frame + slot * bsz;
                for t in 0..call.s() {
                    let src_pe = src_group + t;
                    let dst_pe = call.group + t;
                    let soff = if src_off == usize::MAX { 0 } else { src_off };
                    sends
                        .entry(src_pe)
                        .or_default()
                        .push((dst_pe, soff, dst_off));
                    recvs.entry(dst_pe).or_default().push((src_pe, dst_off));
                }
            }
        }
        if sends.is_empty() {
            return;
        }
        for list in sends.values_mut() {
            list.sort_unstable_by_key(|&(dst, _, doff)| (dst, doff));
        }
        for list in recvs.values_mut() {
            list.sort_unstable_by_key(|&(src, doff)| (src, doff));
        }
        self.m.step(|pe, ctx| {
            if let Some(list) = sends.get(&pe) {
                for &(dst, soff, _) in list {
                    let words: Vec<u64> = ctx.mem[soff..soff + bsz].to_vec();
                    ctx.send_words(dst, &words);
                }
            }
        });
        self.m.step(|pe, ctx| {
            if let Some(list) = recvs.get(&pe) {
                let mut cursor = 0usize;
                for &(_src, doff) in list {
                    for k in 0..bsz {
                        ctx.mem[doff + k] = ctx.inbox[cursor].1;
                        cursor += 1;
                    }
                }
                debug_assert_eq!(cursor, ctx.inbox.len());
            }
        });
    }

    /// Base case: every call is a single block on a single PE; one local
    /// superstep runs the k-major triple loop.
    fn leaf_step(&mut self, calls: &[Call]) {
        let kappa = self.kappa;
        let bsz = self.bsz;
        let f = self.f;
        let sigma = self.sigma;
        let jobs: HashMap<usize, Call> = calls.iter().map(|c| (c.group, *c)).collect();
        self.m.step(|pe, ctx| {
            let Some(call) = jobs.get(&pe) else { return };
            let off = |slot: usize, alias: bool| -> usize {
                if alias {
                    0
                } else {
                    call.frame + slot * bsz
                }
            };
            let (uo, vo, wo) = (
                off(0, call.alias[0]),
                off(1, call.alias[1]),
                off(2, call.alias[2]),
            );
            let mut ops = 0u64;
            for k in 0..kappa {
                for i in 0..kappa {
                    for j in 0..kappa {
                        if sigma.contains(call.x.row0 + i, call.x.col0 + j, call.u.col0 + k) {
                            let xv = f64::from_bits(ctx.mem[i * kappa + j]);
                            let uv = f64::from_bits(ctx.mem[uo + i * kappa + k]);
                            let vv = f64::from_bits(ctx.mem[vo + k * kappa + j]);
                            let wv = f64::from_bits(ctx.mem[wo + k * kappa + k]);
                            ctx.mem[i * kappa + j] = f(xv, uv, vv, wv).to_bits();
                            ops += 1;
                        }
                    }
                }
            }
            ctx.work(ops);
        });
    }
}

trait CallExt {
    fn s(&self) -> usize;
}
impl CallExt for Call {
    fn s(&self) -> usize {
        self.x.s
    }
}

/// Morton (bit-interleaved) index of block `(bi, bj)` — the PE owning
/// that `κ × κ` block. Public so distributed backends can assemble a
/// full matrix from per-PE block memories.
pub fn morton(bi: usize, bj: usize) -> usize {
    let mut z = 0usize;
    for bit in 0..usize::BITS as usize / 2 {
        z |= ((bi >> bit) & 1) << (2 * bit + 1);
        z |= ((bj >> bit) & 1) << (2 * bit);
    }
    z
}

fn load_blocks<C: Comm>(m: &mut C, data: &[f64], n: usize, kappa: usize, off: usize) {
    let nb = n / kappa;
    for bi in 0..nb {
        for bj in 0..nb {
            let pe = morton(bi, bj);
            let Some(mem) = m.pe_mem_mut(pe) else {
                continue;
            };
            if mem.len() < off + kappa * kappa {
                mem.resize(off + kappa * kappa, 0);
            }
            for i in 0..kappa {
                for j in 0..kappa {
                    mem[off + i * kappa + j] =
                        data[(bi * kappa + i) * n + bj * kappa + j].to_bits();
                }
            }
        }
    }
}

fn store_blocks(m: &NoMachine, n: usize, kappa: usize) -> Vec<f64> {
    let nb = n / kappa;
    let mut out = vec![0.0f64; n * n];
    for bi in 0..nb {
        for bj in 0..nb {
            let pe = morton(bi, bj);
            for i in 0..kappa {
                for j in 0..kappa {
                    out[(bi * kappa + i) * n + bj * kappa + j] =
                        f64::from_bits(m.mem(pe)[i * kappa + j]);
                }
            }
        }
    }
    out
}

fn frame_words(npes: usize, bsz: usize) -> usize {
    // Depth of the quadrant recursion plus the optional root frame.
    let depth = (usize::BITS - npes.leading_zeros()) as usize / 2 + 2;
    bsz * (1 + 3 * depth)
}

/// Run the full N-GEP computation `𝒜(x, x, x, x)` on an arbitrary
/// [`Comm`] backend with `(n/κ)²` PEs, the matrix distributed in
/// `κ × κ` Morton-ordered blocks. Loads the input into owned PEs and
/// executes every superstep; output collection is the caller's (each
/// owned PE's first `κ²` memory words are its finished block, in
/// row-major order, at the PE index [`morton`]`(bi, bj)`).
pub fn ngep_program_on<C: Comm>(
    m: &mut C,
    data: &[f64],
    n: usize,
    kappa: usize,
    f: GepF,
    sigma: UpdateSet,
    order: DOrder,
) {
    assert!(n.is_power_of_two() && kappa.is_power_of_two() && kappa <= n);
    assert_eq!(data.len(), n * n);
    let nb = n / kappa;
    let npes = nb * nb;
    let bsz = kappa * kappa;
    assert_eq!(m.n_pes(), npes, "backend must expose (n/kappa)^2 PEs");
    load_blocks(m, data, n, kappa, 0);
    for pe in 0..npes {
        let need = frame_words(npes, bsz);
        if let Some(mem) = m.pe_mem_mut(pe) {
            mem.resize(need, 0);
        }
    }
    let region = Region {
        base: 0,
        s: npes,
        row0: 0,
        col0: 0,
        m: n,
        space: 0,
    };
    let root = Call {
        fun: Fun::A,
        x: region,
        u: region,
        v: region,
        w: region,
        group: 0,
        frame: usize::MAX,
        alias: [true, true, true],
        src: [(0, usize::MAX); 3],
    };
    let mut eng = Engine {
        m,
        kappa,
        bsz,
        f,
        sigma,
        order,
    };
    eng.run_level(vec![root]);
}

/// Run the full N-GEP computation `𝒜(x, x, x, x)` on M((n/κ)²), the
/// matrix distributed in `κ × κ` Morton-ordered blocks. Returns the
/// machine (for cost evaluation) and the transformed matrix.
pub fn ngep_program(
    data: &[f64],
    n: usize,
    kappa: usize,
    f: GepF,
    sigma: UpdateSet,
    order: DOrder,
) -> (NoMachine, Vec<f64>) {
    let nb = n / kappa;
    let mut m = NoMachine::new(nb * nb);
    ngep_program_on(&mut m, data, n, kappa, f, sigma, order);
    let out = store_blocks(&m, n, kappa);
    (m, out)
}

/// Run `C += A·B` as a pure `𝒟` computation on disjoint distributed
/// matrices (the root operand frame is pre-loaded with `A`, `B`, `A`).
pub fn ngep_matmul(
    a: &[f64],
    b: &[f64],
    n: usize,
    kappa: usize,
    order: DOrder,
) -> (NoMachine, Vec<f64>) {
    assert!(n.is_power_of_two() && kappa.is_power_of_two() && kappa <= n);
    let nb = n / kappa;
    let npes = nb * nb;
    let bsz = kappa * kappa;
    let mut m = NoMachine::new(npes);
    let zeros = vec![0.0f64; n * n];
    load_blocks(&mut m, &zeros, n, kappa, 0); // C = 0
    load_blocks(&mut m, a, n, kappa, bsz); // root frame slot U
    load_blocks(&mut m, b, n, kappa, 2 * bsz); // slot V
    load_blocks(&mut m, a, n, kappa, 3 * bsz); // slot W (unused by f)
    for pe in 0..npes {
        let need = frame_words(npes, bsz) + 3 * bsz;
        m.mem_mut(pe).resize(need, 0);
    }
    let mk = |space: u8| Region {
        base: 0,
        s: npes,
        row0: 0,
        col0: 0,
        m: n,
        space,
    };
    let root = Call {
        fun: Fun::D,
        x: mk(0),
        u: mk(1),
        v: mk(2),
        w: mk(3),
        group: 0,
        frame: bsz,
        alias: [false, false, false],
        src: [(0, usize::MAX); 3],
    };
    fn mm(x: f64, u: f64, v: f64, _w: f64) -> f64 {
        x + u * v
    }
    let mut eng = Engine {
        m: &mut m,
        kappa,
        bsz,
        f: mm,
        sigma: UpdateSet::All,
        order,
    };
    eng.run_level(vec![root]);
    let out = store_blocks(&m, n, kappa);
    (m, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fw(x: f64, u: f64, v: f64, _w: f64) -> f64 {
        x.min(u + v)
    }
    fn ge(x: f64, u: f64, v: f64, w: f64) -> f64 {
        x - (u / w) * v
    }

    fn gep_reference(x: &mut [f64], n: usize, f: GepF, sigma: UpdateSet) {
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if sigma.contains(i, j, k) {
                        x[i * n + j] = f(x[i * n + j], x[i * n + k], x[k * n + j], x[k * n + k]);
                    }
                }
            }
        }
    }

    fn fw_instance(n: usize, seed: u64) -> Vec<f64> {
        let mut d = vec![f64::INFINITY; n * n];
        let mut x = seed | 1;
        for i in 0..n {
            d[i * n + i] = 0.0;
            for _ in 0..3 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = ((x >> 33) as usize) % n;
                let w = 1.0 + ((x >> 20) % 9) as f64;
                if i != j {
                    d[i * n + j] = d[i * n + j].min(w);
                }
            }
        }
        d
    }

    #[test]
    fn floyd_warshall_matches_reference_for_both_orders() {
        for n in [8usize, 16] {
            for kappa in [2usize, 4] {
                let d = fw_instance(n, 5);
                let mut want = d.clone();
                gep_reference(&mut want, n, fw, UpdateSet::All);
                for order in [DOrder::IGep, DOrder::DStar] {
                    let (_, got) = ngep_program(&d, n, kappa, fw, UpdateSet::All, order);
                    assert_eq!(got, want, "n={n} kappa={kappa} {order:?}");
                }
            }
        }
    }

    #[test]
    fn gaussian_elimination_matches_reference() {
        let n = 16;
        let mut x = 3u64;
        let mut a: Vec<f64> = (0..n * n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 40) as f64) / 2048.0 + 0.25
            })
            .collect();
        for i in 0..n {
            a[i * n + i] += 2.0 * n as f64;
        }
        let mut want = a.clone();
        gep_reference(&mut want, n, ge, UpdateSet::KBelowMin);
        let (_, got) = ngep_program(&a, n, 4, ge, UpdateSet::KBelowMin, DOrder::DStar);
        for t in 0..n * n {
            assert!(
                (got[t] - want[t]).abs() < 1e-9 * (1.0 + want[t].abs()),
                "t={t}: {} vs {}",
                got[t],
                want[t]
            );
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 16;
        let mut x = 11u64;
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 40) as f64) / 65536.0
        };
        let a: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
        let mut want = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    want[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        for order in [DOrder::IGep, DOrder::DStar] {
            let (_, got) = ngep_matmul(&a, &b, n, 4, order);
            for t in 0..n * n {
                assert!((got[t] - want[t]).abs() < 1e-9, "{order:?} t={t}");
            }
        }
    }

    /// Table I's point: with 𝒟, the owners of `U11`/`U21` (round 1) serve
    /// two consumers each, doubling their per-superstep load; 𝒟* spreads
    /// every `U`/`V` quadrant to exactly one consumer per round. Total
    /// words moved are equal — the *communication complexity* (a max per
    /// processor) is what drops.
    #[test]
    fn dstar_communicates_less_than_d() {
        let n = 32;
        let a: Vec<f64> = (0..n * n).map(|t| (t % 13) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|t| (t % 7) as f64).collect();
        let (m_d, out_d) = ngep_matmul(&a, &b, n, 4, DOrder::IGep);
        let (m_ds, out_ds) = ngep_matmul(&a, &b, n, 4, DOrder::DStar);
        // Identical results: the computation is commutative.
        assert_eq!(out_d, out_ds);
        // Same volume, lower max load under D*.
        assert_eq!(m_d.total_words(), m_ds.total_words());
        let p = 64; // one processor per PE
        let h_d = m_d.communication_complexity(p, 4);
        let h_ds = m_ds.communication_complexity(p, 4);
        // U/V duplication is gone; the W-diagonal duplication remains in
        // both orders (the paper keeps it too), so the gain is a strict
        // but moderate constant factor.
        assert!(
            h_ds < h_d,
            "D* should lower the h-relation: {h_ds} vs {h_d}"
        );
    }

    /// Theorem 6 shape: communication ≈ n²/(√p·B) on M(p,B).
    #[test]
    fn theorem6_communication_shape() {
        let n = 32;
        let d = fw_instance(n, 9);
        let (m, _) = ngep_program(&d, n, 4, fw, UpdateSet::All, DOrder::DStar);
        for (p, b) in [(4usize, 4usize), (16, 4), (16, 16)] {
            let comm = m.communication_complexity(p, b) as f64;
            let predicted = (n * n) as f64 / ((p as f64).sqrt() * b as f64);
            assert!(
                comm >= 0.2 * predicted && comm <= 20.0 * predicted,
                "p={p} B={b}: comm {comm} vs Θ({predicted})"
            );
        }
    }
}
