//! The [`Comm`] abstraction: one M(N) kernel source, many backends.
//!
//! The paper's network-oblivious claim is that an M(N) program is
//! written once and *evaluated* on any M(p,B)/D-BSP machine. This trait
//! makes the claim operational for execution too: an NO algorithm is a
//! driver over an abstract superstep machine, and the same driver runs
//! on
//!
//! * the in-process [`NoMachine`](crate::NoMachine) simulator (owns
//!   every PE, executes them sequentially, logs traffic for the cost
//!   models), and
//! * the socket-backed D-BSP tier (`mo-dist`), where each worker
//!   process owns a contiguous PE range and cross-worker messages
//!   travel over real TCP connections.
//!
//! The contract that makes this sound: NO drivers are *deterministic
//! functions of the input size* — every routing table they build
//! host-side is the same on every worker — so each backend can execute
//! the per-PE closures for just the PEs it owns and exchange the rest.
//! Backends must preserve the simulator's delivery semantics exactly:
//! messages sent in superstep `s` are visible in superstep `s + 1`,
//! ordered by source PE and, within a source, in send order.

use crate::machine::Pe;

/// An abstract M(N) superstep machine.
///
/// Implementations own some subset of the `N` PEs. Memory accessors
/// return `None` for PEs the backend does not own; drivers loading
/// input or reading output must skip those (the owning backend handles
/// them). [`step_dyn`](Comm::step_dyn) must invoke the closure exactly
/// once per *owned* PE, in increasing PE order, and complete the
/// machine-wide exchange before returning.
pub trait Comm {
    /// Total number of PEs `N` (machine-wide, not just owned).
    fn n_pes(&self) -> usize;

    /// Whether this backend owns `pe`'s memory and execution.
    fn owns(&self, pe: usize) -> bool;

    /// Mutable access to an owned PE's memory (input marshalling; not
    /// communication). `None` when the PE is owned by another backend.
    fn pe_mem_mut(&mut self, pe: usize) -> Option<&mut Vec<u64>>;

    /// Read access to an owned PE's memory (output marshalling).
    fn pe_mem(&self, pe: usize) -> Option<&[u64]>;

    /// Execute one superstep: run `f` for every owned PE in index
    /// order, then deliver all messages (local and cross-backend) so
    /// they are visible in the next superstep's inboxes.
    fn step_dyn(&mut self, f: &mut dyn FnMut(usize, &mut Pe<'_>));

    /// Generic convenience wrapper over [`step_dyn`](Comm::step_dyn).
    fn step<F: FnMut(usize, &mut Pe<'_>)>(&mut self, mut f: F)
    where
        Self: Sized,
    {
        self.step_dyn(&mut f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoMachine;

    /// A driver written against `Comm` behaves identically to direct
    /// `NoMachine` use.
    #[test]
    fn nomachine_implements_comm() {
        fn ring_shift<C: Comm>(m: &mut C) {
            let n = m.n_pes();
            for pe in 0..n {
                if let Some(mem) = m.pe_mem_mut(pe) {
                    mem.push(pe as u64 * 100);
                }
            }
            m.step(|pe, ctx| {
                let v = ctx.mem[0];
                ctx.send((pe + 1) % ctx.n_pes(), v);
            });
            m.step(|_, ctx| {
                let v = ctx.inbox[0].1;
                ctx.mem.push(v);
            });
        }
        let mut m = NoMachine::new(4);
        assert!((0..4).all(|pe| m.owns(pe)));
        ring_shift(&mut m);
        for pe in 0..4 {
            assert_eq!(m.pe_mem(pe).unwrap()[1], (((pe + 3) % 4) * 100) as u64);
        }
        assert_eq!(m.supersteps(), 2);
    }
}
