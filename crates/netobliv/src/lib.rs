//! # no-framework — network-oblivious algorithms (§IV, §V-B, §VI-B)
//!
//! The network-oblivious framework of Bilardi, Pietracaprina, Pucci and
//! Silvestri, as reviewed in §IV of the paper:
//!
//! * an algorithm is specified for **M(N)** — `N` processing elements
//!   with unbounded local memory, communicating by point-to-point
//!   messages in synchronous supersteps;
//! * it is *evaluated* on **M(p, B)** for any `p ≤ N` and block size
//!   `B ≥ 1`: each processor simulates `N/p` consecutive PEs, and the
//!   **communication complexity** is the sum over supersteps of the
//!   maximum number of `B`-word blocks sent or received by any processor
//!   (messages between PEs on the same processor are free);
//! * the **computation complexity** is the analogous sum of maximum
//!   per-processor operation counts;
//! * on **D-BSP(P, g, B)** each superstep is charged `h_s · g_i`, where
//!   `i` is the finest cluster level containing all of the superstep's
//!   traffic and `h_s` is measured with block size `B_i`.
//!
//! [`NoMachine`] executes an M(N) program once and logs its traffic; all
//! three cost models are then evaluated *after the fact* for any machine
//! parameters — which is exactly the point of network-obliviousness.
//!
//! The [`algs`] module holds the paper's NO algorithms: prefix sums,
//! matrix transposition, FFT, N-GEP (with both I-GEP's `𝒟` and the
//! communication-avoiding `𝒟*` of Table I), column-sort-based sorting,
//! list ranking, and connected components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algs;
mod comm;
mod machine;

pub use comm::Comm;
pub use machine::{CostModelError, NoMachine, Pe};
