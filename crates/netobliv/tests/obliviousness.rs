//! Communication-pattern verification for the NO algorithms.
//!
//! A network-oblivious algorithm is specified on M(N) with no reference
//! to `p` or `B`; its communication pattern is therefore a pure function
//! of the *input instance*, and for the value-oblivious algorithms
//! (sorting networks, FFT, transposition, scans, N-GEP) a function of
//! the input **size** alone. These tests pin both properties down via
//! [`NoMachine::traffic_signature`]:
//!
//! * value-oblivious algorithms produce bit-identical signatures on
//!   different same-size inputs;
//! * structure-driven algorithms (list ranking, CC, Euler tour — the
//!   input *is* the structure) are deterministic: the same instance
//!   replays to the same signature;
//! * cost metrics for any (p, B) are evaluated from the one recorded
//!   log, never by re-running — the machine-obliviousness the D-BSP
//!   theorems of §VI rely on.

use no_framework::{algs, NoMachine};

fn keys(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        })
        .collect()
}

fn assert_same_signature(a: &NoMachine, b: &NoMachine, what: &str) {
    assert_eq!(
        a.traffic_signature(),
        b.traffic_signature(),
        "{what}: communication pattern must not depend on input values"
    );
}

#[test]
fn transpose_pattern_is_value_oblivious() {
    let n = 16;
    let (m1, _) = algs::transpose::no_transpose(&keys(1, n * n), n);
    let (m2, _) = algs::transpose::no_transpose(&keys(2, n * n), n);
    assert_same_signature(&m1, &m2, "no_transpose");
}

#[test]
fn fft_pattern_is_value_oblivious() {
    let n = 64;
    let a: Vec<(f64, f64)> = (0..n).map(|i| ((i as f64).sin(), 0.1)).collect();
    let b: Vec<(f64, f64)> = (0..n).map(|i| ((i as f64).cos(), -2.0)).collect();
    let (m1, _) = algs::fft::no_fft(&a);
    let (m2, _) = algs::fft::no_fft(&b);
    assert_same_signature(&m1, &m2, "no_fft");
}

#[test]
fn prefix_sum_pattern_is_value_oblivious() {
    let n = 128;
    let (m1, _) = algs::scan::no_prefix_sum(&keys(3, n));
    let (m2, _) = algs::scan::no_prefix_sum(&keys(4, n));
    assert_same_signature(&m1, &m2, "no_prefix_sum");
}

#[test]
fn column_sort_pattern_is_value_oblivious() {
    // Column sort is a sorting network at the group level: the gather /
    // permute / scatter choreography never looks at key values.
    let n = 256;
    let (m1, _) = algs::sort::no_sort(&keys(5, n));
    let (m2, _) = algs::sort::no_sort(&keys(6, n));
    assert_same_signature(&m1, &m2, "no_sort");
    // Degenerate inputs too (all equal, pre-sorted).
    let (m3, _) = algs::sort::no_sort(&vec![7u64; n]);
    let (m4, _) = algs::sort::no_sort(&(0..n as u64).collect::<Vec<_>>());
    assert_same_signature(&m1, &m3, "no_sort (constant input)");
    assert_same_signature(&m1, &m4, "no_sort (sorted input)");
}

#[test]
fn ngep_pattern_is_value_oblivious() {
    use algs::ngep::{ngep_program, DOrder, UpdateSet};
    fn fw(x: f64, u: f64, v: f64, _w: f64) -> f64 {
        x.min(u + v)
    }
    let n = 16;
    let d1: Vec<f64> = (0..n * n).map(|t| ((t * 13) % 17) as f64).collect();
    let d2: Vec<f64> = (0..n * n).map(|t| ((t * 7) % 29) as f64 - 5.0).collect();
    for order in [DOrder::IGep, DOrder::DStar] {
        let (m1, _) = ngep_program(&d1, n, 4, fw, UpdateSet::All, order);
        let (m2, _) = ngep_program(&d2, n, 4, fw, UpdateSet::All, order);
        assert_same_signature(&m1, &m2, "ngep");
    }
}

#[test]
fn structure_driven_algorithms_are_deterministic() {
    // The instance is the structure, so the pattern legitimately varies
    // per instance — but replaying the same instance must reproduce the
    // signature exactly (no hidden nondeterminism in the choreography).
    let succ = {
        let n = 200usize;
        let mut perm: Vec<usize> = (1..n).collect();
        let r = keys(8, n);
        for i in (1..perm.len()).rev() {
            perm.swap(i, (r[i] as usize) % (i + 1));
        }
        // Build a single cycle-free list 0 → perm[0] → …
        let mut succ = vec![0u64; n];
        let mut cur = 0usize;
        for &nxt in &perm {
            succ[cur] = nxt as u64;
            cur = nxt;
        }
        succ[cur] = u64::MAX;
        succ
    };
    let (m1, r1) = algs::listrank::no_listrank(&succ);
    let (m2, r2) = algs::listrank::no_listrank(&succ);
    assert_eq!(r1, r2);
    assert_same_signature(&m1, &m2, "no_listrank (replay)");

    let n = 60;
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|v| (v, (v * 7 + 1) % n)).collect();
    let (m1, l1) = algs::cc::no_cc(n, &edges);
    let (m2, l2) = algs::cc::no_cc(n, &edges);
    assert_eq!(l1, l2);
    assert_same_signature(&m1, &m2, "no_cc (replay)");

    let parent: Vec<usize> = (0..64)
        .map(|v| if v == 0 { 0 } else { (v - 1) / 2 })
        .collect();
    let e1 = algs::euler::no_euler(&parent, 0);
    let e2 = algs::euler::no_euler(&parent, 0);
    assert_eq!(e1.depth, e2.depth);
    assert_same_signature(&e1.machine, &e2.machine, "no_euler (replay)");
}

#[test]
fn costs_for_any_machine_come_from_one_log() {
    // Machine obliviousness: one run, many (p, B) evaluations — and the
    // evaluations are consistent (coarser blocks never cost more steps,
    // fewer processors never increase per-processor concurrency benefit).
    let n = 256;
    let (m, _) = algs::sort::no_sort(&keys(9, n));
    let base = m.communication_complexity(16, 1);
    assert!(base > 0);
    for p in [1usize, 4, 16, 64] {
        let c1 = m.communication_complexity(p, 1);
        let c8 = m.communication_complexity(p, 8);
        assert!(
            c8 <= c1,
            "blocking must not increase cost (p={p}): {c8} > {c1}"
        );
    }
    // D-BSP time from the same log.
    let g = [4.0, 2.0, 1.0, 0.5];
    let b = [8usize, 8, 4, 1];
    assert!(m.dbsp_time(16, &g, &b) > 0.0);
}
