//! Edge cases for the M(N)/M(p,B)/D-BSP framework and NO algorithms.

use no_framework::algs;
use no_framework::NoMachine;

#[test]
fn processor_mapping_handles_non_dividing_p() {
    // N = 10 PEs on p = 3 processors: groups of ceil(10/3) = 4.
    let mut m = NoMachine::new(10);
    // PE 0 → PE 9: crosses processors 0 → 2.
    m.step(|pe, ctx| {
        if pe == 0 {
            ctx.send(9, 1);
        }
    });
    assert_eq!(m.communication_complexity(3, 1), 1);
    // PE 0 → PE 3: same processor (both in [0,4)): free.
    let mut m2 = NoMachine::new(10);
    m2.step(|pe, ctx| {
        if pe == 0 {
            ctx.send(3, 1);
        }
    });
    assert_eq!(m2.communication_complexity(3, 1), 0);
}

#[test]
fn communication_is_monotone_in_block_size_generally() {
    let mut m = NoMachine::new(32);
    let mut x = 5u64;
    for _ in 0..4 {
        m.step(|pe, ctx| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(pe as u64);
            let dst = ((x >> 33) as usize) % 32;
            if dst != pe {
                ctx.send_words(dst, &[1, 2, 3]);
            }
        });
    }
    for p in [2usize, 4, 8] {
        let mut last = u64::MAX;
        for b in [1usize, 2, 4, 8] {
            let c = m.communication_complexity(p, b);
            assert!(c <= last, "p={p} B={b}");
            last = c;
        }
    }
}

#[test]
fn dbsp_degenerates_to_zero_for_single_processor() {
    let mut m = NoMachine::new(8);
    m.step(|pe, ctx| ctx.send((pe + 1) % 8, 1));
    assert_eq!(m.dbsp_time(1, &[], &[]), 0.0);
}

#[test]
fn dbsp_charges_more_for_global_than_local_traffic() {
    // Identical word volumes; only locality differs.
    let mut local = NoMachine::new(16);
    local.step(|pe, ctx| ctx.send(pe ^ 1, 1));
    let mut global = NoMachine::new(16);
    global.step(|pe, ctx| ctx.send(pe ^ 8, 1));
    let g = [8.0, 4.0, 2.0, 1.0];
    let b = [1usize, 1, 1, 1];
    let tl = local.dbsp_time(16, &g, &b);
    let tg = global.dbsp_time(16, &g, &b);
    assert!(tg > tl, "global {tg} must cost more than neighbour {tl}");
}

#[test]
fn work_charges_aggregate_per_processor() {
    let mut m = NoMachine::new(8);
    m.step(|_pe, ctx| ctx.work(3));
    // p=2: 4 PEs each → 12 ops per processor.
    assert_eq!(m.computation_complexity(2), 12);
    assert_eq!(m.computation_complexity(8), 3);
}

// ---------- NO algorithm edges ----------

#[test]
fn no_transpose_one_by_one() {
    let (_, t) = algs::transpose::no_transpose(&[9], 1);
    assert_eq!(t, vec![9]);
}

#[test]
fn no_prefix_sum_single_pe() {
    let (_, out) = algs::scan::no_prefix_sum(&[5]);
    assert_eq!(out, vec![0]);
}

#[test]
fn no_sort_empty_and_tiny() {
    let (_, out) = algs::sort::no_sort(&[]);
    assert!(out.is_empty());
    let (_, out) = algs::sort::no_sort(&[3, 1]);
    assert_eq!(out, vec![1, 3]);
}

#[test]
fn no_fft_of_two() {
    let (_, y) = algs::fft::no_fft(&[(1.0, 0.0), (2.0, 0.0)]);
    assert!((y[0].0 - 3.0).abs() < 1e-12);
    assert!((y[1].0 - (-1.0)).abs() < 1e-12);
}

#[test]
fn no_listrank_one_node() {
    let (_, r) = algs::listrank::no_listrank(&[u64::MAX]);
    assert_eq!(r, vec![0]);
}

#[test]
fn no_cc_isolated_vertices_only() {
    let (_, labels) = algs::cc::no_cc(6, &[]);
    assert_eq!(labels, (0..6u64).collect::<Vec<_>>());
}

#[test]
fn ngep_kappa_equals_n_runs_on_one_pe() {
    use algs::ngep::{ngep_program, DOrder, UpdateSet};
    fn fw(x: f64, u: f64, v: f64, _w: f64) -> f64 {
        x.min(u + v)
    }
    let n = 8;
    let mut d = vec![f64::INFINITY; n * n];
    for i in 0..n {
        d[i * n + i] = 0.0;
        d[i * n + (i + 1) % n] = 1.0;
    }
    let (m, out) = ngep_program(&d, n, n, fw, UpdateSet::All, DOrder::DStar);
    // Single PE: zero communication; ring distances correct.
    assert_eq!(m.total_words(), 0);
    assert_eq!(out[4], 4.0);
    assert_eq!(out[4 * n], 4.0);
}

#[test]
fn no_euler_matches_mo_euler() {
    use mo_algorithms::graph::{euler::euler_program, Tree};
    let t = Tree::random(200, 77);
    let mo = euler_program(&t);
    let no = algs::euler::no_euler(&t.parent, t.root);
    assert_eq!(mo.depths(), no.depth);
    assert_eq!(mo.sizes(), no.size);
    assert_eq!(mo.preorders(), no.preorder);
}

#[test]
fn supersteps_and_volume_are_deterministic() {
    let run = || {
        let data: Vec<u64> = (0..256u64).rev().collect();
        let (m, _) = algs::sort::no_sort(&data);
        (
            m.supersteps(),
            m.total_words(),
            m.communication_complexity(8, 4),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn ngep_sigma_pruning_cuts_work_and_supersteps() {
    use algs::ngep::{ngep_program, DOrder, UpdateSet};
    fn ge(x: f64, u: f64, v: f64, w: f64) -> f64 {
        x - (u / w) * v
    }
    let n = 32;
    let mut a: Vec<f64> = (0..n * n).map(|t| ((t % 5) + 1) as f64).collect();
    for i in 0..n {
        a[i * n + i] += 100.0;
    }
    let (m_all, _) = ngep_program(&a, n, 4, ge, UpdateSet::All, DOrder::DStar);
    let (m_tri, _) = ngep_program(&a, n, 4, ge, UpdateSet::KBelowMin, DOrder::DStar);
    assert!(
        m_tri.computation_complexity(1) * 2 < m_all.computation_complexity(1),
        "Σ pruning must cut the serial work: {} vs {}",
        m_tri.computation_complexity(1),
        m_all.computation_complexity(1)
    );
    assert!(m_tri.supersteps() < m_all.supersteps());
    assert!(m_tri.total_words() < m_all.total_words());
}

#[test]
fn no_fft_energy_preserved() {
    let n = 256usize;
    let input: Vec<(f64, f64)> = (0..n).map(|t| ((t as f64 * 0.31).sin(), 0.0)).collect();
    let (_, y) = algs::fft::no_fft(&input);
    let et: f64 = input.iter().map(|v| v.0 * v.0 + v.1 * v.1).sum();
    let ef: f64 = y.iter().map(|v| v.0 * v.0 + v.1 * v.1).sum();
    assert!((ef / n as f64 - et).abs() < 1e-6 * et);
}

/// Satellite: the cost evaluators return typed errors on degenerate
/// parameters instead of panicking — callers holding wire-supplied
/// `p`/`g`/`b` can shed bad requests without a `catch_unwind`.
#[test]
fn cost_model_errors_are_typed() {
    use no_framework::CostModelError;
    let mut m = NoMachine::new(8);
    m.step(|pe, ctx| {
        if pe == 0 {
            ctx.send(7, 1);
        }
    });

    // M(p, B): zero processors / zero block size.
    assert_eq!(
        m.try_communication_complexity(0, 4),
        Err(CostModelError::ZeroProcessors)
    );
    assert_eq!(
        m.try_communication_complexity(4, 0),
        Err(CostModelError::ZeroBlockSize { level: 0 })
    );
    assert_eq!(m.try_communication_complexity(4, 1), Ok(1));

    // D-BSP: non-power-of-two p, then g/b arity mismatches.
    assert_eq!(
        m.try_dbsp_time(3, &[1.0], &[1]),
        Err(CostModelError::NotPowerOfTwo { p: 3 })
    );
    assert_eq!(
        m.try_dbsp_time(0, &[], &[]),
        Err(CostModelError::ZeroProcessors)
    );
    // log2(4) = 2 levels: both vectors must carry exactly 2 entries.
    assert_eq!(
        m.try_dbsp_time(4, &[1.0], &[2, 2]),
        Err(CostModelError::LengthMismatch {
            expected: 2,
            g_len: 1,
            b_len: 2
        })
    );
    assert_eq!(
        m.try_dbsp_time(4, &[1.0, 1.0], &[2, 2, 2]),
        Err(CostModelError::LengthMismatch {
            expected: 2,
            g_len: 2,
            b_len: 3
        })
    );
    assert_eq!(
        m.try_dbsp_time(4, &[1.0, 1.0], &[2, 0]),
        Err(CostModelError::ZeroBlockSize { level: 1 })
    );
    let t = m.try_dbsp_time(4, &[2.0, 1.0], &[1, 1]).expect("valid");
    assert!(t > 0.0);
    // The checked and panicking forms agree on valid input.
    assert_eq!(t, m.dbsp_time(4, &[2.0, 1.0], &[1, 1]));

    // Errors render as actionable messages.
    let msg = CostModelError::LengthMismatch {
        expected: 3,
        g_len: 1,
        b_len: 2,
    }
    .to_string();
    assert!(msg.contains('3') && msg.contains("g"), "unhelpful: {msg}");
}
