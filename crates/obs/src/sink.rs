//! The per-pool trace sink: one ring per resident worker plus an
//! external ring, a shared epoch, and the merged drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Event, EventKind, WORKER_EXTERNAL};
use crate::ring::Ring;

/// Default per-ring capacity in events (~2.5 MiB per worker).
const DEFAULT_CAPACITY: usize = 1 << 16;

/// A pool-lifetime event sink.
///
/// Resident worker `i` writes ring `i` lock-free (SPSC: the worker is
/// the only producer, [`drain`](TraceSink::drain) the only consumer).
/// Events from threads that are not resident workers — a server thread
/// inside `SbPool::enter`, a test thread inside `run` — go to one
/// shared ring whose *producer side* is serialized by a mutex (such
/// threads fork rarely compared to the workers' task churn; their
/// events are off the steal/park hot paths).
///
/// Timestamps are nanoseconds since the sink's construction, so one
/// sink gives one coherent timeline across all rings.
pub struct TraceSink {
    epoch: Instant,
    rings: Vec<Ring>,
    external: Ring,
    ext_push: Mutex<()>,
    drain_lock: Mutex<()>,
    emitted: AtomicU64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("workers", &self.rings.len())
            .field("emitted", &self.emitted.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceSink {
    /// A sink for a pool of `workers` resident workers with the default
    /// per-ring capacity.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, DEFAULT_CAPACITY)
    }

    /// A sink whose rings hold `capacity` events each (rounded up to a
    /// power of two).
    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            rings: (0..workers).map(|_| Ring::new(capacity)).collect(),
            external: Ring::new(capacity),
            ext_push: Mutex::new(()),
            drain_lock: Mutex::new(()),
            emitted: AtomicU64::new(0),
        }
    }

    /// Number of per-worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// Nanoseconds since the sink's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record one event from `worker` (`None`, or an index at or past
    /// [`workers`](Self::workers), routes to the external ring).
    pub fn emit(&self, worker: Option<usize>, kind: EventKind, a: u64, b: u64, c: u64) {
        let ts_ns = self.now_ns();
        self.emitted.fetch_add(1, Ordering::Relaxed);
        match worker {
            Some(i) if i < self.rings.len() => {
                self.rings[i].push(Event {
                    ts_ns,
                    kind,
                    worker: i as u32,
                    a,
                    b,
                    c,
                });
            }
            _ => {
                let _g = self.ext_push.lock().unwrap();
                self.external.push(Event {
                    ts_ns,
                    kind,
                    worker: WORKER_EXTERNAL,
                    a,
                    b,
                    c,
                });
            }
        }
    }

    /// Total events offered to the sink (including later-dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Events dropped across all rings because a ring was full.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(Ring::dropped).sum::<u64>() + self.external.dropped()
    }

    /// Events dropped per ring: one entry per worker in index order,
    /// plus a trailing entry for the external ring — the breakdown
    /// behind [`dropped`](Self::dropped), so silent event loss can be
    /// pinned to the worker whose ring overflowed.
    pub fn dropped_per_worker(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.rings.iter().map(Ring::dropped).collect();
        out.push(self.external.dropped());
        out
    }

    /// Empty every ring and merge the streams into one globally
    /// time-ordered timeline. Safe to call while producers are still
    /// emitting (their new events land in the next drain); for a
    /// complete trace, drain at quiescence (after `run` returns).
    pub fn drain(&self) -> Vec<Event> {
        let _g = self.drain_lock.lock().unwrap();
        let mut out = Vec::new();
        for r in &self.rings {
            while let Some(e) = r.pop() {
                out.push(e);
            }
        }
        while let Some(e) = self.external.pop() {
            out.push(e);
        }
        // Each ring is time-ordered already; a stable sort by timestamp
        // merges them without reordering same-tick events within a ring.
        out.sort_by_key(|e| e.ts_ns);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_merges_workers_in_time_order() {
        let s = TraceSink::new(2);
        s.emit(Some(0), EventKind::Park, 0, 0, 0);
        s.emit(Some(1), EventKind::Unpark, 0, 0, 0);
        s.emit(None, EventKind::ForkSerial, 10, 0, 100);
        s.emit(Some(7), EventKind::Park, 0, 0, 0); // out-of-range → external
        let evs = s.drain();
        assert_eq!(evs.len(), 4);
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(
            evs.iter().filter(|e| e.worker == WORKER_EXTERNAL).count(),
            2
        );
        assert_eq!(s.emitted(), 4);
        assert_eq!(s.dropped(), 0);
        assert!(s.drain().is_empty());
    }

    #[test]
    fn dropped_per_worker_pins_overflow() {
        let s = TraceSink::with_capacity(2, 2);
        for _ in 0..10 {
            s.emit(Some(0), EventKind::Park, 0, 0, 0);
        }
        s.emit(Some(1), EventKind::Unpark, 0, 0, 0);
        let per = s.dropped_per_worker();
        assert_eq!(per.len(), 3); // 2 workers + external
        assert!(per[0] >= 1, "overflow not pinned to worker 0: {per:?}");
        assert_eq!(per[1], 0);
        assert_eq!(per[2], 0);
        assert_eq!(per.iter().sum::<u64>(), s.dropped());
    }
}
