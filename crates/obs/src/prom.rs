//! Prometheus text exposition: a small writer and a small parser.
//!
//! The writer produces the text format version 0.0.4 (`# HELP` /
//! `# TYPE` headers, `name{label="value"} 1234` samples) that any
//! Prometheus-compatible scraper ingests; `mo-serve`'s `/metrics`
//! endpoint renders its snapshot through it. The parser implements just
//! enough of the same grammar to validate an exposition end-to-end in
//! tests — names, label sets, float values, histogram-bucket
//! monotonicity — without pulling a dependency into the tree.

use std::fmt::Write as _;

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is `counter`, `gauge`, or `histogram`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Emit one sample line with integer value.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.write_name_labels(name, labels);
        let _ = writeln!(self.buf, " {value}");
    }

    /// Emit one sample line with float value.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.write_name_labels(name, labels);
        let _ = writeln!(self.buf, " {value}");
    }

    fn write_name_labels(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.buf.push_str(name);
        if !labels.is_empty() {
            self.buf.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                // The exposition format requires `\`, `"` and newline
                // escaped inside label values (kernel/scenario names
                // are caller-controlled strings).
                let _ = write!(self.buf, "{k}=\"");
                for ch in v.chars() {
                    match ch {
                        '\\' => self.buf.push_str("\\\\"),
                        '"' => self.buf.push_str("\\\""),
                        '\n' => self.buf.push_str("\\n"),
                        c => self.buf.push(c),
                    }
                }
                self.buf.push('"');
            }
            self.buf.push('}');
        }
    }

    /// Emit one full histogram series (`_bucket` lines, `_sum`,
    /// `_count`) from *non-cumulative* log₂ buckets: bucket `i` counts
    /// observations in `(2^(i-1), 2^i]` native units, the last bucket
    /// is open-ended (`+Inf`), and `le` is rendered in seconds by
    /// dividing through `units_per_second` (`1e6` for µs buckets,
    /// `1e9` for ns). `sum` is in the same native unit. The caller
    /// emits the family [`header`](Self::header) once before its
    /// series. Used by `mo-serve`'s latency families and the fleet
    /// barrier-wait families so every log₂ histogram in the tree
    /// renders (and validates) identically.
    pub fn histogram_log2(
        &mut self,
        family: &str,
        labels: &[(&str, &str)],
        buckets: &[u64],
        sum: u64,
        units_per_second: f64,
    ) {
        let bucket_name = format!("{family}_bucket");
        let mut cum = 0u64;
        for (i, c) in buckets.iter().enumerate() {
            cum += c;
            let le = if i + 1 < buckets.len() {
                format!("{}", (1u64 << i.min(62)) as f64 / units_per_second)
            } else {
                "+Inf".to_string()
            };
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("le", &le));
            self.sample_u64(&bucket_name, &ls, cum);
        }
        self.sample_f64(
            &format!("{family}_sum"),
            labels,
            sum as f64 / units_per_second,
        );
        self.sample_u64(&format!("{family}_count"), labels, cum);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse a text exposition. Returns every sample, or the first
/// offending line. Comment lines must be well-formed `# HELP` or
/// `# TYPE` lines; label values must be unescaped quoted strings.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            let ok = ["HELP", "TYPE"].iter().any(|kw| {
                rest.strip_prefix(kw)
                    .and_then(|r| r.strip_prefix(' '))
                    .is_some_and(|r| valid_name(r.split_whitespace().next().unwrap_or("")))
            });
            if !ok {
                return Err(format!("line {}: malformed comment: {line}", lineno + 1));
            }
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

/// Parse a `{`-opened label body starting just after the brace: quoted
/// values with `\\` / `\"` / `\n` escapes, comma-separated, up to the
/// closing `}`. Returns the pairs and the byte offset past the brace.
fn parse_labels(s: &str) -> Result<(Vec<(String, String)>, usize), String> {
    let b = s.as_bytes();
    let mut labels = Vec::new();
    let mut i = 0usize;
    loop {
        if i >= s.len() {
            return Err("unterminated label set".into());
        }
        if b[i] == b'}' {
            return Ok((labels, i + 1));
        }
        let eq = s[i..].find('=').ok_or("label without '='")? + i;
        let key = &s[i..eq];
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        if b.get(eq + 1) != Some(&b'"') {
            return Err("unquoted label value".into());
        }
        let mut j = eq + 2;
        let mut val = String::new();
        loop {
            match b.get(j) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => {
                    j += 1;
                    break;
                }
                Some(b'\\') => {
                    match b.get(j + 1) {
                        Some(b'\\') => val.push('\\'),
                        Some(b'"') => val.push('"'),
                        Some(b'n') => val.push('\n'),
                        _ => return Err("bad escape in label value".into()),
                    }
                    j += 2;
                }
                Some(_) => {
                    let ch = s[j..].chars().next().expect("in-bounds char");
                    val.push(ch);
                    j += ch.len_utf8();
                }
            }
        }
        labels.push((key.to_string(), val));
        match b.get(j) {
            Some(b',') => i = j + 1,
            Some(b'}') => return Ok((labels, j + 1)),
            _ => return Err("expected ',' or '}' after label value".into()),
        }
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name, labels, value_str) = match line.find('{') {
        Some(open) => {
            let (labels, consumed) = parse_labels(&line[open + 1..])?;
            (
                line[..open].to_string(),
                labels,
                line[open + 1 + consumed..].trim(),
            )
        }
        None => {
            let mut it = line.split_whitespace();
            let name = it.next().ok_or("empty line")?;
            let value = it.next().ok_or("missing value")?;
            (name.to_string(), Vec::new(), value)
        }
    };
    if !valid_name(&name) {
        return Err(format!("bad metric name {name:?}"));
    }
    // The value may be followed by an optional integer timestamp.
    let value: f64 = value_str
        .split_whitespace()
        .next()
        .ok_or("missing value")?
        .parse()
        .map_err(|e| format!("bad value {value_str:?}: {e}"))?;
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Check that the `le`-labelled buckets of every histogram in `samples`
/// are cumulative (non-decreasing as `le` increases, `+Inf` last and
/// equal to `_count`). Returns the number of histogram series checked.
pub fn check_histograms(samples: &[Sample]) -> Result<usize, String> {
    use std::collections::BTreeMap;
    // Group bucket samples by (family, non-le labels).
    let mut series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for s in samples {
        if let Some(family) = s.name.strip_suffix("_bucket") {
            let le = s
                .label("le")
                .ok_or_else(|| "bucket without le".to_string())?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().map_err(|e| format!("bad le {le:?}: {e}"))?
            };
            let key_rest: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            series
                .entry((family.to_string(), key_rest.join(",")))
                .or_default()
                .push((le, s.value));
        }
    }
    for ((family, rest), buckets) in &series {
        let mut buckets = buckets.clone();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut prev = 0.0;
        for (le, v) in &buckets {
            if *v < prev {
                return Err(format!("{family}{{{rest}}}: bucket le={le} decreases"));
            }
            prev = *v;
        }
        let last = buckets.last().ok_or("empty histogram")?;
        if !last.0.is_infinite() {
            return Err(format!("{family}{{{rest}}}: missing +Inf bucket"));
        }
        // +Inf must equal _count when the count sample is present.
        let count = samples.iter().find(|s| {
            s.name == format!("{family}_count")
                && s.labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",")
                    == *rest
        });
        if let Some(c) = count {
            if (c.value - last.1).abs() > f64::EPSILON {
                return Err(format!("{family}{{{rest}}}: +Inf != _count"));
            }
        }
    }
    Ok(series.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let mut w = PromText::new();
        w.header("jobs_total", "Jobs by kernel.", "counter");
        w.sample_u64("jobs_total", &[("kernel", "sort")], 41);
        w.sample_u64("jobs_total", &[("kernel", "fft"), ("ok", "yes")], 1);
        w.header("queue_depth", "Current depth.", "gauge");
        w.sample_f64("queue_depth", &[], 3.5);
        let text = w.finish();
        let samples = parse(&text).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "jobs_total");
        assert_eq!(samples[0].label("kernel"), Some("sort"));
        assert_eq!(samples[0].value, 41.0);
        assert_eq!(samples[2].value, 3.5);
    }

    #[test]
    fn histogram_log2_writer_validates() {
        let mut w = PromText::new();
        w.header("lat_seconds", "Latency.", "histogram");
        // 4 non-cumulative buckets: (..1], (1,2], (2,4], +Inf native µs.
        w.histogram_log2("lat_seconds", &[("k", "sort")], &[1, 0, 2, 1], 42, 1e6);
        let text = w.finish();
        let samples = parse(&text).unwrap();
        assert_eq!(check_histograms(&samples).unwrap(), 1);
        assert!(text.contains("lat_seconds_bucket{k=\"sort\",le=\"0.000001\"} 1"));
        assert!(text.contains("lat_seconds_bucket{k=\"sort\",le=\"+Inf\"} 4"));
        assert!(text.contains("lat_seconds_count{k=\"sort\"} 4"));
        assert!(text.contains("lat_seconds_sum{k=\"sort\"} 0.000042"));
    }

    #[test]
    fn hostile_label_values_round_trip() {
        // Kernel/scenario names are caller-controlled: quotes,
        // backslashes, newlines, commas and braces must survive a
        // write → parse round trip escaped per the exposition format.
        let hostile = "sort\"v2\\latest\nline2,x={y}";
        let mut w = PromText::new();
        w.header("jobs_total", "Jobs by kernel.", "counter");
        w.sample_u64("jobs_total", &[("kernel", hostile), ("ok", "yes")], 3);
        let text = w.finish();
        // One escaped line on the wire: the newline is the two
        // characters `\n`, not a line break.
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("kernel=\"sort\\\"v2\\\\latest\\nline2,x={y}\""));
        let samples = parse(&text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label("kernel"), Some(hostile));
        assert_eq!(samples[0].label("ok"), Some("yes"));
        assert_eq!(samples[0].value, 3.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("m{x=\"a\\q\"} 1").is_err()); // bad escape
        assert!(parse("m{x=\"a} 1").is_err()); // unterminated value
        assert!(parse("m{x=\"a\" y=\"b\"} 1").is_err()); // missing comma
        assert!(parse("ok_metric 1\nbad metric name 2").is_err());
        assert!(parse("m{x=1} 2").is_err()); // unquoted label value
        assert!(parse("m{x=\"a\"}").is_err()); // missing value
        assert!(parse("# BOGUS header").is_err());
        assert!(parse("# HELP m fine\n# TYPE m counter\nm 7").is_ok());
    }

    #[test]
    fn histogram_checker_enforces_cumulative_buckets() {
        let ok = "\
h_bucket{le=\"0.1\"} 1\n\
h_bucket{le=\"1\"} 3\n\
h_bucket{le=\"+Inf\"} 4\n\
h_count 4\n";
        assert_eq!(check_histograms(&parse(ok).unwrap()).unwrap(), 1);
        let dec = "h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 4\n";
        assert!(check_histograms(&parse(dec).unwrap()).is_err());
        let noinf = "h_bucket{le=\"1\"} 5\n";
        assert!(check_histograms(&parse(noinf).unwrap()).is_err());
        let badcount = "h_bucket{le=\"+Inf\"} 4\nh_count 5\n";
        assert!(check_histograms(&parse(badcount).unwrap()).is_err());
    }
}
