//! The fixed-size binary event schema.
//!
//! Every event is five 64-bit words: a nanosecond timestamp (relative
//! to the sink's epoch), a kind + worker id word, and three payload
//! words whose meaning depends on the kind (see [`EventKind`]). The
//! fixed shape is what lets the rings store events in place with plain
//! atomic stores — no allocation, no serialization on the hot path.

/// Worker id recorded for events emitted by threads that are not
/// resident pool workers (server threads, test threads inside `run`).
pub const WORKER_EXTERNAL: u32 = u32::MAX;

/// What happened. The payload convention per kind (`a`/`b`/`c` are the
/// event's three payload words):
///
/// | kind | `a` | `b` | `c` |
/// |---|---|---|---|
/// | [`TaskEnter`](Self::TaskEnter) | job id | origin (0 own, 1 injector, 2 stolen) | victim worker when stolen |
/// | [`TaskExit`](Self::TaskExit) | job id | — | — |
/// | [`ForkSerial`](Self::ForkSerial) | space bound (words) | SB anchor level | L1 cutoff (words) |
/// | [`ForkParallel`](Self::ForkParallel) | space bound (words) | SB anchor level | — |
/// | [`ForkDenied`](Self::ForkDenied) | space bound (words) | SB anchor level | — |
/// | [`StealAttempt`](Self::StealAttempt) | — | — | — |
/// | [`StealSuccess`](Self::StealSuccess) | victim worker | job id | — |
/// | [`InjectorPop`](Self::InjectorPop) | job id | — | — |
/// | [`Park`](Self::Park) / [`Unpark`](Self::Unpark) | — | — | — |
/// | [`CgcSegment`](Self::CgcSegment) | segment `lo` | segment `hi` | grain |
/// | [`CacheWitness`](Self::CacheWitness) | counter id (see [`crate::witness`]) | measured delta | job id (`0` = root scope) |
/// | [`SuperstepBegin`](Self::SuperstepBegin) / [`SuperstepEnd`](Self::SuperstepEnd) | fleet job id | superstep index | — |
/// | [`ExchangeSend`](Self::ExchangeSend) / [`ExchangeRecv`](Self::ExchangeRecv) | peer worker | [`pack_step_level`] | payload words |
/// | [`BarrierWait`](Self::BarrierWait) | peer worker | [`pack_step_level`] | wait ns |
/// | [`DistJobBegin`](Self::DistJobBegin) | fleet job id | kernel code | problem size `n` |
/// | [`DistJobEnd`](Self::DistJobEnd) | fleet job id | supersteps executed | — |
/// | [`ServeArrive`](Self::ServeArrive) | request id | kernel code | problem size `n` |
/// | [`ServeAdmit`](Self::ServeAdmit) | request id | footprint (words) | anchor level |
/// | [`ServeEnqueue`](Self::ServeEnqueue) | request id | queue depth after push | deadline budget ns |
/// | [`ServeDequeue`](Self::ServeDequeue) | request id | queue wait ns | — |
/// | [`ServeBatchForm`](Self::ServeBatchForm) | request id | batch size | batch footprint (words) |
/// | [`ServeExecute`](Self::ServeExecute) | request id | batch size | anchor level |
/// | [`ServeRespond`](Self::ServeRespond) | request id | service ns | batch size |
/// | [`ServeShed`](Self::ServeShed) | request id | shed reason code | waited ns |
///
/// The three fork kinds *are* the SB anchor decisions: the kind records
/// the decision taken, `a` the declared space bound and `b` the level
/// the space bound anchors at (`u64::MAX` when it exceeds every cache).
///
/// The seven dist kinds are the D-BSP cost model made observable: a
/// superstep begin/end pair brackets one BSP superstep on one worker
/// process; each exchange send/recv is one XOR-round frame to/from
/// `peer`, stamped with the superstep and the pair's cluster level so a
/// fleet merge can draw the send→recv flow across process tracks; a
/// barrier-wait records how long the worker blocked on `peer`'s frame
/// (load imbalance — the lateness the paper's per-level `H(n,p,B)`
/// charge abstracts away).
///
/// The eight serve kinds trace one request through the mo-serve
/// admission path — `arrive → admit/shed → enqueue → dequeue →
/// batch-form → execute → respond` — keyed by a fleet-unique request
/// id in `a` (shard tag in the high bits, per-shard counter in the
/// low, the same scheme as the router's dist job ids). A span opens at
/// `ServeArrive` and closes at exactly one of `ServeRespond` or
/// `ServeShed`; everything in between is a phase boundary whose
/// timestamp deltas the [`crate::span`] assembler turns into per-phase
/// latency attribution.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A queued task started executing on some thread.
    TaskEnter = 0,
    /// That task finished.
    TaskExit = 1,
    /// A fork was serialized by the space-bound cutoff.
    ForkSerial = 2,
    /// A fork ran in parallel (its second branch became stealable).
    ForkParallel = 3,
    /// A fork above the cutoff was serialized for lack of a core permit.
    ForkDenied = 4,
    /// A full work-finding scan (own deque, injector, every other
    /// deque) came up empty.
    StealAttempt = 5,
    /// A task was stolen from another worker's deque.
    StealSuccess = 6,
    /// A task was popped from the external-submission injector queue.
    InjectorPop = 7,
    /// A worker went to sleep on the idle condvar.
    Park = 8,
    /// A parked worker woke up.
    Unpark = 9,
    /// `pfor` issued one contiguous CGC segment.
    CgcSegment = 10,
    /// A cache-witness backend attributed measured cache traffic to the
    /// task that just finished: `a` is the hardware counter id
    /// ([`crate::witness::CTR_L1D_MISS`] / [`crate::witness::CTR_LLC_MISS`] /
    /// [`crate::witness::CTR_INSTRUCTIONS`]), `b` the counter delta over
    /// the task's execution (exclusive of nested tasks it help-executed),
    /// `c` the job id (`0` for the root scope of an `enter`).
    CacheWitness = 11,
    /// A D-BSP superstep started on this worker process (`a` = fleet
    /// job id, `b` = superstep index).
    SuperstepBegin = 12,
    /// That superstep's compute + exchange + deliver finished.
    SuperstepEnd = 13,
    /// One XOR-round data frame was sent to `a` = peer worker;
    /// `b` = [`pack_step_level`], `c` = payload words framed.
    ExchangeSend = 14,
    /// One XOR-round data frame arrived from `a` = peer worker;
    /// `b` = [`pack_step_level`], `c` = payload words delivered.
    ExchangeRecv = 15,
    /// The worker blocked `c` nanoseconds waiting for `a` = peer's
    /// frame (`b` = [`pack_step_level`]) — per-round barrier lateness.
    BarrierWait = 16,
    /// A fleet-wide distributed kernel started on this worker
    /// (`a` = fleet job id, `b` = kernel code, `c` = problem size).
    DistJobBegin = 17,
    /// That kernel finished (`a` = fleet job id, `b` = supersteps).
    DistJobEnd = 18,
    /// A request reached `Server::submit` (`a` = request id,
    /// `b` = kernel code, `c` = problem size). Opens the span.
    ServeArrive = 19,
    /// The request passed admission control (`a` = request id,
    /// `b` = analytic footprint in words, `c` = SB anchor level).
    ServeAdmit = 20,
    /// The request was pushed onto the bounded queue (`a` = request id,
    /// `b` = queue depth after the push, `c` = deadline budget ns).
    ServeEnqueue = 21,
    /// A worker popped the request for batching (`a` = request id,
    /// `b` = nanoseconds spent queued).
    ServeDequeue = 22,
    /// The request was folded into a same-kernel batch (`a` = request
    /// id, `b` = batch size, `c` = batch footprint in words).
    ServeBatchForm = 23,
    /// The batch holding the request entered the SB pool (`a` = request
    /// id, `b` = batch size, `c` = anchor level).
    ServeExecute = 24,
    /// The request's result was sent to the caller (`a` = request id,
    /// `b` = service ns, `c` = batch size). Closes the span.
    ServeRespond = 25,
    /// The request was shed (`a` = request id, `b` = typed reason code
    /// — see `mo-serve`'s shed metrics order, `c` = nanoseconds the
    /// request had waited). Closes the span.
    ServeShed = 26,
}

/// Number of distinct [`EventKind`]s (array-index bound for summaries).
pub const NKINDS: usize = 27;

/// Pack a superstep index and a D-BSP cluster level into the single
/// payload word the exchange/barrier events carry in `b`.
pub fn pack_step_level(superstep: u32, level: u8) -> u64 {
    ((superstep as u64) << 8) | level as u64
}

/// Inverse of [`pack_step_level`]: `(superstep, level)`.
pub fn unpack_step_level(b: u64) -> (u32, u8) {
    ((b >> 8) as u32, (b & 0xff) as u8)
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; NKINDS] = [
        EventKind::TaskEnter,
        EventKind::TaskExit,
        EventKind::ForkSerial,
        EventKind::ForkParallel,
        EventKind::ForkDenied,
        EventKind::StealAttempt,
        EventKind::StealSuccess,
        EventKind::InjectorPop,
        EventKind::Park,
        EventKind::Unpark,
        EventKind::CgcSegment,
        EventKind::CacheWitness,
        EventKind::SuperstepBegin,
        EventKind::SuperstepEnd,
        EventKind::ExchangeSend,
        EventKind::ExchangeRecv,
        EventKind::BarrierWait,
        EventKind::DistJobBegin,
        EventKind::DistJobEnd,
        EventKind::ServeArrive,
        EventKind::ServeAdmit,
        EventKind::ServeEnqueue,
        EventKind::ServeDequeue,
        EventKind::ServeBatchForm,
        EventKind::ServeExecute,
        EventKind::ServeRespond,
        EventKind::ServeShed,
    ];

    /// Stable lower-case name (report rows, chrome-trace event names).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskEnter => "task_enter",
            EventKind::TaskExit => "task_exit",
            EventKind::ForkSerial => "fork_serial",
            EventKind::ForkParallel => "fork_parallel",
            EventKind::ForkDenied => "fork_denied",
            EventKind::StealAttempt => "steal_attempt",
            EventKind::StealSuccess => "steal_success",
            EventKind::InjectorPop => "injector_pop",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::CgcSegment => "cgc_segment",
            EventKind::CacheWitness => "cache_witness",
            EventKind::SuperstepBegin => "superstep_begin",
            EventKind::SuperstepEnd => "superstep_end",
            EventKind::ExchangeSend => "exchange_send",
            EventKind::ExchangeRecv => "exchange_recv",
            EventKind::BarrierWait => "barrier_wait",
            EventKind::DistJobBegin => "dist_job_begin",
            EventKind::DistJobEnd => "dist_job_end",
            EventKind::ServeArrive => "serve_arrive",
            EventKind::ServeAdmit => "serve_admit",
            EventKind::ServeEnqueue => "serve_enqueue",
            EventKind::ServeDequeue => "serve_dequeue",
            EventKind::ServeBatchForm => "serve_batch_form",
            EventKind::ServeExecute => "serve_execute",
            EventKind::ServeRespond => "serve_respond",
            EventKind::ServeShed => "serve_shed",
        }
    }

    /// Decode a discriminant stored in a ring slot.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// `true` for the three fork-decision kinds (the SB anchor events).
    pub fn is_fork(self) -> bool {
        matches!(
            self,
            EventKind::ForkSerial | EventKind::ForkParallel | EventKind::ForkDenied
        )
    }
}

/// One traced runtime event. 40 bytes, `Copy`, fully plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the owning sink's epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Resident worker that emitted it, or [`WORKER_EXTERNAL`].
    pub worker: u32,
    /// First payload word (see [`EventKind`] for the per-kind meaning).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

impl Event {
    /// Pack kind + worker into the single word a ring slot stores.
    pub(crate) fn kw(&self) -> u64 {
        (self.kind as u64) | ((self.worker as u64) << 8)
    }

    /// Inverse of [`kw`](Self::kw); `None` on a corrupt discriminant
    /// (cannot happen through the sink API).
    pub(crate) fn unpack(ts_ns: u64, kw: u64, a: u64, b: u64, c: u64) -> Option<Event> {
        Some(Event {
            ts_ns,
            kind: EventKind::from_u8((kw & 0xff) as u8)?,
            worker: (kw >> 8) as u32,
            a,
            b,
            c,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
            assert_eq!(EventKind::from_u8(*k as u8), Some(*k));
        }
        assert_eq!(EventKind::from_u8(NKINDS as u8), None);
    }

    #[test]
    fn kw_round_trips() {
        let e = Event {
            ts_ns: 123,
            kind: EventKind::StealSuccess,
            worker: WORKER_EXTERNAL,
            a: 1,
            b: 2,
            c: 3,
        };
        let back = Event::unpack(e.ts_ns, e.kw(), e.a, e.b, e.c).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn step_level_round_trips() {
        for (step, level) in [(0u32, 0u8), (1, 3), (u32::MAX, 255)] {
            assert_eq!(
                unpack_step_level(pack_step_level(step, level)),
                (step, level)
            );
        }
    }
}
