//! Trace summaries: the scheduler-decision aggregates `obs_report`
//! prints next to the analytic predictions.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind, NKINDS};

/// Aggregates over one drained event stream.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Event count per [`EventKind`] discriminant.
    pub counts: [u64; NKINDS],
    /// SB anchor decisions: `anchor level → forks` (all three decision
    /// kinds; `u64::MAX` means the space bound fit no cache level).
    pub anchor_levels: BTreeMap<u64, u64>,
    /// Largest space bound seen on any fork, in words.
    pub max_fork_space: u64,
    /// CGC segment lengths (`hi - lo`), log₂ histogram: index `i`
    /// counts segments with `2^(i-1) < len ≤ 2^i`.
    pub seg_log2: [u64; 64],
    /// Smallest / largest CGC segment seen (0/0 without segments).
    pub seg_min: u64,
    /// Largest CGC segment seen.
    pub seg_max: u64,
    /// Segments strictly shorter than their pfor's grain (at most one
    /// tail chunk per `pfor` call is expected here).
    pub seg_below_grain: u64,
    /// Cache-witness counter totals, indexed by witness counter id
    /// ([`crate::witness::CTR_L1D_MISS`] etc.): the sum of the measured
    /// per-task deltas over the stream.
    pub witness: [u64; crate::witness::NCOUNTERS],
}

impl Default for TraceSummary {
    fn default() -> Self {
        Self {
            counts: [0; NKINDS],
            anchor_levels: BTreeMap::new(),
            max_fork_space: 0,
            seg_log2: [0; 64],
            seg_min: 0,
            seg_max: 0,
            seg_below_grain: 0,
            witness: [0; crate::witness::NCOUNTERS],
        }
    }
}

impl TraceSummary {
    /// Count of one kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total forks (serial + parallel + denied).
    pub fn forks(&self) -> u64 {
        self.count(EventKind::ForkSerial)
            + self.count(EventKind::ForkParallel)
            + self.count(EventKind::ForkDenied)
    }

    /// Steals per executed task (0 when nothing ran from a queue).
    pub fn steal_rate(&self) -> f64 {
        let tasks = self.count(EventKind::TaskEnter);
        if tasks == 0 {
            return 0.0;
        }
        self.count(EventKind::StealSuccess) as f64 / tasks as f64
    }

    /// Fraction of above-cutoff forks that were denied a permit — the
    /// divergence from the pure SB prediction, which would have run
    /// every such fork in parallel at its anchor.
    pub fn denied_rate(&self) -> f64 {
        let above = self.count(EventKind::ForkParallel) + self.count(EventKind::ForkDenied);
        if above == 0 {
            return 0.0;
        }
        self.count(EventKind::ForkDenied) as f64 / above as f64
    }
}

/// Summarize a drained event stream.
pub fn summarize(events: &[Event]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for e in events {
        s.counts[e.kind as usize] += 1;
        if e.kind.is_fork() {
            *s.anchor_levels.entry(e.b).or_insert(0) += 1;
            s.max_fork_space = s.max_fork_space.max(e.a);
        }
        if e.kind == EventKind::CgcSegment {
            let len = e.b.saturating_sub(e.a);
            let idx = (64 - len.leading_zeros() as usize).min(63);
            s.seg_log2[idx] += 1;
            if s.count(EventKind::CgcSegment) == 1 {
                s.seg_min = len;
                s.seg_max = len;
            } else {
                s.seg_min = s.seg_min.min(len);
                s.seg_max = s.seg_max.max(len);
            }
            if len < e.c {
                s.seg_below_grain += 1;
            }
        }
        if e.kind == EventKind::CacheWitness {
            if let Some(slot) = s.witness.get_mut(e.a as usize) {
                *slot += e.b;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, a: u64, b: u64, c: u64) -> Event {
        Event {
            ts_ns: 0,
            kind,
            worker: 0,
            a,
            b,
            c,
        }
    }

    #[test]
    fn summary_aggregates_decisions() {
        let evs = vec![
            ev(EventKind::ForkSerial, 100, 0, 1024),
            ev(EventKind::ForkParallel, 5000, 1, 0),
            ev(EventKind::ForkParallel, 6000, 1, 0),
            ev(EventKind::ForkDenied, 7000, 1, 0),
            ev(EventKind::CgcSegment, 0, 512, 64),
            ev(EventKind::CgcSegment, 512, 544, 64), // 32 < grain
            ev(EventKind::TaskEnter, 1, 2, 0),
            ev(EventKind::StealSuccess, 0, 1, 0),
            ev(EventKind::CacheWitness, crate::witness::CTR_L1D_MISS, 40, 1),
            ev(EventKind::CacheWitness, crate::witness::CTR_L1D_MISS, 2, 1),
            ev(EventKind::CacheWitness, crate::witness::CTR_LLC_MISS, 7, 1),
            ev(EventKind::TaskExit, 1, 0, 0),
        ];
        let s = summarize(&evs);
        assert_eq!(s.forks(), 4);
        assert_eq!(s.anchor_levels.get(&0), Some(&1));
        assert_eq!(s.anchor_levels.get(&1), Some(&3));
        assert_eq!(s.max_fork_space, 7000);
        assert_eq!(s.seg_min, 32);
        assert_eq!(s.seg_max, 512);
        assert_eq!(s.seg_below_grain, 1);
        assert_eq!(s.steal_rate(), 1.0);
        assert!((s.denied_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.witness[crate::witness::CTR_L1D_MISS as usize], 42);
        assert_eq!(s.witness[crate::witness::CTR_LLC_MISS as usize], 7);
        assert_eq!(s.witness[crate::witness::CTR_INSTRUCTIONS as usize], 0);
    }
}
