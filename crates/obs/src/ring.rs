//! A bounded single-producer / single-consumer event ring.
//!
//! Each resident worker owns one ring: the worker pushes at the head,
//! the (single) drainer pops at the tail. Every slot is five plain
//! `AtomicU64`s, so the whole structure is safe Rust; the SPSC
//! discipline (enforced by the sink's routing, not by types) is what
//! makes the relaxed slot accesses race-free:
//!
//! * the producer writes a slot only when `head - tail < capacity`,
//!   i.e. the consumer has finished with it, and *then* publishes the
//!   slot with a release store of `head`;
//! * the consumer reads a slot only after an acquire load of `head`
//!   shows it published, and releases it back with a release store of
//!   `tail`.
//!
//! A full ring **drops the new event** (bumping [`Ring::dropped`])
//! rather than blocking or overwriting: tracing must never perturb the
//! scheduler it observes, and a truncated tail with an honest drop
//! count beats a stalled worker.

// Loom model builds (CI-only: `RUSTFLAGS="--cfg loom"` plus a CI-time
// dev-dependency, see .github/workflows/ci.yml) swap in loom's
// permutation-tested atomics so `loom_tests` below can model-check the
// SPSC protocol; normal builds use std's.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::Event;

/// One event slot: timestamp, packed kind+worker, three payload words.
struct Slot {
    ts: AtomicU64,
    kw: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    // Not `derive(Default)`: loom's `AtomicU64` lacks the impl.
    fn empty() -> Self {
        Self {
            ts: AtomicU64::new(0),
            kw: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// Bounded SPSC event ring with an overflow-drop counter.
pub struct Ring {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next slot to write (producer-owned, consumer reads it).
    head: AtomicU64,
    /// Next slot to read (consumer-owned, producer reads it).
    tail: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Ring {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        Self {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events currently buffered (racy under concurrent push/pop).
    pub fn len(&self) -> usize {
        let h = self.head.load(Ordering::Acquire);
        let t = self.tail.load(Ordering::Acquire);
        (h - t) as usize
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Producer side: append `ev`, or drop it (counted) when the ring
    /// is full. Returns `false` on a drop. Must only be called by the
    /// ring's single producer.
    pub fn push(&self, ev: Event) -> bool {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire);
        if h - t > self.mask {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let s = &self.slots[(h & self.mask) as usize];
        s.ts.store(ev.ts_ns, Ordering::Relaxed);
        s.kw.store(ev.kw(), Ordering::Relaxed);
        s.a.store(ev.a, Ordering::Relaxed);
        s.b.store(ev.b, Ordering::Relaxed);
        s.c.store(ev.c, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);
        true
    }

    /// Consumer side: pop the oldest event, if any. Must only be called
    /// by the ring's single consumer.
    pub fn pop(&self) -> Option<Event> {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        if t == h {
            return None;
        }
        let s = &self.slots[(t & self.mask) as usize];
        let ev = Event::unpack(
            s.ts.load(Ordering::Relaxed),
            s.kw.load(Ordering::Relaxed),
            s.a.load(Ordering::Relaxed),
            s.b.load(Ordering::Relaxed),
            s.c.load(Ordering::Relaxed),
        );
        self.tail.store(t + 1, Ordering::Release);
        // A corrupt discriminant is impossible through `push`; skipping
        // (rather than panicking) keeps the drain total even if a user
        // constructed slots by other means.
        ev
    }
}

// Not compiled under `--cfg loom`: these use std threads and run rings
// outside a loom model. The loom build runs `loom_tests` below instead.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> Event {
        Event {
            ts_ns: i,
            kind: EventKind::Park,
            worker: 0,
            a: i,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn fifo_order_and_capacity_rounding() {
        let r = Ring::new(3); // rounds to 4
        assert_eq!(r.capacity(), 4);
        for i in 0..4 {
            assert!(r.push(ev(i)));
        }
        for i in 0..4 {
            assert_eq!(r.pop().unwrap().a, i);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn wraparound_preserves_order_and_counts_drops() {
        let r = Ring::new(4);
        // Fill, drain half, refill past the physical end: indices wrap.
        for i in 0..4 {
            assert!(r.push(ev(i)));
        }
        assert_eq!(r.pop().unwrap().a, 0);
        assert_eq!(r.pop().unwrap().a, 1);
        assert!(r.push(ev(4)));
        assert!(r.push(ev(5)));
        // Ring is full again: the next two pushes must drop, not block
        // or overwrite, and the drop count must say exactly how many.
        assert!(!r.push(ev(6)));
        assert!(!r.push(ev(7)));
        assert_eq!(r.dropped(), 2);
        let drained: Vec<u64> = std::iter::from_fn(|| r.pop()).map(|e| e.a).collect();
        assert_eq!(drained, vec![2, 3, 4, 5]);
        assert!(r.is_empty());
        // After draining, pushes succeed again and order is preserved.
        assert!(r.push(ev(8)));
        assert_eq!(r.pop().unwrap().a, 8);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn concurrent_spsc_delivers_everything_not_dropped() {
        use std::sync::Arc;
        let r = Arc::new(Ring::new(1 << 10));
        let p = Arc::clone(&r);
        let producer = std::thread::spawn(move || {
            let mut pushed = 0u64;
            for i in 0..100_000u64 {
                if p.push(ev(i)) {
                    pushed += 1;
                }
            }
            pushed
        });
        let mut got = 0u64;
        let mut last = None;
        while !producer.is_finished() || !r.is_empty() {
            while let Some(e) = r.pop() {
                // Per-ring order must be preserved even under drops.
                assert!(last.is_none_or(|l| e.a > l), "out of order");
                last = Some(e.a);
                got += 1;
            }
        }
        let pushed = producer.join().unwrap();
        assert_eq!(got, pushed);
        assert_eq!(pushed + r.dropped(), 100_000);
    }
}

/// Loom model checks for the SPSC protocol: every interleaving (and
/// every C11-permitted weak-memory outcome) of one producer racing one
/// consumer must deliver events in order, un-torn across the five slot
/// words, with drops accounted exactly. CI runs this with
/// `RUSTFLAGS="--cfg loom"` after adding `loom` as a CI-time
/// dev-dependency; local builds compile it away entirely.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use crate::event::EventKind;
    use loom::sync::Arc;
    use loom::thread;

    fn ev(i: u64) -> Event {
        Event {
            ts_ns: i,
            kind: EventKind::Park,
            worker: 0,
            a: i,
            // Payload words derived from `i` so a read tearing across
            // two different pushes is detectable below.
            b: i.wrapping_mul(3),
            c: 0,
        }
    }

    fn drain(r: &Ring, last: &mut Option<u64>, got: &mut u64) {
        while let Some(e) = r.pop() {
            assert!(last.is_none_or(|l| e.a > l), "out of order");
            assert_eq!(e.ts_ns, e.a, "slot words torn across pushes");
            assert_eq!(e.b, e.a.wrapping_mul(3), "slot words torn across pushes");
            *last = Some(e.a);
            *got += 1;
        }
    }

    #[test]
    fn loom_spsc_push_drain_is_ordered_untorn_and_drop_exact() {
        loom::model(|| {
            // Capacity 2 with 3 pushes: exercises full-ring drops and
            // slot reuse (wraparound) inside a tractable state space.
            let r = Arc::new(Ring::new(2));
            let p = Arc::clone(&r);
            let producer = thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..3 {
                    if p.push(ev(i)) {
                        pushed += 1;
                    }
                }
                pushed
            });
            let mut last = None;
            let mut got = 0u64;
            // One bounded drain pass concurrent with the producer, then
            // a post-join pass that must leave the ring empty.
            drain(&r, &mut last, &mut got);
            let pushed = producer.join().unwrap();
            drain(&r, &mut last, &mut got);
            assert_eq!(got, pushed, "events lost or duplicated");
            assert_eq!(pushed + r.dropped(), 3, "drop count inexact");
            assert!(r.pop().is_none());
        });
    }
}
