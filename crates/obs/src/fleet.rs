//! Fleet trace merge: clock-aligned, multi-process Perfetto export for
//! the distributed D-BSP tier.
//!
//! Each worker process owns a [`TraceSink`](crate::TraceSink) whose
//! timestamps are relative to its *own* epoch. The router estimates a
//! per-worker clock offset with an NTP-style probe exchange at
//! bootstrap (offset = worker clock minus the router's reference
//! clock, picked from the minimum-RTT sample) and ships each worker's
//! drained event stream home. This module turns those per-worker
//! streams into one analyzable timeline:
//!
//! * [`align`] applies the offset correction and merges the streams
//!   into one globally ordered `(worker, event)` sequence;
//! * [`to_chrome_json`] renders the merged timeline as a chrome-trace
//!   document with **one process track per worker** (`pid` = worker
//!   index), superstep and dist-job `B`/`E` slices, barrier waits as
//!   `X` slices, and **flow arrows** from every `exchange_send` to its
//!   matching `exchange_recv` — the flow id is derived from the
//!   `(job, superstep, src, dst)` stamp both sides carry, so the
//!   arrows are exact, not heuristic;
//! * [`summarize`] aggregates per-round lateness (slowest pair per
//!   superstep), per-worker barrier-wait histograms, and per-level
//!   send/recv word totals for the fleet Prometheus view and the
//!   `mo_dist --trace` report.
//!
//! The emitted document passes [`chrome::validate`](crate::chrome::validate)
//! by construction (the same orphan-end / open-begin balancing as the
//! single-process exporter).

use std::collections::BTreeMap;

use crate::event::{unpack_step_level, Event, EventKind};

/// One worker's shipped trace: its drained events plus the clock
/// calibration the router measured for it.
#[derive(Debug, Clone)]
pub struct WorkerStream {
    /// Worker (shard) index — becomes the process track id.
    pub worker: u32,
    /// Estimated worker-clock minus reference-clock offset in
    /// nanoseconds (subtracted from every timestamp to align).
    pub offset_ns: i64,
    /// Round-trip time of the winning calibration probe (the offset's
    /// uncertainty is at most half of this).
    pub rtt_ns: u64,
    /// Events this worker's sink dropped at full rings.
    pub dropped: u64,
    /// The drained events, in ring (time) order on the worker's clock.
    pub events: Vec<Event>,
}

impl WorkerStream {
    /// `ts` corrected onto the reference clock (saturating at zero).
    fn correct(&self, ts_ns: u64) -> u64 {
        (ts_ns as i64 - self.offset_ns).max(0) as u64
    }
}

/// Merge every stream onto the reference clock: `(worker, event)` pairs
/// with corrected timestamps, globally time-ordered (stable within a
/// worker, so per-track order is preserved).
pub fn align(streams: &[WorkerStream]) -> Vec<(u32, Event)> {
    let mut out: Vec<(u32, Event)> =
        Vec::with_capacity(streams.iter().map(|s| s.events.len()).sum());
    for s in streams {
        for e in &s.events {
            let mut e = *e;
            e.ts_ns = s.correct(e.ts_ns);
            out.push((s.worker, e));
        }
    }
    out.sort_by_key(|(_, e)| e.ts_ns);
    out
}

/// The flow id binding one `exchange_send` to its `exchange_recv`:
/// both sides derive it from the `(job, superstep, src, dst)` stamp
/// (mixed so ids spread even for small indices).
fn flow_id(job: u64, superstep: u32, src: u32, dst: u32) -> u64 {
    let mut x = job
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(((superstep as u64) << 24) | ((src as u64) << 12) | dst as u64);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x ^ (x >> 31)
}

fn push_ts(out: &mut String, ts_ns: u64) {
    out.push_str(&format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000));
}

fn push_head(out: &mut String, name: &str, ph: char, pid: u32, ts_ns: u64) {
    out.push_str(&format!(
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":0,\"ts\":"
    ));
    push_ts(out, ts_ns);
}

/// Render the merged fleet timeline as a chrome-trace JSON document
/// with one process track per worker and send→recv flow arrows.
///
/// Only the dist event kinds are rendered (a worker's stream holds
/// nothing else today); unknown kinds are skipped rather than risking
/// an unbalanced slice.
pub fn to_chrome_json(streams: &[WorkerStream]) -> String {
    let merged = align(streams);
    let mut out = String::with_capacity(merged.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    // Process-name metadata: one track per worker, sorted by index.
    let mut workers: Vec<u32> = streams.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    for w in &workers {
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{w},\"args\":{{\"name\":\"worker {w}\"}}}}"
        ));
    }
    // Per-worker current job id (DistJobBegin..DistJobEnd bracket) so
    // exchange flows are disambiguated across jobs.
    let mut cur_job: BTreeMap<u32, u64> = BTreeMap::new();
    // Open B-slice depth per (pid, name): skip orphan ends, close
    // leftovers at the last timestamp.
    let mut open: BTreeMap<(u32, &'static str), u64> = BTreeMap::new();
    let mut last_ts = 0u64;
    for (w, e) in &merged {
        let (w, e) = (*w, e);
        last_ts = last_ts.max(e.ts_ns);
        match e.kind {
            EventKind::DistJobBegin => {
                cur_job.insert(w, e.a);
                *open.entry((w, "dist_job")).or_insert(0) += 1;
                sep(&mut out);
                push_head(&mut out, "dist_job", 'B', w, e.ts_ns);
                out.push_str(&format!(",\"args\":{{\"job\":{},\"n\":{}}}}}", e.a, e.c));
            }
            EventKind::DistJobEnd => {
                let depth = open.entry((w, "dist_job")).or_insert(0);
                if *depth == 0 {
                    continue;
                }
                *depth -= 1;
                sep(&mut out);
                push_head(&mut out, "dist_job", 'E', w, e.ts_ns);
                out.push('}');
            }
            EventKind::SuperstepBegin => {
                *open.entry((w, "superstep")).or_insert(0) += 1;
                sep(&mut out);
                push_head(&mut out, "superstep", 'B', w, e.ts_ns);
                out.push_str(&format!(
                    ",\"args\":{{\"job\":{},\"superstep\":{}}}}}",
                    e.a, e.b
                ));
            }
            EventKind::SuperstepEnd => {
                let depth = open.entry((w, "superstep")).or_insert(0);
                if *depth == 0 {
                    continue;
                }
                *depth -= 1;
                sep(&mut out);
                push_head(&mut out, "superstep", 'E', w, e.ts_ns);
                out.push('}');
            }
            EventKind::ExchangeSend | EventKind::ExchangeRecv => {
                let (step, level) = unpack_step_level(e.b);
                let peer = e.a as u32;
                let job = cur_job.get(&w).copied().unwrap_or(0);
                let (src, dst, ph, name) = if e.kind == EventKind::ExchangeSend {
                    (w, peer, 's', "exchange_send")
                } else {
                    (peer, w, 'f', "exchange_recv")
                };
                let id = flow_id(job, step, src, dst);
                sep(&mut out);
                push_head(&mut out, name, 'i', w, e.ts_ns);
                out.push_str(&format!(
                    ",\"s\":\"t\",\"args\":{{\"peer\":{peer},\"superstep\":{step},\"level\":{level},\"words\":{}}}}}",
                    e.c
                ));
                // The flow event binds to the enclosing superstep slice.
                sep(&mut out);
                push_head(&mut out, "exchange", ph, w, e.ts_ns);
                out.push_str(&format!(",\"cat\":\"dbsp\",\"id\":\"{id:#x}\""));
                if ph == 'f' {
                    out.push_str(",\"bp\":\"e\"");
                }
                out.push('}');
            }
            EventKind::BarrierWait => {
                let (step, level) = unpack_step_level(e.b);
                let start = e.ts_ns.saturating_sub(e.c);
                sep(&mut out);
                push_head(&mut out, "barrier_wait", 'X', w, start);
                out.push_str(&format!(
                    ",\"dur\":{}.{:03},\"args\":{{\"peer\":{},\"superstep\":{step},\"level\":{level}}}}}",
                    e.c / 1000,
                    e.c % 1000,
                    e.a
                ));
            }
            _ => {}
        }
    }
    for (&(pid, name), &depth) in &open {
        for _ in 0..depth {
            sep(&mut out);
            push_head(&mut out, name, 'E', pid, last_ts);
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

/// Per-round lateness aggregates and word totals over a merged fleet
/// trace — the data behind the straggler report and the fleet
/// Prometheus barrier-wait families.
#[derive(Debug, Clone, Default)]
pub struct FleetSummary {
    /// Total barrier-wait nanoseconds per worker index.
    pub barrier_wait_ns: BTreeMap<u32, u64>,
    /// Per-worker log₂ histogram of individual round waits: bucket `i`
    /// counts waits with `2^(i-1) < ns ≤ 2^i`.
    pub barrier_hist: BTreeMap<u32, [u64; 64]>,
    /// Slowest pair per `(job, superstep)`: `(wait_ns, waiter, peer)` —
    /// the round's straggler attribution.
    pub slowest_pair: BTreeMap<(u64, u32), (u64, u32, u32)>,
    /// Words framed per `(worker, level)` (sender side).
    pub send_words: BTreeMap<(u32, u8), u64>,
    /// Words delivered per `(worker, level)` (receiver side).
    pub recv_words: BTreeMap<(u32, u8), u64>,
    /// Ring-dropped events per worker (from the shipped streams).
    pub dropped: BTreeMap<u32, u64>,
}

/// Aggregate the shipped streams (no clock correction needed — only
/// durations and counts are read).
pub fn summarize(streams: &[WorkerStream]) -> FleetSummary {
    let mut s = FleetSummary::default();
    for st in streams {
        let w = st.worker;
        s.dropped.insert(w, st.dropped);
        s.barrier_wait_ns.entry(w).or_insert(0);
        s.barrier_hist.entry(w).or_insert([0; 64]);
        let mut job = 0u64;
        for e in &st.events {
            match e.kind {
                EventKind::DistJobBegin => job = e.a,
                EventKind::BarrierWait => {
                    let (step, _) = unpack_step_level(e.b);
                    *s.barrier_wait_ns.entry(w).or_insert(0) += e.c;
                    let idx = (64 - e.c.leading_zeros() as usize).min(63);
                    s.barrier_hist.entry(w).or_insert([0; 64])[idx] += 1;
                    let slot = s
                        .slowest_pair
                        .entry((job, step))
                        .or_insert((0, w, e.a as u32));
                    if e.c >= slot.0 {
                        *slot = (e.c, w, e.a as u32);
                    }
                }
                EventKind::ExchangeSend => {
                    let (_, level) = unpack_step_level(e.b);
                    *s.send_words.entry((w, level)).or_insert(0) += e.c;
                }
                EventKind::ExchangeRecv => {
                    let (_, level) = unpack_step_level(e.b);
                    *s.recv_words.entry((w, level)).or_insert(0) += e.c;
                }
                _ => {}
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::pack_step_level;

    fn ev(ts: u64, kind: EventKind, a: u64, b: u64, c: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            worker: crate::event::WORKER_EXTERNAL,
            a,
            b,
            c,
        }
    }

    /// A two-worker job: one superstep, one exchange each way.
    fn two_worker_streams() -> Vec<WorkerStream> {
        let sl = pack_step_level(0, 0);
        let w0 = vec![
            ev(100, EventKind::DistJobBegin, 7, 0, 64),
            ev(110, EventKind::SuperstepBegin, 7, 0, 0),
            ev(120, EventKind::ExchangeSend, 1, sl, 5),
            ev(150, EventKind::BarrierWait, 1, sl, 25),
            ev(150, EventKind::ExchangeRecv, 1, sl, 3),
            ev(160, EventKind::SuperstepEnd, 7, 0, 0),
            ev(170, EventKind::DistJobEnd, 7, 1, 0),
        ];
        // Worker 1's clock runs 1 000 ns ahead of the reference.
        let w1 = vec![
            ev(1100, EventKind::DistJobBegin, 7, 0, 64),
            ev(1110, EventKind::SuperstepBegin, 7, 0, 0),
            ev(1115, EventKind::BarrierWait, 0, sl, 10),
            ev(1115, EventKind::ExchangeRecv, 0, sl, 5),
            ev(1125, EventKind::ExchangeSend, 0, sl, 3),
            ev(1160, EventKind::SuperstepEnd, 7, 0, 0),
            ev(1170, EventKind::DistJobEnd, 7, 1, 0),
        ];
        vec![
            WorkerStream {
                worker: 0,
                offset_ns: 0,
                rtt_ns: 10,
                dropped: 0,
                events: w0,
            },
            WorkerStream {
                worker: 1,
                offset_ns: 1000,
                rtt_ns: 12,
                dropped: 0,
                events: w1,
            },
        ]
    }

    #[test]
    fn align_corrects_offsets_and_keeps_per_track_order() {
        let streams = two_worker_streams();
        let merged = align(&streams);
        assert_eq!(merged.len(), 14);
        // Globally ordered.
        assert!(merged.windows(2).all(|p| p[0].1.ts_ns <= p[1].1.ts_ns));
        // Worker 1's events moved back onto the reference clock.
        let w1_first = merged.iter().find(|(w, _)| *w == 1).unwrap();
        assert_eq!(w1_first.1.ts_ns, 100);
        // Per-track order preserved.
        for w in [0u32, 1] {
            let track: Vec<u64> = merged
                .iter()
                .filter(|(x, _)| *x == w)
                .map(|(_, e)| e.ts_ns)
                .collect();
            assert!(
                track.windows(2).all(|p| p[0] <= p[1]),
                "track {w} reordered"
            );
        }
    }

    #[test]
    fn fleet_chrome_export_validates_with_matched_flows() {
        let streams = two_worker_streams();
        let json = to_chrome_json(&streams);
        crate::chrome::validate(&json).expect("fleet trace must validate");
        // One process track per worker.
        for w in 0..2 {
            assert!(json.contains(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{w}"
            )));
        }
        // Every flow start has exactly one matching finish (same id).
        let ids = |ph: char| -> Vec<&str> {
            json.split(&format!("\"ph\":\"{ph}\",\"pid\":"))
                .skip(1)
                .filter_map(|s| s.split("\"id\":\"").nth(1))
                .filter_map(|s| s.split('"').next())
                .collect()
        };
        let (mut starts, mut ends) = (ids('s'), ids('f'));
        starts.sort_unstable();
        ends.sort_unstable();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts, ends, "send flows must match recv flows");
        // Distinct directions get distinct flow ids.
        assert_ne!(starts[0], starts[1]);
    }

    #[test]
    fn fleet_summary_attributes_stragglers() {
        let streams = two_worker_streams();
        let s = summarize(&streams);
        assert_eq!(s.barrier_wait_ns[&0], 25);
        assert_eq!(s.barrier_wait_ns[&1], 10);
        // Worker 0 waiting on worker 1 was the round's slowest pair.
        assert_eq!(s.slowest_pair[&(7, 0)], (25, 0, 1));
        assert_eq!(s.send_words[&(0, 0)], 5);
        assert_eq!(s.recv_words[&(1, 0)], 5);
        assert_eq!(s.send_words[&(1, 0)], 3);
        assert_eq!(s.recv_words[&(0, 0)], 3);
        // Fleet-wide conservation: send totals equal recv totals.
        let sent: u64 = s.send_words.values().sum();
        let recv: u64 = s.recv_words.values().sum();
        assert_eq!(sent, recv);
    }

    #[test]
    fn orphan_ends_and_open_begins_balance() {
        let streams = vec![WorkerStream {
            worker: 3,
            offset_ns: -50,
            rtt_ns: 1,
            dropped: 2,
            events: vec![
                ev(10, EventKind::SuperstepEnd, 1, 0, 0), // orphan
                ev(20, EventKind::DistJobBegin, 1, 0, 8),
                ev(30, EventKind::SuperstepBegin, 1, 0, 0), // left open
            ],
        }];
        let json = to_chrome_json(&streams);
        crate::chrome::validate(&json).expect("balanced despite raced drain");
    }
}
