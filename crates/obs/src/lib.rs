//! # mo-obs — observability for the space-bound runtime
//!
//! The paper's claim is behavioural: an *oblivious* algorithm plus
//! scheduler hints reproduces the cache/steal behaviour of a tuned
//! program. Verifying that claim needs a measurement surface — this
//! crate is it. It provides:
//!
//! * a **fixed-size binary [`Event`] schema** covering every scheduler
//!   decision the runtime takes (fork serialized / parallelized /
//!   denied with the SB anchor level and space bound, CGC segment
//!   issued with `[lo, hi)` and grain, steal attempt/success, injector
//!   pop, park/unpark, task enter/exit);
//! * a **lock-free per-worker [`Ring`]** of those events with an
//!   overflow-drop counter (tracing never blocks or allocates on the
//!   hot path) and a [`TraceSink`] that owns one ring per worker plus a
//!   mutex-guarded ring for external (non-resident) threads, with a
//!   [`TraceSink::drain`] that merges all streams into one global
//!   timeline;
//! * a **chrome-trace / Perfetto JSON exporter** ([`chrome`]) so a
//!   whole pool run can be inspected per worker in `ui.perfetto.dev`;
//! * a **Prometheus text-exposition writer and a tiny parser**
//!   ([`prom`]) used by `mo-serve`'s `/metrics` endpoint and its tests;
//! * **trace summaries** ([`summary`]) — steal rates, anchor-level
//!   distributions, segment-size histograms — consumed by the
//!   `obs_report` bench binary to compare measured scheduler behaviour
//!   against the analytic predictions;
//! * **request spans** ([`span`]) reassembling mo-serve's per-request
//!   phase-boundary events (`arrive → admit → enqueue → dequeue →
//!   batch-form → execute → respond`, or a typed shed) into per-kernel
//!   per-phase latency histograms for tail attribution;
//! * an **SLO burn-rate engine** ([`slo`]) evaluating latency/error
//!   objectives as multi-window error-budget burn rates, behind
//!   mo-serve's `moserve_slo_*` families and its dump-on-burn flight
//!   recorder;
//! * a **fleet trace merger** ([`fleet`]) turning per-process event
//!   streams shipped by the distributed tier into one clock-aligned
//!   Perfetto timeline (one process track per worker, send→recv flow
//!   arrows per XOR round) plus straggler/lateness aggregates;
//! * a **cache witness** ([`witness`]) attaching *measured* per-level
//!   cache traffic to traced runs: a Linux `perf_event_open` backend
//!   scoped around task enter/exit, and a portable simulator-replay
//!   backend, both reporting through one trait so `obs_report` can
//!   compare measured transfers against the paper's analytic `Q_i`
//!   bounds on any host.
//!
//! The crate is dependency-free, and the only `unsafe` is the raw
//! `perf_event_open` syscall shim confined to [`witness::perf`] (which
//! degrades to a graceful "unavailable" everywhere the kernel refuses
//! it); `mo-core` depends on it *optionally* behind its `obs` feature,
//! so with the feature off the runtime carries zero tracing cost (the
//! emission macro compiles to nothing — not even its arguments are
//! evaluated).

#![deny(unsafe_code)]
// The syscall shim must wrap every unsafe operation in an explicit,
// `// SAFETY:`-commented block even inside `unsafe fn`.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
pub mod fleet;
pub mod prom;
mod ring;
mod sink;
pub mod slo;
pub mod span;
pub mod summary;
pub mod witness;

pub use event::{pack_step_level, unpack_step_level, Event, EventKind, WORKER_EXTERNAL};
pub use ring::Ring;
pub use sink::TraceSink;
