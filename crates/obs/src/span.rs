//! Request-span assembly: turn drained serve events back into
//! per-request phase timelines.
//!
//! mo-serve emits one event per phase boundary of every request —
//! `arrive → admit/shed → enqueue → dequeue → batch-form → execute →
//! respond` — keyed by a fleet-unique request id (see the serve kinds
//! on [`EventKind`]). The boundaries deliberately cross threads (the
//! submitter stamps arrive/admit/enqueue, a serve worker stamps the
//! rest), so spans cannot be chrome `B`/`E` slices; instead this module
//! reassembles the flat event stream into [`RequestSpan`]s and
//! aggregates them into per-kernel, per-phase log₂ latency histograms
//! — the data behind `obs_report --serve` and `serve_load --phases`.
//!
//! Phase attribution maps each boundary delta onto the serving-path
//! cost terms (DESIGN §5d):
//!
//! * **admission** (`arrive → enqueue`): SB admission control — the
//!   footprint/anchor check plus the secure-mode certificate gate;
//! * **queue** (`enqueue → dequeue`): bounded-queue waiting time, the
//!   backpressure term;
//! * **batch** (`dequeue → execute`): CGC⇒SB batch formation — how
//!   long the request waited for same-kernel peers;
//! * **execute** (`execute → respond`): SB pool service time, the term
//!   the paper's analytic batch cost bounds.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Typed shed reason carried in `c`/`b` of [`EventKind::ServeShed`].
/// The codes mirror mo-serve's `Rejected` variants; they live here so
/// the span assembler and the server agree without a dependency cycle.
pub const SHED_QUEUE_FULL: u64 = 0;
/// Deadline expired while queued.
pub const SHED_DEADLINE: u64 = 1;
/// Footprint exceeds the serving cache budget.
pub const SHED_TOO_LARGE: u64 = 2;
/// Secure mode refused an uncertified kernel.
pub const SHED_NOT_CERTIFIED: u64 = 3;
/// Server was draining.
pub const SHED_SHUTTING_DOWN: u64 = 4;

/// Stable name for a shed reason code.
pub fn shed_reason_name(code: u64) -> &'static str {
    match code {
        SHED_QUEUE_FULL => "queue_full",
        SHED_DEADLINE => "deadline",
        SHED_TOO_LARGE => "too_large",
        SHED_NOT_CERTIFIED => "not_certified",
        SHED_SHUTTING_DOWN => "shutting_down",
        _ => "unknown",
    }
}

/// The four phases a completed request decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// `arrive → enqueue`: admission control (footprint + certificate).
    Admission = 0,
    /// `enqueue → dequeue`: time on the bounded queue.
    Queue = 1,
    /// `dequeue → execute`: same-kernel batch formation.
    Batch = 2,
    /// `execute → respond`: SB pool service time.
    Execute = 3,
}

/// Number of [`Phase`]s.
pub const NPHASES: usize = 4;

impl Phase {
    /// Every phase, in request order.
    pub const ALL: [Phase; NPHASES] =
        [Phase::Admission, Phase::Queue, Phase::Batch, Phase::Execute];

    /// Stable lower-case name (table rows, Prometheus label values).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::Queue => "queue",
            Phase::Batch => "batch",
            Phase::Execute => "execute",
        }
    }
}

/// One request's reassembled span: the boundary timestamps its serve
/// events carried, or `None` where the boundary was never recorded
/// (shed early, or the event was dropped at a full ring).
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestSpan {
    /// Fleet-unique request id.
    pub req: u64,
    /// Kernel code from the arrive event.
    pub kernel: u64,
    /// Problem size from the arrive event.
    pub n: u64,
    /// `ServeArrive` timestamp.
    pub arrive_ns: Option<u64>,
    /// `ServeAdmit` timestamp.
    pub admit_ns: Option<u64>,
    /// `ServeEnqueue` timestamp.
    pub enqueue_ns: Option<u64>,
    /// `ServeDequeue` timestamp.
    pub dequeue_ns: Option<u64>,
    /// `ServeBatchForm` timestamp.
    pub batch_ns: Option<u64>,
    /// `ServeExecute` timestamp.
    pub execute_ns: Option<u64>,
    /// `ServeRespond` timestamp.
    pub respond_ns: Option<u64>,
    /// Shed reason code and timestamp, if the request was shed.
    pub shed: Option<(u64, u64)>,
    /// Batch size from the respond event.
    pub batch_size: u64,
    /// How many closing events (`ServeRespond` or `ServeShed`) hit this
    /// request id. The lifecycle invariant is exactly 1.
    pub closes: u32,
}

impl RequestSpan {
    /// `true` when every phase boundary of the completed path is
    /// present (the span can be fully attributed).
    pub fn complete(&self) -> bool {
        self.arrive_ns.is_some()
            && self.enqueue_ns.is_some()
            && self.dequeue_ns.is_some()
            && self.execute_ns.is_some()
            && self.respond_ns.is_some()
    }

    /// Duration of one phase, when both its boundaries were recorded.
    pub fn phase_ns(&self, phase: Phase) -> Option<u64> {
        let (start, end) = match phase {
            Phase::Admission => (self.arrive_ns, self.enqueue_ns),
            Phase::Queue => (self.enqueue_ns, self.dequeue_ns),
            Phase::Batch => (self.dequeue_ns, self.execute_ns),
            Phase::Execute => (self.execute_ns, self.respond_ns),
        };
        Some(end?.saturating_sub(start?))
    }

    /// End-to-end latency (`arrive → respond`).
    pub fn total_ns(&self) -> Option<u64> {
        Some(self.respond_ns?.saturating_sub(self.arrive_ns?))
    }
}

/// Everything [`assemble`] recovered from one event stream.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// One span per request id seen, in first-seen order.
    pub spans: Vec<RequestSpan>,
    /// Spans opened (`ServeArrive` events).
    pub opened: u64,
    /// Spans closed (`ServeRespond` + `ServeShed` events).
    pub closed: u64,
    /// Closing events whose request id never had an arrive (their
    /// begin was dropped at a full ring).
    pub orphan_closes: u64,
}

impl SpanSet {
    /// Span conservation: every opened span closed exactly once and no
    /// close arrived without its open. Holds whenever the rings did not
    /// drop and the server has drained.
    pub fn conserved(&self) -> bool {
        self.opened == self.closed
            && self.orphan_closes == 0
            && self.spans.iter().all(|s| s.closes == 1)
    }
}

/// Reassemble the serve spans out of a drained event stream (events of
/// other kinds are ignored, so the full merged timeline can be passed
/// as-is).
pub fn assemble(events: &[Event]) -> SpanSet {
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    let mut set = SpanSet::default();
    for e in events {
        let serve = matches!(
            e.kind,
            EventKind::ServeArrive
                | EventKind::ServeAdmit
                | EventKind::ServeEnqueue
                | EventKind::ServeDequeue
                | EventKind::ServeBatchForm
                | EventKind::ServeExecute
                | EventKind::ServeRespond
                | EventKind::ServeShed
        );
        if !serve {
            continue;
        }
        let closing = matches!(e.kind, EventKind::ServeRespond | EventKind::ServeShed);
        if closing && !index.contains_key(&e.a) {
            set.orphan_closes += 1;
            continue;
        }
        let idx = *index.entry(e.a).or_insert_with(|| {
            set.spans.push(RequestSpan {
                req: e.a,
                ..RequestSpan::default()
            });
            set.spans.len() - 1
        });
        let s = &mut set.spans[idx];
        match e.kind {
            EventKind::ServeArrive => {
                set.opened += 1;
                s.kernel = e.b;
                s.n = e.c;
                s.arrive_ns = Some(e.ts_ns);
            }
            EventKind::ServeAdmit => s.admit_ns = Some(e.ts_ns),
            EventKind::ServeEnqueue => s.enqueue_ns = Some(e.ts_ns),
            EventKind::ServeDequeue => s.dequeue_ns = Some(e.ts_ns),
            EventKind::ServeBatchForm => s.batch_ns = Some(e.ts_ns),
            EventKind::ServeExecute => s.execute_ns = Some(e.ts_ns),
            EventKind::ServeRespond => {
                set.closed += 1;
                s.closes += 1;
                s.batch_size = e.c;
                s.respond_ns = Some(e.ts_ns);
            }
            EventKind::ServeShed => {
                set.closed += 1;
                s.closes += 1;
                s.shed = Some((e.b, e.ts_ns));
            }
            _ => unreachable!("filtered above"),
        }
    }
    set
}

/// A log₂-bucketed nanosecond histogram: bucket `i` counts durations
/// `2^(i-1) < ns ≤ 2^i` (bucket 0 counts 0–1 ns).
#[derive(Debug, Clone)]
pub struct Log2Hist {
    /// Per-bucket counts.
    pub buckets: [u64; 64],
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded durations, ns.
    pub sum_ns: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Log2Hist {
    /// Record one duration.
    pub fn push(&mut self, ns: u64) {
        let idx = (64 - ns.leading_zeros() as usize).min(63);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Upper bound of the bucket holding quantile `q` (0 when empty).
    /// Coarse by construction (factor-of-two buckets) but monotone and
    /// allocation-free, matching serve's latency histogram semantics.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i.min(62);
            }
        }
        1u64 << 62
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Per-kernel phase decomposition: one histogram per phase plus the
/// end-to-end total, over the *complete* spans of one kernel.
#[derive(Debug, Clone, Default)]
pub struct KernelPhases {
    /// Complete spans aggregated.
    pub count: u64,
    /// Shed spans seen for this kernel (not in the histograms).
    pub shed: u64,
    /// One histogram per [`Phase`].
    pub phases: [Log2Hist; NPHASES],
    /// End-to-end (`arrive → respond`) histogram.
    pub total: Log2Hist,
}

impl KernelPhases {
    /// The phase with the largest latency at quantile `q`, with that
    /// latency — "where did the tail go".
    pub fn dominant_phase(&self, q: f64) -> (Phase, u64) {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.phases[p as usize].quantile_ns(q)))
            .max_by_key(|&(_, ns)| ns)
            .unwrap_or((Phase::Admission, 0))
    }
}

/// Group the complete spans of a [`SpanSet`] by kernel code and build
/// the per-phase histograms.
pub fn phase_stats(set: &SpanSet) -> BTreeMap<u64, KernelPhases> {
    let mut out: BTreeMap<u64, KernelPhases> = BTreeMap::new();
    for s in &set.spans {
        let k = out.entry(s.kernel).or_default();
        if s.shed.is_some() {
            k.shed += 1;
            continue;
        }
        if !s.complete() {
            continue;
        }
        k.count += 1;
        for p in Phase::ALL {
            if let Some(ns) = s.phase_ns(p) {
                k.phases[p as usize].push(ns);
            }
        }
        if let Some(ns) = s.total_ns() {
            k.total.push(ns);
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render the phase-attribution table shared by `obs_report --serve`
/// and `serve_load --phases`: one block per kernel, one row per phase
/// with p50/p95/p99, and the dominant phase named at each quantile.
/// `name_of` maps the kernel code from the arrive event to a name.
pub fn format_phase_table(
    stats: &BTreeMap<u64, KernelPhases>,
    name_of: impl Fn(u64) -> String,
) -> String {
    let mut out = String::new();
    for (code, k) in stats {
        out.push_str(&format!(
            "{} ({} complete spans, {} shed)\n",
            name_of(*code),
            k.count,
            k.shed
        ));
        out.push_str(&format!(
            "  {:<10} {:>10} {:>10} {:>10}\n",
            "phase", "p50", "p95", "p99"
        ));
        for p in Phase::ALL {
            let h = &k.phases[p as usize];
            out.push_str(&format!(
                "  {:<10} {:>10} {:>10} {:>10}\n",
                p.name(),
                fmt_ns(h.quantile_ns(0.50)),
                fmt_ns(h.quantile_ns(0.95)),
                fmt_ns(h.quantile_ns(0.99)),
            ));
        }
        out.push_str(&format!(
            "  {:<10} {:>10} {:>10} {:>10}\n",
            "total",
            fmt_ns(k.total.quantile_ns(0.50)),
            fmt_ns(k.total.quantile_ns(0.95)),
            fmt_ns(k.total.quantile_ns(0.99)),
        ));
        for q in [0.50, 0.95, 0.99] {
            let (p, ns) = k.dominant_phase(q);
            out.push_str(&format!(
                "  dominant @p{:02}: {} ({})\n",
                (q * 100.0) as u32,
                p.name(),
                fmt_ns(ns)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind, a: u64, b: u64, c: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            worker: 0,
            a,
            b,
            c,
        }
    }

    fn full_span(req: u64, base: u64) -> Vec<Event> {
        vec![
            ev(base, EventKind::ServeArrive, req, 2, 64),
            ev(base + 10, EventKind::ServeAdmit, req, 4096, 0),
            ev(base + 100, EventKind::ServeEnqueue, req, 1, 1_000_000),
            ev(base + 1_100, EventKind::ServeDequeue, req, 1_000, 0),
            ev(base + 1_200, EventKind::ServeBatchForm, req, 4, 16_384),
            ev(base + 1_300, EventKind::ServeExecute, req, 4, 1),
            ev(base + 9_300, EventKind::ServeRespond, req, 8_000, 4),
        ]
    }

    #[test]
    fn spans_reassemble_and_attribute_phases() {
        let mut evs = full_span(1, 0);
        evs.extend(full_span(2, 50));
        let set = assemble(&evs);
        assert_eq!(set.opened, 2);
        assert_eq!(set.closed, 2);
        assert!(set.conserved());
        let s = &set.spans[0];
        assert!(s.complete());
        assert_eq!(s.phase_ns(Phase::Admission), Some(100));
        assert_eq!(s.phase_ns(Phase::Queue), Some(1_000));
        assert_eq!(s.phase_ns(Phase::Batch), Some(200));
        assert_eq!(s.phase_ns(Phase::Execute), Some(8_000));
        assert_eq!(s.total_ns(), Some(9_300));
        assert_eq!(s.batch_size, 4);

        let stats = phase_stats(&set);
        let k = &stats[&2];
        assert_eq!(k.count, 2);
        let (dom, ns) = k.dominant_phase(0.99);
        assert_eq!(dom, Phase::Execute);
        assert!(ns >= 8_000);
        let table = format_phase_table(&stats, |c| format!("kernel{c}"));
        assert!(table.contains("kernel2 (2 complete spans, 0 shed)"));
        assert!(table.contains("dominant @p99: execute"));
    }

    #[test]
    fn shed_spans_close_without_phase_attribution() {
        let evs = vec![
            ev(0, EventKind::ServeArrive, 9, 1, 32),
            ev(50, EventKind::ServeShed, 9, SHED_QUEUE_FULL, 50),
        ];
        let set = assemble(&evs);
        assert_eq!(set.opened, 1);
        assert_eq!(set.closed, 1);
        assert!(set.conserved());
        assert_eq!(set.spans[0].shed, Some((SHED_QUEUE_FULL, 50)));
        let stats = phase_stats(&set);
        assert_eq!(stats[&1].shed, 1);
        assert_eq!(stats[&1].count, 0);
    }

    #[test]
    fn orphan_close_and_double_close_break_conservation() {
        let orphan = vec![ev(10, EventKind::ServeRespond, 3, 0, 1)];
        let set = assemble(&orphan);
        assert_eq!(set.orphan_closes, 1);
        assert!(!set.conserved());

        let double = vec![
            ev(0, EventKind::ServeArrive, 4, 1, 8),
            ev(10, EventKind::ServeRespond, 4, 10, 1),
            ev(20, EventKind::ServeShed, 4, SHED_DEADLINE, 20),
        ];
        let set = assemble(&double);
        assert_eq!(set.opened, 1);
        assert_eq!(set.closed, 2);
        assert!(!set.conserved());
    }

    #[test]
    fn quantiles_hit_log2_bucket_bounds() {
        let mut h = Log2Hist::default();
        for _ in 0..99 {
            h.push(1_000); // bucket 10 (2^10 = 1024)
        }
        h.push(1_000_000); // bucket 20 (2^20)
        assert_eq!(h.quantile_ns(0.50), 1 << 10);
        assert_eq!(h.quantile_ns(0.99), 1 << 10);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        assert_eq!(Log2Hist::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn shed_reason_names_are_stable() {
        assert_eq!(shed_reason_name(SHED_QUEUE_FULL), "queue_full");
        assert_eq!(shed_reason_name(SHED_DEADLINE), "deadline");
        assert_eq!(shed_reason_name(SHED_TOO_LARGE), "too_large");
        assert_eq!(shed_reason_name(SHED_NOT_CERTIFIED), "not_certified");
        assert_eq!(shed_reason_name(SHED_SHUTTING_DOWN), "shutting_down");
        assert_eq!(shed_reason_name(99), "unknown");
    }
}
