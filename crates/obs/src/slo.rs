//! SLO burn-rate engine: multi-window error-budget burn evaluation.
//!
//! An objective says "fraction `target` of requests must be *good*"
//! (good = completed within the latency threshold, or simply not
//! shed/errored — the engine only sees good/total counts, so both
//! latency and availability objectives use the same machinery). The
//! error budget is `1 - target`; the **burn rate** over a window is
//! the bad fraction observed in that window divided by the budget —
//! burn 1.0 spends the budget exactly at the objective boundary, burn
//! 14.4 exhausts a 30-day budget in 50 hours.
//!
//! Following the multi-window discipline (short window to confirm the
//! burn is *current*, long window to confirm it is *material*), an
//! objective is **burning** when some [`BurnWindow`]'s short *and*
//! long burn rates both exceed its factor. mo-serve evaluates its
//! trackers online, exports the rates as `moserve_slo_*` Prometheus
//! families, and fires the flight-recorder dump on the not-burning →
//! burning edge.
//!
//! The engine is deliberately clock-free: callers pass `now_ns` and
//! cumulative good/total counters, which makes burn evaluation exactly
//! reproducible in tests.

use std::collections::VecDeque;

/// One (short, long) window pair with its burn-rate threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Short window: confirms the burn is still happening now.
    pub short_ns: u64,
    /// Long window: confirms enough budget went up in smoke to matter.
    pub long_ns: u64,
    /// Both windows' burn rates must exceed this to page.
    pub factor: f64,
}

/// One service-level objective over a good/total counter pair.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Objective name (Prometheus label value; e.g. `latency` or
    /// `availability`).
    pub name: String,
    /// Required good fraction, e.g. `0.99`. Budget is `1 - target`.
    pub target: f64,
    /// Window pairs; burning when *any* pair fires.
    pub windows: Vec<BurnWindow>,
}

impl SloSpec {
    /// Fast-burn / slow-burn window pair scaled for serving tests and
    /// bench runs (seconds, not SRE hours): a `(5s, 60s)` pair at
    /// factor 10 and a `(30s, 300s)` pair at factor 2.
    pub fn default_windows() -> Vec<BurnWindow> {
        vec![
            BurnWindow {
                short_ns: 5_000_000_000,
                long_ns: 60_000_000_000,
                factor: 10.0,
            },
            BurnWindow {
                short_ns: 30_000_000_000,
                long_ns: 300_000_000_000,
                factor: 2.0,
            },
        ]
    }

    /// The error budget `1 - target`, floored away from zero so a
    /// `target: 1.0` objective stays evaluable (any bad request then
    /// burns at the cap).
    pub fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }
}

/// A cumulative `(good, total)` observation at a point in time.
#[derive(Debug, Clone, Copy)]
struct Sample {
    ts_ns: u64,
    good: u64,
    total: u64,
}

/// Evaluated state of one window pair.
#[derive(Debug, Clone, Copy)]
pub struct WindowState {
    /// The window pair evaluated.
    pub window: BurnWindow,
    /// Burn rate over the short window.
    pub burn_short: f64,
    /// Burn rate over the long window.
    pub burn_long: f64,
}

impl WindowState {
    /// `true` when both rates exceed the pair's factor.
    pub fn burning(&self) -> bool {
        self.burn_short > self.window.factor && self.burn_long > self.window.factor
    }
}

/// Evaluated state of one objective.
#[derive(Debug, Clone)]
pub struct SloState {
    /// Objective name.
    pub name: String,
    /// Per-window-pair rates.
    pub windows: Vec<WindowState>,
    /// `true` when any window pair is burning.
    pub burning: bool,
}

/// Online burn-rate tracker for one [`SloSpec`].
///
/// Feed it monotonically non-decreasing cumulative counters via
/// [`observe`](Self::observe); read back [`state`](Self::state). Burn
/// rates cap at `1/budget` (every request bad), so the values stay
/// finite for Prometheus.
#[derive(Debug, Clone)]
pub struct BurnTracker {
    spec: SloSpec,
    samples: VecDeque<Sample>,
    retain_ns: u64,
}

impl BurnTracker {
    /// New tracker; retention covers the longest configured window.
    pub fn new(spec: SloSpec) -> Self {
        let longest = spec
            .windows
            .iter()
            .map(|w| w.long_ns.max(w.short_ns))
            .max()
            .unwrap_or(0);
        Self {
            spec,
            samples: VecDeque::new(),
            retain_ns: longest.saturating_mul(2).max(1),
        }
    }

    /// The objective this tracker evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Record the cumulative counters as of `now_ns`. Out-of-order or
    /// counter-regressing samples (server reset) clear the history
    /// rather than producing negative deltas.
    pub fn observe(&mut self, now_ns: u64, good: u64, total: u64) {
        if let Some(last) = self.samples.back() {
            if now_ns < last.ts_ns || good < last.good || total < last.total {
                self.samples.clear();
            }
        }
        self.samples.push_back(Sample {
            ts_ns: now_ns,
            good,
            total,
        });
        let horizon = now_ns.saturating_sub(self.retain_ns);
        // Keep one sample at-or-before the horizon as the baseline.
        while self.samples.len() > 1 && self.samples[1].ts_ns <= horizon {
            self.samples.pop_front();
        }
    }

    /// Burn rate over the trailing `window_ns` ending at `now_ns`:
    /// `bad_fraction / budget`, 0.0 when the window saw no requests.
    pub fn burn_over(&self, now_ns: u64, window_ns: u64) -> f64 {
        let Some(latest) = self.samples.back() else {
            return 0.0;
        };
        let start = now_ns.saturating_sub(window_ns);
        // Baseline: the last sample at-or-before the window start; if
        // the history does not reach back that far, the earliest one.
        let base = self
            .samples
            .iter()
            .rev()
            .find(|s| s.ts_ns <= start)
            .or_else(|| self.samples.front())
            .expect("non-empty");
        let total = latest.total.saturating_sub(base.total);
        if total == 0 {
            return 0.0;
        }
        let good = latest.good.saturating_sub(base.good);
        let bad_fraction = (total - good.min(total)) as f64 / total as f64;
        bad_fraction / self.spec.budget()
    }

    /// Evaluate every window pair as of `now_ns`.
    pub fn state(&self, now_ns: u64) -> SloState {
        let windows: Vec<WindowState> = self
            .spec
            .windows
            .iter()
            .map(|&window| WindowState {
                window,
                burn_short: self.burn_over(now_ns, window.short_ns),
                burn_long: self.burn_over(now_ns, window.long_ns),
            })
            .collect();
        let burning = windows.iter().any(|w| w.burning());
        SloState {
            name: self.spec.name.clone(),
            windows,
            burning,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn spec() -> SloSpec {
        SloSpec {
            name: "latency".into(),
            target: 0.99,
            windows: vec![BurnWindow {
                short_ns: 5 * S,
                long_ns: 60 * S,
                factor: 10.0,
            }],
        }
    }

    #[test]
    fn healthy_traffic_never_burns() {
        let mut t = BurnTracker::new(spec());
        // 1000 req/s, all good.
        for sec in 0..120u64 {
            t.observe(sec * S, sec * 1000, sec * 1000);
        }
        let st = t.state(119 * S);
        assert!(!st.burning);
        assert_eq!(st.windows[0].burn_short, 0.0);
    }

    #[test]
    fn sustained_failures_burn_and_recovery_clears() {
        let mut t = BurnTracker::new(spec());
        let (mut good, mut total) = (0u64, 0u64);
        // 60 s of healthy traffic.
        for sec in 0..60u64 {
            good += 1000;
            total += 1000;
            t.observe(sec * S, good, total);
        }
        assert!(!t.state(59 * S).burning);
        // Then everything fails: bad fraction 1.0 => burn 100 > 10
        // within both windows once the short window is saturated.
        for sec in 60..75u64 {
            total += 1000;
            t.observe(sec * S, good, total);
        }
        let st = t.state(74 * S);
        assert!(st.burning, "burn_short={}", st.windows[0].burn_short);
        assert!(st.windows[0].burn_short > 10.0);
        assert!(st.windows[0].burn_long > 10.0);
        // Recovery: the short window clears first (multi-window
        // de-pages promptly), the long window still carries the burn.
        for sec in 75..90u64 {
            good += 1000;
            total += 1000;
            t.observe(sec * S, good, total);
        }
        let st = t.state(89 * S);
        assert!(!st.burning);
        assert_eq!(st.windows[0].burn_short, 0.0);
        assert!(st.windows[0].burn_long > 10.0);
    }

    #[test]
    fn brief_blip_does_not_page() {
        let mut t = BurnTracker::new(spec());
        let (mut good, mut total) = (0u64, 0u64);
        for sec in 0..60u64 {
            // One bad second at t=30: 1000 bad out of 60_000 total is
            // ~1.7% bad => long burn ~1.7, below the factor.
            let ok = if sec == 30 { 0 } else { 1000 };
            good += ok;
            total += 1000;
            t.observe(sec * S, good, total);
        }
        assert!(!t.state(59 * S).burning);
    }

    #[test]
    fn counter_reset_clears_history() {
        let mut t = BurnTracker::new(spec());
        t.observe(10 * S, 500, 1000);
        t.observe(20 * S, 100, 200); // regressed: server restarted
        assert_eq!(t.burn_over(20 * S, 60 * S), 0.0);
    }

    #[test]
    fn perfect_target_still_evaluates() {
        let s = SloSpec {
            name: "avail".into(),
            target: 1.0,
            windows: SloSpec::default_windows(),
        };
        assert!(s.budget() > 0.0);
        let mut t = BurnTracker::new(s);
        t.observe(0, 0, 0);
        t.observe(10 * S, 999, 1000);
        let st = t.state(10 * S);
        assert!(st.burning);
    }
}
