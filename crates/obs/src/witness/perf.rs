//! Hardware counters via Linux `perf_event_open`.
//!
//! The workspace is dependency-free, so the one syscall this backend
//! needs is issued directly (the only `unsafe` in the crate, confined
//! to [`sys`]). Counters are opened per thread (`pid = 0`, `cpu = -1`)
//! lazily on first use, already enabled, with `exclude_kernel` and
//! `exclude_hv` set; attribution works by reading the free-running
//! absolute values and taking deltas, so no `ioctl` is ever needed.
//!
//! Per-task attribution is *exclusive*: each thread keeps a stack of
//! open scopes, and a scope's delta subtracts the totals of the nested
//! scopes that closed inside it — under help-first joins a worker
//! executes other tasks while waiting, and their traffic must not
//! double-count against the waiting task.
//!
//! Availability is graceful: `perf_event_open` is commonly refused in
//! containers (`perf_event_paranoid`, seccomp) and absent off Linux;
//! [`PerfWitness::try_new`] probes and reports, and every later call on
//! a thread whose counters failed to open is a silent no-op.
#![allow(unsafe_code)]

use std::cell::RefCell;
use std::fs::File;
use std::io::Read;

use super::{TaskWitness, NCOUNTERS};
use crate::event::EventKind;
use crate::sink::TraceSink;

const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_TYPE_HW_CACHE: u32 = 3;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;

/// `(type, config)` candidates per witness counter id, tried in order.
const CONFIGS: [&[(u32, u64)]; NCOUNTERS] = [
    // L1D read misses: cache id L1D (0) | op READ (0) << 8 | MISS (1) << 16.
    &[(PERF_TYPE_HW_CACHE, 0x1_0000)],
    // LLC read misses, falling back to the generic cache-miss counter.
    &[
        (PERF_TYPE_HW_CACHE, 0x1_0002),
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
    ],
    // Retired instructions.
    &[(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS)],
];

/// The `perf_event_open` task witness. See the module docs.
pub struct PerfWitness {
    _priv: (),
}

impl PerfWitness {
    /// Probe the calling thread's counters; `Err` with a diagnostic
    /// when the kernel refuses them or the platform has no perf
    /// support. Success means *this* thread could open at least one
    /// counter — worker threads of the same process will too.
    pub fn try_new() -> Result<PerfWitness, String> {
        ThreadCounters::open()?;
        Ok(PerfWitness { _priv: () })
    }

    /// Which witness counters are open on the calling thread
    /// (`[l1d_miss, llc_miss, instructions]`).
    pub fn available(&self) -> [bool; NCOUNTERS] {
        with_counters(|c| {
            let mut out = [false; NCOUNTERS];
            for (o, f) in out.iter_mut().zip(&c.files) {
                *o = f.is_some();
            }
            out
        })
        .unwrap_or([false; NCOUNTERS])
    }

    /// Begin a flat measurement span on the calling thread (no nesting
    /// bookkeeping — independent of the task scopes). `None` when the
    /// thread's counters are unavailable.
    pub fn span(&self) -> Option<PerfSpan> {
        with_counters(|c| PerfSpan { base: c.read_now() })
    }

    /// Counter deltas since [`span`](Self::span), indexed by witness
    /// counter id. Counts only this thread's traffic: work stolen by
    /// other threads inside the span is not included.
    pub fn span_delta(&self, span: &PerfSpan) -> [u64; NCOUNTERS] {
        with_counters(|c| {
            let now = c.read_now();
            let mut d = [0u64; NCOUNTERS];
            for i in 0..NCOUNTERS {
                d[i] = now[i].saturating_sub(span.base[i]);
            }
            d
        })
        .unwrap_or([0; NCOUNTERS])
    }
}

/// A flat per-thread measurement started by [`PerfWitness::span`].
pub struct PerfSpan {
    base: [u64; NCOUNTERS],
}

impl TaskWitness for PerfWitness {
    fn task_enter(&self) {
        with_counters(|c| {
            let base = c.read_now();
            c.stack.push(Frame {
                base,
                child: [0; NCOUNTERS],
            });
        });
    }

    fn task_exit(&self, sink: Option<&TraceSink>, worker: Option<usize>, job: u64) {
        with_counters(|c| {
            let Some(frame) = c.stack.pop() else {
                return; // unmatched exit: never happens through `scope`
            };
            let now = c.read_now();
            let mut total = [0u64; NCOUNTERS];
            let mut exclusive = [0u64; NCOUNTERS];
            for i in 0..NCOUNTERS {
                total[i] = now[i].saturating_sub(frame.base[i]);
                exclusive[i] = total[i].saturating_sub(frame.child[i]);
            }
            if let Some(parent) = c.stack.last_mut() {
                for (acc, t) in parent.child.iter_mut().zip(total) {
                    *acc += t;
                }
            }
            if let Some(sink) = sink {
                for (i, ex) in exclusive.iter().enumerate() {
                    if c.files[i].is_some() && *ex > 0 {
                        sink.emit(worker, EventKind::CacheWitness, i as u64, *ex, job);
                    }
                }
            }
        });
    }
}

/// One open task scope on a thread: counter values at entry plus the
/// accumulated totals of nested scopes that closed inside it.
struct Frame {
    base: [u64; NCOUNTERS],
    child: [u64; NCOUNTERS],
}

/// A thread's open counter fds and scope stack.
struct ThreadCounters {
    files: [Option<File>; NCOUNTERS],
    stack: Vec<Frame>,
}

impl ThreadCounters {
    fn open() -> Result<Self, String> {
        let mut files: [Option<File>; NCOUNTERS] = [None, None, None];
        let mut last_err = 0i64;
        for (slot, cands) in files.iter_mut().zip(CONFIGS) {
            for &(ty, cfg) in cands {
                match sys::perf_event_open(ty, cfg) {
                    Ok(f) => {
                        *slot = Some(f);
                        break;
                    }
                    Err(e) => last_err = e,
                }
            }
        }
        if files.iter().all(Option::is_none) {
            return Err(format!(
                "perf_event_open refused every counter ({})",
                errno_str(last_err)
            ));
        }
        Ok(Self {
            files,
            stack: Vec::new(),
        })
    }

    /// Absolute counter values right now (0 for unopened counters).
    fn read_now(&self) -> [u64; NCOUNTERS] {
        let mut out = [0u64; NCOUNTERS];
        for (v, f) in out.iter_mut().zip(&self.files) {
            if let Some(f) = f {
                let mut buf = [0u8; 8];
                let mut r: &File = f;
                if matches!(r.read(&mut buf), Ok(8)) {
                    *v = u64::from_ne_bytes(buf);
                }
            }
        }
        out
    }
}

enum TlsState {
    Untried,
    Unavailable,
    Open(ThreadCounters),
}

thread_local! {
    static TLS: RefCell<TlsState> = const { RefCell::new(TlsState::Untried) };
}

/// Run `f` against the calling thread's counters, opening them on
/// first use; `None` (forever, on this thread) when opening failed.
fn with_counters<R>(f: impl FnOnce(&mut ThreadCounters) -> R) -> Option<R> {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if matches!(*t, TlsState::Untried) {
            *t = match ThreadCounters::open() {
                Ok(c) => TlsState::Open(c),
                Err(_) => TlsState::Unavailable,
            };
        }
        match &mut *t {
            TlsState::Open(c) => Some(f(c)),
            _ => None,
        }
    })
}

fn errno_str(errno: i64) -> String {
    let name = match errno {
        1 => "EPERM — lower kernel.perf_event_paranoid or grant CAP_PERFMON",
        2 => "ENOENT — event not supported by this CPU/PMU",
        13 => "EACCES — lower kernel.perf_event_paranoid or grant CAP_PERFMON",
        19 => "ENODEV — no PMU available (common in VMs)",
        22 => "EINVAL — attr rejected",
        38 => "ENOSYS — kernel built without perf events",
        95 => "EOPNOTSUPP — platform without perf support",
        _ => return format!("errno {errno}"),
    };
    format!("errno {errno}: {name}")
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::fs::File;
    use std::os::fd::FromRawFd;

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: i64 = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: i64 = 241;

    /// `PERF_FLAG_FD_CLOEXEC`.
    const FLAG_FD_CLOEXEC: i64 = 8;

    /// Open one counter on the calling thread (`pid = 0`, `cpu = -1`),
    /// enabled, user-space only. Returns the raw negated errno on
    /// failure.
    pub fn perf_event_open(type_: u32, config: u64) -> Result<File, i64> {
        // struct perf_event_attr, zeroed: type @0, size @4, config @8,
        // bitfield word @40 (exclude_kernel bit 5 | exclude_hv bit 6;
        // disabled stays 0, so the counter free-runs from open).
        let mut attr = [0u8; 128];
        attr[0..4].copy_from_slice(&type_.to_ne_bytes());
        attr[4..8].copy_from_slice(&128u32.to_ne_bytes());
        attr[8..16].copy_from_slice(&config.to_ne_bytes());
        attr[40..48].copy_from_slice(&0x60u64.to_ne_bytes());
        // SAFETY: `attr` is a live, 128-byte, properly initialized
        // perf_event_attr (size field says 128) and stays borrowed for
        // the duration of the call; the remaining arguments are plain
        // integers the kernel validates itself.
        let ret = unsafe {
            syscall5(
                SYS_PERF_EVENT_OPEN,
                attr.as_ptr() as i64,
                0,  // pid: calling thread
                -1, // cpu: any
                -1, // group fd: none
                FLAG_FD_CLOEXEC,
            )
        };
        if ret < 0 {
            Err(-ret)
        } else {
            // SAFETY: `ret` is a freshly opened fd we exclusively own.
            Ok(unsafe { File::from_raw_fd(ret as i32) })
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
        let ret: i64;
        // SAFETY: standard x86_64 Linux syscall ABI — args in
        // rdi/rsi/rdx/r10/r8, number in rax, return in rax; the kernel
        // clobbers only rcx/r11, both declared. Pointer validity for
        // any pointer-typed argument is the caller's contract.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
        let ret: i64;
        // SAFETY: standard aarch64 Linux syscall ABI — args in x0–x4,
        // number in x8, return in x0; `svc 0` clobbers nothing else.
        // Pointer validity for any pointer-typed argument is the
        // caller's contract.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use std::fs::File;

    /// Platforms without the raw-syscall shim report `EOPNOTSUPP`.
    pub fn perf_event_open(_type: u32, _config: u64) -> Result<File, i64> {
        Err(95)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{scope, totals, CTR_INSTRUCTIONS};
    use super::*;

    /// Every test must cope with perf being unavailable (containers,
    /// CI): `try_new` failing with a diagnostic IS the passing path
    /// there.
    fn witness() -> Option<PerfWitness> {
        match PerfWitness::try_new() {
            Ok(w) => Some(w),
            Err(msg) => {
                assert!(msg.contains("perf_event_open"), "bad diagnostic: {msg}");
                None
            }
        }
    }

    #[test]
    fn spans_count_this_threads_work() {
        let Some(w) = witness() else { return };
        let span = w.span().expect("probe succeeded on this same thread");
        // Enough instructions to register regardless of counter skid.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let d = w.span_delta(&span);
        if w.available()[CTR_INSTRUCTIONS as usize] {
            assert!(
                d[CTR_INSTRUCTIONS as usize] > 100_000,
                "instructions delta {} too small",
                d[CTR_INSTRUCTIONS as usize]
            );
        }
    }

    #[test]
    fn nested_scopes_attribute_exclusively() {
        let Some(w) = witness() else { return };
        if !w.available()[CTR_INSTRUCTIONS as usize] {
            return;
        }
        let sink = TraceSink::new(1);
        let outer_span = w.span().unwrap();
        {
            let _outer = scope(&w, Some(&sink), Some(0), 1);
            {
                let _inner = scope(&w, Some(&sink), Some(0), 2);
                let mut acc = 0u64;
                for i in 0..500_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                std::hint::black_box(acc);
            }
        }
        let whole = w.span_delta(&outer_span);
        let evs = sink.drain();
        let t = totals(&evs);
        assert!(t.events >= 2, "expected deltas from both scopes");
        // Exclusive attribution: the per-scope instruction deltas sum
        // to at most the thread's total over the same interval (strict
        // double counting would make the sum ~2x the inner loop).
        assert!(
            t.counts[CTR_INSTRUCTIONS as usize] <= whole[CTR_INSTRUCTIONS as usize],
            "exclusive deltas {} exceed thread total {}",
            t.counts[CTR_INSTRUCTIONS as usize],
            whole[CTR_INSTRUCTIONS as usize]
        );
        // Both jobs appear in the trace.
        assert!(evs.iter().any(|e| e.c == 1));
        assert!(evs.iter().any(|e| e.c == 2));
    }

    #[test]
    fn unmatched_exit_is_ignored() {
        let Some(w) = witness() else { return };
        // Must not panic or underflow the stack.
        w.task_exit(None, None, 0);
        w.task_enter();
        w.task_exit(None, None, 0);
    }
}
