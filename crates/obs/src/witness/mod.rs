//! Cache witness: measured per-level cache traffic attached to traced
//! runs.
//!
//! The paper's headline metric is *cache complexity* — block transfers
//! into each level-`i` cache — but the live runtime (unlike the
//! simulator) does not see its own memory traffic. This module closes
//! that loop with two backends behind one measurement trait:
//!
//! * a **Linux `perf_event_open` backend** ([`PerfWitness`]) that reads
//!   hardware L1D-miss / LLC-miss / instruction counters per thread,
//!   scoped around task enter/exit so counts attribute to the task
//!   (and hence the SB anchor level) that incurred them; the deltas
//!   land in the trace as [`EventKind::CacheWitness`] events;
//! * a **portable simulator backend** ([`ReplayWitness`]) that replays
//!   the recorded access trace through the `hm` LRU cache simulator
//!   against the detected host topology, so CI containers without perf
//!   access still produce per-level transfer counts.
//!
//! Both produce a [`WitnessMeasurement`]: per-level transfer counts
//! tagged with the backend that measured them, which `obs_report`
//! compares against the analytic `Q_i` bounds and `mo-serve` exports
//! as `cache_transfers_total{level,backend}`.
//!
//! Two traits, two granularities: [`TaskWitness`] is the *scoping*
//! surface the runtime drives around every task (implemented by
//! [`PerfWitness`]); [`CacheWitness`] is the *measurement* surface a
//! report drives once per kernel run (implemented by both backends).

pub mod perf;

pub use perf::{PerfSpan, PerfWitness};

use crate::event::{Event, EventKind};
use crate::sink::TraceSink;

/// Witness counter id: L1D read misses (event payload `a`).
pub const CTR_L1D_MISS: u64 = 0;
/// Witness counter id: last-level-cache misses.
pub const CTR_LLC_MISS: u64 = 1;
/// Witness counter id: retired instructions.
pub const CTR_INSTRUCTIONS: u64 = 2;
/// Number of witness counters (array-index bound).
pub const NCOUNTERS: usize = 3;

/// Stable lower-case name of a witness counter id (metric labels,
/// chrome-trace counter tracks).
pub fn counter_name(id: u64) -> &'static str {
    match id {
        CTR_L1D_MISS => "l1d_miss",
        CTR_LLC_MISS => "llc_miss",
        CTR_INSTRUCTIONS => "instructions",
        _ => "unknown",
    }
}

/// Which backend produced a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessBackend {
    /// Hardware counters via `perf_event_open`.
    Perf,
    /// LRU replay of the recorded trace through the `hm` simulator.
    Sim,
}

impl WitnessBackend {
    /// Stable lower-case name (the `backend` metric label).
    pub fn name(self) -> &'static str {
        match self {
            WitnessBackend::Perf => "perf",
            WitnessBackend::Sim => "sim",
        }
    }
}

/// The per-task scoping surface the runtime drives.
///
/// The pool calls [`task_enter`](Self::task_enter) when a thread starts
/// executing a task and [`task_exit`](Self::task_exit) when it
/// finishes; the implementation attributes whatever traffic the thread
/// incurred in between to that task, *exclusive* of nested tasks the
/// thread help-executed inside the scope (those get their own pair).
/// Deltas are recorded as [`EventKind::CacheWitness`] events against
/// the sink passed to `task_exit`.
pub trait TaskWitness: Send + Sync {
    /// A thread began executing a task (or entered the pool's root
    /// scope).
    fn task_enter(&self);
    /// That task finished: attribute the traffic since the matching
    /// [`task_enter`](Self::task_enter), minus nested scopes, to `job`
    /// (`0` for the root scope of an `enter`).
    fn task_exit(&self, sink: Option<&TraceSink>, worker: Option<usize>, job: u64);
}

/// RAII scope around one task: [`TaskWitness::task_enter`] now,
/// [`TaskWitness::task_exit`] on drop (also on unwind, keeping the
/// per-thread scope stack balanced).
pub struct TaskScope<'a> {
    witness: &'a dyn TaskWitness,
    sink: Option<&'a TraceSink>,
    worker: Option<usize>,
    job: u64,
}

impl Drop for TaskScope<'_> {
    fn drop(&mut self) {
        self.witness.task_exit(self.sink, self.worker, self.job);
    }
}

/// Open a witness scope for one task. See [`TaskScope`].
pub fn scope<'a>(
    witness: &'a dyn TaskWitness,
    sink: Option<&'a TraceSink>,
    worker: Option<usize>,
    job: u64,
) -> TaskScope<'a> {
    witness.task_enter();
    TaskScope {
        witness,
        sink,
        worker,
        job,
    }
}

/// Measured block transfers into the caches of one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelTransfers {
    /// Hierarchy level, 1-based (level 1 = L1), matching the paper's
    /// `Q_i` indexing and `hm::Metrics::level`.
    pub level: usize,
    /// Block transfers into the busiest cache instance at this level
    /// (the simulator's max-over-instances — the `Q_i` definition), or
    /// the hardware miss count for the perf backend.
    pub transfers: u64,
}

/// One kernel-level cache measurement.
#[derive(Debug, Clone)]
pub struct WitnessMeasurement {
    /// The backend that produced it.
    pub backend: WitnessBackend,
    /// Per-level transfer counts (not necessarily every level: the
    /// perf backend sees only L1 and the last level).
    pub levels: Vec<LevelTransfers>,
    /// Retired instructions over the run, when the backend counts them.
    pub instructions: Option<u64>,
    /// Human-readable provenance (topology used, tasks aggregated).
    pub detail: String,
}

impl WitnessMeasurement {
    /// Transfers measured for `level` (1-based), if the backend
    /// produced that level.
    pub fn transfers_at(&self, level: usize) -> Option<u64> {
        self.levels
            .iter()
            .find(|l| l.level == level)
            .map(|l| l.transfers)
    }
}

/// The kernel-level measurement surface: one backend, one
/// [`measure`](Self::measure) per kernel run.
pub trait CacheWitness {
    /// Which backend this is.
    fn backend(&self) -> WitnessBackend;
    /// Run the kernel (or its replay) and report per-level transfers.
    fn measure(&mut self) -> Result<WitnessMeasurement, String>;
}

/// The simulator backend: a closure replays the kernel's recorded
/// access trace through the `hm` LRU simulator (which lives upstream of
/// this crate, hence the injection) and returns per-level transfers
/// plus a provenance string.
pub struct ReplayWitness<F> {
    replay: F,
}

impl<F> ReplayWitness<F>
where
    F: FnMut() -> Result<(Vec<LevelTransfers>, String), String>,
{
    /// Wrap a replay closure.
    pub fn new(replay: F) -> Self {
        Self { replay }
    }
}

impl<F> CacheWitness for ReplayWitness<F>
where
    F: FnMut() -> Result<(Vec<LevelTransfers>, String), String>,
{
    fn backend(&self) -> WitnessBackend {
        WitnessBackend::Sim
    }

    fn measure(&mut self) -> Result<WitnessMeasurement, String> {
        let (levels, detail) = (self.replay)()?;
        Ok(WitnessMeasurement {
            backend: WitnessBackend::Sim,
            levels,
            instructions: None,
            detail,
        })
    }
}

/// The hardware backend at kernel granularity: a closure runs the
/// kernel on a pool with a [`PerfWitness`] attached and returns the
/// drained trace; the measurement is the aggregate of its
/// [`EventKind::CacheWitness`] deltas. L1D misses map to level 1 and
/// LLC misses to `last_level` (the hardware sees nothing in between).
pub struct TracedRunWitness<F> {
    last_level: usize,
    run: F,
}

impl<F> TracedRunWitness<F>
where
    F: FnMut() -> Result<Vec<Event>, String>,
{
    /// Wrap a traced-run closure; `last_level` is the 1-based number of
    /// the outermost cache level LLC misses count transfers into.
    pub fn new(last_level: usize, run: F) -> Self {
        Self { last_level, run }
    }
}

impl<F> CacheWitness for TracedRunWitness<F>
where
    F: FnMut() -> Result<Vec<Event>, String>,
{
    fn backend(&self) -> WitnessBackend {
        WitnessBackend::Perf
    }

    fn measure(&mut self) -> Result<WitnessMeasurement, String> {
        let events = (self.run)()?;
        let t = totals(&events);
        if t.events == 0 {
            return Err("trace carried no cache-witness events".into());
        }
        let mut levels = vec![LevelTransfers {
            level: 1,
            transfers: t.counts[CTR_L1D_MISS as usize],
        }];
        if self.last_level > 1 {
            levels.push(LevelTransfers {
                level: self.last_level,
                transfers: t.counts[CTR_LLC_MISS as usize],
            });
        }
        Ok(WitnessMeasurement {
            backend: WitnessBackend::Perf,
            levels,
            instructions: Some(t.counts[CTR_INSTRUCTIONS as usize]),
            detail: format!("{} witness deltas aggregated from the trace", t.events),
        })
    }
}

/// Aggregate of the [`EventKind::CacheWitness`] events in a stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct WitnessTotals {
    /// Summed deltas per witness counter id.
    pub counts: [u64; NCOUNTERS],
    /// Number of witness events seen.
    pub events: u64,
}

/// Sum the witness deltas of a drained event stream.
pub fn totals(events: &[Event]) -> WitnessTotals {
    let mut t = WitnessTotals::default();
    for e in events {
        if e.kind == EventKind::CacheWitness {
            t.events += 1;
            if let Some(slot) = t.counts.get_mut(e.a as usize) {
                *slot += e.b;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn counter_names_are_stable() {
        assert_eq!(counter_name(CTR_L1D_MISS), "l1d_miss");
        assert_eq!(counter_name(CTR_LLC_MISS), "llc_miss");
        assert_eq!(counter_name(CTR_INSTRUCTIONS), "instructions");
        assert_eq!(counter_name(99), "unknown");
        assert_eq!(WitnessBackend::Perf.name(), "perf");
        assert_eq!(WitnessBackend::Sim.name(), "sim");
    }

    #[derive(Default)]
    struct MockWitness {
        enters: AtomicU64,
        exits: AtomicU64,
        last_job: AtomicU64,
    }

    impl TaskWitness for MockWitness {
        fn task_enter(&self) {
            self.enters.fetch_add(1, Ordering::Relaxed);
        }
        fn task_exit(&self, _sink: Option<&TraceSink>, _worker: Option<usize>, job: u64) {
            self.exits.fetch_add(1, Ordering::Relaxed);
            self.last_job.store(job, Ordering::Relaxed);
        }
    }

    #[test]
    fn scope_balances_enter_exit_on_unwind() {
        let w = MockWitness::default();
        {
            let _s = scope(&w, None, Some(0), 7);
            assert_eq!(w.enters.load(Ordering::Relaxed), 1);
            assert_eq!(w.exits.load(Ordering::Relaxed), 0);
        }
        assert_eq!(w.exits.load(Ordering::Relaxed), 1);
        assert_eq!(w.last_job.load(Ordering::Relaxed), 7);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = scope(&w, None, None, 9);
            panic!("boom");
        }));
        assert!(r.is_err());
        assert_eq!(w.enters.load(Ordering::Relaxed), 2);
        assert_eq!(w.exits.load(Ordering::Relaxed), 2);
        assert_eq!(w.last_job.load(Ordering::Relaxed), 9);
    }

    fn wev(a: u64, b: u64) -> Event {
        Event {
            ts_ns: 0,
            kind: EventKind::CacheWitness,
            worker: 0,
            a,
            b,
            c: 1,
        }
    }

    #[test]
    fn totals_sums_witness_deltas() {
        let evs = vec![
            wev(CTR_L1D_MISS, 10),
            wev(CTR_L1D_MISS, 5),
            wev(CTR_LLC_MISS, 3),
            wev(CTR_INSTRUCTIONS, 1000),
            Event {
                ts_ns: 0,
                kind: EventKind::TaskEnter,
                worker: 0,
                a: 1,
                b: 0,
                c: 0,
            },
        ];
        let t = totals(&evs);
        assert_eq!(t.events, 4);
        assert_eq!(t.counts, [15, 3, 1000]);
    }

    #[test]
    fn replay_witness_reports_sim_backend() {
        let mut w = ReplayWitness::new(|| {
            Ok((
                vec![
                    LevelTransfers {
                        level: 1,
                        transfers: 100,
                    },
                    LevelTransfers {
                        level: 2,
                        transfers: 20,
                    },
                ],
                "3-level host map".to_string(),
            ))
        });
        assert_eq!(w.backend(), WitnessBackend::Sim);
        let m = w.measure().unwrap();
        assert_eq!(m.backend, WitnessBackend::Sim);
        assert_eq!(m.transfers_at(1), Some(100));
        assert_eq!(m.transfers_at(2), Some(20));
        assert_eq!(m.transfers_at(3), None);
        assert_eq!(m.instructions, None);
    }

    #[test]
    fn traced_run_witness_maps_counters_to_levels() {
        let evs = vec![
            wev(CTR_L1D_MISS, 40),
            wev(CTR_LLC_MISS, 4),
            wev(CTR_INSTRUCTIONS, 9000),
        ];
        let mut w = TracedRunWitness::new(3, move || Ok(evs.clone()));
        assert_eq!(w.backend(), WitnessBackend::Perf);
        let m = w.measure().unwrap();
        assert_eq!(m.transfers_at(1), Some(40));
        assert_eq!(m.transfers_at(2), None);
        assert_eq!(m.transfers_at(3), Some(4));
        assert_eq!(m.instructions, Some(9000));
        let mut empty = TracedRunWitness::new(3, || Ok(Vec::new()));
        assert!(empty.measure().is_err());
    }
}
