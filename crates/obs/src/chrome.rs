//! Chrome-trace (Perfetto / `chrome://tracing`) JSON export.
//!
//! Produces the JSON-object flavour of the trace-event format: a
//! `{"traceEvents": [...]}` document that both `chrome://tracing` and
//! `ui.perfetto.dev` open directly. Mapping:
//!
//! * task enter/exit pairs and park/unpark pairs become `"B"`/`"E"`
//!   duration slices on the emitting worker's track (`tid` = worker
//!   index; external threads share one `"ext"` track);
//! * every scheduler decision (fork serial/parallel/denied, CGC
//!   segment, steal success/attempt, injector pop) becomes a `"i"`
//!   instant event carrying its payload in `args`, so clicking a mark
//!   in Perfetto shows the space bound, anchor level, or `[lo, hi)`;
//! * cache-witness deltas become `"C"` counter events named after
//!   their hardware counter (`l1d_miss`, `llc_miss`, `instructions`),
//!   so measured cache traffic renders as counter tracks aligned with
//!   the task slices that incurred it.
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! fraction preserved.

use crate::event::{Event, EventKind, WORKER_EXTERNAL};

/// Track id used for external (non-resident) threads. Chosen high so
/// worker tracks sort first.
const EXT_TID: u64 = 9999;

fn tid(worker: u32) -> u64 {
    if worker == WORKER_EXTERNAL {
        EXT_TID
    } else {
        worker as u64
    }
}

fn push_common(out: &mut String, name: &str, ph: char, e: &Event) {
    let us = e.ts_ns / 1000;
    let frac = e.ts_ns % 1000;
    out.push_str(&format!(
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{us}.{frac:03}",
        tid(e.worker)
    ));
}

/// The slice-track name a begin/end event pair renders under.
fn slice_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::TaskEnter | EventKind::TaskExit => "task",
        EventKind::SuperstepBegin | EventKind::SuperstepEnd => "superstep",
        EventKind::DistJobBegin | EventKind::DistJobEnd => "dist_job",
        _ => "parked",
    }
}

/// `true` for kinds that open a `"B"` slice.
fn is_begin(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::TaskEnter
            | EventKind::Park
            | EventKind::SuperstepBegin
            | EventKind::DistJobBegin
    )
}

/// `true` for kinds that close a `"B"` slice.
fn is_end(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::TaskExit | EventKind::Unpark | EventKind::SuperstepEnd | EventKind::DistJobEnd
    )
}

/// Render a drained, time-ordered event stream as a chrome-trace JSON
/// document.
///
/// The stream may be structurally unbalanced: a drain races task
/// completion (a join returns the moment the latch is set, before the
/// worker records its `TaskExit`), parked workers have an open `Park`,
/// and a full ring can drop a begin while keeping its end. The exporter
/// therefore balances slices the way Perfetto renders incomplete
/// traces: an end with no open begin on its track is skipped, and every
/// still-open begin is closed at the last timestamp in the stream — so
/// the emitted document always passes [`validate`].
pub fn to_chrome_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut open: std::collections::BTreeMap<(u64, &'static str), u64> =
        std::collections::BTreeMap::new();
    let mut last_ts = 0u64;
    let mut first = true;
    for e in events {
        last_ts = last_ts.max(e.ts_ns);
        if is_begin(e.kind) {
            *open.entry((tid(e.worker), slice_name(e.kind))).or_insert(0) += 1;
        } else if is_end(e.kind) {
            let depth = open.entry((tid(e.worker), slice_name(e.kind))).or_insert(0);
            if *depth == 0 {
                continue; // orphan end: its begin was dropped at the ring
            }
            *depth -= 1;
        }
        if !first {
            out.push(',');
        }
        first = false;
        match e.kind {
            EventKind::TaskEnter => {
                push_common(&mut out, "task", 'B', e);
                let origin = match e.b {
                    1 => "injector",
                    2 => "steal",
                    _ => "own",
                };
                out.push_str(&format!(
                    ",\"args\":{{\"job\":{},\"origin\":\"{origin}\",\"victim\":{}}}}}",
                    e.a, e.c
                ));
            }
            EventKind::TaskExit => {
                push_common(&mut out, "task", 'E', e);
                out.push('}');
            }
            EventKind::Park => {
                push_common(&mut out, "parked", 'B', e);
                out.push('}');
            }
            EventKind::Unpark => {
                push_common(&mut out, "parked", 'E', e);
                out.push('}');
            }
            EventKind::ForkSerial | EventKind::ForkParallel | EventKind::ForkDenied => {
                push_common(&mut out, e.kind.name(), 'i', e);
                out.push_str(&format!(
                    ",\"s\":\"t\",\"args\":{{\"space_words\":{},\"anchor_level\":{}}}}}",
                    e.a,
                    level_str(e.b)
                ));
            }
            EventKind::CgcSegment => {
                push_common(&mut out, "cgc_segment", 'i', e);
                out.push_str(&format!(
                    ",\"s\":\"t\",\"args\":{{\"lo\":{},\"hi\":{},\"grain\":{}}}}}",
                    e.a, e.b, e.c
                ));
            }
            EventKind::StealSuccess => {
                push_common(&mut out, "steal", 'i', e);
                out.push_str(&format!(
                    ",\"s\":\"t\",\"args\":{{\"victim\":{},\"job\":{}}}}}",
                    e.a, e.b
                ));
            }
            EventKind::StealAttempt | EventKind::InjectorPop => {
                push_common(&mut out, e.kind.name(), 'i', e);
                out.push_str(",\"s\":\"t\"}");
            }
            EventKind::CacheWitness => {
                push_common(&mut out, crate::witness::counter_name(e.a), 'C', e);
                out.push_str(&format!(",\"args\":{{\"value\":{}}}}}", e.b));
            }
            EventKind::SuperstepBegin => {
                push_common(&mut out, "superstep", 'B', e);
                out.push_str(&format!(
                    ",\"args\":{{\"job\":{},\"superstep\":{}}}}}",
                    e.a, e.b
                ));
            }
            EventKind::SuperstepEnd => {
                push_common(&mut out, "superstep", 'E', e);
                out.push('}');
            }
            EventKind::DistJobBegin => {
                push_common(&mut out, "dist_job", 'B', e);
                out.push_str(&format!(",\"args\":{{\"job\":{},\"n\":{}}}}}", e.a, e.c));
            }
            EventKind::DistJobEnd => {
                push_common(&mut out, "dist_job", 'E', e);
                out.push('}');
            }
            EventKind::ExchangeSend | EventKind::ExchangeRecv => {
                let (step, level) = crate::event::unpack_step_level(e.b);
                push_common(&mut out, e.kind.name(), 'i', e);
                out.push_str(&format!(
                    ",\"s\":\"t\",\"args\":{{\"peer\":{},\"superstep\":{step},\"level\":{level},\"words\":{}}}}}",
                    e.a, e.c
                ));
            }
            EventKind::ServeArrive
            | EventKind::ServeAdmit
            | EventKind::ServeEnqueue
            | EventKind::ServeDequeue
            | EventKind::ServeBatchForm
            | EventKind::ServeExecute
            | EventKind::ServeRespond
            | EventKind::ServeShed => {
                // Serve phase boundaries are instants, not B/E slices:
                // a request hops threads (submitter -> worker), so a
                // per-track slice pairing cannot hold. The span module
                // reconstructs durations from the request id in `a`.
                push_common(&mut out, e.kind.name(), 'i', e);
                out.push_str(&format!(
                    ",\"s\":\"t\",\"args\":{{\"req\":{},\"b\":{},\"c\":{}}}}}",
                    e.a, e.b, e.c
                ));
            }
            EventKind::BarrierWait => {
                // A complete ("X") event: renders as a slice of the wait
                // duration without needing B/E balancing. The event is
                // stamped when the wait *ends*, so the slice starts
                // `dur` earlier.
                let (step, level) = crate::event::unpack_step_level(e.b);
                let start = e.ts_ns.saturating_sub(e.c);
                out.push_str(&format!(
                    "{{\"name\":\"barrier_wait\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"peer\":{},\"superstep\":{step},\"level\":{level}}}}}",
                    tid(e.worker),
                    start / 1000,
                    start % 1000,
                    e.c / 1000,
                    e.c % 1000,
                    e.a
                ));
            }
        }
    }
    // Close the slices the drain caught mid-flight.
    for (&(track, name), &depth) in &open {
        for _ in 0..depth {
            if !first {
                out.push(',');
            }
            first = false;
            let us = last_ts / 1000;
            let frac = last_ts % 1000;
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":1,\"tid\":{track},\"ts\":{us}.{frac:03}}}"
            ));
        }
    }
    out.push_str("]}");
    out
}

/// `u64::MAX` encodes "no level fits"; render it as a JSON null.
fn level_str(level: u64) -> String {
    if level == u64::MAX {
        "null".to_string()
    } else {
        level.to_string()
    }
}

/// Structural sanity check used by tests and `obs_report --smoke`:
/// the document has the expected envelope, every `B` has a matching
/// `E` on the same track, and braces/brackets balance outside strings.
pub fn validate(json: &str) -> Result<(), String> {
    if !json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[") || !json.ends_with("]}") {
        return Err("missing traceEvents envelope".into());
    }
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    let mut in_str = false;
    for ch in json.chars() {
        if in_str {
            // No escapes are ever emitted inside strings.
            if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' => depth_brace += 1,
            '}' => depth_brace -= 1,
            '[' => depth_bracket += 1,
            ']' => depth_bracket -= 1,
            _ => {}
        }
        if depth_brace < 0 || depth_bracket < 0 {
            return Err("unbalanced nesting".into());
        }
    }
    if depth_brace != 0 || depth_bracket != 0 || in_str {
        return Err("unterminated document".into());
    }
    // Per-track B/E balance.
    let mut opens: std::collections::HashMap<(String, String), i64> =
        std::collections::HashMap::new();
    for obj in json.split("{\"name\":").skip(1) {
        let name = obj.split('"').nth(1).unwrap_or("").to_string();
        let ph = obj
            .split("\"ph\":\"")
            .nth(1)
            .and_then(|s| s.chars().next())
            .unwrap_or('?');
        let tid = obj
            .split("\"tid\":")
            .nth(1)
            .map(|s| s.chars().take_while(|c| c.is_ascii_digit()).collect())
            .unwrap_or_default();
        let slot = opens.entry((name, tid)).or_insert(0);
        match ph {
            'B' => *slot += 1,
            'E' => {
                *slot -= 1;
                if *slot < 0 {
                    return Err("E without matching B on a track".into());
                }
            }
            _ => {}
        }
    }
    if opens.values().any(|&v| v != 0) {
        return Err("unclosed B slice on a track".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind, worker: u32, a: u64, b: u64, c: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            worker,
            a,
            b,
            c,
        }
    }

    #[test]
    fn export_validates_and_carries_payloads() {
        let evs = vec![
            ev(1000, EventKind::TaskEnter, 0, 7, 2, 1),
            ev(1500, EventKind::ForkParallel, 0, 4096, 1, 0),
            ev(1600, EventKind::CgcSegment, 0, 0, 512, 64),
            ev(1700, EventKind::StealSuccess, 1, 0, 7, 0),
            ev(
                1800,
                EventKind::CacheWitness,
                0,
                crate::witness::CTR_L1D_MISS,
                512,
                7,
            ),
            ev(2000, EventKind::TaskExit, 0, 7, 0, 0),
            ev(2100, EventKind::Park, 1, 0, 0, 0),
            ev(2200, EventKind::Unpark, 1, 0, 0, 0),
            ev(
                2300,
                EventKind::ForkDenied,
                WORKER_EXTERNAL,
                9000,
                u64::MAX,
                0,
            ),
        ];
        let json = to_chrome_json(&evs);
        validate(&json).unwrap();
        assert!(json.contains("\"space_words\":4096"));
        assert!(json.contains("\"anchor_level\":null"));
        assert!(json.contains("\"grain\":64"));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("{\"name\":\"l1d_miss\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":512}"));
    }

    #[test]
    fn exporter_balances_raced_drains() {
        // A drain races task completion: an end whose begin was dropped
        // at a full ring, a begin whose end has not been recorded yet,
        // and a worker still parked when the drain happened.
        let evs = vec![
            ev(10, EventKind::TaskExit, 2, 0, 0, 0),
            ev(20, EventKind::TaskEnter, 0, 1, 0, 0),
            ev(30, EventKind::Park, 1, 0, 0, 0),
        ];
        let json = to_chrome_json(&evs);
        validate(&json).unwrap();
        // The orphan end is skipped entirely; the two open slices are
        // closed at the last timestamp in the stream.
        assert!(!json.contains("\"tid\":2"));
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ts\":0.030").count(), 3);
    }

    #[test]
    fn dist_kinds_render_and_validate() {
        let sl = crate::event::pack_step_level(3, 1);
        let evs = vec![
            ev(100, EventKind::DistJobBegin, 0, 42, 1, 4096),
            ev(200, EventKind::SuperstepBegin, 0, 42, 3, 0),
            ev(300, EventKind::ExchangeSend, 0, 2, sl, 128),
            ev(900, EventKind::BarrierWait, 0, 2, sl, 500),
            ev(900, EventKind::ExchangeRecv, 0, 2, sl, 96),
            ev(1000, EventKind::SuperstepEnd, 0, 42, 3, 0),
            ev(1100, EventKind::DistJobEnd, 0, 42, 4, 0),
        ];
        let json = to_chrome_json(&evs);
        validate(&json).unwrap();
        assert!(json.contains("{\"name\":\"dist_job\",\"ph\":\"B\""));
        assert!(json.contains("\"args\":{\"job\":42,\"n\":4096}"));
        assert!(json.contains("{\"name\":\"superstep\",\"ph\":\"B\""));
        assert!(json.contains("\"args\":{\"job\":42,\"superstep\":3}"));
        // Exchange instants carry the unpacked superstep + level stamp.
        assert!(json.contains("\"args\":{\"peer\":2,\"superstep\":3,\"level\":1,\"words\":128}"));
        assert!(json.contains("\"args\":{\"peer\":2,\"superstep\":3,\"level\":1,\"words\":96}"));
        // The barrier wait is an "X" slice back-dated by its duration:
        // stamped at 900 ns with 500 ns of wait => starts at 400 ns.
        assert!(json.contains(
            "{\"name\":\"barrier_wait\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.400,\"dur\":0.500"
        ));
    }

    #[test]
    fn validator_rejects_unbalanced_slices() {
        let bad = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\
                   {\"name\":\"task\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":0.000}]}";
        assert_eq!(
            validate(bad).unwrap_err(),
            "unclosed B slice on a track".to_string()
        );
        assert!(validate("{\"traceEvents\":[]}").is_err());
    }
}
