//! Property test for the real pool's CGC contract.
//!
//! `mo_core::verify` checks the CGC discipline for *recorded* programs
//! in simulation; nothing checked it for the real [`SbPool::pfor`].
//! This test sweeps a grid of (cores, range, grain) shapes — plus an
//! LCG-driven random cloud — and asserts, for the actual chunks the
//! pool hands out, the contract `pfor` documents:
//!
//! 1. every chunk is a contiguous sub-range of the request;
//! 2. chunks are pairwise disjoint and their union covers the range
//!    exactly (every index seen exactly once);
//! 3. every chunk is at least `grain` long, except possibly the last
//!    (by start order) when the tail falls short;
//! 4. the number of chunks never exceeds the number of cores.

use std::ops::Range;
use std::sync::Mutex;

use mo_core::rt::{Ctx, HwHierarchy, SbPool};

fn chunks_of(pool: &SbPool, range: Range<usize>, grain: usize) -> Vec<Range<usize>> {
    let seen = Mutex::new(Vec::new());
    pool.run(|ctx| {
        ctx.pfor(range, grain, |r| {
            seen.lock().unwrap().push(r);
        });
    });
    let mut chunks = seen.into_inner().unwrap();
    chunks.sort_by_key(|r| r.start);
    chunks
}

fn check(cores: usize, range: Range<usize>, grain: usize) {
    let pool = SbPool::new(HwHierarchy::flat(cores, 1 << 10, 1 << 22));
    let chunks = chunks_of(&pool, range.clone(), grain);
    let label = format!("cores={cores} range={range:?} grain={grain}");
    if range.is_empty() {
        assert!(chunks.is_empty(), "{label}: empty range must emit nothing");
        return;
    }
    // Chunk count bounded by the core count.
    assert!(
        chunks.len() <= cores,
        "{label}: {} chunks > {cores} cores",
        chunks.len()
    );
    // Contiguous, disjoint, exact cover: sorted chunks tile the range.
    let mut cursor = range.start;
    for r in &chunks {
        assert_eq!(r.start, cursor, "{label}: gap or overlap at {cursor}");
        assert!(r.end > r.start, "{label}: empty chunk {r:?}");
        assert!(r.end <= range.end, "{label}: chunk {r:?} overruns");
        cursor = r.end;
    }
    assert_eq!(cursor, range.end, "{label}: union does not cover range");
    // Minimum grain for all but the last chunk.
    let grain = grain.max(1);
    for r in &chunks[..chunks.len() - 1] {
        assert!(
            r.len() >= grain,
            "{label}: non-final chunk {r:?} shorter than grain"
        );
    }
    // When the pool had to chunk at all, even the tail only undershoots
    // if a full-grain tail was impossible at this chunk count.
    if chunks.len() == 1 {
        return;
    }
    let total: usize = range.len();
    assert!(
        total >= grain * (chunks.len() - 1),
        "{label}: {} chunks cannot each reach grain {grain} over {total}",
        chunks.len()
    );
}

#[test]
fn cgc_contract_holds_on_a_grid() {
    for cores in [1usize, 2, 3, 4, 7, 8] {
        for n in [0usize, 1, 2, 5, 63, 64, 65, 1000, 4096, 10_007] {
            for grain in [0usize, 1, 7, 64, 1024, 100_000] {
                check(cores, 0..n, grain);
            }
        }
    }
}

#[test]
fn cgc_contract_holds_on_offset_ranges() {
    for (start, len) in [(3usize, 10usize), (17, 1000), (999, 4097)] {
        for grain in [1usize, 32, 500] {
            check(4, start..start + len, grain);
        }
    }
}

/// Work-stealing stress: many OS threads hammer `SbPool::enter` on one
/// shared pool with mixed `join`/`pfor` workloads. Checks, after the
/// storm:
///
/// * every result is correct (the sums and every `pfor` hit count);
/// * the core permits recover exactly to their initial value;
/// * no fork counter is lost — every `join` above the L1 cutoff lands
///   in exactly one of `parallel_forks`/`denied_forks` (none here can
///   be `serial_forks`), so the three counters must sum to the exact
///   analytic join count of the workload.
#[test]
fn stress_concurrent_enters_with_mixed_workloads() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    const N: usize = 20_000;
    const LEAF: usize = 512;

    // Each element's space bound is 8 words, so with LEAF * 8 > 1024
    // every join taken by `sum` is above the 1024-word L1 cutoff.
    fn sum(ctx: &Ctx<'_>, data: &[u64]) -> u64 {
        if data.len() <= LEAF {
            return data.iter().sum();
        }
        let (l, r) = data.split_at(data.len() / 2);
        let (a, b) = ctx.join(l.len() * 8, |c| sum(c, l), r.len() * 8, |c| sum(c, r));
        a.wrapping_add(b)
    }

    /// Joins `sum` takes over a slice of length `len`.
    fn joins(len: usize) -> u64 {
        if len <= LEAF {
            return 0;
        }
        let half = len / 2;
        1 + joins(half) + joins(len - half)
    }

    let pool = SbPool::new(HwHierarchy::flat(4, 1 << 10, 1 << 22));
    let initial = pool.available_permits();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            s.spawn(move || {
                let data: Vec<u64> = (0..N as u64)
                    .map(|v| v.wrapping_mul(t as u64 + 1))
                    .collect();
                let want: u64 = data.iter().fold(0, |acc, &v| acc.wrapping_add(v));
                let hits: Vec<AtomicU64> = (0..N).map(|_| AtomicU64::new(0)).collect();
                for _ in 0..ROUNDS {
                    let got = pool.enter(|ctx| sum(ctx, &data));
                    assert_eq!(got, want, "thread {t}: join sum corrupted");
                    pool.enter(|ctx| {
                        ctx.pfor(0..N, 64, |r| {
                            for i in r {
                                hits[i].fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    });
                }
                assert!(
                    hits.iter()
                        .all(|h| h.load(Ordering::Relaxed) == ROUNDS as u64),
                    "thread {t}: pfor hit counts wrong"
                );
            });
        }
    });
    assert_eq!(pool.available_permits(), initial, "permits did not recover");
    let st = pool.stats();
    let expected = THREADS as u64 * ROUNDS as u64 * joins(N);
    assert_eq!(
        st.parallel_forks + st.serial_forks + st.denied_forks,
        expected,
        "fork counters lost under concurrency: {st:?}"
    );
    assert_eq!(st.serial_forks, 0, "no join here is below the L1 cutoff");
}

#[test]
fn cgc_contract_holds_on_random_cloud() {
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut next = move |m: usize| -> usize {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) as usize) % m
    };
    for _ in 0..200 {
        let cores = 1 + next(8);
        let start = next(1000);
        let len = next(20_000);
        let grain = next(4000);
        check(cores, start..start + len, grain);
    }
}
