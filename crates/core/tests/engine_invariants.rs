//! Scheduler-engine invariants exercised through the public API.

use hm_model::{CacheId, MachineSpec, Topology};
use mo_core::sched::{simulate, Policy};
use mo_core::{spawn, ForkHint, Recorder};

fn machine() -> MachineSpec {
    MachineSpec::three_level(8, 1 << 10, 8, 1 << 17, 32).unwrap()
}

#[test]
fn empty_program_runs() {
    let prog = Recorder::record(1, |_rec| {});
    let r = simulate(&prog, &machine(), Policy::Mo);
    assert_eq!(r.work, 0);
    assert_eq!(r.makespan, 0);
    assert_eq!(r.units, 0);
}

#[test]
fn single_access_program() {
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(1);
        rec.write(a, 0, 42);
    });
    for policy in [Policy::Mo, Policy::Flat, Policy::Serial] {
        let r = simulate(&prog, &machine(), policy);
        assert_eq!(r.work, 1, "{policy:?}");
        assert_eq!(r.makespan, 1, "{policy:?}");
        assert_eq!(r.cache_complexity(1), 1, "{policy:?}");
    }
}

#[test]
fn replay_is_deterministic() {
    let n = 2048usize;
    let prog = Recorder::record(1 << 20, |rec| {
        let a = rec.alloc(n);
        rec.cgc_for(n, |rec, k| rec.write(a, k, k as u64));
        let (lo, hi) = a.split_at(n / 2);
        rec.fork2(
            ForkHint::CgcSb,
            2 * n,
            move |rec| {
                for k in 0..lo.len() {
                    let _ = rec.read(lo, k);
                }
            },
            2 * n,
            move |rec| {
                for k in 0..hi.len() {
                    let _ = rec.read(hi, k);
                }
            },
        );
    });
    let spec = machine();
    let a = simulate(&prog, &spec, Policy::Mo);
    let b = simulate(&prog, &spec, Policy::Mo);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.core_busy, b.core_busy);
    for level in 1..=spec.cache_levels() {
        assert_eq!(a.metrics.level(level), b.metrics.level(level), "L{level}");
    }
    assert_eq!(a.pingpongs, b.pingpongs);
}

#[test]
fn cgc_assigns_segments_left_to_right() {
    // A CGC loop over exactly p*B1 iterations: every core gets exactly B1
    // iterations and all cores are busy the same amount.
    let spec = machine();
    let p = spec.cores();
    let b1 = spec.level(1).block;
    let t = p * b1;
    let prog = Recorder::record(1 << 20, |rec| {
        let a = rec.alloc(t);
        rec.cgc_for(t, |rec, k| rec.write(a, k, 1));
    });
    let r = simulate(&prog, &spec, Policy::Mo);
    assert_eq!(r.units, p);
    assert!(
        r.core_busy.iter().all(|&b| b == b1 as u64),
        "{:?}",
        r.core_busy
    );
}

#[test]
fn sb_serializes_when_cache_cannot_hold_both() {
    // One L2-sized cache; two tasks each of ~full L2 must serialize.
    let spec = MachineSpec::three_level(4, 256, 8, 4096, 8).unwrap();
    let per = 3000usize; // > C2/2, <= C2
    let prog = Recorder::record(1 << 20, |rec| {
        let a = rec.alloc(per);
        let b = rec.alloc(per);
        rec.fork2(
            ForkHint::Sb,
            per,
            move |rec| {
                for k in 0..per {
                    rec.write(a, k, 1);
                }
            },
            per,
            move |rec| {
                for k in 0..per {
                    rec.write(b, k, 1);
                }
            },
        );
    });
    let r = simulate(&prog, &spec, Policy::Mo);
    // Admission forces one-after-the-other: makespan = 2 * per.
    assert_eq!(r.makespan, 2 * per as u64);
}

#[test]
fn deep_sequential_chain_of_forks_completes() {
    // A 2000-deep chain of single-child forks must not overflow anything.
    fn chain(rec: &mut Recorder, a: mo_core::Arr, depth: usize) {
        if depth == 0 {
            rec.write(a, 0, 7);
            return;
        }
        rec.fork(
            ForkHint::Sb,
            vec![spawn(64, move |r: &mut Recorder| chain(r, a, depth - 1))],
        );
    }
    let prog = Recorder::record(1 << 16, |rec| {
        let a = rec.alloc(1);
        chain(rec, a, 2000);
    });
    let r = simulate(&prog, &machine(), Policy::Mo);
    assert_eq!(r.work, 1);
    assert_eq!(r.tasks, 2001);
}

#[test]
fn wide_fork_uses_every_cache_at_the_right_level() {
    // 8 children sized for L1 on an 8-core machine: each L1 cache gets
    // exactly one, in order (CGC⇒SB contiguous distribution).
    let spec = machine();
    let per = 512usize;
    let prog = Recorder::record(1 << 20, |rec| {
        let arrs: Vec<_> = (0..8).map(|_| rec.alloc(per)).collect();
        let children = arrs
            .iter()
            .map(|&a| {
                spawn(per, move |rec: &mut Recorder| {
                    for k in 0..per {
                        rec.write(a, k, 1);
                    }
                })
            })
            .collect();
        rec.fork(ForkHint::CgcSb, children);
    });
    let r = simulate(&prog, &spec, Policy::Mo);
    assert_eq!(r.makespan, per as u64, "all 8 children fully parallel");
    assert!(r.core_busy.iter().all(|&b| b == per as u64));
    // Each L1 saw exactly the one task's traffic.
    let t = Topology::new(&spec);
    for j in 0..t.caches_at(1) {
        assert_eq!(r.metrics.cache(1, j).accesses(), per as u64, "cache {j}");
    }
    let _ = CacheId::new(1, 0);
}

#[test]
fn flat_policy_beats_or_matches_serial_always() {
    let n = 1 << 12;
    let prog = Recorder::record(1 << 22, |rec| {
        let a = rec.alloc(n);
        rec.cgc_for(n, |rec, k| rec.write(a, k, 1));
        rec.cgc_for(n, |rec, k| {
            let v = rec.read(a, k);
            rec.write(a, k, v + 1);
        });
    });
    let spec = machine();
    let mo = simulate(&prog, &spec, Policy::Mo);
    let flat = simulate(&prog, &spec, Policy::Flat);
    let serial = simulate(&prog, &spec, Policy::Serial);
    assert!(flat.makespan <= serial.makespan);
    assert!(mo.makespan <= serial.makespan);
    assert_eq!(serial.core_busy[0], serial.work);
}

#[test]
fn mat_views_share_memory_through_recorder() {
    use mo_core::Mat;
    let prog = Recorder::record(1 << 10, |rec| {
        let a = rec.alloc(64);
        let m = Mat::new(a, 8, 8);
        let (x11, _x12, _x21, x22) = m.quadrants();
        rec.write_mat(&x11, 0, 0, 5);
        rec.write_mat(&x22, 3, 3, 9);
        // Aliased reads through the parent view.
        assert_eq!(rec.peek(a, 0), 5);
        assert_eq!(rec.peek(a, 63), 9);
    });
    assert_eq!(prog.work(), 2);
}

#[test]
fn rt_pool_detects_some_machine() {
    let pool = mo_core::rt::SbPool::detected();
    assert!(pool.hierarchy().cores() >= 1);
    assert!(pool.hierarchy().l1_capacity() > 0);
    let sum = pool.run(|ctx| {
        let (a, b) = ctx.join(1 << 20, |_| 20u64, 1 << 20, |_| 22u64);
        a + b
    });
    assert_eq!(sum, 42);
}

#[test]
fn cgc_under_l1_anchor_uses_one_core() {
    // A task anchored at an L1 (space fits C1) runs its CGC loop on a
    // single core: the loop's shadow is the anchor's shadow.
    let spec = machine();
    let n = 256usize; // fits C1 = 1024
    let prog = Recorder::record(n, |rec| {
        let a = rec.alloc(n);
        rec.cgc_for(n, |rec, k| rec.write(a, k, 1));
    });
    let r = simulate(&prog, &spec, Policy::Mo);
    assert_eq!(r.units, 1, "single segment on the anchor's only core");
    assert_eq!(r.makespan, n as u64);
}

#[test]
fn cgcsb_deferred_expansion_keeps_contiguity() {
    // Binary CGC⇒SB recursion over 8 leaf tasks on an 8-core flat
    // machine: after deferred expansion, leaf i must run on core i
    // (contiguous positions → contiguous caches).
    let spec = machine();
    let per = 600usize; // fits C1 only
    fn split(rec: &mut Recorder, arrs: &[mo_core::Arr], lo: usize, hi: usize, per: usize) {
        if hi - lo == 1 {
            let a = arrs[lo];
            for k in 0..per {
                rec.write(a, k, lo as u64);
            }
            return;
        }
        let mid = (lo + hi) / 2;
        let (l, r1) = (arrs.to_vec(), arrs.to_vec());
        rec.fork2(
            ForkHint::CgcSb,
            per * (mid - lo),
            move |rec| split(rec, &l, lo, mid, per),
            per * (hi - mid),
            move |rec| split(rec, &r1, mid, hi, per),
        );
    }
    let prog = Recorder::record(1 << 20, |rec| {
        let arrs: Vec<_> = (0..8).map(|_| rec.alloc(per)).collect();
        split(rec, &arrs, 0, 8, per);
    });
    let r = simulate(&prog, &spec, Policy::Mo);
    // Perfect parallelism: every core busy exactly `per` steps.
    assert_eq!(
        r.makespan, per as u64,
        "deferred expansion must spread leaves"
    );
    assert!(
        r.core_busy.iter().all(|&b| b == per as u64),
        "{:?}",
        r.core_busy
    );
}

#[test]
fn oversized_root_anchors_at_memory_and_uses_all_cores() {
    let spec = machine();
    let n = 1 << 12;
    // Root space exceeds every cache.
    let prog = Recorder::record(1 << 24, |rec| {
        let a = rec.alloc(n);
        rec.cgc_for(n, |rec, k| rec.write(a, k, 1));
    });
    let r = simulate(&prog, &spec, Policy::Mo);
    assert_eq!(r.makespan, (n / spec.cores()) as u64);
    assert!(r.core_busy.iter().all(|&b| b > 0));
}

#[test]
fn program_stats_reflect_algorithm_shape() {
    // The FFT-shaped recursion should show CGC loops plus CGC⇒SB forks
    // and no SB forks; a GEP-shaped one the reverse.
    let n = 64usize;
    let prog = Recorder::record(1 << 16, |rec| {
        let a = rec.alloc(2 * n);
        rec.cgc_for(n, |rec, k| rec.write(a, k, 1));
        let (lo, hi) = a.split_at(n);
        rec.fork2(
            ForkHint::CgcSb,
            n,
            move |rec| {
                for k in 0..lo.len() {
                    rec.write(lo, k, 2);
                }
            },
            n,
            move |rec| {
                for k in 0..hi.len() {
                    rec.write(hi, k, 2);
                }
            },
        );
    });
    let st = prog.stats();
    assert_eq!(st.cgc_loops, 1);
    assert_eq!(st.cgcsb_forks, 1);
    assert_eq!(st.sb_forks, 0);
    assert_eq!(st.max_depth, 1);
}

#[test]
fn units_and_busy_time_are_consistent() {
    let n = 4096usize;
    let prog = Recorder::record(1 << 22, |rec| {
        let a = rec.alloc(n);
        let b = rec.alloc(n);
        rec.cgc_for(n, |rec, k| rec.write(a, k, 1));
        rec.cgc_for(n, |rec, k| {
            let v = rec.read(a, k);
            rec.write(b, k, v);
        });
    });
    for policy in [Policy::Mo, Policy::Flat, Policy::Serial] {
        let r = simulate(&prog, &machine(), policy);
        let busy: u64 = r.core_busy.iter().sum();
        assert_eq!(busy, r.work, "{policy:?}");
        assert!(r.units >= 1);
    }
}
