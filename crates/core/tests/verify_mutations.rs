//! Negative tests for `mo_core::verify`: each test seeds one specific
//! defect into an otherwise well-formed program and asserts the verifier
//! finds exactly that defect — plus, per hint kind, a clean twin program
//! that must produce no findings.

use mo_core::verify::HintViolation;
use mo_core::{spawn, verify, ForkHint, RaceKind, Recorder};

// ---------------------------------------------------------------------
// Seeded determinacy races
// ---------------------------------------------------------------------

#[test]
fn seeded_write_write_race_between_siblings_is_detected() {
    let mut addr = 0;
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(4);
        addr = a.base();
        rec.fork2(
            ForkHint::Sb,
            16,
            move |r| r.write(a, 0, 1),
            16,
            move |r| r.write(a, 0, 2),
        );
    });
    let rep = verify(&prog);
    assert!(!rep.is_clean());
    assert!(rep.conflicts > 0);
    let race = rep
        .races
        .iter()
        .find(|r| r.kind == RaceKind::WriteWrite)
        .expect("WW race must be reported");
    assert_eq!(race.addr, addr);
    assert_eq!(
        (race.first, race.second),
        (1, 2),
        "both sibling tasks named"
    );
}

#[test]
fn seeded_read_write_race_is_detected_in_both_orders() {
    // Reader recorded before the writer…
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(2);
        rec.fork2(
            ForkHint::Sb,
            16,
            move |r| {
                r.read(a, 0);
            },
            16,
            move |r| r.write(a, 0, 9),
        );
    });
    let rep = verify(&prog);
    assert!(rep.races.iter().any(|r| r.kind == RaceKind::ReadWrite));

    // …and the writer recorded before the reader.
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(2);
        rec.fork2(
            ForkHint::Sb,
            16,
            move |r| r.write(a, 0, 9),
            16,
            move |r| {
                r.read(a, 0);
            },
        );
    });
    let rep = verify(&prog);
    assert!(rep.races.iter().any(|r| r.kind == RaceKind::ReadWrite));
}

#[test]
fn serial_reuse_of_a_word_is_not_a_race() {
    // Same word written by two *serial* forks (one after the other) and
    // by the parent in between: no logical parallelism, no race.
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(2);
        rec.fork(
            ForkHint::Sb,
            vec![spawn(16, move |r: &mut Recorder| r.write(a, 0, 1))],
        );
        rec.write(a, 0, 2);
        rec.fork(
            ForkHint::Sb,
            vec![spawn(16, move |r: &mut Recorder| {
                let v = r.read(a, 0);
                r.write(a, 0, v + 1);
            })],
        );
    });
    let rep = verify(&prog);
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(rep.conflicts, 0);
}

// ---------------------------------------------------------------------
// Seeded hint violations
// ---------------------------------------------------------------------

#[test]
fn understated_space_bound_is_detected() {
    // The child declares 2 words but its subtree touches 8.
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(8);
        rec.fork(
            ForkHint::Sb,
            vec![spawn(2, move |r: &mut Recorder| {
                for i in 0..8 {
                    r.write(a, i, i as u64);
                }
            })],
        );
    });
    let rep = verify(&prog);
    assert!(!rep.is_clean());
    assert!(rep.races.is_empty(), "a lying bound is not a race");
    match rep.violations[..] {
        [HintViolation::FootprintExceedsBound {
            task: 1,
            declared: 2,
            measured: 8,
        }] => {}
        ref v => panic!("expected one FootprintExceedsBound, got {v:?}"),
    }
    assert!(rep.min_slack < 0);
}

#[test]
fn non_monotone_space_bounds_are_detected() {
    // Child declares more space than its parent: it cannot be anchored
    // under the parent's shadow.
    let prog = Recorder::record(16, |rec| {
        let a = rec.alloc(2);
        rec.fork(
            ForkHint::Sb,
            vec![spawn(128, move |r: &mut Recorder| r.write(a, 0, 1))],
        );
    });
    let rep = verify(&prog);
    assert!(!rep.is_clean());
    assert!(rep.violations.iter().any(|v| matches!(
        v,
        HintViolation::SpaceNotMonotone {
            parent: 0,
            child: 1,
            parent_space: 16,
            child_space: 128
        }
    )));
}

#[test]
fn unequal_cgcsb_batch_bounds_are_detected() {
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(4);
        rec.fork2(
            ForkHint::CgcSb,
            8,
            move |r| r.write(a, 0, 1),
            16,
            move |r| r.write(a, 1, 2),
        );
    });
    let rep = verify(&prog);
    assert!(!rep.is_clean());
    assert!(rep.violations.iter().any(|v| matches!(
        v,
        HintViolation::CgcSbUnequalSpace {
            parent: 0,
            min_space: 8,
            max_space: 16
        }
    )));
}

#[test]
fn overlapping_cgc_iteration_writes_are_detected() {
    // Iterations 0 and 2 both write word 0: reported both as a CGC write
    // overlap (with loop coordinates) and as a WW race.
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(4);
        rec.cgc_for(3, |rec, k| {
            rec.write(a, if k == 2 { 0 } else { k }, k as u64);
        });
    });
    let rep = verify(&prog);
    assert!(!rep.is_clean());
    assert!(rep.violations.iter().any(|v| matches!(
        v,
        HintViolation::CgcWriteOverlap {
            task: 0,
            iter_a: 0,
            iter_b: 2,
            ..
        }
    )));
    assert!(rep
        .races
        .iter()
        .any(|r| r.kind == RaceKind::WriteWrite && r.first == r.second));
}

// ---------------------------------------------------------------------
// Structural warnings (clean but not pristine)
// ---------------------------------------------------------------------

#[test]
fn right_to_left_cgc_layout_is_a_warning_not_an_error() {
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(4);
        rec.cgc_for(4, |rec, k| rec.write(a, 3 - k, k as u64));
    });
    let rep = verify(&prog);
    assert!(rep.is_clean(), "{rep}");
    assert!(!rep.is_pristine());
    assert!(rep.warnings.iter().any(|v| matches!(
        v,
        HintViolation::CgcNonMonotoneLayout {
            task: 0,
            iter: 1,
            ..
        }
    )));
}

#[test]
fn empty_cgc_iteration_is_a_warning_not_an_error() {
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(4);
        rec.cgc_for(3, |rec, k| {
            if k != 1 {
                rec.write(a, k, 1);
            }
        });
    });
    let rep = verify(&prog);
    assert!(rep.is_clean(), "{rep}");
    assert!(!rep.is_pristine());
    assert!(rep.warnings.iter().any(|v| matches!(
        v,
        HintViolation::CgcEmptyIteration {
            task: 0,
            iter: 1,
            ..
        }
    )));
}

// ---------------------------------------------------------------------
// Clean twin programs, one per hint kind
// ---------------------------------------------------------------------

#[test]
fn clean_sb_fork_has_no_findings() {
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(4);
        rec.fork2(
            ForkHint::Sb,
            2,
            move |r| r.write(a, 0, 1),
            2,
            move |r| r.write(a, 1, 2),
        );
        let v = rec.read(a, 0) + rec.read(a, 1);
        rec.write(a, 2, v);
    });
    let rep = verify(&prog);
    assert!(rep.is_pristine(), "{rep}");
    assert_eq!(rep.tasks, 3);
    assert!(rep.min_slack >= 0);
}

#[test]
fn clean_cgcsb_batch_has_no_findings() {
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(8);
        let children = (0..4)
            .map(|i| {
                spawn(2, move |r: &mut Recorder| {
                    r.write(a, 2 * i, 1);
                    r.write(a, 2 * i + 1, 2);
                })
            })
            .collect();
        rec.fork(ForkHint::CgcSb, children);
    });
    let rep = verify(&prog);
    assert!(rep.is_pristine(), "{rep}");
    assert_eq!(rep.tasks, 5);
}

#[test]
fn clean_cgc_loop_has_no_findings() {
    let prog = Recorder::record(64, |rec| {
        let a = rec.alloc(8);
        rec.cgc_for(8, |rec, k| rec.write(a, k, k as u64));
        rec.cgc_for(8, |rec, k| {
            let v = rec.read(a, k);
            rec.write(a, k, v + 1);
        });
    });
    let rep = verify(&prog);
    assert!(rep.is_pristine(), "{rep}");
    assert_eq!(rep.strands, 16);
}

#[test]
fn measured_bounds_rerecording_always_passes_the_space_lints() {
    // Deliberately silly provisional bounds: record_measured must replace
    // them with exact subtree footprints and verify clean.
    let prog = Recorder::record_measured(1, |rec| {
        let a = rec.alloc(8);
        rec.fork2(
            ForkHint::CgcSb,
            1,
            move |r| {
                for i in 0..4 {
                    r.write(a, i, 1);
                }
            },
            999,
            move |r| r.write(a, 4, 1),
        );
    });
    let rep = verify(&prog);
    assert!(rep.is_clean(), "{rep}");
    // CGC⇒SB equalization: both children carry the batch maximum.
    assert_eq!(prog.tasks()[1].space, prog.tasks()[2].space);
    assert!(rep.min_slack >= 0);
}
