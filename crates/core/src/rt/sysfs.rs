//! Cache-hierarchy detection from Linux sysfs.
//!
//! Linux exposes the per-cpu cache topology under
//! `/sys/devices/system/cpu/cpu*/cache/index*/` as one directory per
//! (cpu, cache) pair with the files
//!
//! * `type` — `Data`, `Instruction` or `Unified` (instruction caches are
//!   irrelevant to the space-bound model and skipped);
//! * `level` — 1, 2, 3, …;
//! * `size` — human-readable capacity (`48K`, `2048K`, `8M`, …);
//! * `shared_cpu_list` — the cpus sharing this physical cache instance
//!   (`0`, `0-3`, `0,4`, …).
//!
//! [`probe`] folds those files into the [`HwHierarchy`] shape the pool
//! wants: one [`HwLevel`] per cache level, capacity in words, fanout =
//! how many level-`i−1` units share one level-`i` cache. The number of
//! *distinct* caches per level is recovered by deduplicating the
//! `shared_cpu_list` strings, so SMT siblings sharing an L1 count as one
//! scheduling unit, matching the pool's one-thread-per-unit permits. If
//! the topmost probed level still has several instances (multi-socket,
//! AMD CCX), a synthetic top level with their aggregate capacity is
//! appended so the hierarchy spans the whole machine and
//! `HwHierarchy::cores()` counts every unit.
//!
//! Everything is best-effort: any missing or malformed file skips that
//! entry, and an empty result returns `None` so the caller can fall back
//! to a static guess. The probe root is a parameter, so tests exercise
//! the parser against a fixture tree instead of the live machine.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use super::{HwHierarchy, HwLevel};

/// Parse a sysfs cache `size` string (`"48K"`, `"2M"`, `"1G"`, plain
/// bytes) into **words** (8-byte units). Returns `None` on malformed
/// input or a zero size.
fn parse_size_words(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1024usize),
        'M' | 'm' => (&s[..s.len() - 1], 1024 * 1024),
        'G' | 'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    let bytes = digits.trim().parse::<usize>().ok()?.checked_mul(mult)?;
    let words = bytes / 8;
    (words > 0).then_some(words)
}

fn read_trimmed(path: &Path) -> Option<String> {
    fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

/// Probe a sysfs cpu tree (normally `/sys/devices/system/cpu`) and build
/// the hierarchy. `None` when nothing usable was found.
pub fn probe(root: &Path) -> Option<HwHierarchy> {
    // level → (shared_cpu_list → capacity in words). BTreeMap keeps the
    // levels ordered L1-first and the groups deduplicated.
    let mut per_level: BTreeMap<u32, BTreeMap<String, usize>> = BTreeMap::new();
    for entry in fs::read_dir(root).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(rest) = name.strip_prefix("cpu") else {
            continue;
        };
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let cache_dir = entry.path().join("cache");
        let Ok(indices) = fs::read_dir(&cache_dir) else {
            continue;
        };
        for idx in indices.flatten() {
            let iname = idx.file_name();
            if !iname.to_string_lossy().starts_with("index") {
                continue;
            }
            let dir = idx.path();
            let Some(ty) = read_trimmed(&dir.join("type")) else {
                continue;
            };
            if ty.eq_ignore_ascii_case("Instruction") {
                continue;
            }
            let Some(level) = read_trimmed(&dir.join("level")).and_then(|s| s.parse().ok()) else {
                continue;
            };
            let Some(words) = read_trimmed(&dir.join("size")).and_then(|s| parse_size_words(&s))
            else {
                continue;
            };
            let Some(shared) = read_trimmed(&dir.join("shared_cpu_list")) else {
                continue;
            };
            per_level.entry(level).or_default().insert(shared, words);
        }
    }
    let mut levels = Vec::new();
    let mut prev_groups: Option<usize> = None;
    let mut last = (0usize, 0usize); // (instances, capacity) of topmost level
    for groups in per_level.values() {
        let count = groups.len();
        let capacity = *groups.values().max()?;
        let fanout = match prev_groups {
            None => 1,
            // Children per cache; non-uniform topologies round down but
            // never below 1 so `cores()` stays a product of integers.
            Some(pg) => (pg / count).max(1),
        };
        levels.push(HwLevel { capacity, fanout });
        prev_groups = Some(count);
        last = (count, capacity);
    }
    if levels.is_empty() {
        return None;
    }
    if last.0 > 1 {
        // Several top-level caches (sockets / CCX complexes): append a
        // synthetic machine level with their aggregate capacity.
        levels.push(HwLevel {
            capacity: last.0 * last.1,
            fanout: last.0,
        });
    }
    Some(HwHierarchy::new(levels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    /// A scratch sysfs fixture tree, removed on drop.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("mo-sysfs-{}-{}", std::process::id(), tag));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            Self { root }
        }

        /// Add one cache entry for `cpu`: `(index, type, level, size,
        /// shared_cpu_list)`.
        fn cache(&self, cpu: usize, index: usize, ty: &str, level: u32, size: &str, shared: &str) {
            let dir = self
                .root
                .join(format!("cpu{cpu}"))
                .join("cache")
                .join(format!("index{index}"));
            fs::create_dir_all(&dir).unwrap();
            fs::write(dir.join("type"), ty).unwrap();
            fs::write(dir.join("level"), level.to_string()).unwrap();
            fs::write(dir.join("size"), size).unwrap();
            fs::write(dir.join("shared_cpu_list"), shared).unwrap();
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn parses_size_suffixes() {
        assert_eq!(parse_size_words("48K"), Some(48 * 1024 / 8));
        assert_eq!(parse_size_words("2M"), Some(2 * 1024 * 1024 / 8));
        assert_eq!(parse_size_words("1G"), Some(1 << 27));
        assert_eq!(parse_size_words("4096"), Some(512));
        assert_eq!(parse_size_words("0K"), None);
        assert_eq!(parse_size_words("junk"), None);
        assert_eq!(parse_size_words(""), None);
    }

    #[test]
    fn three_level_fixture_builds_full_hierarchy() {
        // 4 cpus: private 32K L1d (plus an L1i that must be ignored),
        // pairwise-shared 512K L2, one 8M L3.
        let fx = Fixture::new("three-level");
        for cpu in 0..4 {
            fx.cache(cpu, 0, "Data", 1, "32K", &cpu.to_string());
            fx.cache(cpu, 1, "Instruction", 1, "32K", &cpu.to_string());
            let pair = if cpu < 2 { "0-1" } else { "2-3" };
            fx.cache(cpu, 2, "Unified", 2, "512K", pair);
            fx.cache(cpu, 3, "Unified", 3, "8M", "0-3");
        }
        let h = probe(&fx.root).expect("fixture should parse");
        let levels = h.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].capacity, 32 * 1024 / 8);
        assert_eq!(levels[0].fanout, 1);
        assert_eq!(levels[1].capacity, 512 * 1024 / 8);
        assert_eq!(levels[1].fanout, 2);
        assert_eq!(levels[2].capacity, 8 * 1024 * 1024 / 8);
        assert_eq!(levels[2].fanout, 2);
        assert_eq!(h.cores(), 4);
        assert_eq!(h.l1_capacity(), 32 * 1024 / 8);
    }

    #[test]
    fn smt_siblings_collapse_to_one_unit() {
        // 4 hyperthreads = 2 physical cores: threads {0,2} and {1,3}
        // share an L1; one shared L2. Cores must come out as 2.
        let fx = Fixture::new("smt");
        for cpu in 0..4 {
            let pair = if cpu % 2 == 0 { "0,2" } else { "1,3" };
            fx.cache(cpu, 0, "Data", 1, "48K", pair);
            fx.cache(cpu, 2, "Unified", 2, "4M", "0-3");
        }
        let h = probe(&fx.root).expect("fixture should parse");
        assert_eq!(h.levels().len(), 2);
        assert_eq!(h.cores(), 2);
        assert_eq!(h.levels()[1].fanout, 2);
    }

    #[test]
    fn split_llc_gets_synthetic_top_level() {
        // Two CCX-style complexes of 2 cores, each with its own 4M L3
        // and no cache spanning the machine: a synthetic 8M top level
        // must be appended so cores() = 4.
        let fx = Fixture::new("ccx");
        for cpu in 0..4 {
            fx.cache(cpu, 0, "Data", 1, "32K", &cpu.to_string());
            let ccx = if cpu < 2 { "0-1" } else { "2-3" };
            fx.cache(cpu, 3, "Unified", 3, "4M", ccx);
        }
        let h = probe(&fx.root).expect("fixture should parse");
        let levels = h.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[1].capacity, 4 * 1024 * 1024 / 8);
        assert_eq!(levels[2].capacity, 2 * 4 * 1024 * 1024 / 8);
        assert_eq!(levels[2].fanout, 2);
        assert_eq!(h.cores(), 4);
    }

    #[test]
    fn absent_or_empty_tree_probes_none() {
        let fx = Fixture::new("empty");
        assert!(probe(&fx.root).is_none());
        assert!(probe(&fx.root.join("no-such-dir")).is_none());
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let fx = Fixture::new("malformed");
        fx.cache(0, 0, "Data", 1, "not-a-size", "0");
        fx.cache(0, 1, "Data", 1, "32K", "0");
        let h = probe(&fx.root).expect("good entry should survive");
        assert_eq!(h.levels().len(), 1);
        assert_eq!(h.l1_capacity(), 32 * 1024 / 8);
    }

    #[test]
    fn live_machine_probe_is_sane_if_present() {
        // On a real Linux host this exercises the actual sysfs tree; on
        // anything else it must simply return None, never panic.
        if let Some(h) = probe(Path::new("/sys/devices/system/cpu")) {
            assert!(h.cores() >= 1);
            assert!(h.l1_capacity() > 0);
        }
    }
}
