//! Work-stealing executor internals behind [`super::SbPool`].
//!
//! The public `SbPool`/`Ctx` API used to realize every parallel fork as
//! a fresh scoped OS thread. This module replaces that with a resident
//! worker pool in the standard Cilk/rayon execution model the paper's
//! HM scheduler idealizes:
//!
//! * **One lazily-started worker per core**, each owning a Chase–Lev
//!   style deque: the owner pushes and pops at the *bottom* (LIFO, so a
//!   worker dives depth-first into the subtree it already has in
//!   cache), thieves steal from the *top* (FIFO, so they take the
//!   oldest — largest — pending subtree, the shadow-of-an-anchor a
//!   stolen task represents). Each deque is guarded by a short-held
//!   lock rather than the lock-free top/bottom indices of the original
//!   Chase–Lev structure; tasks only become stealable above the L1
//!   space cutoff, so they are coarse and the guard is never contended
//!   at task granularity.
//! * **Help-first joins**: a forking task pushes its second branch,
//!   runs the first inline, and — if the branch was stolen — executes
//!   *other* ready tasks while it waits instead of blocking the OS
//!   thread.
//! * **An injector queue** for threads that are not pool workers (a
//!   server thread inside [`SbPool::enter`], a test thread inside
//!   `run`): their forks are pushed there and stolen by the residents,
//!   while the submitting thread help-waits like any worker.
//! * **Event-counted sleeping**: idle workers park on a condvar guarded
//!   by a monotone event counter. Every push and every task completion
//!   bumps the counter and broadcasts, and a would-be sleeper re-checks
//!   the counter under the lock before waiting, so a wakeup can never
//!   be lost between "scanned all queues empty" and "went to sleep".
//!
//! # Safety
//!
//! Forked closures borrow the forking task's stack frame, so a queued
//! task is a type-erased raw pointer ([`JobRef`]) into live stack
//! memory. The protocol that keeps this sound is the classic fork–join
//! pinning argument:
//!
//! * a [`StackJob`] is created in the frame of `Ctx::join`/`Ctx::pfor`
//!   and that frame does **not** return (or unwind) until either the
//!   job's latch has been observed set (some thread finished running
//!   it) or the job was reclaimed un-run via [`Registry::take_back`],
//!   which removes the only escaped pointer;
//! * the closure and result cells are never accessed concurrently: the
//!   executing thread consumes the closure and writes the result
//!   *before* setting the latch (release), and the owner reads the
//!   result only *after* observing the latch (acquire).

#![allow(unsafe_code)] // the safety protocol is documented above

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use super::{obs_event, Ctx, Inner, SbPool};

/// Where a scan found a runnable job: the scanner's own deque, the
/// external injector, or stolen from worker `.0`'s deque.
pub(super) enum Origin {
    Own,
    Injector,
    Stolen(usize),
}

/// A type-erased pointer to a stack-allocated [`StackJob`], paired with
/// the monomorphized function that runs it.
#[derive(Clone, Copy)]
pub(super) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const (), &Ctx<'_>),
}

// SAFETY: the pointee is pinned for the job's whole queue lifetime and
// all access to its cells is ordered through the latch (module docs).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Identity of the underlying job, for [`Registry::take_back`].
    pub(super) fn id(&self) -> *const () {
        self.data
    }

    /// Run the job on the calling thread.
    ///
    /// # Safety
    /// The caller must have obtained this reference from a queue (so it
    /// is the unique owner of the right to execute it) and the backing
    /// [`StackJob`] must still be pinned.
    pub(super) unsafe fn execute(self, ctx: &Ctx<'_>) {
        // SAFETY: forwarding the caller's contract — `data` points to
        // the pinned `StackJob` that `exec` was monomorphized for.
        unsafe { (self.exec)(self.data, ctx) }
    }
}

/// A set-once completion flag, probed by the owner while it helps.
pub(super) struct Latch {
    done: AtomicBool,
}

impl Latch {
    fn new() -> Self {
        Self {
            done: AtomicBool::new(false),
        }
    }

    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }

    pub(super) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// A fork's second branch, allocated in the forking frame: the closure,
/// a slot for its result (or panic payload), and the completion latch.
pub(super) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce(&Ctx<'_>) -> R + Send,
    R: Send,
{
    pub(super) fn new(f: F) -> Self {
        Self {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// Erase to a queueable reference.
    ///
    /// # Safety
    /// The caller must keep `self` pinned until the latch is set or the
    /// reference has been reclaimed via [`Registry::take_back`].
    pub(super) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(data: *const (), ctx: &Ctx<'_>) {
        // SAFETY: `data` came from `as_job_ref` on a still-pinned
        // `StackJob<F, R>` (caller contract via `JobRef::execute`).
        let this = unsafe { &*(data as *const Self) };
        // SAFETY: the executing thread holds the unique right to run
        // this job (it was popped from a queue), so nothing else
        // touches the closure or result cells until the latch — set
        // below, with release ordering — publishes them to the owner.
        let f = unsafe { (*this.f.get()).take() }.expect("stack job executed twice");
        let res = panic::catch_unwind(AssertUnwindSafe(|| f(ctx)));
        // SAFETY: same exclusive-execution argument as the read above.
        unsafe { *this.result.get() = Some(res) };
        this.latch.set();
    }

    pub(super) fn latch(&self) -> &Latch {
        &self.latch
    }

    /// Reclaim the closure of a job that was popped back un-run; only
    /// legal after [`Registry::take_back`] returned `true` for it.
    pub(super) fn take_f(&self) -> F {
        // SAFETY: `take_back` returning true removed the only escaped
        // reference before anyone executed it, so the owner is again
        // the sole accessor of the closure cell.
        unsafe { (*self.f.get()).take().expect("reclaimed a stolen job") }
    }

    /// The result, once the latch has been observed set; a panic from
    /// the job resumes here, on the owner.
    pub(super) fn into_result(self) -> R {
        match self
            .result
            .into_inner()
            .expect("latched job without result")
        {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// The shared queues and sleep machinery of one pool.
pub(super) struct Registry {
    /// One owner-LIFO / thief-FIFO deque per resident worker.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Submission queue for non-worker threads.
    injector: Mutex<VecDeque<JobRef>>,
    /// Monotone event counter: bumped (under the lock) on every push,
    /// every completion and on termination.
    events: Mutex<u64>,
    wake: Condvar,
    /// Whether the resident workers have been spawned.
    pub(super) started: AtomicBool,
    stop: AtomicBool,
}

impl Registry {
    pub(super) fn new(workers: usize) -> Self {
        Self {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            events: Mutex::new(0),
            wake: Condvar::new(),
            started: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        }
    }

    fn events(&self) -> u64 {
        *self.events.lock().unwrap()
    }

    /// Record an event (push, completion, termination) and wake every
    /// sleeper.
    fn signal(&self) {
        let mut g = self.events.lock().unwrap();
        *g += 1;
        self.wake.notify_all();
    }

    /// Ask the resident workers to exit once idle.
    pub(super) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.signal();
    }

    /// Queue `job`: bottom of the caller's own deque for a worker, the
    /// injector for an external thread.
    pub(super) fn push(&self, me: Option<usize>, job: JobRef) {
        match me {
            Some(i) => self.deques[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.signal();
    }

    /// Try to reclaim the job `id` from wherever [`push`](Self::push)
    /// put it. `true` means it was still queued (nobody stole it) and
    /// has been removed, so the caller owns it again.
    pub(super) fn take_back(&self, me: Option<usize>, id: *const ()) -> bool {
        match me {
            Some(i) => {
                let mut q = self.deques[i].lock().unwrap();
                if q.back().is_some_and(|j| j.id() == id) {
                    q.pop_back();
                    true
                } else {
                    false
                }
            }
            None => {
                let mut q = self.injector.lock().unwrap();
                if let Some(pos) = q.iter().rposition(|j| j.id() == id) {
                    q.remove(pos);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// One scan for work: own deque bottom first (depth-first), then
    /// the injector, then the other deques' tops, round-robin. Reports
    /// where the job came from so the caller can account steals and
    /// injector throughput.
    fn find_work(&self, me: Option<usize>) -> Option<(JobRef, Origin)> {
        if let Some(i) = me {
            if let Some(j) = self.deques[i].lock().unwrap().pop_back() {
                return Some((j, Origin::Own));
            }
        }
        if let Some(j) = self.injector.lock().unwrap().pop_front() {
            return Some((j, Origin::Injector));
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let v = (start + k) % n;
            if Some(v) == me {
                continue;
            }
            if let Some(j) = self.deques[v].lock().unwrap().pop_front() {
                return Some((j, Origin::Stolen(v)));
            }
        }
        None
    }
}

/// Account and run one job a scan produced: bump the steal / injector
/// counters, trace the task's enter/exit (job ids are the stack-job
/// addresses — unique while pinned, which covers the task's run), and
/// signal the completion event.
fn execute_found(ctx: &Ctx<'_>, job: JobRef, origin: Origin) {
    let inner = ctx.inner();
    let me = ctx.worker_index();
    let (ocode, victim) = match origin {
        Origin::Own => (0u64, 0usize),
        Origin::Injector => {
            inner.stats.injector_pops.fetch_add(1, Ordering::Relaxed);
            obs_event!(inner, me, InjectorPop, job.id() as usize, 0, 0);
            (1, 0)
        }
        Origin::Stolen(v) => {
            inner.stats.steals.fetch_add(1, Ordering::Relaxed);
            obs_event!(inner, me, StealSuccess, v, job.id() as usize, 0);
            (2, v)
        }
    };
    // The macro ignores unused bindings when tracing is compiled out.
    let _ = (ocode, victim);
    obs_event!(inner, me, TaskEnter, job.id() as usize, ocode, victim);
    #[cfg(feature = "obs")]
    let wscope = inner.witness.get().map(|w| {
        mo_obs::witness::scope(
            w.as_ref(),
            inner.sink.get().map(|s| s.as_ref()),
            me,
            job.id() as u64,
        )
    });
    // SAFETY: popped from a queue, so this thread owns the right to run
    // the job and its frame is still pinned (module docs).
    unsafe { job.execute(ctx) };
    // Close the witness scope before TaskExit so the delta lands inside
    // the task's slice (`execute` never unwinds: the stack job catches
    // panics internally).
    #[cfg(feature = "obs")]
    drop(wscope);
    obs_event!(inner, me, TaskExit, job.id() as usize, 0, 0);
    inner.note_task(me);
    inner.reg.signal();
}

/// Account one completely empty scan (a failed steal attempt).
fn note_empty_scan(ctx: &Ctx<'_>) {
    let inner = ctx.inner();
    inner.stats.failed_steals.fetch_add(1, Ordering::Relaxed);
    obs_event!(inner, ctx.worker_index(), StealAttempt, 0, 0, 0);
}

thread_local! {
    /// `(pool identity, worker index)` of the resident worker running
    /// on this thread, if any.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn token(inner: &Inner) -> usize {
    inner as *const Inner as usize
}

/// The worker index of the current thread *within `inner`'s pool*, or
/// `None` for external threads (and for workers of other pools).
pub(super) fn current_worker(inner: &Inner) -> Option<usize> {
    WORKER
        .with(Cell::get)
        .and_then(|(t, i)| (t == token(inner)).then_some(i))
}

/// Body of a resident worker thread.
pub(super) fn worker_loop(inner: Arc<Inner>, idx: usize) {
    WORKER.with(|w| w.set(Some((token(&inner), idx))));
    let view = SbPool::view(Arc::clone(&inner));
    let ctx = Ctx::for_worker(&view, idx);
    let reg = &inner.reg;
    loop {
        let seen = reg.events();
        if let Some((job, origin)) = reg.find_work(Some(idx)) {
            execute_found(&ctx, job, origin);
            continue;
        }
        note_empty_scan(&ctx);
        if reg.stop.load(Ordering::Acquire) {
            return;
        }
        let g = reg.events.lock().unwrap();
        if *g != seen {
            continue; // something happened since the scan began
        }
        if reg.stop.load(Ordering::Acquire) {
            return;
        }
        inner.stats.parks.fetch_add(1, Ordering::Relaxed);
        obs_event!(inner, Some(idx), Park, 0, 0, 0);
        drop(reg.wake.wait(g).unwrap());
        obs_event!(inner, Some(idx), Unpark, 0, 0, 0);
    }
}

/// Help-first wait: run other ready tasks until `latch` is set, parking
/// only when the whole pool is quiescent. The latch-setter always bumps
/// the event counter after setting, so the counter re-check under the
/// lock makes the final probe race-free.
pub(super) fn wait_until(ctx: &Ctx<'_>, latch: &Latch) {
    let inner = ctx.inner();
    let reg = &inner.reg;
    loop {
        if latch.probe() {
            return;
        }
        let seen = reg.events();
        if let Some((job, origin)) = reg.find_work(ctx.worker_index()) {
            execute_found(ctx, job, origin);
            continue;
        }
        note_empty_scan(ctx);
        if latch.probe() {
            return;
        }
        let g = reg.events.lock().unwrap();
        if *g != seen {
            continue;
        }
        inner.stats.parks.fetch_add(1, Ordering::Relaxed);
        obs_event!(inner, ctx.worker_index(), Park, 0, 0, 0);
        drop(reg.wake.wait(g).unwrap());
        obs_event!(inner, ctx.worker_index(), Unpark, 0, 0, 0);
    }
}
