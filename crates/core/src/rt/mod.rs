//! Real-thread realization of space-bound scheduling.
//!
//! The simulator in [`crate::sched`] measures the *model* quantities
//! (parallel steps, per-level cache misses). This module shows the same
//! hint API running on an actual machine: a fork–join pool whose
//! parallelization decisions are driven by task **space bounds** against a
//! configured cache hierarchy, exactly in the spirit of the paper's SB
//! scheduler:
//!
//! * a fork whose children's space bounds fit inside one private (L1-level)
//!   cache runs **serially** — on the model those children would be
//!   anchored at the same L1 and execute on one core anyway, so spawning
//!   would only pay overhead and wreck locality;
//! * larger forks run in parallel while core *permits* are available, so
//!   the number of live workers never exceeds the number of cores, and
//!   oversubscription (the real-machine analogue of violating a cache's
//!   space admission) is avoided;
//! * `pfor` provides the CGC discipline: contiguous chunks of at least a
//!   caller-supplied grain, one per available core.
//!
//! Execution is a **persistent work-stealing pool** (see [`exec`]): one
//! lazily-started resident worker per core, each with a Chase–Lev-style
//! owner-LIFO/thief-FIFO deque, parking on a condvar when idle. A
//! parallel fork pushes its second branch as a stealable task, runs the
//! first inline, and — help-first — executes other ready tasks while
//! waiting on a stolen branch instead of blocking. No OS thread is ever
//! created on the `join`/`pfor` hot paths; workers are spawned once per
//! pool lifetime (on the first stealable fork, or eagerly via
//! [`SbPool::warm`]) and joined when the pool drops. Below the L1
//! space cutoff no task is ever queued, so the model-level guarantee is
//! unchanged: small forks stay serial and in cache.

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[cfg(feature = "obs")]
use std::sync::OnceLock;

mod exec;
pub mod sysfs;

/// Record one trace event against the pool's attached sink, if any.
///
/// With the `obs` feature off this expands to nothing at all — the
/// payload expressions are not evaluated — so an untraced build carries
/// zero cost. With the feature on but no sink attached, the cost is one
/// `OnceLock` load (a single atomic read) per call site.
///
/// Payload expressions must be pure: they disappear from untraced
/// builds.
macro_rules! obs_event {
    ($inner:expr, $worker:expr, $kind:ident, $a:expr, $b:expr, $c:expr) => {
        #[cfg(feature = "obs")]
        {
            if let Some(sink) = $inner.sink.get() {
                sink.emit(
                    $worker,
                    mo_obs::EventKind::$kind,
                    $a as u64,
                    $b as u64,
                    $c as u64,
                );
            }
        }
    };
}
pub(crate) use obs_event;

/// One level of the real machine's hierarchy (capacity in *words*, i.e.
/// `u64`-sized units, to match the simulator's convention).
#[derive(Debug, Clone, Copy)]
pub struct HwLevel {
    /// Cache capacity in words.
    pub capacity: usize,
    /// Number of child units sharing one cache at this level.
    pub fanout: usize,
}

/// A description of the real machine for the [`SbPool`].
#[derive(Debug, Clone)]
pub struct HwHierarchy {
    levels: Vec<HwLevel>,
}

impl HwHierarchy {
    /// Build from explicit levels (L1 first, fanout of L1 must be 1).
    pub fn new(levels: Vec<HwLevel>) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        assert_eq!(levels[0].fanout, 1, "L1 caches are private");
        Self { levels }
    }

    /// A flat machine: `cores` cores with private caches of `l1_words`
    /// under a shared cache of `shared_words`.
    pub fn flat(cores: usize, l1_words: usize, shared_words: usize) -> Self {
        Self::new(vec![
            HwLevel {
                capacity: l1_words,
                fanout: 1,
            },
            HwLevel {
                capacity: shared_words,
                fanout: cores.max(1),
            },
        ])
    }

    /// Best-effort detection of the running machine.
    ///
    /// On Linux the full multi-level hierarchy (every data/unified cache
    /// level with its real capacity and sharing fanout) is probed from
    /// `/sys/devices/system/cpu/cpu*/cache/index*` — see [`sysfs::probe`].
    /// When sysfs is absent or unreadable (non-Linux, sandboxes), falls
    /// back to `available_parallelism` cores with a 32 KiB L1 under an
    /// 8 MiB shared last-level cache (the common desktop shape).
    pub fn detect() -> Self {
        if let Some(h) = sysfs::probe(std::path::Path::new("/sys/devices/system/cpu")) {
            return h;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::flat(cores, 32 * 1024 / 8, 8 * 1024 * 1024 / 8)
    }

    /// Total number of cores.
    pub fn cores(&self) -> usize {
        self.levels.iter().map(|l| l.fanout).product()
    }

    /// Private (L1) capacity in words: the serialization cutoff.
    pub fn l1_capacity(&self) -> usize {
        self.levels[0].capacity
    }

    /// The levels, L1 first.
    pub fn levels(&self) -> &[HwLevel] {
        &self.levels
    }

    /// Per-instance capacity of level `level` in words, or `None` when
    /// the level does not exist (the non-panicking capacity query).
    pub fn level_capacity(&self, level: usize) -> Option<usize> {
        self.levels.get(level).map(|l| l.capacity)
    }

    /// Number of physical cache instances at `level`: the product of the
    /// fanouts *above* it (one LLC, `cores()` L1s on a flat machine).
    pub fn instances_at(&self, level: usize) -> Option<usize> {
        if level >= self.levels.len() {
            return None;
        }
        Some(self.levels[level + 1..].iter().map(|l| l.fanout).product())
    }

    /// Machine-wide capacity of `level` in words: per-instance capacity
    /// times the number of instances.
    pub fn aggregate_capacity(&self, level: usize) -> Option<usize> {
        Some(self.level_capacity(level)? * self.instances_at(level)?)
    }

    /// The smallest level whose *per-instance* capacity holds `words` —
    /// where the SB scheduler would anchor a task of that footprint.
    /// `None` when the footprint exceeds even the outermost cache.
    pub fn anchor_level(&self, words: usize) -> Option<usize> {
        self.levels.iter().position(|l| l.capacity >= words)
    }
}

/// Statistics of a pool run (monotone counters, reset per [`SbPool::run`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct RtStats {
    /// Forks executed in parallel (the second branch became stealable).
    pub parallel_forks: u64,
    /// Forks serialized by the space-bound cutoff.
    pub serial_forks: u64,
    /// Forks serialized because no core permit was available.
    pub denied_forks: u64,
    /// Tasks executed from another worker's deque.
    pub steals: u64,
    /// Full work-finding scans that found nothing anywhere.
    pub failed_steals: u64,
    /// Times a thread went to sleep on the idle condvar.
    pub parks: u64,
    /// Tasks popped from the external-submission injector queue.
    pub injector_pops: u64,
}

impl RtStats {
    /// Total forks taken (serial + parallel + denied).
    pub fn total_forks(&self) -> u64 {
        self.parallel_forks + self.serial_forks + self.denied_forks
    }
}

// Loom model builds (CI-only: `RUSTFLAGS="--cfg loom"` plus a CI-time
// dev-dependency, see .github/workflows/ci.yml) swap the seqlock's
// atomics for loom's permutation-tested ones; everything else in the
// pool keeps std's.
#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicU64 as SeqAtomicU64};
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicU64 as SeqAtomicU64};

/// Lock-free counters backing [`RtStats`], snapshotted under a
/// generation seqlock.
///
/// # Snapshot/reset protocol
///
/// The counters themselves are independent relaxed atomics — cheap to
/// bump from any thread — so a multi-cell snapshot is only meaningful
/// if it cannot interleave with [`reset`](Self::reset) (which would mix
/// pre- and post-reset values across cells: the race this generation
/// word exists to close). `reset` bumps `generation` to an odd value,
/// issues a release fence, zeroes every cell, then bumps it back to
/// even with release ordering; `snapshot` retries until it reads the
/// same even generation on both sides of its loads, with an acquire
/// fence between the cell loads and the recheck.
///
/// The fence pair is load-bearing: the cell stores and loads are all
/// relaxed, so without it a snapshot could observe a reset's zeroes
/// while both generation loads still return the old even value (the
/// classic seqlock weak-memory trap). With it, a cell load that read
/// any reset store forces the recheck to see the odd generation
/// (release/acquire fence synchronization), and a first load that read
/// the final even generation forces every cell load to see the zeroes
/// (release store / acquire load). Concurrent *increments* during a
/// snapshot remain visible or not per cell — that is inherent to
/// monotone relaxed counters and harmless; what cannot happen is a
/// snapshot that saw `serial_forks` after a reset but `parallel_forks`
/// from before it. The `loom_tests` module model-checks exactly this.
#[derive(Debug)]
struct StatCells {
    generation: SeqAtomicU64,
    parallel_forks: SeqAtomicU64,
    serial_forks: SeqAtomicU64,
    denied_forks: SeqAtomicU64,
    steals: SeqAtomicU64,
    failed_steals: SeqAtomicU64,
    parks: SeqAtomicU64,
    injector_pops: SeqAtomicU64,
}

impl Default for StatCells {
    // Not derived: loom's `AtomicU64` lacks the `Default` impl.
    fn default() -> Self {
        Self {
            generation: SeqAtomicU64::new(0),
            parallel_forks: SeqAtomicU64::new(0),
            serial_forks: SeqAtomicU64::new(0),
            denied_forks: SeqAtomicU64::new(0),
            steals: SeqAtomicU64::new(0),
            failed_steals: SeqAtomicU64::new(0),
            parks: SeqAtomicU64::new(0),
            injector_pops: SeqAtomicU64::new(0),
        }
    }
}

impl StatCells {
    fn cells(&self) -> [&SeqAtomicU64; 7] {
        [
            &self.parallel_forks,
            &self.serial_forks,
            &self.denied_forks,
            &self.steals,
            &self.failed_steals,
            &self.parks,
            &self.injector_pops,
        ]
    }

    /// Zero every counter, atomically with respect to [`snapshot`](Self::snapshot).
    fn reset(&self) {
        // Odd generation = reset in progress; snapshots spin past it.
        self.generation.fetch_add(1, Ordering::Relaxed);
        // Pairs with the acquire fence in `snapshot`: a snapshot whose
        // cell loads saw any of the zeroes below must then see the odd
        // generation on its recheck and retry.
        fence(Ordering::Release);
        for c in self.cells() {
            c.store(0, Ordering::Relaxed);
        }
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// A consistent multi-cell copy (see the protocol above).
    fn snapshot(&self) -> RtStats {
        loop {
            let before = self.generation.load(Ordering::Acquire);
            if before & 1 == 1 {
                Self::backoff();
                continue;
            }
            let s = RtStats {
                parallel_forks: self.parallel_forks.load(Ordering::Relaxed),
                serial_forks: self.serial_forks.load(Ordering::Relaxed),
                denied_forks: self.denied_forks.load(Ordering::Relaxed),
                steals: self.steals.load(Ordering::Relaxed),
                failed_steals: self.failed_steals.load(Ordering::Relaxed),
                parks: self.parks.load(Ordering::Relaxed),
                injector_pops: self.injector_pops.load(Ordering::Relaxed),
            };
            // Pairs with the release fence in `reset` (see above).
            fence(Ordering::Acquire);
            if self.generation.load(Ordering::Relaxed) == before {
                return s;
            }
        }
    }

    #[cfg(not(loom))]
    fn backoff() {
        std::hint::spin_loop();
    }

    // Loom needs an explicit yield to know the spinner is not making
    // progress on its own; a raw spin hint would livelock the model.
    #[cfg(loom)]
    fn backoff() {
        loom::thread::yield_now();
    }
}

/// State shared between the user-facing pool handle and its resident
/// workers.
struct Inner {
    hier: HwHierarchy,
    /// Remaining core permits (may briefly go negative under races; only
    /// `try_acquire`'s check is gated).
    permits: AtomicIsize,
    stats: StatCells,
    /// Tasks executed per resident worker, plus one trailing slot for
    /// external (non-resident) threads that help-execute while waiting.
    tasks: Box<[AtomicU64]>,
    reg: exec::Registry,
    /// The attached trace sink, set at most once per pool lifetime.
    #[cfg(feature = "obs")]
    sink: OnceLock<Arc<mo_obs::TraceSink>>,
    /// The attached cache witness, set at most once per pool lifetime.
    /// Scoped around every queued task (and the root of each `enter`)
    /// so measured cache traffic attributes to the task that incurred
    /// it; deltas are recorded against `sink` as `CacheWitness` events.
    #[cfg(feature = "obs")]
    witness: OnceLock<Arc<dyn mo_obs::witness::TaskWitness>>,
}

impl Inner {
    fn try_acquire(&self) -> bool {
        self.permits
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| {
                (p > 0).then(|| p - 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.permits.fetch_add(1, Ordering::AcqRel);
    }

    /// Count one executed queued task against `worker` (the trailing
    /// slot aggregates all external threads).
    fn note_task(&self, worker: Option<usize>) {
        let idx = worker.unwrap_or(self.tasks.len() - 1);
        self.tasks[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// The pool's resolved execution shape, reported by [`SbPool::info`]
/// and [`SbPool::warm`] so downstream layers (`mo-serve`, `obs_report`)
/// do not re-derive worker counts and topology themselves.
#[derive(Debug, Clone)]
pub struct PoolInfo {
    /// Total cores of the hierarchy (the parallelism the SB scheduler
    /// admits against).
    pub cores: usize,
    /// Resident worker threads the pool runs once started: `cores` on
    /// multi-core hierarchies, `0` on single-core ones (which never
    /// queue work, so no workers are ever spawned).
    pub resident_workers: usize,
    /// Whether the resident workers are currently running.
    pub started: bool,
    /// Private (L1) capacity in words: the fork-serialization cutoff.
    pub l1_words: usize,
    /// The cache levels, L1 first (capacity in words, sharing fanout).
    pub levels: Vec<HwLevel>,
}

/// A space-bound fork–join pool over the real machine.
pub struct SbPool {
    inner: Arc<Inner>,
    /// Join handles of the resident workers. Only the user-created
    /// handle owns them (and terminates the pool on drop); the views
    /// the workers themselves hold keep this empty.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for SbPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SbPool")
            .field("hier", &self.inner.hier)
            .field("permits", &self.inner.permits)
            .finish_non_exhaustive()
    }
}

impl SbPool {
    /// Create a pool for `hier`. No threads are spawned yet: the
    /// resident workers start on the first stealable fork (or on
    /// [`warm`](Self::warm)).
    pub fn new(hier: HwHierarchy) -> Self {
        let cores = hier.cores() as isize;
        Self {
            inner: Arc::new(Inner {
                permits: AtomicIsize::new(cores - 1),
                stats: StatCells::default(),
                tasks: (0..cores.max(1) as usize + 1)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                reg: exec::Registry::new(cores.max(1) as usize),
                hier,
                #[cfg(feature = "obs")]
                sink: OnceLock::new(),
                #[cfg(feature = "obs")]
                witness: OnceLock::new(),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Pool over the detected machine.
    pub fn detected() -> Self {
        Self::new(HwHierarchy::detect())
    }

    /// A worker's handle onto an existing pool (no worker ownership).
    fn view(inner: Arc<Inner>) -> Self {
        Self {
            inner,
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The hierarchy the pool was built for.
    pub fn hierarchy(&self) -> &HwHierarchy {
        &self.inner.hier
    }

    /// Statistics of the runtime activity so far: a consistent snapshot
    /// with respect to [`run`](Self::run)'s reset (see [`StatCells`]'s
    /// protocol note).
    pub fn stats(&self) -> RtStats {
        self.inner.stats.snapshot()
    }

    /// Queued tasks executed per resident worker since the pool was
    /// created; the trailing slot aggregates every external thread that
    /// help-executed inside `enter`/`run`. Never reset.
    pub fn per_worker_tasks(&self) -> Vec<u64> {
        self.inner
            .tasks
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .collect()
    }

    /// Run a root task. The context it receives exposes `join` and `pfor`.
    pub fn run<R: Send>(&self, f: impl FnOnce(&Ctx<'_>) -> R + Send) -> R {
        self.inner.stats.reset();
        self.enter(f)
    }

    /// Like [`run`](Self::run) but *without* resetting [`stats`](Self::stats)
    /// (monotone counters accumulate across entries). This is the entry
    /// point for long-lived services where several threads run tasks on
    /// one shared pool concurrently: resetting would race, and a server
    /// wants cumulative fork counts for its metrics deltas anyway.
    ///
    /// The closure runs on the calling thread; only stealable forks it
    /// takes move to the resident workers. A call from a resident
    /// worker of this same pool keeps that worker's deque identity.
    pub fn enter<R: Send>(&self, f: impl FnOnce(&Ctx<'_>) -> R + Send) -> R {
        let ctx = Ctx {
            pool: self,
            worker: exec::current_worker(&self.inner),
        };
        // Witness root scope (job id 0): traffic the calling thread
        // incurs inline — outside any queued task — still attributes.
        #[cfg(feature = "obs")]
        let _wscope = self.inner.witness.get().map(|w| {
            mo_obs::witness::scope(
                w.as_ref(),
                self.inner.sink.get().map(|s| s.as_ref()),
                ctx.worker,
                0,
            )
        });
        f(&ctx)
    }

    /// Core permits currently available: how many additional parallel
    /// forks the pool would grant right now. Never negative; purely
    /// advisory under concurrency.
    pub fn available_permits(&self) -> usize {
        self.inner.permits.load(Ordering::Relaxed).max(0) as usize
    }

    /// Pre-spawn the resident workers so the first request served by a
    /// long-lived pool does not pay thread creation. Idempotent; a
    /// no-op on single-core hierarchies (which never queue work).
    /// Returns the pool's resolved shape so callers (a server sizing
    /// its own worker count, `obs_report` labelling its output) need
    /// not re-derive worker counts or topology.
    pub fn warm(&self) -> PoolInfo {
        self.ensure_started();
        self.info()
    }

    /// The pool's resolved execution shape. See [`PoolInfo`].
    pub fn info(&self) -> PoolInfo {
        let cores = self.inner.hier.cores();
        PoolInfo {
            cores,
            resident_workers: if cores > 1 { cores } else { 0 },
            started: self.inner.reg.started.load(Ordering::Acquire),
            l1_words: self.inner.hier.l1_capacity(),
            levels: self.inner.hier.levels().to_vec(),
        }
    }

    /// Attach a trace sink; every scheduler decision taken from now on
    /// is recorded into it. At most one sink per pool lifetime: returns
    /// `false` (and leaves the existing sink) if one is already
    /// attached. The sink should have [`mo_obs::TraceSink::workers`]
    /// rings ≥ the pool's core count, or events from the extra workers
    /// are routed to its external ring.
    #[cfg(feature = "obs")]
    pub fn attach_sink(&self, sink: Arc<mo_obs::TraceSink>) -> bool {
        self.inner.sink.set(sink).is_ok()
    }

    /// The attached trace sink, if any.
    #[cfg(feature = "obs")]
    pub fn sink(&self) -> Option<&Arc<mo_obs::TraceSink>> {
        self.inner.sink.get()
    }

    /// Attach a cache witness; from now on every queued task (and the
    /// root scope of each [`enter`](Self::enter)) is bracketed with
    /// witness enter/exit so measured cache traffic attributes to the
    /// task that incurred it. Deltas reach the attached sink as
    /// `CacheWitness` events, so for a useful trace attach the sink
    /// first. At most one witness per pool lifetime: returns `false`
    /// (and keeps the existing witness) on a second attach.
    #[cfg(feature = "obs")]
    pub fn attach_witness(&self, witness: Arc<dyn mo_obs::witness::TaskWitness>) -> bool {
        self.inner.witness.set(witness).is_ok()
    }

    /// The attached cache witness, if any.
    #[cfg(feature = "obs")]
    pub fn witness(&self) -> Option<&Arc<dyn mo_obs::witness::TaskWitness>> {
        self.inner.witness.get()
    }

    /// Resident worker threads currently running: `0` until the first
    /// stealable fork (or [`warm`](Self::warm)), then one per core for
    /// the pool's lifetime. Only meaningful on the creating handle.
    pub fn resident_workers(&self) -> usize {
        self.handles.lock().unwrap().len()
    }

    /// Spawn the resident workers if they are not running yet.
    fn ensure_started(&self) {
        let cores = self.inner.hier.cores();
        if cores <= 1 || self.inner.reg.started.load(Ordering::Acquire) {
            return;
        }
        let mut handles = self.handles.lock().unwrap();
        if self.inner.reg.started.load(Ordering::Acquire) {
            return;
        }
        for idx in 0..cores {
            let inner = Arc::clone(&self.inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sbpool-{idx}"))
                    // Deep recursions plus help-first stealing stack
                    // unrelated frames; reserve generously (virtual).
                    .stack_size(16 << 20)
                    .spawn(move || exec::worker_loop(inner, idx))
                    .expect("spawn SbPool worker"),
            );
        }
        self.inner.reg.started.store(true, Ordering::Release);
    }

    #[cfg(test)]
    fn try_acquire(&self) -> bool {
        self.inner.try_acquire()
    }

    #[cfg(test)]
    fn release(&self) {
        self.inner.release();
    }
}

impl Drop for SbPool {
    fn drop(&mut self) {
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        if handles.is_empty() {
            return; // worker view, or workers never started
        }
        self.inner.reg.request_stop();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// SB anchor level of `words` against `hier`, encoded for event
/// payloads (`u64::MAX` = fits no level).
#[cfg(feature = "obs")]
fn anchor_of(hier: &HwHierarchy, words: usize) -> u64 {
    hier.anchor_level(words).map_or(u64::MAX, |l| l as u64)
}

/// A batch of boxed jobs for [`Ctx::join_all`].
pub type Jobs<'a, R> = Vec<Box<dyn FnOnce(&Ctx<'_>) -> R + Send + 'a>>;

/// Execution context handed to tasks running on an [`SbPool`].
#[derive(Debug, Clone, Copy)]
pub struct Ctx<'p> {
    pool: &'p SbPool,
    /// Deque identity: `Some(i)` on resident worker `i`, `None` on an
    /// external thread (whose forks go through the injector).
    worker: Option<usize>,
}

impl<'p> Ctx<'p> {
    /// Context of resident worker `idx` (used by the worker loop).
    fn for_worker(pool: &'p SbPool, idx: usize) -> Self {
        Self {
            pool,
            worker: Some(idx),
        }
    }

    /// The pool.
    pub fn pool(&self) -> &'p SbPool {
        self.pool
    }

    fn inner(&self) -> &'p Inner {
        &self.pool.inner
    }

    fn worker_index(&self) -> Option<usize> {
        self.worker
    }

    /// SB fork–join: run `fa` and `fb`, in parallel when their space
    /// bounds (in words) justify it and a core permit is available.
    pub fn join<RA, RB>(
        &self,
        space_a: usize,
        fa: impl FnOnce(&Ctx<'_>) -> RA + Send,
        space_b: usize,
        fb: impl FnOnce(&Ctx<'_>) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let inner = self.inner();
        let cutoff = inner.hier.l1_capacity();
        let space = space_a.max(space_b);
        if space <= cutoff {
            // Both children would anchor at one private cache: serialize.
            inner.stats.serial_forks.fetch_add(1, Ordering::Relaxed);
            obs_event!(
                inner,
                self.worker,
                ForkSerial,
                space,
                anchor_of(&inner.hier, space),
                cutoff
            );
            return (fa(self), fb(self));
        }
        if inner.try_acquire() {
            inner.stats.parallel_forks.fetch_add(1, Ordering::Relaxed);
            obs_event!(
                inner,
                self.worker,
                ForkParallel,
                space,
                anchor_of(&inner.hier, space),
                0
            );
            return self.fork_join(fa, fb);
        }
        // Denied: run the first half inline, then re-check — a permit
        // that freed while `fa` ran still lets `fb` become a stealable
        // fork, so a transient shortage does not serialize the rest of
        // the subtree.
        let ra = fa(self);
        if inner.try_acquire() {
            inner.stats.parallel_forks.fetch_add(1, Ordering::Relaxed);
            obs_event!(
                inner,
                self.worker,
                ForkParallel,
                space,
                anchor_of(&inner.hier, space),
                0
            );
            return (ra, self.fork_stealable(fb));
        }
        inner.stats.denied_forks.fetch_add(1, Ordering::Relaxed);
        obs_event!(
            inner,
            self.worker,
            ForkDenied,
            space,
            anchor_of(&inner.hier, space),
            0
        );
        (ra, fb(self))
    }

    /// The parallel fork: queue `fb` as a stealable task, run `fa`
    /// inline, then either pop `fb` back (nobody stole it — run it
    /// here, keeping the subtree's cache affinity) or help-first wait:
    /// execute other ready tasks until the thief's latch is set.
    ///
    /// The caller has already acquired the core permit; it is released
    /// when `fb` completes, whichever thread ran it.
    #[allow(unsafe_code)] // stack-job pinning, see `exec` module docs
    fn fork_join<RA, RB>(
        &self,
        fa: impl FnOnce(&Ctx<'_>) -> RA + Send,
        fb: impl FnOnce(&Ctx<'_>) -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let inner = self.inner();
        let job = exec::StackJob::new(move |c: &Ctx<'_>| {
            let r = fb(c);
            inner.release();
            r
        });
        self.pool.ensure_started();
        // SAFETY: `job` stays pinned in this frame until it has run or
        // been reclaimed below, on both the return and unwind paths.
        let jref = unsafe { job.as_job_ref() };
        inner.reg.push(self.worker, jref);
        let ra = match panic::catch_unwind(AssertUnwindSafe(|| fa(self))) {
            Ok(r) => r,
            Err(payload) => {
                // The queued job still points into this frame: reclaim
                // it un-run (returning its permit) or wait the thief out.
                if inner.reg.take_back(self.worker, jref.id()) {
                    inner.release();
                } else {
                    exec::wait_until(self, job.latch());
                }
                panic::resume_unwind(payload);
            }
        };
        let rb = if inner.reg.take_back(self.worker, jref.id()) {
            (job.take_f())(self) // releases the permit internally
        } else {
            exec::wait_until(self, job.latch());
            job.into_result()
        };
        (ra, rb)
    }

    /// Queue `fb` as a stealable task and help-first wait for it: the
    /// denied-retry path, where another worker may pick `fb` up while
    /// this thread drains other ready tasks (including, if nobody
    /// steals it, `fb` itself).
    #[allow(unsafe_code)] // stack-job pinning, see `exec` module docs
    fn fork_stealable<RB>(&self, fb: impl FnOnce(&Ctx<'_>) -> RB + Send) -> RB
    where
        RB: Send,
    {
        let inner = self.inner();
        let job = exec::StackJob::new(move |c: &Ctx<'_>| {
            let r = fb(c);
            inner.release();
            r
        });
        self.pool.ensure_started();
        // SAFETY: `wait_until` does not return before the job has run.
        inner.reg.push(self.worker, unsafe { job.as_job_ref() });
        exec::wait_until(self, job.latch());
        job.into_result()
    }

    /// N-way SB fork–join over homogeneous closures. An empty batch is a
    /// no-op returning an empty `Vec`.
    pub fn join_all<R: Send>(&self, space_each: usize, fs: Jobs<'_, R>) -> Vec<R> {
        match fs.len() {
            0 | 1 => {
                let mut fs = fs;
                fs.pop().map(|f| vec![f(self)]).unwrap_or_default()
            }
            _ => {
                let mut fs = fs;
                let rest = fs.split_off(fs.len() / 2);
                let first = fs;
                let total = space_each * (first.len() + rest.len());
                let (mut a, b) = self.join(
                    total / 2,
                    move |ctx| ctx.join_all(space_each, first),
                    total / 2,
                    move |ctx| ctx.join_all(space_each, rest),
                );
                a.extend(b);
                a
            }
        }
    }

    /// CGC parallel for: `body` is invoked on contiguous chunks of
    /// `range`, each at least `grain` long, at most one per core. The
    /// trailing chunks are queued as stealable tasks (never fresh
    /// threads); the first runs inline, and the caller helps drain the
    /// pool until every chunk has finished.
    #[allow(unsafe_code)] // stack-job pinning, see `exec` module docs
    pub fn pfor(&self, range: Range<usize>, grain: usize, body: impl Fn(Range<usize>) + Sync) {
        let n = range.len();
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        let cores = self.inner().hier.cores();
        let nseg = (n / grain).clamp(1, cores);
        if nseg == 1 {
            obs_event!(
                self.inner(),
                self.worker,
                CgcSegment,
                range.start,
                range.end,
                grain
            );
            body(range);
            return;
        }
        let per = n.div_ceil(nseg);
        let body = &body;
        let jobs: Vec<_> = (1..nseg)
            .filter_map(|k| {
                let lo = range.start + k * per;
                let hi = (range.start + (k + 1) * per).min(range.end);
                (lo < hi).then(|| {
                    obs_event!(self.inner(), self.worker, CgcSegment, lo, hi, grain);
                    exec::StackJob::new(move |_: &Ctx<'_>| body(lo..hi))
                })
            })
            .collect();
        self.pool.ensure_started();
        for job in &jobs {
            // SAFETY: every job is waited for below — also on the
            // first chunk's unwind path — before this frame ends.
            self.inner()
                .reg
                .push(self.worker, unsafe { job.as_job_ref() });
        }
        obs_event!(
            self.inner(),
            self.worker,
            CgcSegment,
            range.start,
            range.start + per,
            grain
        );
        let first = panic::catch_unwind(AssertUnwindSafe(|| body(range.start..range.start + per)));
        for job in &jobs {
            exec::wait_until(self, job.latch());
        }
        if let Err(payload) = first {
            panic::resume_unwind(payload);
        }
        for job in jobs {
            job.into_result();
        }
    }
}

// Not compiled under `--cfg loom`: these tests drive real pools and
// std threads, which loom's replacement atomics cannot run outside a
// model. The loom build runs `loom_tests` below instead.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool() -> SbPool {
        SbPool::new(HwHierarchy::flat(4, 1024, 1 << 20))
    }

    #[test]
    fn join_returns_both_results() {
        let p = pool();
        let (a, b) = p.run(|ctx| ctx.join(1 << 16, |_| 21u32, 1 << 16, |_| 2u32));
        assert_eq!(a * b, 42);
    }

    #[test]
    fn small_forks_serialize() {
        let p = pool();
        p.run(|ctx| {
            ctx.join(10, |_| (), 10, |_| ());
        });
        let st = p.stats();
        assert_eq!(st.serial_forks, 1);
        assert_eq!(st.parallel_forks, 0);
    }

    #[test]
    fn large_forks_parallelize() {
        let p = pool();
        p.run(|ctx| {
            ctx.join(1 << 16, |_| (), 1 << 16, |_| ());
        });
        assert_eq!(p.stats().parallel_forks, 1);
    }

    #[test]
    fn recursive_sum_is_correct() {
        fn sum(ctx: &Ctx<'_>, data: &[u64]) -> u64 {
            if data.len() <= 128 {
                return data.iter().sum();
            }
            let (l, r) = data.split_at(data.len() / 2);
            let (a, b) = ctx.join(l.len() * 8, |c| sum(c, l), r.len() * 8, |c| sum(c, r));
            a + b
        }
        let data: Vec<u64> = (0..100_000u64).collect();
        let p = pool();
        let total = p.run(|ctx| sum(ctx, &data));
        assert_eq!(total, 100_000 * 99_999 / 2);
    }

    #[test]
    fn pfor_covers_range_exactly_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let p = pool();
        p.run(|ctx| {
            ctx.pfor(0..n, 64, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pfor_small_range_runs_inline() {
        let p = pool();
        let counter = AtomicU64::new(0);
        p.run(|ctx| {
            ctx.pfor(0..10, 64, |r| {
                counter.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn permits_bound_concurrency() {
        // Fork breadth 16 on a 4-core pool must not deadlock and must
        // deny some forks.
        fn spin(ctx: &Ctx<'_>, depth: usize) {
            if depth == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
                return;
            }
            ctx.join(
                1 << 20,
                |c| spin(c, depth - 1),
                1 << 20,
                |c| spin(c, depth - 1),
            );
        }
        let p = pool();
        p.run(|ctx| spin(ctx, 4));
        let st = p.stats();
        assert!(st.parallel_forks >= 1);
        assert!(st.parallel_forks <= 3 + st.denied_forks + 16);
        // Permits restored.
        assert!(p.try_acquire());
        p.release();
    }

    #[test]
    fn join_all_empty_returns_empty() {
        // Regression: an empty batch used to reach a `pop().unwrap()`
        // style path; it must be a clean no-op.
        let p = pool();
        let out: Vec<u32> = p.run(|ctx| ctx.join_all(1 << 14, Vec::new()));
        assert!(out.is_empty());
        let one: Vec<u32> = p.run(|ctx| {
            let fs: Jobs<'_, u32> = vec![Box::new(|_: &Ctx<'_>| 7)];
            ctx.join_all(1 << 14, fs)
        });
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn capacity_queries_are_total() {
        let h = HwHierarchy::flat(4, 1024, 1 << 20);
        assert_eq!(h.level_capacity(0), Some(1024));
        assert_eq!(h.level_capacity(1), Some(1 << 20));
        assert_eq!(h.level_capacity(2), None);
        assert_eq!(h.instances_at(0), Some(4));
        assert_eq!(h.instances_at(1), Some(1));
        assert_eq!(h.instances_at(9), None);
        assert_eq!(h.aggregate_capacity(0), Some(4 * 1024));
        assert_eq!(h.aggregate_capacity(1), Some(1 << 20));
        assert_eq!(h.anchor_level(100), Some(0));
        assert_eq!(h.anchor_level(1024), Some(0));
        assert_eq!(h.anchor_level(1025), Some(1));
        assert_eq!(h.anchor_level(usize::MAX), None);
    }

    #[test]
    fn enter_accumulates_stats_and_permits_recover() {
        let p = pool();
        assert_eq!(p.available_permits(), 3);
        p.run(|ctx| {
            ctx.join(1 << 16, |_| (), 1 << 16, |_| ());
        });
        p.enter(|ctx| {
            ctx.join(1 << 16, |_| (), 1 << 16, |_| ());
        });
        // enter() did not reset the counter from run().
        assert_eq!(p.stats().parallel_forks, 2);
        assert_eq!(p.available_permits(), 3);
    }

    #[test]
    fn stats_snapshot_is_consistent_across_reset() {
        // Hammer reset() from one thread while another snapshots: the
        // seqlock must never let a snapshot mix pre- and post-reset
        // cells. We detect mixing with a pair of counters that are only
        // ever incremented together, so any consistent snapshot (reset
        // or not) sees them within one increment of each other.
        let cells = Arc::new(StatCells::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let cells = Arc::clone(&cells);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    cells.serial_forks.fetch_add(1, Ordering::Relaxed);
                    cells.parallel_forks.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                    if i.is_multiple_of(64) {
                        cells.reset();
                    }
                }
            })
        };
        for _ in 0..10_000 {
            let s = cells.snapshot();
            let lo = s.serial_forks.min(s.parallel_forks);
            let hi = s.serial_forks.max(s.parallel_forks);
            // Without the generation word, a snapshot racing reset sees
            // e.g. serial=63, parallel=0 — a gap of dozens.
            assert!(
                hi - lo <= 1,
                "torn snapshot across reset: serial={} parallel={}",
                s.serial_forks,
                s.parallel_forks
            );
        }
        stop.store(true, Ordering::Release);
        writer.join().unwrap();
    }

    #[test]
    fn seqlock_generation_protocol() {
        // The generation word advances by exactly 2 per reset (odd =
        // reset in progress, even = quiescent) ...
        let cells = StatCells::default();
        assert_eq!(cells.generation.load(Ordering::Relaxed), 0);
        cells.reset();
        assert_eq!(cells.generation.load(Ordering::Relaxed), 2);
        cells.reset();
        assert_eq!(cells.generation.load(Ordering::Relaxed), 4);
        // ... and a snapshot caught under an odd generation must spin
        // until the reset completes rather than return a torn copy.
        let cells = Arc::new(StatCells::default());
        cells.generation.fetch_add(1, Ordering::Release);
        let snap = {
            let cells = Arc::clone(&cells);
            std::thread::spawn(move || cells.snapshot())
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !snap.is_finished(),
            "snapshot returned while a reset was in progress"
        );
        cells.serial_forks.store(9, Ordering::Relaxed);
        cells.generation.fetch_add(1, Ordering::Release);
        assert_eq!(snap.join().unwrap().serial_forks, 9);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_witness_brackets_every_task() {
        use std::sync::atomic::AtomicI64;

        #[derive(Default)]
        struct Mock {
            open: AtomicI64,
            scopes: AtomicU64,
        }
        impl mo_obs::witness::TaskWitness for Mock {
            fn task_enter(&self) {
                self.open.fetch_add(1, Ordering::SeqCst);
                self.scopes.fetch_add(1, Ordering::SeqCst);
            }
            fn task_exit(&self, sink: Option<&mo_obs::TraceSink>, worker: Option<usize>, job: u64) {
                if let Some(s) = sink {
                    s.emit(worker, mo_obs::EventKind::CacheWitness, 0, 1, job);
                }
                self.open.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let p = pool();
        let sink = Arc::new(mo_obs::TraceSink::new(p.hierarchy().cores()));
        let mock = Arc::new(Mock::default());
        assert!(p.attach_sink(Arc::clone(&sink)));
        assert!(p.attach_witness(Arc::clone(&mock) as _));
        assert!(!p.attach_witness(Arc::clone(&mock) as _)); // once per pool
        p.run(|ctx| {
            ctx.join(1 << 16, |_| (), 1 << 16, |_| ());
            ctx.join(1 << 16, |_| (), 1 << 16, |_| ());
        });
        // A worker closes its scope just after setting the join latch,
        // so give in-flight exits a moment before asserting balance.
        for _ in 0..1000 {
            if mock.open.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(mock.open.load(Ordering::SeqCst), 0, "unbalanced scopes");
        let scopes = mock.scopes.load(Ordering::SeqCst);
        assert!(scopes >= 1, "at least the root scope of run()");
        let evs = sink.drain();
        let wit: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == mo_obs::EventKind::CacheWitness)
            .collect();
        assert_eq!(wit.len() as u64, scopes);
        assert!(wit.iter().any(|e| e.c == 0), "root scope recorded job 0");
    }

    #[test]
    fn warm_reports_pool_info() {
        let p = pool();
        let info = p.warm();
        assert_eq!(info.cores, 4);
        assert_eq!(info.resident_workers, 4);
        assert!(info.started);
        assert_eq!(info.l1_words, 1024);
        assert_eq!(info.levels.len(), 2);
        assert_eq!(info.levels[1].fanout, 4);
        // Single-core pools never spawn workers and say so.
        let uni = SbPool::new(HwHierarchy::flat(1, 1024, 1 << 20));
        let info = uni.warm();
        assert_eq!(info.cores, 1);
        assert_eq!(info.resident_workers, 0);
        assert!(!info.started);
    }

    #[test]
    fn scheduler_activity_reaches_extended_stats() {
        // Enough coarse forks on a warmed 4-core pool must surface in
        // the new counters: every executed queued task lands in some
        // per-worker slot, and steals + injector pops account for every
        // task that moved between threads.
        fn spin(ctx: &Ctx<'_>, depth: usize) {
            if depth == 0 {
                std::hint::black_box(0u64);
                return;
            }
            ctx.join(
                1 << 20,
                |c| spin(c, depth - 1),
                1 << 20,
                |c| spin(c, depth - 1),
            );
        }
        let p = pool();
        p.warm();
        p.run(|ctx| spin(ctx, 8));
        let st = p.stats();
        assert!(st.parallel_forks >= 1);
        let moved = st.steals + st.injector_pops;
        let executed: u64 = p.per_worker_tasks().iter().sum();
        // A queued task is executed exactly once; take_back'd jobs run
        // inline and are counted in neither.
        assert!(
            executed >= moved,
            "executed {executed} < moved {moved} (steals {} + injector {})",
            st.steals,
            st.injector_pops
        );
        assert_eq!(p.per_worker_tasks().len(), 5); // 4 workers + external
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_sink_records_fork_decisions() {
        let p = pool();
        let sink = Arc::new(mo_obs::TraceSink::with_capacity(
            p.hierarchy().cores(),
            1 << 12,
        ));
        assert!(p.attach_sink(Arc::clone(&sink)));
        assert!(!p.attach_sink(Arc::clone(&sink))); // once per pool
        p.run(|ctx| {
            ctx.join(10, |_| (), 10, |_| ());
            ctx.join(1 << 16, |_| (), 1 << 16, |_| ());
            ctx.pfor(0..4096, 64, |_r| {});
        });
        let events = sink.drain();
        let st = p.stats();
        let count = |k: mo_obs::EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count(mo_obs::EventKind::ForkSerial), st.serial_forks);
        assert_eq!(count(mo_obs::EventKind::ForkParallel), st.parallel_forks);
        assert_eq!(count(mo_obs::EventKind::ForkDenied), st.denied_forks);
        assert!(count(mo_obs::EventKind::CgcSegment) >= 1);
        // The serial fork carried its space bound and the L1 cutoff.
        let serial = events
            .iter()
            .find(|e| e.kind == mo_obs::EventKind::ForkSerial)
            .unwrap();
        assert_eq!(serial.a, 10);
        assert_eq!(serial.b, 0); // anchors at L1
        assert_eq!(serial.c, 1024);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn join_all_preserves_order() {
        let p = pool();
        let out = p.run(|ctx| {
            let fs: Jobs<'_, usize> = (0..9usize)
                .map(|i| Box::new(move |_: &Ctx<'_>| i * i) as _)
                .collect();
            ctx.join_all(1 << 14, fs)
        });
        assert_eq!(out, (0..9).map(|i| i * i).collect::<Vec<_>>());
    }
}

/// Loom model checks for the [`StatCells`] generation seqlock: every
/// interleaving (and every C11-permitted weak-memory outcome) of a
/// snapshot racing a reset must yield an all-pre or all-post snapshot,
/// never a mix. CI runs this with `RUSTFLAGS="--cfg loom"` after
/// adding `loom` as a CI-time dev-dependency; local builds compile it
/// away entirely.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::sync::Arc;
    use loom::thread;

    #[test]
    fn loom_stats_snapshot_never_mixes_across_reset() {
        loom::model(|| {
            let cells = Arc::new(StatCells::default());
            // Both cells start equal; the spawn edge publishes them to
            // the resetter, so any mixed (1, 0) / (0, 1) snapshot can
            // only come from interleaving with the reset itself.
            cells.parallel_forks.store(1, Ordering::Relaxed);
            cells.serial_forks.store(1, Ordering::Relaxed);
            let c = Arc::clone(&cells);
            let resetter = thread::spawn(move || c.reset());
            let s = cells.snapshot();
            assert_eq!(
                s.parallel_forks, s.serial_forks,
                "snapshot mixed pre- and post-reset cells: {s:?}"
            );
            resetter.join().unwrap();
            // After the reset is joined, a snapshot must see the zeroes.
            let s = cells.snapshot();
            assert_eq!((s.parallel_forks, s.serial_forks), (0, 0));
        });
    }
}
