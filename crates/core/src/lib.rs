//! # mo-core — the multicore-oblivious runtime
//!
//! This crate implements the paper's central contribution: a run-time
//! scheduler for the HM model driven by a small set of algorithm-supplied
//! *hints* (IPDPS 2010, §III):
//!
//! * **CGC** (coarse-grained contiguous) — parallel **for** loops are cut
//!   into contiguous per-core segments of at least `B_1` iterations, laid
//!   out left-to-right over the cores under the current anchor's shadow.
//! * **SB** (space-bound) — every forked task declares a space bound; the
//!   scheduler anchors it at the least-loaded cache of the smallest level
//!   that fits, under the parent's shadow, with FIFO space admission.
//! * **CGC⇒SB** — a large batch of equal-size subtasks is spread evenly
//!   across the caches of the right level, combining both disciplines.
//!
//! The runtime is split into the machine-independent **record** phase
//! ([`Recorder`] → [`Program`]): the algorithm executes once against a real
//! backing store, emitting a fork–join DAG with per-task access traces and
//! hints — and the machine-aware **replay** phase ([`sched::simulate`]):
//! the scheduler interprets the hints against a concrete
//! [`hm_model::MachineSpec`], assigns tasks to caches and cores in virtual
//! time, and replays every access through the multi-level cache simulator.
//!
//! A real-thread, hierarchy-aware work-stealing scheduler implementing the
//! same SB discipline on actual hardware lives in [`rt`].
//!
//! ```
//! use mo_core::{Recorder, sched::{simulate, Policy}};
//! use hm_model::MachineSpec;
//!
//! // A CGC-scheduled parallel initialization.
//! let n = 4096;
//! let prog = Recorder::record(n + 64, |rec| {
//!     let a = rec.alloc(n);
//!     rec.cgc_for(n, |rec, k| rec.write(a, k, k as u64));
//! });
//! let spec = MachineSpec::three_level(4, 1 << 10, 8, 1 << 16, 32).unwrap();
//! let report = simulate(&prog, &spec, Policy::Mo);
//! assert_eq!(report.makespan, (n / 4) as u64); // perfect 4-way speed-up
//! ```

// `deny`, not `forbid`: the work-stealing executor in `rt::exec` needs
// lifetime erasure for its stack-pinned fork jobs (the rayon model) and
// carries the safety argument in its module docs. Everything else must
// stay safe; only that module may opt in.
#![deny(unsafe_code)]
// The one module that does opt in must still wrap every unsafe
// operation in an explicit, `// SAFETY:`-commented block.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod arr;
pub mod certify;
mod record;
pub mod rt;
pub mod sched;
mod trace;
pub mod verify;

pub use arr::{Arr, Mat};
pub use certify::{Certificate, CertificateSet, Classification};
pub use record::{
    spawn, ForkHint, Program, ProgramStats, Recorder, Segment, Spawn, TaskId, TaskNode,
};
pub use trace::TraceEntry;
pub use verify::{verify, HintViolation, Race, RaceKind, VerifyReport};
