//! Packed memory-trace entries.
//!
//! The record phase stores every memory access of the algorithm as one
//! `u64`: the word address in the low 48 bits and a read/write flag in the
//! top bit. 48 bits of word addressing (2 PiW) is far beyond anything the
//! simulator will ever replay.

/// A packed trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry(pub u64);

const WRITE_BIT: u64 = 1 << 63;
const ADDR_MASK: u64 = (1 << 48) - 1;

impl TraceEntry {
    /// Pack an access.
    ///
    /// An address above 48 bits would silently corrupt the flag bits, so
    /// the bound is enforced in **all** builds, not just debug: a trace
    /// that cannot be represented must not be recorded.
    #[inline]
    pub fn new(addr: u64, write: bool) -> Self {
        assert!(addr <= ADDR_MASK, "address {addr} exceeds 48 bits");
        TraceEntry(addr | if write { WRITE_BIT } else { 0 })
    }

    /// The word address.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0 & ADDR_MASK
    }

    /// Whether the access is a store.
    #[inline]
    pub fn is_write(self) -> bool {
        self.0 & WRITE_BIT != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for &(a, w) in &[
            (0u64, false),
            (1, true),
            (ADDR_MASK, true),
            (123456789, false),
        ] {
            let e = TraceEntry::new(a, w);
            assert_eq!(e.addr(), a);
            assert_eq!(e.is_write(), w);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn rejects_oversized_address() {
        let _ = TraceEntry::new(ADDR_MASK + 1, false);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn rejects_address_colliding_with_flag_bit() {
        let _ = TraceEntry::new(WRITE_BIT, false);
    }
}
