//! Static verification of recorded programs: a determinacy-race detector
//! and a scheduler-hint lint pass.
//!
//! The paper's scheduler theorems (IPDPS 2010, §III) hold only for
//! *race-free* fork–join programs whose hints are honest:
//!
//! * children declared under an SB or CGC⇒SB fork must not claim more
//!   space than their parent (anchoring happens *under the parent's
//!   shadow*, so a child bound exceeding the parent's breaks the shadow
//!   nesting the proofs rely on);
//! * a task's actual memory footprint (distinct words touched by it and
//!   its descendants) must fit its declared space bound `s(τ)` — the
//!   space admission protocol charges `s(τ)` against the anchor cache, so
//!   an understated bound silently overflows the cache in the model;
//! * CGC⇒SB sibling batches must carry *equal* space bounds (§III-C
//!   distributes "a large number of subtasks with the same space bound");
//! * CGC loop iterations must be independent (no write conflicts) and
//!   laid out left-to-right so contiguous iteration segments touch
//!   contiguous data (§III-A).
//!
//! [`verify`] checks all of this *statically* over a recorded
//! [`Program`] — no machine spec and no re-execution needed. The
//! determinacy-race detector computes series-parallel relations over the
//! fork–join DAG with an English/Hebrew interval labeling (two DFS
//! numberings; two strands are logically parallel iff the numberings
//! disagree on their order) and sweeps every trace entry through shadow
//! memory in recorded order, which is exactly the English (left-to-right
//! depth-first) serial execution order.
//!
//! A [`debug_assert!`]-gated hook in [`crate::sched::simulate`] runs the
//! verifier on every simulated program in debug builds, so a racy or
//! hint-dishonest algorithm fails loudly long before its (meaningless)
//! cache-complexity table is admired.

use std::collections::HashMap;
use std::fmt;

use crate::record::{ForkHint, Program, Segment, TaskId};

/// The flavour of a determinacy race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Two logically parallel writes to the same word.
    WriteWrite,
    /// A write logically parallel with a read of the same word (either
    /// order in the recorded trace).
    ReadWrite,
}

/// A determinacy race between two logically parallel accesses.
///
/// `first` is the task of the access that appears earlier in the recorded
/// (serial, depth-first) order; `second` the later one. For a race between
/// iterations of one CGC loop both tasks coincide and `first_strand` /
/// `second_strand` distinguish the iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// Conflict flavour.
    pub kind: RaceKind,
    /// The conflicting word address.
    pub addr: u64,
    /// Task of the earlier access.
    pub first: TaskId,
    /// Task of the later access.
    pub second: TaskId,
    /// Strand index (see [`VerifyReport::strands`]) of the earlier access.
    pub first_strand: usize,
    /// Strand index of the later access.
    pub second_strand: usize,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
        };
        write!(
            f,
            "{kind} race on word {:#x}: task {} (strand {}) ∥ task {} (strand {})",
            self.addr, self.first, self.first_strand, self.second, self.second_strand
        )
    }
}

/// A violated scheduler-hint invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintViolation {
    /// A forked child declares a larger space bound than its parent, so it
    /// cannot be anchored under the parent's shadow.
    SpaceNotMonotone {
        /// The parent task.
        parent: TaskId,
        /// The offending child.
        child: TaskId,
        /// Parent's declared bound (words).
        parent_space: usize,
        /// Child's declared bound (words).
        child_space: usize,
    },
    /// A task (with its descendants) touches more distinct words than its
    /// declared space bound, defeating space admission.
    FootprintExceedsBound {
        /// The offending task.
        task: TaskId,
        /// Declared `s(τ)` in words.
        declared: usize,
        /// Measured distinct words touched by the task's subtree.
        measured: usize,
    },
    /// Children of one CGC⇒SB fork declare unequal space bounds; §III-C
    /// requires a batch of equal-size subtasks.
    CgcSbUnequalSpace {
        /// The forking task.
        parent: TaskId,
        /// Smallest declared child bound.
        min_space: usize,
        /// Largest declared child bound.
        max_space: usize,
    },
    /// Two iterations of one CGC loop write the same word (also a
    /// determinacy race, reported here with loop coordinates).
    CgcWriteOverlap {
        /// Task owning the loop.
        task: TaskId,
        /// Segment index of the loop within the task.
        seg: usize,
        /// The doubly-written word.
        addr: u64,
        /// Earlier iteration index.
        iter_a: usize,
        /// Later iteration index.
        iter_b: usize,
    },
    /// CGC iteration write regions are not laid out left-to-right: the
    /// per-iteration minimum (or maximum) written address decreases at
    /// `iter`, so contiguous iteration segments touch non-contiguous data
    /// and the §III-A block-boundary argument no longer applies.
    CgcNonMonotoneLayout {
        /// Task owning the loop.
        task: TaskId,
        /// Segment index of the loop within the task.
        seg: usize,
        /// First iteration whose write region steps backwards.
        iter: usize,
    },
    /// A CGC iteration records no memory access at all; empty iterations
    /// distort the ≥ `B_1`-iterations-per-segment length structure the
    /// scheduler relies on when chopping the loop.
    CgcEmptyIteration {
        /// Task owning the loop.
        task: TaskId,
        /// Segment index of the loop within the task.
        seg: usize,
        /// First empty iteration index.
        iter: usize,
    },
}

impl HintViolation {
    /// Whether this finding invalidates the scheduler theorems (an error)
    /// or merely weakens the constant-factor argument (a warning).
    pub fn is_error(&self) -> bool {
        !matches!(
            self,
            HintViolation::CgcNonMonotoneLayout { .. } | HintViolation::CgcEmptyIteration { .. }
        )
    }
}

impl fmt::Display for HintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            HintViolation::SpaceNotMonotone {
                parent,
                child,
                parent_space,
                child_space,
            } => write!(
                f,
                "space bound not monotone: child task {child} declares {child_space} words \
                 but parent task {parent} declares only {parent_space}"
            ),
            HintViolation::FootprintExceedsBound {
                task,
                declared,
                measured,
            } => write!(
                f,
                "footprint exceeds bound: task {task} declares s(τ) = {declared} words \
                 but touches {measured} distinct words"
            ),
            HintViolation::CgcSbUnequalSpace {
                parent,
                min_space,
                max_space,
            } => write!(
                f,
                "CGC⇒SB batch of task {parent} has unequal child bounds ({min_space}..{max_space})"
            ),
            HintViolation::CgcWriteOverlap {
                task,
                seg,
                addr,
                iter_a,
                iter_b,
            } => write!(
                f,
                "CGC write overlap in task {task} segment {seg}: iterations {iter_a} and \
                 {iter_b} both write word {addr:#x}"
            ),
            HintViolation::CgcNonMonotoneLayout { task, seg, iter } => write!(
                f,
                "CGC layout not left-to-right in task {task} segment {seg}: write region \
                 steps backwards at iteration {iter}"
            ),
            HintViolation::CgcEmptyIteration { task, seg, iter } => write!(
                f,
                "CGC loop in task {task} segment {seg} has an empty iteration (first: {iter})"
            ),
        }
    }
}

/// Hard caps on stored diagnostics; totals keep counting past them.
const MAX_RACES: usize = 64;
const MAX_VIOLATIONS: usize = 64;

/// The result of [`verify`]: machine-readable diagnostics plus summary
/// statistics for the per-algorithm verification table.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Tasks in the DAG.
    pub tasks: usize,
    /// Serial strands (compute segments + CGC iterations with ≥ 1 access).
    pub strands: usize,
    /// Total recorded memory operations swept.
    pub work: u64,
    /// Total conflicting accesses observed (each racing access counts
    /// once; may exceed `races.len()`, which is deduplicated and capped).
    pub conflicts: u64,
    /// Distinct races, deduplicated by `(kind, first task, second task)`
    /// and capped at an internal limit.
    pub races: Vec<Race>,
    /// Hint invariants broken in a way that invalidates the scheduler
    /// theorems (capped at an internal limit; see `violation_count`).
    pub violations: Vec<HintViolation>,
    /// Total error-severity violations found (uncapped count).
    pub violation_count: u64,
    /// Structural warnings: hint usage that weakens, but does not void,
    /// the paper's constant-factor arguments.
    pub warnings: Vec<HintViolation>,
    /// Per-task measured footprint: distinct words touched by the task
    /// and its descendants.
    pub footprints: Vec<usize>,
    /// Measured footprint of the root (the whole program).
    pub max_footprint: usize,
    /// Tightest margin `s(τ) − footprint(τ)` over all tasks; negative
    /// exactly when some `FootprintExceedsBound` was reported.
    pub min_slack: i64,
    /// Loosest margin `s(τ) − footprint(τ)` over all tasks.
    pub max_slack: i64,
}

impl VerifyReport {
    /// No races and no error-severity hint violations.
    pub fn is_clean(&self) -> bool {
        self.conflicts == 0 && self.violation_count == 0
    }

    /// No findings at all, warnings included.
    pub fn is_pristine(&self) -> bool {
        self.is_clean() && self.warnings.is_empty()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify: {} tasks, {} strands, {} ops; {} conflicting accesses, \
             {} hint violations, {} warnings; footprint {} (slack {}..{})",
            self.tasks,
            self.strands,
            self.work,
            self.conflicts,
            self.violation_count,
            self.warnings.len(),
            self.max_footprint,
            self.min_slack,
            self.max_slack,
        )?;
        for r in &self.races {
            writeln!(f, "  race: {r}")?;
        }
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        for w in &self.warnings {
            writeln!(f, "  warning: {w}")?;
        }
        Ok(())
    }
}

/// A maximal serial piece of the program: one compute segment or one CGC
/// iteration. Strands tile the trace, so sorting by `lo` recovers the
/// recorded (English) order.
#[derive(Debug, Clone, Copy)]
struct Strand {
    task: TaskId,
    lo: usize,
    hi: usize,
}

/// Per-segment strand bookkeeping for the Hebrew traversal.
enum SegStrands {
    Compute(usize),
    /// One strand id per iteration (including empty iterations, which get
    /// `usize::MAX`).
    Cgc(Vec<usize>),
    Fork(Vec<TaskId>),
}

const NO_STRAND: usize = usize::MAX;

/// Collects strands in recording order and the per-segment structure
/// needed to re-traverse them right-to-left.
fn collect_strands(prog: &Program) -> (Vec<Strand>, Vec<Vec<SegStrands>>) {
    let mut strands = Vec::new();
    let mut segs: Vec<Vec<SegStrands>> = Vec::with_capacity(prog.tasks().len());
    for (tid, task) in prog.tasks().iter().enumerate() {
        let mut infos = Vec::with_capacity(task.segments.len());
        for seg in &task.segments {
            match seg {
                Segment::Compute { start, end } => {
                    strands.push(Strand {
                        task: tid,
                        lo: *start,
                        hi: *end,
                    });
                    infos.push(SegStrands::Compute(strands.len() - 1));
                }
                Segment::CgcLoop { start, iter_ends } => {
                    let mut ids = Vec::with_capacity(iter_ends.len());
                    let mut lo = *start;
                    for &hi in iter_ends {
                        if hi > lo {
                            strands.push(Strand { task: tid, lo, hi });
                            ids.push(strands.len() - 1);
                        } else {
                            ids.push(NO_STRAND);
                        }
                        lo = hi;
                    }
                    infos.push(SegStrands::Cgc(ids));
                }
                Segment::Fork { children, .. } => {
                    infos.push(SegStrands::Fork(children.clone()));
                }
            }
        }
        segs.push(infos);
    }
    // Recording is depth-first left-to-right, so trace position is the
    // English (serial execution) order. Strands were pushed per task, not
    // per trace position — sort and remap the per-segment ids.
    let mut order: Vec<usize> = (0..strands.len()).collect();
    order.sort_unstable_by_key(|&i| strands[i].lo);
    let mut rank = vec![0usize; strands.len()];
    for (new, &old) in order.iter().enumerate() {
        rank[old] = new;
    }
    let sorted: Vec<Strand> = order.iter().map(|&i| strands[i]).collect();
    for infos in &mut segs {
        for info in infos {
            match info {
                SegStrands::Compute(s) => *s = rank[*s],
                SegStrands::Cgc(ids) => {
                    for id in ids {
                        if *id != NO_STRAND {
                            *id = rank[*id];
                        }
                    }
                }
                SegStrands::Fork(_) => {}
            }
        }
    }
    (sorted, segs)
}

/// Hebrew numbering: a second depth-first sweep that visits *parallel*
/// compositions (fork children, CGC iterations) right-to-left while
/// keeping series order. Two strands are logically parallel iff English
/// and Hebrew disagree on their order (Bender et al., SP-order).
fn hebrew_labels(prog: &Program, strands: &[Strand], segs: &[Vec<SegStrands>]) -> Vec<usize> {
    debug_assert!(strands.windows(2).all(|w| w[0].lo <= w[1].lo));
    let mut hebrew = vec![0usize; strands.len()];
    let mut next = 0usize;
    enum Item<'a> {
        Task(TaskId),
        Seg(&'a SegStrands),
    }
    let mut stack = vec![Item::Task(prog.root())];
    while let Some(item) = stack.pop() {
        match item {
            Item::Task(t) => {
                // Segments are a series composition: preserve their order
                // by pushing in reverse.
                for seg in segs[t].iter().rev() {
                    stack.push(Item::Seg(seg));
                }
            }
            Item::Seg(SegStrands::Compute(s)) => {
                hebrew[*s] = next;
                next += 1;
            }
            Item::Seg(SegStrands::Cgc(ids)) => {
                // Iterations are parallel: number them right-to-left.
                for &s in ids.iter().rev() {
                    if s != NO_STRAND {
                        hebrew[s] = next;
                        next += 1;
                    }
                }
            }
            Item::Seg(SegStrands::Fork(children)) => {
                // Children are parallel: pushing left-to-right makes them
                // pop (and number) right-to-left.
                for &c in children.iter() {
                    stack.push(Item::Task(c));
                }
            }
        }
    }
    debug_assert_eq!(next, strands.len());
    hebrew
}

/// Last writer and the most-parallel reader of one shadow word.
#[derive(Clone, Copy, Default)]
struct Shadow {
    /// Strand of the last write, `NO_STRAND` if never written.
    writer: usize,
    /// Among readers since the last write, the strand with the maximum
    /// Hebrew label — if any past reader is parallel to a new writer,
    /// this one is.
    reader: usize,
}

struct RaceSweep {
    shadow: HashMap<u64, Shadow>,
    conflicts: u64,
    races: Vec<Race>,
    seen: HashMap<(RaceKind, TaskId, TaskId), ()>,
}

impl RaceSweep {
    fn new() -> Self {
        RaceSweep {
            shadow: HashMap::new(),
            conflicts: 0,
            races: Vec::new(),
            seen: HashMap::new(),
        }
    }

    fn report(
        &mut self,
        kind: RaceKind,
        addr: u64,
        strands: &[Strand],
        earlier: usize,
        later: usize,
    ) {
        self.conflicts += 1;
        let key = (kind, strands[earlier].task, strands[later].task);
        if self.races.len() < MAX_RACES && !self.seen.contains_key(&key) {
            self.seen.insert(key, ());
            self.races.push(Race {
                kind,
                addr,
                first: strands[earlier].task,
                second: strands[later].task,
                first_strand: earlier,
                second_strand: later,
            });
        }
    }

    /// Sweep every access in English order. `hebrew[w] > hebrew[s]` for an
    /// English-earlier strand `w` means `w ∥ s`.
    fn run(&mut self, prog: &Program, strands: &[Strand], hebrew: &[usize]) {
        let trace = prog.trace();
        for (sid, s) in strands.iter().enumerate() {
            let h = hebrew[sid];
            for e in &trace[s.lo..s.hi] {
                let addr = e.addr();
                let cell = self.shadow.entry(addr).or_insert(Shadow {
                    writer: NO_STRAND,
                    reader: NO_STRAND,
                });
                let (w, r) = (cell.writer, cell.reader);
                if e.is_write() {
                    if w != NO_STRAND && w != sid && hebrew[w] > h {
                        self.report(RaceKind::WriteWrite, addr, strands, w, sid);
                    }
                    if r != NO_STRAND && r != sid && hebrew[r] > h {
                        self.report(RaceKind::ReadWrite, addr, strands, r, sid);
                    }
                    let cell = self.shadow.get_mut(&addr).unwrap();
                    cell.writer = sid;
                    cell.reader = NO_STRAND;
                } else {
                    if w != NO_STRAND && w != sid && hebrew[w] > h {
                        self.report(RaceKind::ReadWrite, addr, strands, w, sid);
                    }
                    let cell = self.shadow.get_mut(&addr).unwrap();
                    if cell.reader == NO_STRAND || hebrew[cell.reader] < h {
                        cell.reader = sid;
                    }
                }
            }
        }
    }
}

/// Measured per-task footprints: distinct words touched by each task's
/// subtree, by bottom-up small-to-large set merging (children carry
/// larger ids than parents, so one reverse pass suffices).
fn footprints(prog: &Program, strands: &[Strand]) -> Vec<usize> {
    use std::collections::HashSet;
    let trace = prog.trace();
    let n = prog.tasks().len();
    let mut sets: Vec<HashSet<u64>> = vec![HashSet::new(); n];
    for s in strands {
        let set = &mut sets[s.task];
        for e in &trace[s.lo..s.hi] {
            set.insert(e.addr());
        }
    }
    let mut out = vec![0usize; n];
    for t in (1..n).rev() {
        out[t] = sets[t].len();
        let p = prog.tasks()[t].parent.expect("non-root task has a parent");
        let child = std::mem::take(&mut sets[t]);
        if sets[p].len() < child.len() {
            let parent = std::mem::replace(&mut sets[p], child);
            sets[p].extend(parent);
        } else {
            sets[p].extend(child);
        }
    }
    if n > 0 {
        out[0] = sets[0].len();
    }
    out
}

/// The hint lint pass: space-bound monotonicity, CGC⇒SB equal bounds,
/// CGC write disjointness and left-to-right layout.
fn lint_hints(
    prog: &Program,
    fp: &[usize],
    violations: &mut Vec<HintViolation>,
    violation_count: &mut u64,
    warnings: &mut Vec<HintViolation>,
) {
    let push = |v: HintViolation,
                violations: &mut Vec<HintViolation>,
                violation_count: &mut u64,
                warnings: &mut Vec<HintViolation>| {
        if v.is_error() {
            *violation_count += 1;
            if violations.len() < MAX_VIOLATIONS {
                violations.push(v);
            }
        } else if warnings.len() < MAX_VIOLATIONS {
            warnings.push(v);
        }
    };
    let trace = prog.trace();
    for (tid, task) in prog.tasks().iter().enumerate() {
        // Footprint honesty.
        if fp[tid] > task.space {
            push(
                HintViolation::FootprintExceedsBound {
                    task: tid,
                    declared: task.space,
                    measured: fp[tid],
                },
                violations,
                violation_count,
                warnings,
            );
        }
        for (seg_idx, seg) in task.segments.iter().enumerate() {
            match seg {
                Segment::Fork { hint, children } => {
                    // Shadow nesting: children anchored under the parent.
                    for &ch in children {
                        let cs = prog.tasks()[ch].space;
                        if cs > task.space {
                            push(
                                HintViolation::SpaceNotMonotone {
                                    parent: tid,
                                    child: ch,
                                    parent_space: task.space,
                                    child_space: cs,
                                },
                                violations,
                                violation_count,
                                warnings,
                            );
                        }
                    }
                    if *hint == ForkHint::CgcSb && children.len() > 1 {
                        let lo = children
                            .iter()
                            .map(|&c| prog.tasks()[c].space)
                            .min()
                            .unwrap();
                        let hi = children
                            .iter()
                            .map(|&c| prog.tasks()[c].space)
                            .max()
                            .unwrap();
                        if lo != hi {
                            push(
                                HintViolation::CgcSbUnequalSpace {
                                    parent: tid,
                                    min_space: lo,
                                    max_space: hi,
                                },
                                violations,
                                violation_count,
                                warnings,
                            );
                        }
                    }
                }
                Segment::CgcLoop { start, iter_ends } => {
                    let mut writers: HashMap<u64, usize> = HashMap::new();
                    let mut last_min = 0u64;
                    let mut last_max = 0u64;
                    let mut have_prev = false;
                    let mut reported_layout = false;
                    let mut reported_empty = false;
                    let mut lo = *start;
                    for (k, &hi) in iter_ends.iter().enumerate() {
                        if hi == lo && !reported_empty {
                            reported_empty = true;
                            push(
                                HintViolation::CgcEmptyIteration {
                                    task: tid,
                                    seg: seg_idx,
                                    iter: k,
                                },
                                violations,
                                violation_count,
                                warnings,
                            );
                        }
                        let mut wmin = u64::MAX;
                        let mut wmax = 0u64;
                        for e in &trace[lo..hi] {
                            if !e.is_write() {
                                continue;
                            }
                            let addr = e.addr();
                            wmin = wmin.min(addr);
                            wmax = wmax.max(addr);
                            match writers.insert(addr, k) {
                                Some(prev) if prev != k => {
                                    push(
                                        HintViolation::CgcWriteOverlap {
                                            task: tid,
                                            seg: seg_idx,
                                            addr,
                                            iter_a: prev,
                                            iter_b: k,
                                        },
                                        violations,
                                        violation_count,
                                        warnings,
                                    );
                                }
                                _ => {}
                            }
                        }
                        if wmin != u64::MAX {
                            if have_prev && !reported_layout && (wmin < last_min || wmax < last_max)
                            {
                                reported_layout = true;
                                push(
                                    HintViolation::CgcNonMonotoneLayout {
                                        task: tid,
                                        seg: seg_idx,
                                        iter: k,
                                    },
                                    violations,
                                    violation_count,
                                    warnings,
                                );
                            }
                            last_min = wmin;
                            last_max = wmax;
                            have_prev = true;
                        }
                        lo = hi;
                    }
                }
                Segment::Compute { .. } => {}
            }
        }
    }
}

/// Per-task subtree footprints: distinct words touched by each task and
/// its descendants. This quantity is schedule-invariant over all
/// SP-consistent executions (a task's subtree accesses the same word
/// set under any interleaving), which is what lets the certifier's
/// footprint audit ([`crate::certify`]) speak about *all* schedules from
/// one recording.
pub fn task_footprints(prog: &Program) -> Vec<usize> {
    let (strands, _) = collect_strands(prog);
    footprints(prog, &strands)
}

/// Measured space bounds for every task of a recorded program: the
/// task's subtree footprint (at least 1 word), with CGC⇒SB sibling
/// batches equalized to the batch maximum so the §III-C equal-bounds
/// requirement holds by construction.
///
/// This is the oracle behind [`crate::Recorder::record_measured`]:
/// algorithms whose per-task space is data-dependent (sorting, list
/// contraction, graph contraction) record a scouting pass, measure, and
/// re-record with these bounds. The result is always monotone (a
/// child's footprint is a subset of its parent's) and always covers the
/// measured footprint.
pub fn measured_bounds(prog: &Program) -> Vec<usize> {
    let (strands, _) = collect_strands(prog);
    let fp = footprints(prog, &strands);
    let mut bounds: Vec<usize> = fp.iter().map(|&f| f.max(1)).collect();
    for task in prog.tasks() {
        for seg in &task.segments {
            if let Segment::Fork {
                hint: ForkHint::CgcSb,
                children,
            } = seg
            {
                let hi = children.iter().map(|&c| bounds[c]).max().unwrap_or(1);
                for &c in children {
                    bounds[c] = hi;
                }
            }
        }
    }
    bounds
}

/// Statically verify a recorded program: determinacy races over the
/// series-parallel fork–join DAG and honesty of the SB / CGC⇒SB / CGC
/// scheduler hints. Runs in `O(T log T)` for a trace of `T` entries and
/// needs no machine spec.
pub fn verify(prog: &Program) -> VerifyReport {
    let (strands, segs) = collect_strands(prog);
    let hebrew = hebrew_labels(prog, &strands, &segs);
    let mut sweep = RaceSweep::new();
    sweep.run(prog, &strands, &hebrew);
    let fp = footprints(prog, &strands);
    let mut violations = Vec::new();
    let mut warnings = Vec::new();
    let mut violation_count = 0u64;
    lint_hints(
        prog,
        &fp,
        &mut violations,
        &mut violation_count,
        &mut warnings,
    );
    let mut min_slack = i64::MAX;
    let mut max_slack = i64::MIN;
    for (t, &m) in fp.iter().enumerate() {
        let slack = prog.tasks()[t].space as i64 - m as i64;
        min_slack = min_slack.min(slack);
        max_slack = max_slack.max(slack);
    }
    if fp.is_empty() {
        min_slack = 0;
        max_slack = 0;
    }
    VerifyReport {
        tasks: prog.tasks().len(),
        strands: strands.len(),
        work: prog.work(),
        conflicts: sweep.conflicts,
        races: sweep.races,
        violations,
        violation_count,
        warnings,
        max_footprint: fp.first().copied().unwrap_or(0),
        footprints: fp,
        min_slack,
        max_slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{spawn, Recorder};

    #[test]
    fn straight_line_is_clean() {
        let prog = Recorder::record(70, |rec| {
            let a = rec.alloc(4);
            rec.write(a, 0, 1);
            let v = rec.read(a, 0);
            rec.write(a, 1, v);
        });
        let r = verify(&prog);
        assert!(r.is_pristine(), "{r}");
        assert_eq!(r.strands, 1);
        assert_eq!(r.max_footprint, 2);
    }

    #[test]
    fn disjoint_sb_children_are_clean() {
        let prog = Recorder::record(200, |rec| {
            let a = rec.alloc(2);
            rec.fork2(
                ForkHint::Sb,
                100,
                |rec| rec.write(a, 0, 1),
                100,
                |rec| rec.write(a, 1, 2),
            );
            let _ = rec.read(a, 0);
        });
        let r = verify(&prog);
        assert!(r.is_pristine(), "{r}");
    }

    #[test]
    fn sibling_write_write_race_is_found() {
        let prog = Recorder::record(200, |rec| {
            let a = rec.alloc(2);
            rec.fork2(
                ForkHint::Sb,
                100,
                |rec| rec.write(a, 0, 1),
                100,
                |rec| rec.write(a, 0, 2),
            );
        });
        let r = verify(&prog);
        assert!(!r.is_clean());
        assert_eq!(r.races.len(), 1);
        assert_eq!(r.races[0].kind, RaceKind::WriteWrite);
        assert_eq!((r.races[0].first, r.races[0].second), (1, 2));
    }

    #[test]
    fn sibling_read_write_race_is_found_both_orders() {
        // Earlier sibling reads, later one writes.
        let prog = Recorder::record(200, |rec| {
            let a = rec.alloc(2);
            rec.fork2(
                ForkHint::Sb,
                100,
                |rec| {
                    let _ = rec.read(a, 0);
                },
                100,
                |rec| rec.write(a, 0, 2),
            );
        });
        let r = verify(&prog);
        assert_eq!(r.races[0].kind, RaceKind::ReadWrite);
        // Earlier sibling writes, later one reads.
        let prog = Recorder::record(200, |rec| {
            let a = rec.alloc(2);
            rec.fork2(
                ForkHint::Sb,
                100,
                |rec| rec.write(a, 0, 2),
                100,
                |rec| {
                    let _ = rec.read(a, 0);
                },
            );
        });
        let r = verify(&prog);
        assert_eq!(r.races[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn parent_child_sequencing_is_not_a_race() {
        // Parent writes before the fork and reads after the join; children
        // read and write the same words in between. All serial.
        let prog = Recorder::record(300, |rec| {
            let a = rec.alloc(2);
            rec.write(a, 0, 7);
            rec.fork2(
                ForkHint::Sb,
                100,
                |rec| {
                    let v = rec.read(a, 0);
                    rec.write(a, 1, v);
                },
                100,
                |_| {},
            );
            let _ = rec.read(a, 1);
            rec.write(a, 0, 9);
        });
        let r = verify(&prog);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn nested_cousins_race_across_fork_levels() {
        // Grandchild of child 1 races with child 2.
        let prog = Recorder::record(400, |rec| {
            let a = rec.alloc(2);
            rec.fork2(
                ForkHint::Sb,
                200,
                |rec| {
                    rec.fork2(ForkHint::Sb, 100, |rec| rec.write(a, 0, 1), 100, |_| {});
                },
                200,
                |rec| rec.write(a, 0, 2),
            );
        });
        let r = verify(&prog);
        assert_eq!(r.races.len(), 1);
        assert_eq!(r.races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn cgc_iterations_racing_is_found() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(8);
            rec.cgc_for(8, |rec, k| {
                rec.write(a, k / 2, k as u64); // pairs collide
            });
        });
        let r = verify(&prog);
        assert!(!r.is_clean());
        assert!(r.races.iter().any(|x| x.kind == RaceKind::WriteWrite));
        // The lint reports the same overlap with loop coordinates.
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, HintViolation::CgcWriteOverlap { .. })));
    }

    #[test]
    fn cgc_disjoint_iterations_are_clean() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(8);
            let b = rec.alloc(8);
            rec.cgc_for(8, |rec, k| {
                let v = rec.read(a, k);
                rec.write(b, k, v + 1);
            });
        });
        let r = verify(&prog);
        assert!(r.is_pristine(), "{r}");
        assert_eq!(r.strands, 8);
    }

    #[test]
    fn cgc_parallel_reads_of_shared_word_are_fine() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(8);
            let b = rec.alloc(8);
            rec.write(a, 0, 5);
            rec.cgc_for(8, |rec, k| {
                let v = rec.read(a, 0); // shared read
                rec.write(b, k, v);
            });
        });
        let r = verify(&prog);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn understated_space_bound_is_flagged() {
        let prog = Recorder::record(70, |rec| {
            let a = rec.alloc(64);
            rec.fork(
                ForkHint::Sb,
                vec![spawn(2, move |rec: &mut Recorder| {
                    for k in 0..10 {
                        rec.write(a, k, 1); // 10 words, declared 2
                    }
                })],
            );
        });
        let r = verify(&prog);
        assert!(r.violations.iter().any(|v| matches!(
            v,
            HintViolation::FootprintExceedsBound {
                task: 1,
                declared: 2,
                measured: 10
            }
        )));
        assert!(r.min_slack < 0);
        // Error severity: lands in `violations`, so the report is
        // neither clean nor pristine.
        assert!(r.violations.iter().all(HintViolation::is_error));
        assert!(!r.is_clean());
        assert!(!r.is_pristine());
    }

    #[test]
    fn non_monotone_child_bound_is_flagged() {
        let prog = Recorder::record(10, |rec| {
            let a = rec.alloc(2);
            rec.fork(
                ForkHint::Sb,
                vec![spawn(50, move |rec: &mut Recorder| rec.write(a, 0, 1))],
            );
        });
        let r = verify(&prog);
        assert!(r.violations.iter().any(|v| matches!(
            v,
            HintViolation::SpaceNotMonotone {
                parent: 0,
                child: 1,
                ..
            }
        )));
        assert!(!r.is_clean());
        assert!(!r.is_pristine());
    }

    #[test]
    fn cgcsb_unequal_bounds_are_flagged() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(2);
            rec.fork2(
                ForkHint::CgcSb,
                10,
                |rec| rec.write(a, 0, 1),
                20,
                |rec| rec.write(a, 1, 1),
            );
        });
        let r = verify(&prog);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, HintViolation::CgcSbUnequalSpace { parent: 0, .. })));
        assert!(!r.is_clean());
        assert!(!r.is_pristine());
    }

    #[test]
    fn backwards_cgc_layout_is_a_warning_not_an_error() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(8);
            rec.cgc_for(8, |rec, k| {
                rec.write(a, 7 - k, 1); // right-to-left
            });
        });
        let r = verify(&prog);
        // Warning severity: clean (no theorem is voided) but not
        // pristine (the constant-factor argument is weakened).
        assert!(r.is_clean(), "{r}");
        assert!(!r.is_pristine());
        assert!(r
            .warnings
            .iter()
            .any(|v| matches!(v, HintViolation::CgcNonMonotoneLayout { .. })));
        assert!(r.warnings.iter().all(|v| !v.is_error()));
    }

    #[test]
    fn cgc_empty_iteration_is_a_warning_not_an_error() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(8);
            rec.cgc_for(8, |rec, k| {
                if k != 3 {
                    rec.write(a, k, 1); // iteration 3 records nothing
                }
            });
        });
        let r = verify(&prog);
        assert!(r.is_clean(), "{r}");
        assert!(!r.is_pristine());
        assert!(r.warnings.iter().any(|v| matches!(
            v,
            HintViolation::CgcEmptyIteration {
                task: 0,
                seg: 0,
                iter: 3
            }
        )));
        assert!(r.warnings.iter().all(|v| !v.is_error()));
    }

    /// The documented severity split, variant by variant: the four
    /// theorem-voiding findings are errors, the two constant-factor
    /// findings are warnings — exactly the routing `verify` uses when
    /// filling `violations` vs `warnings`.
    #[test]
    fn violation_severities_split_errors_from_warnings() {
        let errors = [
            HintViolation::SpaceNotMonotone {
                parent: 0,
                child: 1,
                parent_space: 1,
                child_space: 2,
            },
            HintViolation::FootprintExceedsBound {
                task: 1,
                declared: 1,
                measured: 2,
            },
            HintViolation::CgcSbUnequalSpace {
                parent: 0,
                min_space: 1,
                max_space: 2,
            },
            HintViolation::CgcWriteOverlap {
                task: 0,
                seg: 0,
                addr: 0,
                iter_a: 0,
                iter_b: 1,
            },
        ];
        let warnings = [
            HintViolation::CgcNonMonotoneLayout {
                task: 0,
                seg: 0,
                iter: 1,
            },
            HintViolation::CgcEmptyIteration {
                task: 0,
                seg: 0,
                iter: 0,
            },
        ];
        for v in &errors {
            assert!(v.is_error(), "{v} must be error severity");
        }
        for v in &warnings {
            assert!(!v.is_error(), "{v} must be warning severity");
        }
    }

    #[test]
    fn footprint_counts_subtree_distinct_words() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(4);
            rec.write(a, 0, 1);
            rec.fork2(
                ForkHint::Sb,
                50,
                |rec| rec.write(a, 1, 1),
                50,
                |rec| {
                    rec.write(a, 2, 1);
                    rec.write(a, 2, 2); // same word twice
                },
            );
        });
        let r = verify(&prog);
        assert_eq!(r.footprints[1], 1);
        assert_eq!(r.footprints[2], 1);
        assert_eq!(r.footprints[0], 3);
        assert_eq!(r.max_footprint, 3);
    }

    #[test]
    fn race_count_dedupes_but_keeps_totals() {
        let prog = Recorder::record(200, |rec| {
            let a = rec.alloc(8);
            rec.fork2(
                ForkHint::Sb,
                100,
                |rec| {
                    for k in 0..8 {
                        rec.write(a, k, 1);
                    }
                },
                100,
                |rec| {
                    for k in 0..8 {
                        rec.write(a, k, 2);
                    }
                },
            );
        });
        let r = verify(&prog);
        assert_eq!(r.conflicts, 8);
        assert_eq!(r.races.len(), 1); // dedup by (kind, task pair)
    }

    #[test]
    fn empty_program_verifies() {
        let prog = Recorder::record(0, |_| {});
        let r = verify(&prog);
        assert!(r.is_pristine());
        assert_eq!(r.strands, 0);
        assert_eq!(r.max_footprint, 0);
    }
}
