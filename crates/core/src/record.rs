//! The record phase: execute a multicore-oblivious algorithm once on real
//! data, producing a [`Program`] — a fork–join task DAG annotated with
//! scheduler hints and per-task memory-access traces.
//!
//! This is the machine-*independent* half of the runtime. Nothing in this
//! module knows cache sizes, block lengths or core counts; an algorithm
//! recorded here can be replayed (crate::sched) on any [`hm_model::MachineSpec`].

use crate::arr::{Arr, Mat};
use crate::trace::TraceEntry;

/// Index of a task in a [`Program`].
pub type TaskId = usize;

/// Fork hints an algorithm can attach to a parallel block (paper §III).
///
/// `CGC` itself is not a fork hint: it schedules parallel **for** loops and
/// is exposed as [`Recorder::cgc_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkHint {
    /// Space-bound scheduling (§III-B): each child is anchored at the
    /// least-loaded cache of the smallest level that fits its space bound,
    /// under the shadow of the parent's anchor.
    Sb,
    /// CGC on SB (§III-C): the children (equal space bounds) are
    /// distributed evenly across the caches of level `max(i, j)` under the
    /// parent's shadow, where `i` is the smallest level fitting the bound
    /// and `j` the smallest level with at most `m` caches in the shadow.
    CgcSb,
}

/// One step of a task body.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Straight-line computation: a contiguous range of trace entries,
    /// executed on a single core.
    Compute {
        /// First trace index.
        start: usize,
        /// One past the last trace index.
        end: usize,
    },
    /// A CGC parallel for loop: `iter_ends[k]` is the trace index one past
    /// the end of iteration `k` (iteration 0 starts at `start`). The
    /// scheduler chops iterations into contiguous per-core segments.
    CgcLoop {
        /// First trace index of iteration 0.
        start: usize,
        /// Per-iteration end offsets (absolute trace indices).
        iter_ends: Vec<usize>,
    },
    /// A fork–join block: all children run in parallel under `hint`; the
    /// task continues only after every child completes.
    Fork {
        /// Scheduling hint for the children.
        hint: ForkHint,
        /// The spawned tasks.
        children: Vec<TaskId>,
    },
}

/// A recorded task: its space bound (in words, as declared by the
/// algorithm's `Space Bound:` annotation) and its body.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// Declared space bound `s(τ)` in words.
    pub space: usize,
    /// Body steps, in order.
    pub segments: Vec<Segment>,
    /// Spawning task, `None` for the root.
    pub parent: Option<TaskId>,
}

/// A fully recorded program: the task DAG, the global trace buffer, and the
/// final memory image (which holds the algorithm's output).
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) mem: Vec<u64>,
    pub(crate) trace: Vec<TraceEntry>,
    pub(crate) tasks: Vec<TaskNode>,
    /// Every region handed out by the recorder's bump allocator, in
    /// allocation order (offsets strictly increase). The certifier keys
    /// on this table to name addresses relative to their allocation,
    /// i.e. modulo base-pointer relocation.
    pub(crate) allocs: Vec<Arr>,
}

impl Program {
    /// The root task id (always 0).
    pub fn root(&self) -> TaskId {
        0
    }

    /// All tasks.
    pub fn tasks(&self) -> &[TaskNode] {
        &self.tasks
    }

    /// The trace buffer.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// The allocation table: every region the recorder's bump allocator
    /// handed out, in allocation order (offsets strictly increase).
    /// [`crate::certify`] uses it to rewrite raw trace addresses as
    /// `(allocation, offset)` pairs, making traces comparable modulo
    /// base-pointer relocation.
    pub fn allocs(&self) -> &[Arr] {
        &self.allocs
    }

    /// Total number of recorded memory operations (the program's *work*).
    pub fn work(&self) -> u64 {
        self.trace.len() as u64
    }

    /// Read a word of the final memory image.
    pub fn get(&self, arr: Arr, i: usize) -> u64 {
        assert!(i < arr.len);
        self.mem[(arr.off + i as u64) as usize]
    }

    /// Read an `f64` stored with [`Recorder::write_f64`].
    pub fn get_f64(&self, arr: Arr, i: usize) -> f64 {
        f64::from_bits(self.get(arr, i))
    }

    /// The final contents of a region.
    pub fn slice(&self, arr: Arr) -> &[u64] {
        &self.mem[arr.off as usize..arr.off as usize + arr.len]
    }

    /// Final contents of a matrix element.
    pub fn get_mat(&self, m: &Mat, i: usize, j: usize) -> u64 {
        self.mem[m.addr(i, j) as usize]
    }

    /// Final contents of a matrix element as `f64`.
    pub fn get_mat_f64(&self, m: &Mat, i: usize, j: usize) -> f64 {
        f64::from_bits(self.get_mat(m, i, j))
    }
}

/// Aggregate shape statistics of a recorded program (see
/// [`Program::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total tasks in the DAG.
    pub tasks: usize,
    /// Fork blocks with the SB hint.
    pub sb_forks: usize,
    /// Fork blocks with the CGC⇒SB hint.
    pub cgcsb_forks: usize,
    /// CGC parallel-for segments.
    pub cgc_loops: usize,
    /// Straight-line compute segments.
    pub compute_segments: usize,
    /// Maximum fork-nesting depth.
    pub max_depth: usize,
    /// Total recorded memory operations.
    pub work: u64,
}

impl Program {
    /// Shape statistics: how the algorithm used the hint vocabulary.
    pub fn stats(&self) -> ProgramStats {
        let mut st = ProgramStats {
            tasks: self.tasks.len(),
            sb_forks: 0,
            cgcsb_forks: 0,
            cgc_loops: 0,
            compute_segments: 0,
            max_depth: 0,
            work: self.work(),
        };
        let mut depth = vec![0usize; self.tasks.len()];
        for (id, t) in self.tasks.iter().enumerate() {
            if let Some(p) = t.parent {
                depth[id] = depth[p] + 1;
            }
            st.max_depth = st.max_depth.max(depth[id]);
            for seg in &t.segments {
                match seg {
                    Segment::Compute { .. } => st.compute_segments += 1,
                    Segment::CgcLoop { .. } => st.cgc_loops += 1,
                    Segment::Fork {
                        hint: ForkHint::Sb, ..
                    } => st.sb_forks += 1,
                    Segment::Fork {
                        hint: ForkHint::CgcSb,
                        ..
                    } => st.cgcsb_forks += 1,
                }
            }
        }
        st
    }
}

/// A child to be spawned by [`Recorder::fork`].
pub struct Spawn<'a> {
    space: usize,
    body: Box<dyn FnOnce(&mut Recorder) + 'a>,
}

/// Build a [`Spawn`] from a space bound and a body.
pub fn spawn<'a>(space: usize, body: impl FnOnce(&mut Recorder) + 'a) -> Spawn<'a> {
    Spawn {
        space,
        body: Box::new(body),
    }
}

/// Sanity cap on the task DAG size; recording beyond this aborts rather
/// than exhausting memory (it indicates a missing base-case grain).
const MAX_TASKS: usize = 1 << 24;

/// The recording context handed to algorithm bodies.
///
/// Provides simulated-memory allocation and access, the CGC loop
/// primitive, and fork–join spawning with SB / CGC⇒SB hints. Every
/// [`read`](Recorder::read) / [`write`](Recorder::write) appends a trace
/// entry *and* actually performs the access against a real backing store,
/// so data-dependent control flow (sorting, list contraction, …) records
/// faithfully.
pub struct Recorder {
    mem: Vec<u64>,
    trace: Vec<TraceEntry>,
    tasks: Vec<TaskNode>,
    allocs: Vec<Arr>,
    /// Stack of open tasks (innermost last).
    stack: Vec<TaskId>,
    /// Trace index at which the innermost open compute segment began.
    pending_start: usize,
    /// Recording inside a CGC iteration (forks are disallowed there).
    in_cgc: bool,
    /// Allocation alignment in words.
    align: usize,
    /// Space bounds by task id that take precedence over the bounds the
    /// algorithm declares (empty outside measured re-recording).
    space_overrides: Vec<usize>,
}

/// Stack size for the recording thread. Recording recurses natively with
/// the algorithm (one native frame per fork level), so deep sequential
/// spawn chains need far more stack than the 2 MiB a test thread gets;
/// the reservation is virtual memory and costs nothing until touched.
const RECORD_STACK: usize = 256 << 20;

impl Recorder {
    /// Record a program: `root_space` is the root task's space bound and
    /// `body` the algorithm.
    pub fn record(root_space: usize, body: impl FnOnce(&mut Recorder) + Send) -> Program {
        Self::record_aligned(root_space, 64, body)
    }

    /// As [`record`](Recorder::record) but with explicit allocation
    /// alignment (in words). The default of 64 keeps distinct arrays on
    /// distinct blocks for every block size the stock machines use.
    pub fn record_aligned(
        root_space: usize,
        align: usize,
        body: impl FnOnce(&mut Recorder) + Send,
    ) -> Program {
        Self::record_impl(root_space, align, Vec::new(), body)
    }

    /// Record a program with *measured* space bounds.
    ///
    /// Algorithms with data-dependent task trees (sorting, list and graph
    /// contraction) cannot state exact per-task space analytically: the
    /// size of a recursive subproblem depends on the data (sample
    /// dedup, bucket occupancy, independent-set size, …). This helper
    /// records the deterministic `body` twice: a scouting pass using the
    /// provisional bounds declared at each [`fork`](Recorder::fork), from
    /// which [`crate::verify::measured_bounds`] measures every task's true
    /// subtree footprint (equalized across CGC⇒SB batches), and a final
    /// pass in which those measured bounds replace the provisional ones.
    /// The resulting program always passes the [`crate::verify`] space
    /// lints; the race detector is unaffected (races do not depend on
    /// declared bounds).
    pub fn record_measured(
        root_space: usize,
        mut body: impl FnMut(&mut Recorder) + Send,
    ) -> Program {
        let scout = Self::record_impl(root_space, 64, Vec::new(), &mut body);
        let bounds = crate::verify::measured_bounds(&scout);
        Self::record_impl(root_space, 64, bounds, body)
    }

    fn record_impl(
        root_space: usize,
        align: usize,
        space_overrides: Vec<usize>,
        body: impl FnOnce(&mut Recorder) + Send,
    ) -> Program {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let root = space_overrides.first().copied().unwrap_or(root_space);
        // Recording runs on its own big-stack thread (see [`RECORD_STACK`]);
        // panics from the body are re-raised on the caller's thread.
        std::thread::scope(|s| {
            let handle = std::thread::Builder::new()
                .name("mo-record".into())
                .stack_size(RECORD_STACK)
                .spawn_scoped(s, move || {
                    let mut rec = Recorder {
                        mem: Vec::new(),
                        trace: Vec::new(),
                        tasks: vec![TaskNode {
                            space: root,
                            segments: Vec::new(),
                            parent: None,
                        }],
                        allocs: Vec::new(),
                        stack: vec![0],
                        pending_start: 0,
                        in_cgc: false,
                        align,
                        space_overrides,
                    };
                    body(&mut rec);
                    rec.close_pending();
                    debug_assert_eq!(rec.stack.len(), 1);
                    Program {
                        mem: rec.mem,
                        trace: rec.trace,
                        tasks: rec.tasks,
                        allocs: rec.allocs,
                    }
                })
                .expect("failed to spawn recording thread");
            match handle.join() {
                Ok(prog) => prog,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }

    /// Allocate `len` words of zeroed simulated memory.
    pub fn alloc(&mut self, len: usize) -> Arr {
        let off = self.mem.len().div_ceil(self.align) * self.align;
        self.mem.resize(off + len, 0);
        let a = Arr {
            off: off as u64,
            len,
        };
        self.allocs.push(a);
        a
    }

    /// Allocate and initialize from `data` **without tracing**: the data
    /// starts out in shared memory, caches cold, exactly like a problem
    /// input.
    pub fn alloc_init(&mut self, data: &[u64]) -> Arr {
        let a = self.alloc(data.len());
        self.mem[a.off as usize..a.off as usize + data.len()].copy_from_slice(data);
        a
    }

    /// Allocate and initialize from `f64` data (bit-cast), untraced.
    pub fn alloc_init_f64(&mut self, data: &[f64]) -> Arr {
        let a = self.alloc(data.len());
        for (k, &v) in data.iter().enumerate() {
            self.mem[a.off as usize + k] = v.to_bits();
        }
        a
    }

    /// Traced load of `arr[i]`.
    #[inline]
    pub fn read(&mut self, arr: Arr, i: usize) -> u64 {
        assert!(i < arr.len, "read out of bounds: {i} >= {}", arr.len);
        let addr = arr.off + i as u64;
        self.trace.push(TraceEntry::new(addr, false));
        self.mem[addr as usize]
    }

    /// Traced store of `arr[i] = v`.
    #[inline]
    pub fn write(&mut self, arr: Arr, i: usize, v: u64) {
        assert!(i < arr.len, "write out of bounds: {i} >= {}", arr.len);
        let addr = arr.off + i as u64;
        self.trace.push(TraceEntry::new(addr, true));
        self.mem[addr as usize] = v;
    }

    /// Traced `f64` load.
    #[inline]
    pub fn read_f64(&mut self, arr: Arr, i: usize) -> f64 {
        f64::from_bits(self.read(arr, i))
    }

    /// Traced `f64` store.
    #[inline]
    pub fn write_f64(&mut self, arr: Arr, i: usize, v: f64) {
        self.write(arr, i, v.to_bits());
    }

    /// Traced matrix load.
    #[inline]
    pub fn read_mat(&mut self, m: &Mat, i: usize, j: usize) -> u64 {
        let addr = m.addr(i, j);
        self.trace.push(TraceEntry::new(addr, false));
        self.mem[addr as usize]
    }

    /// Traced matrix store.
    #[inline]
    pub fn write_mat(&mut self, m: &Mat, i: usize, j: usize, v: u64) {
        let addr = m.addr(i, j);
        self.trace.push(TraceEntry::new(addr, true));
        self.mem[addr as usize] = v;
    }

    /// Traced matrix `f64` load.
    #[inline]
    pub fn read_mat_f64(&mut self, m: &Mat, i: usize, j: usize) -> f64 {
        f64::from_bits(self.read_mat(m, i, j))
    }

    /// Traced matrix `f64` store.
    #[inline]
    pub fn write_mat_f64(&mut self, m: &Mat, i: usize, j: usize, v: f64) {
        self.write_mat(m, i, j, v.to_bits());
    }

    /// Untraced peek, for assertions and data-structure bookkeeping that a
    /// real implementation would keep in registers.
    pub fn peek(&self, arr: Arr, i: usize) -> u64 {
        assert!(i < arr.len);
        self.mem[(arr.off + i as u64) as usize]
    }

    /// A `[CGC]`-scheduled parallel for loop over `iters` iterations.
    ///
    /// The body must not fork; it may freely read and write. The scheduler
    /// later splits the iterations into contiguous per-core segments of
    /// near-equal length, each covering at least `B_1` iterations.
    pub fn cgc_for(&mut self, iters: usize, mut body: impl FnMut(&mut Recorder, usize)) {
        assert!(!self.in_cgc, "CGC loops do not nest");
        self.close_pending();
        let start = self.trace.len();
        let mut iter_ends = Vec::with_capacity(iters);
        self.in_cgc = true;
        for k in 0..iters {
            body(self, k);
            iter_ends.push(self.trace.len());
        }
        self.in_cgc = false;
        let seg = Segment::CgcLoop { start, iter_ends };
        let tid = *self.stack.last().unwrap();
        self.tasks[tid].segments.push(seg);
        self.pending_start = self.trace.len();
    }

    /// Fork the given children in parallel under `hint` and join.
    pub fn fork(&mut self, hint: ForkHint, children: Vec<Spawn<'_>>) {
        assert!(!self.in_cgc, "cannot fork inside a CGC loop body");
        if children.is_empty() {
            return;
        }
        self.close_pending();
        let mut ids = Vec::with_capacity(children.len());
        for child in children {
            assert!(
                self.tasks.len() < MAX_TASKS,
                "task DAG too large; add a base-case grain"
            );
            let id = self.tasks.len();
            let space = self.space_overrides.get(id).copied().unwrap_or(child.space);
            self.tasks.push(TaskNode {
                space,
                segments: Vec::new(),
                parent: Some(*self.stack.last().unwrap()),
            });
            self.stack.push(id);
            self.pending_start = self.trace.len();
            (child.body)(self);
            self.close_pending();
            self.stack.pop();
            ids.push(id);
        }
        let tid = *self.stack.last().unwrap();
        self.tasks[tid].segments.push(Segment::Fork {
            hint,
            children: ids,
        });
        self.pending_start = self.trace.len();
    }

    /// Binary fork convenience (the common case in the paper's recursive
    /// algorithms): run `f1` and `f2` in parallel under `hint`.
    pub fn fork2(
        &mut self,
        hint: ForkHint,
        space1: usize,
        f1: impl FnOnce(&mut Recorder),
        space2: usize,
        f2: impl FnOnce(&mut Recorder),
    ) {
        self.fork(hint, vec![spawn(space1, f1), spawn(space2, f2)]);
    }

    /// Number of trace entries recorded so far.
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    fn close_pending(&mut self) {
        let end = self.trace.len();
        if end > self.pending_start {
            let tid = *self.stack.last().unwrap();
            self.tasks[tid].segments.push(Segment::Compute {
                start: self.pending_start,
                end,
            });
        }
        self.pending_start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_records_one_compute_segment() {
        let mut handle = None;
        let prog = Recorder::record(16, |rec| {
            let a = rec.alloc(4);
            rec.write(a, 0, 7);
            let v = rec.read(a, 0);
            rec.write(a, 1, v + 1);
            handle = Some(a);
        });
        assert_eq!(prog.tasks().len(), 1);
        assert_eq!(prog.tasks()[0].segments.len(), 1);
        assert!(matches!(
            prog.tasks()[0].segments[0],
            Segment::Compute { start: 0, end: 3 }
        ));
        let a = handle.unwrap();
        assert_eq!(prog.get(a, 0), 7);
        assert_eq!(prog.get(a, 1), 8);
        assert_eq!(prog.work(), 3);
    }

    #[test]
    fn cgc_loop_records_iteration_bounds() {
        let prog = Recorder::record(16, |rec| {
            let a = rec.alloc(8);
            rec.cgc_for(8, |rec, k| {
                rec.write(a, k, k as u64 * 2);
            });
        });
        match &prog.tasks()[0].segments[0] {
            Segment::CgcLoop { start, iter_ends } => {
                assert_eq!(*start, 0);
                assert_eq!(iter_ends.len(), 8);
                assert_eq!(*iter_ends.last().unwrap(), 8);
            }
            s => panic!("expected CgcLoop, got {s:?}"),
        }
    }

    #[test]
    fn fork_creates_children_with_space_bounds() {
        let prog = Recorder::record(100, |rec| {
            let a = rec.alloc(2);
            rec.fork2(
                ForkHint::Sb,
                50,
                |rec| rec.write(a, 0, 1),
                50,
                |rec| rec.write(a, 1, 2),
            );
            rec.write(a, 0, 3);
        });
        assert_eq!(prog.tasks().len(), 3);
        let root = &prog.tasks()[0];
        assert_eq!(root.segments.len(), 2); // Fork then trailing Compute
        match &root.segments[0] {
            Segment::Fork { hint, children } => {
                assert_eq!(*hint, ForkHint::Sb);
                assert_eq!(children, &vec![1, 2]);
            }
            s => panic!("expected Fork, got {s:?}"),
        }
        assert_eq!(prog.tasks()[1].space, 50);
        assert_eq!(prog.tasks()[1].parent, Some(0));
    }

    #[test]
    fn nested_forks_build_a_tree() {
        let prog = Recorder::record(64, |rec| {
            let a = rec.alloc(4);
            rec.fork2(
                ForkHint::CgcSb,
                32,
                |rec| {
                    rec.fork2(
                        ForkHint::Sb,
                        16,
                        |rec| rec.write(a, 0, 1),
                        16,
                        |rec| rec.write(a, 1, 1),
                    );
                },
                32,
                |rec| rec.write(a, 2, 1),
            );
        });
        assert_eq!(prog.tasks().len(), 5);
        assert_eq!(prog.tasks()[2].parent, Some(1));
        assert_eq!(prog.tasks()[3].parent, Some(1));
        assert_eq!(prog.tasks()[4].parent, Some(0));
    }

    #[test]
    fn recording_executes_for_real() {
        // Data-dependent control flow must see true values.
        let mut out = 0;
        let _ = Recorder::record(16, |rec| {
            let a = rec.alloc_init(&[5, 9]);
            let x = rec.read(a, 0);
            let y = rec.read(a, 1);
            out = y.abs_diff(x);
        });
        assert_eq!(out, 4);
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let _ = Recorder::record_aligned(16, 8, |rec| {
            let a = rec.alloc(3);
            let b = rec.alloc(3);
            assert_eq!(a.base() % 8, 0);
            assert_eq!(b.base() % 8, 0);
            assert!(b.base() >= a.base() + 3);
        });
    }

    #[test]
    #[should_panic(expected = "cannot fork inside a CGC loop")]
    fn fork_inside_cgc_panics() {
        let _ = Recorder::record(16, |rec| {
            let a = rec.alloc(2);
            rec.cgc_for(2, |rec, _| {
                rec.fork2(
                    ForkHint::Sb,
                    1,
                    |r| r.write(a, 0, 1),
                    1,
                    |r| r.write(a, 1, 1),
                );
            });
        });
    }

    #[test]
    fn stats_summarize_the_shape() {
        let prog = Recorder::record(256, |rec| {
            let a = rec.alloc(16);
            rec.cgc_for(16, |rec, k| rec.write(a, k, 1));
            rec.fork2(
                ForkHint::Sb,
                8,
                |r| {
                    let b = r.alloc(1);
                    r.write(b, 0, 1);
                },
                8,
                |r| {
                    let b = r.alloc(1);
                    r.write(b, 0, 2);
                },
            );
            rec.fork(
                ForkHint::CgcSb,
                vec![spawn(8, |r: &mut Recorder| {
                    let b = r.alloc(1);
                    r.write(b, 0, 3);
                })],
            );
        });
        let st = prog.stats();
        assert_eq!(st.tasks, 4);
        assert_eq!(st.sb_forks, 1);
        assert_eq!(st.cgcsb_forks, 1);
        assert_eq!(st.cgc_loops, 1);
        assert_eq!(st.compute_segments, 3);
        assert_eq!(st.max_depth, 1);
        assert_eq!(st.work, 19);
    }

    #[test]
    fn f64_roundtrip() {
        let mut handle = None;
        let prog = Recorder::record(16, |rec| {
            let a = rec.alloc(1);
            rec.write_f64(a, 0, -1.25);
            handle = Some(a);
        });
        assert_eq!(prog.get_f64(handle.unwrap(), 0), -1.25);
    }
}
