//! Handles into the simulated shared memory: 1-D arrays and 2-D matrices.

/// A contiguous region of simulated memory, in words.
///
/// `Arr` is a plain handle (offset + length); all accesses go through the
/// [`crate::Recorder`], which bounds-checks against the handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arr {
    pub(crate) off: u64,
    pub(crate) len: usize,
}

impl Arr {
    /// Length in words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base word address (useful for diagnostics only).
    pub fn base(&self) -> u64 {
        self.off
    }

    /// A sub-range `[start, start + len)` of this region.
    pub fn sub(&self, start: usize, len: usize) -> Arr {
        assert!(start + len <= self.len, "sub-range out of bounds");
        Arr {
            off: self.off + start as u64,
            len,
        }
    }

    /// Split into two halves at `mid`.
    pub fn split_at(&self, mid: usize) -> (Arr, Arr) {
        (self.sub(0, mid), self.sub(mid, self.len - mid))
    }
}

/// A row-major 2-D view over an [`Arr`].
///
/// `Mat` supports the quadrant decomposition used throughout the paper's
/// recursive algorithms (I-GEP's `X_{11}, X_{12}, X_{21}, X_{22}`): a
/// quadrant is just a `Mat` with the same stride and a shifted origin, so
/// no data ever moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mat {
    pub(crate) off: u64,
    /// Number of rows in this view.
    pub rows: usize,
    /// Number of columns in this view.
    pub cols: usize,
    /// Distance in words between consecutive rows of the underlying array.
    pub stride: usize,
}

impl Mat {
    /// View `arr` as a `rows × cols` row-major matrix (tight stride).
    pub fn new(arr: Arr, rows: usize, cols: usize) -> Mat {
        assert!(rows * cols <= arr.len, "matrix does not fit the array");
        Mat {
            off: arr.off,
            rows,
            cols,
            stride: cols,
        }
    }

    /// Word address of element `(i, j)`.
    #[inline]
    pub fn addr(&self, i: usize, j: usize) -> u64 {
        debug_assert!(i < self.rows && j < self.cols, "({i},{j}) out of bounds");
        self.off + (i * self.stride + j) as u64
    }

    /// A rectangular sub-view with origin `(i, j)` and shape `r × c`.
    pub fn view(&self, i: usize, j: usize, r: usize, c: usize) -> Mat {
        assert!(
            i + r <= self.rows && j + c <= self.cols,
            "view out of bounds"
        );
        Mat {
            off: self.addr(i, j),
            rows: r,
            cols: c,
            stride: self.stride,
        }
    }

    /// Row `i` as a 1-D handle (contiguous within the row).
    pub fn row(&self, i: usize) -> Arr {
        assert!(i < self.rows);
        Arr {
            off: self.addr(i, 0),
            len: self.cols,
        }
    }

    /// The four quadrants `(X11, X12, X21, X22)` of a square
    /// even-dimension view.
    pub fn quadrants(&self) -> (Mat, Mat, Mat, Mat) {
        assert_eq!(self.rows, self.cols, "quadrants need a square view");
        assert_eq!(self.rows % 2, 0, "quadrants need an even dimension");
        let m = self.rows / 2;
        (
            self.view(0, 0, m, m),
            self.view(0, m, m, m),
            self.view(m, 0, m, m),
            self.view(m, m, m, m),
        )
    }

    /// Number of elements in the view.
    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(off: u64, len: usize) -> Arr {
        Arr { off, len }
    }

    #[test]
    fn sub_and_split() {
        let a = arr(100, 10);
        let s = a.sub(3, 4);
        assert_eq!(s.base(), 103);
        assert_eq!(s.len(), 4);
        let (l, r) = a.split_at(6);
        assert_eq!((l.base(), l.len()), (100, 6));
        assert_eq!((r.base(), r.len()), (106, 4));
    }

    #[test]
    #[should_panic]
    fn sub_out_of_bounds_panics() {
        arr(0, 10).sub(8, 4);
    }

    #[test]
    fn mat_addressing_is_row_major() {
        let m = Mat::new(arr(1000, 64), 8, 8);
        assert_eq!(m.addr(0, 0), 1000);
        assert_eq!(m.addr(0, 7), 1007);
        assert_eq!(m.addr(1, 0), 1008);
        assert_eq!(m.addr(7, 7), 1063);
    }

    #[test]
    fn views_share_storage() {
        let m = Mat::new(arr(0, 64), 8, 8);
        let v = m.view(2, 3, 4, 4);
        assert_eq!(v.addr(0, 0), m.addr(2, 3));
        assert_eq!(v.addr(3, 3), m.addr(5, 6));
        assert_eq!(v.stride, 8);
    }

    #[test]
    fn quadrants_tile_the_matrix() {
        let m = Mat::new(arr(0, 64), 8, 8);
        let (x11, x12, x21, x22) = m.quadrants();
        assert_eq!(x11.addr(0, 0), m.addr(0, 0));
        assert_eq!(x12.addr(0, 0), m.addr(0, 4));
        assert_eq!(x21.addr(0, 0), m.addr(4, 0));
        assert_eq!(x22.addr(3, 3), m.addr(7, 7));
        for q in [x11, x12, x21, x22] {
            assert_eq!(q.rows, 4);
            assert_eq!(q.cols, 4);
            assert_eq!(q.elems(), 16);
        }
    }

    #[test]
    fn row_is_contiguous() {
        let m = Mat::new(arr(50, 64), 8, 8);
        let r = m.row(2);
        assert_eq!(r.base(), 50 + 16);
        assert_eq!(r.len(), 8);
    }
}
