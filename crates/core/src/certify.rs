//! Value-obliviousness certification and footprint auditing of recorded
//! programs — the static-analysis layer above [`crate::verify`].
//!
//! [`crate::verify`] checks *schedule*-obliviousness: a race-free
//! fork–join program with honest hints behaves identically under every
//! SP-consistent schedule. This module checks the stronger property the
//! paper's algorithms are designed for (and which Ramachandran–Shi's
//! data-oblivious line makes explicit): *value*-obliviousness — the task
//! DAG, the declared space bounds, and the entire address trace are
//! independent of the input **values**, not just of the schedule.
//!
//! The certifier records one kernel several times at the same size `n`
//! with independently seeded values, rewrites each address trace into
//! canonical `(allocation, offset)` form (so two runs whose bump
//! allocator placed arrays at different bases still compare equal —
//! "modulo base-pointer relocation"), and diffs the runs pairwise. The
//! first divergence — a differing DAG node, allocation size, trace
//! length, or trace entry — becomes the machine-readable *witness* that
//! the kernel is data-dependent.
//!
//! The companion footprint audit replays a recorded DAG and reports the
//! true maximum working set any SB task can pin under any SP-consistent
//! schedule (the per-task subtree footprint is schedule-invariant, so
//! the root's distinct-word count is the exact bound), for comparison
//! against the analytic footprint that admission control keys on.
//!
//! Certificates serialize to JSON ([`CertificateSet`]); `mo-serve` loads
//! them to gate its `--secure` mode on an `oblivious` classification.

use std::fmt;

use crate::record::{Program, Segment};
use crate::trace::TraceEntry;

/// A trace entry rewritten relative to its allocation: which region of
/// the allocation table it falls in, the word offset inside that
/// region, and the access direction. Two recordings of a
/// value-oblivious kernel produce identical canonical traces even when
/// data-dependent allocation *placement* moved the raw addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonEntry {
    /// Index into [`Program::allocs`]; `usize::MAX` for an address
    /// outside every recorded allocation (cannot happen for programs
    /// recorded through [`crate::Recorder`]).
    pub alloc: usize,
    /// Word offset from the allocation's base.
    pub offset: u64,
    /// Whether the access is a write.
    pub write: bool,
}

impl fmt::Display for CanonEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = if self.write { "W" } else { "R" };
        write!(f, "{dir} alloc {}+{}", self.alloc, self.offset)
    }
}

/// Rewrite one raw trace entry against the allocation table (sorted by
/// base, as the bump allocator emits it).
fn canon_entry(allocs: &[crate::Arr], e: TraceEntry) -> CanonEntry {
    let addr = e.addr();
    // Last allocation with base <= addr; partition_point gives the first
    // with base > addr.
    let idx = allocs.partition_point(|a| a.base() <= addr);
    if idx > 0 {
        let a = allocs[idx - 1];
        if addr < a.base() + a.len() as u64 {
            return CanonEntry {
                alloc: idx - 1,
                offset: addr - a.base(),
                write: e.is_write(),
            };
        }
    }
    CanonEntry {
        alloc: usize::MAX,
        offset: addr,
        write: e.is_write(),
    }
}

/// The full canonical trace of a recorded program.
pub fn canonical_trace(prog: &Program) -> Vec<CanonEntry> {
    let allocs = prog.allocs();
    prog.trace()
        .iter()
        .map(|&e| canon_entry(allocs, e))
        .collect()
}

/// Which layer of the recording two runs first disagreed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The task DAGs differ: task count, parentage, declared space
    /// bounds, or segment structure.
    DagShape,
    /// The allocation tables differ in count or region length.
    AllocTable,
    /// One trace is a strict prefix of the other.
    TraceLength,
    /// A canonical trace entry differs.
    TraceEntry,
}

impl DivergenceKind {
    /// Stable label used in JSON certificates.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::DagShape => "dag-shape",
            DivergenceKind::AllocTable => "alloc-table",
            DivergenceKind::TraceLength => "trace-length",
            DivergenceKind::TraceEntry => "trace-entry",
        }
    }

    /// Parse a [`name`](Self::name).
    pub fn parse(s: &str) -> Option<DivergenceKind> {
        [
            DivergenceKind::DagShape,
            DivergenceKind::AllocTable,
            DivergenceKind::TraceLength,
            DivergenceKind::TraceEntry,
        ]
        .into_iter()
        .find(|k| k.name() == s)
    }
}

/// The first point at which two recordings of one kernel disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// The layer that diverged.
    pub kind: DivergenceKind,
    /// Position of the divergence: a trace index for
    /// [`DivergenceKind::TraceEntry`] / [`DivergenceKind::TraceLength`],
    /// a task id for [`DivergenceKind::DagShape`], an allocation index
    /// for [`DivergenceKind::AllocTable`].
    pub pos: usize,
    /// First run's canonical entry at `pos` (trace divergences only).
    pub a: Option<CanonEntry>,
    /// Second run's canonical entry at `pos` (trace divergences only).
    pub b: Option<CanonEntry>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DivergenceKind::DagShape => write!(f, "task DAGs diverge at task {}", self.pos),
            DivergenceKind::AllocTable => {
                write!(f, "allocation tables diverge at allocation {}", self.pos)
            }
            DivergenceKind::TraceLength => {
                write!(f, "one trace ends at entry {} (strict prefix)", self.pos)
            }
            DivergenceKind::TraceEntry => {
                let none = "∅".to_string();
                let fa = self
                    .a
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| none.clone());
                let fb = self.b.map(|e| e.to_string()).unwrap_or(none);
                write!(f, "traces diverge at entry {}: {fa} vs {fb}", self.pos)
            }
        }
    }
}

/// Structural equality of two recordings' task DAGs; `Some(task)` names
/// the first task at which they disagree.
fn dag_divergence(a: &Program, b: &Program) -> Option<usize> {
    let (ta, tb) = (a.tasks(), b.tasks());
    for (tid, (x, y)) in ta.iter().zip(tb.iter()).enumerate() {
        if x.parent != y.parent || x.space != y.space || x.segments.len() != y.segments.len() {
            return Some(tid);
        }
        let same = x
            .segments
            .iter()
            .zip(&y.segments)
            .all(|(s, t)| match (s, t) {
                (
                    Segment::Compute { start: s0, end: e0 },
                    Segment::Compute { start: s1, end: e1 },
                ) => s0 == s1 && e0 == e1,
                (
                    Segment::CgcLoop {
                        start: s0,
                        iter_ends: i0,
                    },
                    Segment::CgcLoop {
                        start: s1,
                        iter_ends: i1,
                    },
                ) => s0 == s1 && i0 == i1,
                (
                    Segment::Fork {
                        hint: h0,
                        children: c0,
                    },
                    Segment::Fork {
                        hint: h1,
                        children: c1,
                    },
                ) => h0 == h1 && c0 == c1,
                _ => false,
            });
        if !same {
            return Some(tid);
        }
    }
    (ta.len() != tb.len()).then(|| ta.len().min(tb.len()))
}

/// Diff two recordings of one kernel (same `n`, different input
/// values). `None` means the runs are indistinguishable — DAG,
/// allocation shapes, and canonical address trace all identical — i.e.
/// this *pair* is evidence for value-obliviousness.
pub fn diff(a: &Program, b: &Program) -> Option<Divergence> {
    if let Some(task) = dag_divergence(a, b) {
        return Some(Divergence {
            kind: DivergenceKind::DagShape,
            pos: task,
            a: None,
            b: None,
        });
    }
    let (aa, ab) = (a.allocs(), b.allocs());
    for (i, (x, y)) in aa.iter().zip(ab.iter()).enumerate() {
        if x.len() != y.len() {
            return Some(Divergence {
                kind: DivergenceKind::AllocTable,
                pos: i,
                a: None,
                b: None,
            });
        }
    }
    if aa.len() != ab.len() {
        return Some(Divergence {
            kind: DivergenceKind::AllocTable,
            pos: aa.len().min(ab.len()),
            a: None,
            b: None,
        });
    }
    for (i, (&x, &y)) in a.trace().iter().zip(b.trace().iter()).enumerate() {
        let (cx, cy) = (canon_entry(aa, x), canon_entry(ab, y));
        if cx != cy {
            return Some(Divergence {
                kind: DivergenceKind::TraceEntry,
                pos: i,
                a: Some(cx),
                b: Some(cy),
            });
        }
    }
    if a.trace().len() != b.trace().len() {
        return Some(Divergence {
            kind: DivergenceKind::TraceLength,
            pos: a.trace().len().min(b.trace().len()),
            a: None,
            b: None,
        });
    }
    None
}

/// Verdict of the value-obliviousness certifier for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Every recorded pair was indistinguishable: DAG, allocation
    /// shapes, and canonical trace are (empirically) value-independent.
    Oblivious,
    /// Some pair diverged; the certificate carries the witness.
    DataDependent,
}

impl Classification {
    /// Stable label used in JSON certificates and gate files.
    pub fn name(self) -> &'static str {
        match self {
            Classification::Oblivious => "oblivious",
            Classification::DataDependent => "data-dependent",
        }
    }

    /// Parse a [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Classification> {
        match s {
            "oblivious" => Some(Classification::Oblivious),
            "data-dependent" => Some(Classification::DataDependent),
            _ => None,
        }
    }
}

/// A concrete divergence between two seeded runs — the proof carried by
/// a `data-dependent` certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Seed of the baseline run.
    pub seed_a: u64,
    /// Seed of the diverging run.
    pub seed_b: u64,
    /// Where and how the runs diverged.
    pub divergence: Divergence,
}

/// Classify a kernel from `runs` of `(seed, recording)` at one size:
/// diff every run against the first and return the first divergence
/// found (with its seed pair) or [`Classification::Oblivious`].
pub fn classify(runs: &[(u64, Program)]) -> (Classification, Option<Witness>) {
    if let Some(((s0, base), rest)) = runs.split_first() {
        for (s, prog) in rest {
            if let Some(d) = diff(base, prog) {
                return (
                    Classification::DataDependent,
                    Some(Witness {
                        seed_a: *s0,
                        seed_b: *s,
                        divergence: d,
                    }),
                );
            }
        }
    }
    (Classification::Oblivious, None)
}

/// Per-task subtree footprints (distinct words touched by the task and
/// its descendants). This is schedule-invariant — under every
/// SP-consistent schedule an SB task can pin at most its subtree's
/// distinct words — so element 0 (the root) is the true maximum working
/// set of the whole program, the number the footprint auditor holds
/// against the analytic admission-control bound.
pub fn max_working_set(prog: &Program) -> usize {
    crate::verify::task_footprints(prog)
        .first()
        .copied()
        .unwrap_or(0)
}

/// One kernel's certificate: the certifier's verdict plus the footprint
/// audit, as written to (and read back from) the JSON artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Registry name of the kernel.
    pub kernel: String,
    /// Problem size the kernel was recorded at.
    pub n: usize,
    /// Number of independently seeded recordings compared.
    pub runs: usize,
    /// The certifier's verdict.
    pub classification: Classification,
    /// Divergence witness; present iff `classification` is
    /// [`Classification::DataDependent`].
    pub witness: Option<Witness>,
    /// Analytic footprint (words) admission control charges for size `n`.
    pub declared_words: usize,
    /// Maximum recorded working set (words) over the compared runs.
    pub recorded_words: usize,
    /// Whether `declared_words >= recorded_words` — the soundness
    /// condition SB admission control relies on.
    pub footprint_sound: bool,
    /// Whether every recording passed [`crate::verify`] clean (no races,
    /// no error-severity hint violations) — schedule-obliviousness.
    pub schedule_clean: bool,
}

impl Certificate {
    /// Whether `mo-serve --secure` may run this kernel: certified
    /// value-oblivious, with a sound footprint, race-free.
    pub fn is_secure(&self) -> bool {
        self.classification == Classification::Oblivious
            && self.footprint_sound
            && self.schedule_clean
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (n={}, {} runs; footprint {}/{} declared{}; verify {})",
            self.kernel,
            self.classification.name(),
            self.n,
            self.runs,
            self.recorded_words,
            self.declared_words,
            if self.footprint_sound { "" } else { " UNSOUND" },
            if self.schedule_clean {
                "clean"
            } else {
                "DIRTY"
            },
        )?;
        if let Some(w) = &self.witness {
            write!(
                f,
                "; witness seeds ({}, {}): {}",
                w.seed_a, w.seed_b, w.divergence
            )?;
        }
        Ok(())
    }
}

/// A set of per-kernel certificates — the JSON artifact `mo_certify`
/// emits and `mo-serve --secure` loads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CertificateSet {
    /// One certificate per kernel, in registry order.
    pub certs: Vec<Certificate>,
}

impl CertificateSet {
    /// The certificate for `kernel`, if present.
    pub fn get(&self, kernel: &str) -> Option<&Certificate> {
        self.certs.iter().find(|c| c.kernel == kernel)
    }

    /// Whether `kernel` holds an `oblivious`, footprint-sound,
    /// race-free certificate (the `--secure` admission condition).
    pub fn is_secure(&self, kernel: &str) -> bool {
        self.get(kernel).is_some_and(Certificate::is_secure)
    }

    /// Serialize to the JSON artifact format.
    pub fn to_json_string(&self) -> String {
        let certs: Vec<json::Json> = self.certs.iter().map(cert_to_json).collect();
        let root = json::Json::Obj(vec![
            ("version".into(), json::Json::Num(1.0)),
            ("certificates".into(), json::Json::Arr(certs)),
        ]);
        let mut out = String::new();
        json::write(&root, &mut out, 0);
        out.push('\n');
        out
    }

    /// Parse a JSON artifact produced by [`to_json_string`](Self::to_json_string).
    pub fn from_json_str(s: &str) -> Result<CertificateSet, String> {
        let root = json::parse(s)?;
        let version = root
            .get("version")
            .and_then(json::Json::as_u64)
            .ok_or("missing certificate version")?;
        if version != 1 {
            return Err(format!("unsupported certificate version {version}"));
        }
        let arr = root
            .get("certificates")
            .and_then(json::Json::as_arr)
            .ok_or("missing certificates array")?;
        let certs = arr.iter().map(cert_from_json).collect::<Result<_, _>>()?;
        Ok(CertificateSet { certs })
    }
}

fn canon_to_json(e: &CanonEntry) -> json::Json {
    json::Json::Obj(vec![
        (
            "alloc".into(),
            if e.alloc == usize::MAX {
                json::Json::Null
            } else {
                json::Json::Num(e.alloc as f64)
            },
        ),
        ("offset".into(), json::Json::Num(e.offset as f64)),
        ("write".into(), json::Json::Bool(e.write)),
    ])
}

fn canon_from_json(j: &json::Json) -> Result<CanonEntry, String> {
    Ok(CanonEntry {
        alloc: match j.get("alloc") {
            Some(json::Json::Null) | None => usize::MAX,
            Some(v) => v.as_u64().ok_or("bad alloc index")? as usize,
        },
        offset: j
            .get("offset")
            .and_then(json::Json::as_u64)
            .ok_or("bad entry offset")?,
        write: j
            .get("write")
            .and_then(json::Json::as_bool)
            .ok_or("bad entry direction")?,
    })
}

fn cert_to_json(c: &Certificate) -> json::Json {
    let mut fields = vec![
        ("kernel".into(), json::Json::Str(c.kernel.clone())),
        ("n".into(), json::Json::Num(c.n as f64)),
        ("runs".into(), json::Json::Num(c.runs as f64)),
        (
            "classification".into(),
            json::Json::Str(c.classification.name().into()),
        ),
        (
            "declared_words".into(),
            json::Json::Num(c.declared_words as f64),
        ),
        (
            "recorded_words".into(),
            json::Json::Num(c.recorded_words as f64),
        ),
        (
            "footprint_sound".into(),
            json::Json::Bool(c.footprint_sound),
        ),
        ("schedule_clean".into(), json::Json::Bool(c.schedule_clean)),
    ];
    let witness = match &c.witness {
        None => json::Json::Null,
        Some(w) => {
            let mut wf = vec![
                ("seed_a".into(), json::Json::Num(w.seed_a as f64)),
                ("seed_b".into(), json::Json::Num(w.seed_b as f64)),
                (
                    "kind".into(),
                    json::Json::Str(w.divergence.kind.name().into()),
                ),
                ("pos".into(), json::Json::Num(w.divergence.pos as f64)),
            ];
            if let Some(a) = &w.divergence.a {
                wf.push(("a".into(), canon_to_json(a)));
            }
            if let Some(b) = &w.divergence.b {
                wf.push(("b".into(), canon_to_json(b)));
            }
            json::Json::Obj(wf)
        }
    };
    fields.push(("witness".into(), witness));
    json::Json::Obj(fields)
}

fn cert_from_json(j: &json::Json) -> Result<Certificate, String> {
    let str_field = |name: &str| -> Result<String, String> {
        j.get(name)
            .and_then(json::Json::as_str)
            .map(str::to_string)
            .ok_or(format!("missing certificate field `{name}`"))
    };
    let num_field = |name: &str| -> Result<usize, String> {
        j.get(name)
            .and_then(json::Json::as_u64)
            .map(|v| v as usize)
            .ok_or(format!("missing certificate field `{name}`"))
    };
    let bool_field = |name: &str| -> Result<bool, String> {
        j.get(name)
            .and_then(json::Json::as_bool)
            .ok_or(format!("missing certificate field `{name}`"))
    };
    let classification =
        Classification::parse(&str_field("classification")?).ok_or("unknown classification")?;
    let witness = match j.get("witness") {
        Some(json::Json::Null) | None => None,
        Some(w) => {
            let kind = w
                .get("kind")
                .and_then(json::Json::as_str)
                .and_then(DivergenceKind::parse)
                .ok_or("unknown witness kind")?;
            Some(Witness {
                seed_a: w
                    .get("seed_a")
                    .and_then(json::Json::as_u64)
                    .ok_or("missing witness seed_a")?,
                seed_b: w
                    .get("seed_b")
                    .and_then(json::Json::as_u64)
                    .ok_or("missing witness seed_b")?,
                divergence: Divergence {
                    kind,
                    pos: w
                        .get("pos")
                        .and_then(json::Json::as_u64)
                        .ok_or("missing witness pos")? as usize,
                    a: w.get("a").map(canon_from_json).transpose()?,
                    b: w.get("b").map(canon_from_json).transpose()?,
                },
            })
        }
    };
    if (classification == Classification::DataDependent) != witness.is_some() {
        return Err(format!(
            "certificate for `{}` pairs classification `{}` with witness: {}",
            str_field("kernel")?,
            classification.name(),
            witness.is_some(),
        ));
    }
    Ok(Certificate {
        kernel: str_field("kernel")?,
        n: num_field("n")?,
        runs: num_field("runs")?,
        classification,
        witness,
        declared_words: num_field("declared_words")?,
        recorded_words: num_field("recorded_words")?,
        footprint_sound: bool_field("footprint_sound")?,
        schedule_clean: bool_field("schedule_clean")?,
    })
}

/// A dependency-free JSON reader/writer, just big enough for the
/// certificate artifacts (the repo deliberately carries no external
/// crates; cf. the hand-rolled Prometheus parser in `mo-obs`).
///
/// Numbers are held as `f64`; every integer the certificates store
/// (sizes, trace positions, 48-bit addresses) is well inside the 2⁵³
/// exactly-representable range.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, in insertion order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Member `key` of an object.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(v) => Some(*v),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if exactly representable.
        pub fn as_u64(&self) -> Option<u64> {
            let v = self.as_f64()?;
            (v >= 0.0 && v <= (1u64 << 53) as f64 && v.fract() == 0.0).then_some(v as u64)
        }

        /// The boolean value, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The element list, if this is an array.
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Serialize `j` onto `out`, indented two spaces per level.
    pub fn write(j: &Json, out: &mut String, level: usize) {
        match j {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < (1u64 << 53) as f64 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, level + 1);
                    write(item, out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, level + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    write(v, out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push('}');
            }
        }
    }

    fn indent(out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("  ");
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'n') => self.literal("null", Json::Null),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-') | Some(b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected byte at {}", self.pos)),
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // boundaries are valid).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                        let c = s.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while let Some(b) = self.peek() {
                if b.is_ascii_digit()
                    || b == b'.'
                    || b == b'e'
                    || b == b'E'
                    || b == b'+'
                    || b == b'-'
                {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ForkHint, Recorder};

    /// A little oblivious program: DAG and trace depend only on `n`.
    fn oblivious_prog(n: usize, values: &[u64]) -> Program {
        Recorder::record(4 * n, |rec| {
            let a = rec.alloc_init(values);
            let b = rec.alloc(n);
            rec.cgc_for(n, |rec, k| {
                let v = rec.read(a, k);
                rec.write(b, k, v.wrapping_mul(3));
            });
        })
    }

    /// A value-dependent program: the branch decides which word to touch.
    fn leaky_prog(values: &[u64]) -> Program {
        Recorder::record(64, |rec| {
            let a = rec.alloc_init(values);
            let b = rec.alloc(8);
            let v = rec.read(a, 0);
            let slot = if v % 2 == 0 { 0 } else { 7 };
            rec.write(b, slot, v);
        })
    }

    #[test]
    fn identical_patterns_have_no_divergence() {
        let p1 = oblivious_prog(8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let p2 = oblivious_prog(8, &[9, 9, 9, 9, 9, 9, 9, 9]);
        assert_eq!(diff(&p1, &p2), None);
        let (c, w) = classify(&[(1, p1), (2, p2)]);
        assert_eq!(c, Classification::Oblivious);
        assert!(w.is_none());
    }

    #[test]
    fn canonicalization_survives_base_relocation() {
        // Same logical program under different allocator alignments: raw
        // addresses differ, canonical traces agree.
        let body = |rec: &mut Recorder| {
            let a = rec.alloc(5);
            let b = rec.alloc(3);
            rec.write(a, 4, 1);
            rec.write(b, 2, 2);
            let _ = rec.read(a, 0);
        };
        let p1 = Recorder::record_aligned(64, 64, body);
        let p2 = Recorder::record_aligned(64, 8, body);
        assert_ne!(p2.allocs()[1].base(), p1.allocs()[1].base());
        assert_eq!(canonical_trace(&p1), canonical_trace(&p2));
        assert_eq!(diff(&p1, &p2), None);
    }

    #[test]
    fn value_dependent_address_yields_trace_witness() {
        let p1 = leaky_prog(&[2]);
        let p2 = leaky_prog(&[3]);
        let d = diff(&p1, &p2).expect("must diverge");
        assert_eq!(d.kind, DivergenceKind::TraceEntry);
        assert_eq!(d.pos, 1); // entry 0 is the shared read
        let (a, b) = (d.a.unwrap(), d.b.unwrap());
        assert_eq!(a.alloc, b.alloc);
        assert_ne!(a.offset, b.offset);
        assert!(a.write && b.write);
        let (c, w) = classify(&[(10, p1), (20, p2)]);
        assert_eq!(c, Classification::DataDependent);
        let w = w.unwrap();
        assert_eq!((w.seed_a, w.seed_b), (10, 20));
    }

    #[test]
    fn value_dependent_dag_yields_shape_witness() {
        let prog = |values: &[u64]| {
            Recorder::record(64, |rec| {
                let a = rec.alloc_init(values);
                let v = rec.read(a, 0);
                if v > 5 {
                    let b = rec.alloc(2);
                    rec.fork2(
                        ForkHint::Sb,
                        1,
                        |r| r.write(b, 0, 1),
                        1,
                        |r| r.write(b, 1, 1),
                    );
                }
            })
        };
        let d = diff(&prog(&[1]), &prog(&[9])).expect("must diverge");
        assert_eq!(d.kind, DivergenceKind::DagShape);
    }

    #[test]
    fn value_dependent_alloc_size_yields_alloc_witness() {
        let prog = |values: &[u64]| {
            Recorder::record(64, |rec| {
                let a = rec.alloc_init(values);
                let v = rec.read(a, 0) as usize;
                let _ = rec.alloc(v); // data-dependent reservation
            })
        };
        let d = diff(&prog(&[3]), &prog(&[5])).expect("must diverge");
        assert_eq!(d.kind, DivergenceKind::AllocTable);
        assert_eq!(d.pos, 1);
    }

    #[test]
    fn trace_prefix_yields_length_witness() {
        let prog = |extra: bool| {
            Recorder::record(64, |rec| {
                let a = rec.alloc(4);
                rec.write(a, 0, 1);
                if extra {
                    rec.write(a, 1, 2);
                }
            })
        };
        // Same DAG shape requires equal segment bounds, so build the
        // programs by hand-diffing traces directly: a prefix difference
        // inside one compute segment shows as DagShape here (segment
        // bounds are trace indices), so exercise TraceLength through
        // canonical comparison of raw traces instead.
        let p1 = prog(false);
        let p2 = prog(true);
        let d = diff(&p1, &p2).expect("must diverge");
        // Segment end indices differ first.
        assert_eq!(d.kind, DivergenceKind::DagShape);
    }

    #[test]
    fn max_working_set_counts_distinct_words() {
        let p = oblivious_prog(8, &[0; 8]);
        assert_eq!(max_working_set(&p), 16); // a (8) + b (8)
    }

    #[test]
    fn certificates_round_trip_through_json() {
        let set = CertificateSet {
            certs: vec![
                Certificate {
                    kernel: "matmul".into(),
                    n: 64,
                    runs: 3,
                    classification: Classification::Oblivious,
                    witness: None,
                    declared_words: 12288,
                    recorded_words: 12288,
                    footprint_sound: true,
                    schedule_clean: true,
                },
                Certificate {
                    kernel: "sort".into(),
                    n: 4096,
                    runs: 3,
                    classification: Classification::DataDependent,
                    witness: Some(Witness {
                        seed_a: 1,
                        seed_b: 2,
                        divergence: Divergence {
                            kind: DivergenceKind::TraceEntry,
                            pos: 777,
                            a: Some(CanonEntry {
                                alloc: 4,
                                offset: 12,
                                write: true,
                            }),
                            b: Some(CanonEntry {
                                alloc: 4,
                                offset: 15,
                                write: false,
                            }),
                        },
                    }),
                    declared_words: 8192,
                    recorded_words: 8190,
                    footprint_sound: true,
                    schedule_clean: true,
                },
            ],
        };
        let text = set.to_json_string();
        let back = CertificateSet::from_json_str(&text).expect("round trip");
        assert_eq!(back, set);
        assert!(back.is_secure("matmul"));
        assert!(!back.is_secure("sort"));
        assert!(!back.is_secure("no-such-kernel"));
    }

    #[test]
    fn mismatched_witness_and_classification_is_rejected() {
        let mut set = CertificateSet {
            certs: vec![Certificate {
                kernel: "fft".into(),
                n: 1024,
                runs: 2,
                classification: Classification::DataDependent,
                witness: None, // inconsistent on purpose
                declared_words: 4096,
                recorded_words: 4096,
                footprint_sound: true,
                schedule_clean: true,
            }],
        };
        let text = set.to_json_string();
        assert!(CertificateSet::from_json_str(&text).is_err());
        // And an unsound certificate is not secure.
        set.certs[0].classification = Classification::Oblivious;
        set.certs[0].footprint_sound = false;
        let back = CertificateSet::from_json_str(&set.to_json_string()).unwrap();
        assert!(!back.is_secure("fft"));
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let j =
            json::parse(r#"{"a": [1, 2.5, -3], "s": "x\"\\\nA", "t": true, "z": null}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(j.get("s").unwrap().as_str(), Some("x\"\\\nA"));
        assert_eq!(j.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("z"), Some(&json::Json::Null));
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2,]").is_err());
        assert!(json::parse("[1] trailing").is_err());
    }
}
