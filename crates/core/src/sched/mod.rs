//! The replay phase: scheduling a recorded [`Program`](crate::Program) onto
//! an HM machine.
//!
//! The scheduler is the machine-*aware* half of the runtime. It interprets
//! the hints recorded by the algorithm — CGC loop segments, SB and CGC⇒SB
//! fork blocks — against a concrete [`hm_model::MachineSpec`], decides task
//! anchoring and core assignment in virtual time, and replays every memory
//! access through the multi-level cache simulator in global time order.
//!
//! Three policies are provided:
//!
//! * [`Policy::Mo`] — the paper's multicore-oblivious scheduler: CGC
//!   segments of ≥ `B_1` iterations over the anchor's shadow, SB anchoring
//!   at the smallest fitting level (least-loaded, FIFO space admission),
//!   CGC⇒SB even distribution at level `max(i, j)`.
//! * [`Policy::Flat`] — hint-ignoring greedy scheduling over all cores
//!   (the "proportionate slice / work-sharing" strawman of §II): tasks are
//!   never anchored, every ready unit goes to the earliest-free core.
//! * [`Policy::Serial`] — everything on core 0; yields the sequential
//!   cache-oblivious complexity, the natural sanity baseline.

mod engine;

pub use engine::{simulate, Policy, RunReport};
