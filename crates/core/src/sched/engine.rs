//! Virtual-time list-scheduling engine with cache replay.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hm_model::{AccessKind, CacheId, CacheSystem, CoreId, MachineSpec, Metrics, Topology};

use crate::record::{ForkHint, Program, Segment, TaskId};

/// Scheduling policy for [`simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's multicore-oblivious scheduler (CGC / SB / CGC⇒SB).
    Mo,
    /// Hint-ignoring greedy work-sharing over all cores (§II strawman).
    Flat,
    /// Single-core execution (sequential cache-oblivious behaviour).
    Serial,
}

/// Where a task is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Anchor {
    /// A concrete cache; all of the task's work stays under its shadow.
    Cache(CacheId),
    /// The shared memory at level `h`: shadow is the whole machine.
    Memory,
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual makespan: the model's number of *parallel steps*.
    pub makespan: u64,
    /// Total memory operations executed (the program's work `T_1`).
    pub work: u64,
    /// Per-cache counters from the replay.
    pub metrics: Metrics,
    /// Inter-core write interleavings at `B_1` granularity.
    pub pingpongs: u64,
    /// Busy time per core.
    pub core_busy: Vec<u64>,
    /// Number of tasks in the DAG.
    pub tasks: usize,
    /// Number of scheduled execution units.
    pub units: usize,
}

impl RunReport {
    /// Observed speed-up `T_1 / T_p`.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.work as f64 / self.makespan as f64
        }
    }

    /// The model's cache complexity at `level`: max misses over the
    /// level's cache instances.
    pub fn cache_complexity(&self, level: usize) -> u64 {
        self.metrics.cache_complexity(level)
    }
}

#[derive(Debug)]
struct TaskState {
    anchor: Anchor,
    /// Next segment to start.
    seg: usize,
    /// Outstanding units (for Compute / CgcLoop) or children (for Fork)
    /// blocking the current segment's completion.
    outstanding: usize,
    /// Space charged against the anchor cache (0 when exempt).
    charged: usize,
    /// Deferred CGC⇒SB expansion state (§III-C): when a fork cannot yet
    /// be spread over lower-level caches (too few subtasks for the
    /// shadow), children inherit the anchor and carry their position
    /// within the accumulated expansion, so that once the recursion has
    /// generated enough subtasks they land on *contiguous* caches.
    cgcsb_pos: usize,
    cgcsb_width: usize,
}

/// Pending scheduler work (explicit stack; see `Engine::drain`).
#[derive(Debug, Clone, Copy)]
enum Action {
    Start,
    Advance,
    Complete,
}

/// A scheduled execution unit: a contiguous trace range on one core.
#[derive(Debug, Clone, Copy)]
struct Unit {
    core: CoreId,
    start: u64,
    trace_lo: usize,
    trace_hi: usize,
}

struct Engine<'p> {
    prog: &'p Program,
    spec: MachineSpec,
    topo: Topology,
    policy: Policy,
    tstate: Vec<TaskState>,
    core_free: Vec<u64>,
    core_busy: Vec<u64>,
    /// `used[level-1][index]`: space currently charged to the cache.
    used: Vec<Vec<usize>>,
    /// `load[level-1][index]`: tasks assigned and not yet completed.
    load: Vec<Vec<usize>>,
    /// FIFO admission queues per cache.
    waiting: Vec<Vec<VecDeque<TaskId>>>,
    /// Completion events: `Reverse((time, seq, task))`.
    events: BinaryHeap<Reverse<(u64, u64, TaskId)>>,
    seq: u64,
    units: Vec<Unit>,
    makespan: u64,
}

impl<'p> Engine<'p> {
    fn new(prog: &'p Program, spec: &MachineSpec, policy: Policy) -> Self {
        let topo = Topology::new(spec);
        let levels = spec.cache_levels();
        let tstate = prog
            .tasks()
            .iter()
            .map(|_| TaskState {
                anchor: Anchor::Memory,
                seg: 0,
                outstanding: 0,
                charged: 0,
                cgcsb_pos: 0,
                cgcsb_width: 1,
            })
            .collect();
        Engine {
            prog,
            spec: spec.clone(),
            topo: topo.clone(),
            policy,
            tstate,
            core_free: vec![0; topo.cores()],
            core_busy: vec![0; topo.cores()],
            used: (1..=levels).map(|i| vec![0; spec.caches_at(i)]).collect(),
            load: (1..=levels).map(|i| vec![0; spec.caches_at(i)]).collect(),
            waiting: (1..=levels)
                .map(|i| vec![VecDeque::new(); spec.caches_at(i)])
                .collect(),
            events: BinaryHeap::new(),
            seq: 0,
            units: Vec::new(),
            makespan: 0,
        }
    }

    /// The contiguous core range a task may run on.
    fn shadow(&self, anchor: Anchor) -> (CoreId, CoreId) {
        match self.policy {
            Policy::Serial => (0, 1),
            Policy::Flat => (0, self.topo.cores()),
            Policy::Mo => match anchor {
                Anchor::Memory => (0, self.topo.cores()),
                Anchor::Cache(c) => {
                    let s = self.topo.shadow(c);
                    (s.lo, s.hi)
                }
            },
        }
    }

    /// Earliest-free core in `[lo, hi)`, ties to the lowest index.
    fn pick_core(&self, lo: CoreId, hi: CoreId) -> CoreId {
        let mut best = lo;
        for c in lo + 1..hi {
            if self.core_free[c] < self.core_free[best] {
                best = c;
            }
        }
        best
    }

    fn schedule_unit(&mut self, task: TaskId, core: CoreId, ready: u64, lo: usize, hi: usize) {
        let start = ready.max(self.core_free[core]);
        let len = (hi - lo) as u64;
        let end = start + len;
        self.core_free[core] = end;
        self.core_busy[core] += len;
        self.makespan = self.makespan.max(end);
        self.units.push(Unit {
            core,
            start,
            trace_lo: lo,
            trace_hi: hi,
        });
        self.seq += 1;
        self.events.push(Reverse((end, self.seq, task)));
    }

    /// SB anchoring: smallest level fitting `space` under the parent's
    /// shadow, least-loaded cache there. Levels are capped strictly below
    /// a cache-anchored parent; a child that fits nowhere below inherits
    /// the parent's anchor (the paper's "enqueued in Q(λ)" case).
    fn sb_anchor(&self, parent: Anchor, space: usize) -> Anchor {
        let top = self.spec.cache_levels();
        let max_level = match parent {
            Anchor::Memory => top,
            Anchor::Cache(c) => c.level.saturating_sub(1),
        };
        let fit = self.spec.smallest_level_fitting(space);
        match fit {
            Some(level) if level <= max_level => {
                Anchor::Cache(self.least_loaded_under(parent, level))
            }
            _ => match parent {
                // Does not fit any cache at all: run from memory.
                Anchor::Memory => Anchor::Memory,
                Anchor::Cache(c) => Anchor::Cache(c),
            },
        }
    }

    fn least_loaded_under(&self, parent: Anchor, level: usize) -> CacheId {
        let candidates: Vec<CacheId> = match parent {
            Anchor::Memory => (0..self.topo.caches_at(level))
                .map(|j| CacheId::new(level, j))
                .collect(),
            Anchor::Cache(c) => self.topo.caches_under(c, level),
        };
        let mut best = candidates[0];
        let mut best_load = self.load[level - 1][best.index];
        for c in candidates.into_iter().skip(1) {
            let l = self.load[level - 1][c.index];
            if l < best_load {
                best = c;
                best_load = l;
            }
        }
        best
    }

    /// CGC⇒SB anchoring (§III-C) for a block of `m` children with common
    /// space bound `sigma`, spawned by `parent_task`.
    ///
    /// The *effective* subtask count is the fork width times the parent's
    /// accumulated expansion width: a recursion that forks two at a time
    /// keeps its children at the parent's anchor (carrying their position
    /// in the expansion) until enough subtasks exist, then distributes
    /// them evenly — in contiguous chunks, by expansion position — over
    /// the level-`t` caches under the shadow, `t = max(i, j)`.
    /// Returns per-child `(anchor, pos, width)`.
    fn cgcsb_anchors(
        &self,
        parent_task: TaskId,
        sigma: usize,
        m: usize,
    ) -> Vec<(Anchor, usize, usize)> {
        let parent = self.tstate[parent_task].anchor;
        let (ppos, pwidth) = (
            self.tstate[parent_task].cgcsb_pos,
            self.tstate[parent_task].cgcsb_width,
        );
        let eff = pwidth.saturating_mul(m);
        let top = self.spec.cache_levels();
        let parent_level = match parent {
            Anchor::Memory => top + 1,
            Anchor::Cache(c) => c.level,
        };
        let Some(i) = self.spec.smallest_level_fitting(sigma) else {
            return (0..m).map(|_| (Anchor::Memory, 0, 1)).collect();
        };
        // Smallest level j with at most `eff` caches under the shadow.
        let caches_under = |level: usize| -> usize {
            match parent {
                Anchor::Memory => self.topo.caches_at(level),
                Anchor::Cache(c) => {
                    if level >= c.level {
                        1
                    } else {
                        self.topo.count_caches_under(c, level)
                    }
                }
            }
        };
        let mut j = top;
        for level in 1..=top {
            if caches_under(level) <= eff {
                j = level;
                break;
            }
        }
        let t = i.max(j);
        if t >= parent_level {
            // Cannot descend yet: children inherit the anchor and extend
            // the expansion positions.
            return (0..m).map(|c| (parent, ppos * m + c, eff)).collect();
        }
        let caches: Vec<CacheId> = match parent {
            Anchor::Memory => (0..self.topo.caches_at(t))
                .map(|x| CacheId::new(t, x))
                .collect(),
            Anchor::Cache(c) => self.topo.caches_under(c, t),
        };
        let q = caches.len();
        (0..m)
            .map(|c| {
                let pos = ppos * m + c;
                (Anchor::Cache(caches[pos * q / eff]), 0, 1)
            })
            .collect()
    }

    fn assign_anchor(&mut self, task: TaskId, anchor: Anchor) {
        self.tstate[task].anchor = anchor;
        if let Anchor::Cache(c) = anchor {
            self.load[c.level - 1][c.index] += 1;
        }
    }

    /// Process the work stack until empty (iterative equivalent of the
    /// natural mutual recursion between start/advance/complete — the
    /// recursion depth would otherwise be the task-chain depth, which
    /// recorded programs are allowed to make arbitrarily deep).
    fn drain(&mut self, mut work: Vec<(Action, TaskId, u64)>) {
        while let Some((action, task, t)) = work.pop() {
            match action {
                Action::Start => self.start_task(task, t, &mut work),
                Action::Advance => self.advance(task, t, &mut work),
                Action::Complete => self.complete_task(task, t, &mut work),
            }
        }
    }

    /// Try to admit `task` at its anchor; on success the task advances at
    /// time `t`, otherwise it joins the cache's FIFO queue.
    fn start_task(&mut self, task: TaskId, t: u64, work: &mut Vec<(Action, TaskId, u64)>) {
        let anchor = self.tstate[task].anchor;
        match (self.policy, anchor) {
            (Policy::Mo, Anchor::Cache(c)) => {
                let parent_anchor = self.prog.tasks()[task]
                    .parent
                    .map(|p| self.tstate[p].anchor);
                if parent_anchor == Some(Anchor::Cache(c)) {
                    // Same anchor as parent: footprint is a subset of the
                    // parent's charge; no extra admission needed.
                    work.push((Action::Advance, task, t));
                    return;
                }
                let cap = self.spec.level(c.level).capacity;
                let charge = self.prog.tasks()[task].space.min(cap);
                let used = self.used[c.level - 1][c.index];
                if used == 0 || used + charge <= cap {
                    self.used[c.level - 1][c.index] += charge;
                    self.tstate[task].charged = charge;
                    work.push((Action::Advance, task, t));
                } else {
                    self.waiting[c.level - 1][c.index].push_back(task);
                }
            }
            _ => work.push((Action::Advance, task, t)),
        }
    }

    /// Run the task from its current segment at time `t` until it blocks
    /// on outstanding units/children or completes.
    fn advance(&mut self, task: TaskId, t: u64, work: &mut Vec<(Action, TaskId, u64)>) {
        loop {
            let seg_idx = self.tstate[task].seg;
            let node = &self.prog.tasks()[task];
            if seg_idx >= node.segments.len() {
                work.push((Action::Complete, task, t));
                return;
            }
            self.tstate[task].seg += 1;
            match &node.segments[seg_idx] {
                Segment::Compute { start, end } => {
                    let (lo, hi) = self.shadow(self.tstate[task].anchor);
                    let core = self.pick_core(lo, hi);
                    self.tstate[task].outstanding = 1;
                    let (s, e) = (*start, *end);
                    self.schedule_unit(task, core, t, s, e);
                    return;
                }
                Segment::CgcLoop { start, iter_ends } => {
                    let iters = iter_ends.len();
                    if iters == 0 {
                        continue;
                    }
                    let (lo, hi) = self.shadow(self.tstate[task].anchor);
                    let p = hi - lo;
                    let b1 = self.spec.level(1).block;
                    let nseg = (iters / b1).clamp(1, p);
                    let per = iters.div_ceil(nseg);
                    let start = *start;
                    // ⌈·⌉ rounding can leave trailing chunks empty; they
                    // get no unit.
                    let ends: Vec<(usize, usize)> = (0..nseg)
                        .map_while(|k| {
                            let i0 = k * per;
                            if i0 >= iters {
                                return None;
                            }
                            let i1 = ((k + 1) * per).min(iters);
                            let lo_t = if i0 == 0 { start } else { iter_ends[i0 - 1] };
                            let hi_t = iter_ends[i1 - 1];
                            Some((lo_t, hi_t))
                        })
                        .collect();
                    self.tstate[task].outstanding = ends.len();
                    for (k, (lo_t, hi_t)) in ends.into_iter().enumerate() {
                        // The j-th segment goes to the j-th core from the
                        // left of the shadow (§III-A).
                        let core = lo + (k % p);
                        self.schedule_unit(task, core, t, lo_t, hi_t);
                    }
                    return;
                }
                Segment::Fork { hint, children } => {
                    let children = children.clone();
                    let hint = *hint;
                    let parent_anchor = self.tstate[task].anchor;
                    self.tstate[task].outstanding = children.len();
                    match (self.policy, hint) {
                        (Policy::Mo, ForkHint::Sb) => {
                            for &ch in &children {
                                let a = self.sb_anchor(parent_anchor, self.prog.tasks()[ch].space);
                                self.assign_anchor(ch, a);
                            }
                        }
                        (Policy::Mo, ForkHint::CgcSb) => {
                            let sigma = children
                                .iter()
                                .map(|&ch| self.prog.tasks()[ch].space)
                                .max()
                                .unwrap_or(0);
                            let anchors = self.cgcsb_anchors(task, sigma, children.len());
                            for (&ch, (a, pos, width)) in children.iter().zip(anchors) {
                                self.assign_anchor(ch, a);
                                self.tstate[ch].cgcsb_pos = pos;
                                self.tstate[ch].cgcsb_width = width;
                            }
                        }
                        _ => {
                            for &ch in &children {
                                self.assign_anchor(ch, Anchor::Memory);
                            }
                        }
                    }
                    // Reverse push: child 0 is processed first and its
                    // whole subtree before its siblings (depth-first, the
                    // same order the natural recursion would give).
                    for &ch in children.iter().rev() {
                        work.push((Action::Start, ch, t));
                    }
                    return;
                }
            }
        }
    }

    fn complete_task(&mut self, task: TaskId, t: u64, work: &mut Vec<(Action, TaskId, u64)>) {
        let anchor = self.tstate[task].anchor;
        if let Anchor::Cache(c) = anchor {
            self.load[c.level - 1][c.index] -= 1;
            let charge = self.tstate[task].charged;
            if charge > 0 {
                self.tstate[task].charged = 0;
                self.used[c.level - 1][c.index] -= charge;
                // Admit waiting tasks in FIFO order while space allows.
                while let Some(&next) = self.waiting[c.level - 1][c.index].front() {
                    let cap = self.spec.level(c.level).capacity;
                    let ch = self.prog.tasks()[next].space.min(cap);
                    let used = self.used[c.level - 1][c.index];
                    if used == 0 || used + ch <= cap {
                        self.waiting[c.level - 1][c.index].pop_front();
                        self.used[c.level - 1][c.index] += ch;
                        self.tstate[next].charged = ch;
                        work.push((Action::Advance, next, t));
                    } else {
                        break;
                    }
                }
            }
        }
        if let Some(parent) = self.prog.tasks()[task].parent {
            self.tstate[parent].outstanding -= 1;
            if self.tstate[parent].outstanding == 0 {
                work.push((Action::Advance, parent, t));
            }
        }
    }

    fn run(mut self) -> RunReport {
        let root = self.prog.root();
        // Root anchoring: same SB rule with the memory as the "parent".
        if self.policy == Policy::Mo {
            let a = self.sb_anchor(Anchor::Memory, self.prog.tasks()[root].space);
            self.assign_anchor(root, a);
        }
        self.drain(vec![(Action::Start, root, 0)]);
        while let Some(Reverse((t, _seq, task))) = self.events.pop() {
            self.tstate[task].outstanding -= 1;
            if self.tstate[task].outstanding == 0 {
                self.drain(vec![(Action::Advance, task, t)]);
            }
        }
        // Every task must have completed.
        debug_assert!(self.tstate.iter().all(|s| s.outstanding == 0));
        for (l, level) in self.waiting.iter().enumerate() {
            for (j, q) in level.iter().enumerate() {
                assert!(
                    q.is_empty(),
                    "scheduler deadlock: tasks still waiting at L{} cache {}",
                    l + 1,
                    j
                );
            }
        }

        // ---- cache replay in global virtual-time order ----
        let mut sys = CacheSystem::new(&self.spec);
        // Per-core unit streams are already in start-time order.
        let mut streams: Vec<Vec<Unit>> = vec![Vec::new(); self.topo.cores()];
        for u in &self.units {
            streams[u.core].push(*u);
        }
        let mut cursor: Vec<usize> = vec![0; streams.len()];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (c, s) in streams.iter().enumerate() {
            if !s.is_empty() {
                heap.push(Reverse((s[0].start, c)));
            }
        }
        let trace = self.prog.trace();
        while let Some(Reverse((_t, c))) = heap.pop() {
            let u = streams[c][cursor[c]];
            // Replay the whole unit: its accesses occupy consecutive
            // timestamps and no other unit on this core overlaps; units on
            // other cores interleave at unit granularity, which is the
            // resolution the analysis needs (units are single tasks'
            // private working sets).
            for e in &trace[u.trace_lo..u.trace_hi] {
                let kind = if e.is_write() {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                sys.access(c, e.addr(), kind);
            }
            cursor[c] += 1;
            if cursor[c] < streams[c].len() {
                heap.push(Reverse((streams[c][cursor[c]].start, c)));
            }
        }

        RunReport {
            makespan: self.makespan,
            work: self.prog.work(),
            metrics: sys.metrics().clone(),
            pingpongs: sys.pingpongs(),
            core_busy: self.core_busy,
            tasks: self.prog.tasks().len(),
            units: self.units.len(),
        }
    }
}

/// Simulate `prog` on `spec` under `policy`.
///
/// Returns the virtual makespan (parallel steps), per-cache metrics from
/// replaying every access through the HM cache hierarchy, and per-core
/// utilization.
///
/// In debug builds every program is first checked by
/// [`crate::verify::verify`]: the scheduler theorems assume race-free
/// programs with honest hints, so simulating a program that fails
/// verification produces numbers with no meaning. The check asserts only
/// on error-severity findings (races and hint violations), not on
/// structural warnings.
pub fn simulate(prog: &Program, spec: &MachineSpec, policy: Policy) -> RunReport {
    #[cfg(debug_assertions)]
    {
        let report = crate::verify::verify(prog);
        debug_assert!(
            report.is_clean(),
            "mo-verify rejected the program:\n{report}"
        );
    }
    Engine::new(prog, spec, policy).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{spawn, ForkHint, Recorder};

    fn machine() -> MachineSpec {
        MachineSpec::three_level(4, 1 << 10, 8, 1 << 16, 32).unwrap()
    }

    /// A CGC scan over n words on p cores takes ~n/p steps.
    #[test]
    fn cgc_scan_parallelizes() {
        let n = 4096;
        let prog = Recorder::record(3 * n, |rec| {
            let a = rec.alloc(n);
            rec.cgc_for(n, |rec, k| {
                rec.write(a, k, k as u64);
            });
        });
        let spec = machine();
        let r = simulate(&prog, &spec, Policy::Mo);
        assert_eq!(r.work, n as u64);
        // 4 cores: makespan = n / 4.
        assert_eq!(r.makespan, (n / 4) as u64);
        let s = simulate(&prog, &spec, Policy::Serial);
        assert_eq!(s.makespan, n as u64);
    }

    /// CGC respects the >= B_1 segment rule: a short loop uses fewer cores.
    #[test]
    fn cgc_short_loop_limits_cores() {
        let n = 16; // B1 = 8 => at most 2 segments
                    // Root space exceeds every cache so its shadow is the whole machine.
        let prog = Recorder::record(1 << 20, |rec| {
            let a = rec.alloc(n);
            rec.cgc_for(n, |rec, k| {
                rec.write(a, k, 1);
            });
        });
        let r = simulate(&prog, &machine(), Policy::Mo);
        assert_eq!(r.units, 2);
        assert_eq!(r.makespan, 8);
    }

    /// Two SB children with disjoint data run on different cores in
    /// parallel and keep their private L1 miss counts disjoint.
    #[test]
    fn sb_children_run_in_parallel_under_distinct_anchors() {
        let n = 512;
        let prog = Recorder::record(2 * n + 64, |rec| {
            let a = rec.alloc(n);
            let b = rec.alloc(n);
            rec.fork2(
                ForkHint::Sb,
                n,
                move |rec| {
                    for k in 0..n {
                        rec.write(a, k, 1);
                    }
                },
                n,
                move |rec| {
                    for k in 0..n {
                        rec.write(b, k, 2);
                    }
                },
            );
        });
        let r = simulate(&prog, &machine(), Policy::Mo);
        // Parallel: both children overlap fully.
        assert_eq!(r.makespan, n as u64);
        // Each child fits L1 (512 <= 1024) so it anchors at a distinct L1.
        let busy_cores = r.core_busy.iter().filter(|&&b| b > 0).count();
        assert_eq!(busy_cores, 2);
    }

    /// Serial policy keeps everything on core 0.
    #[test]
    fn serial_uses_one_core() {
        let prog = Recorder::record(64, |rec| {
            let a = rec.alloc(32);
            rec.fork2(
                ForkHint::Sb,
                32,
                move |rec| {
                    for k in 0..16 {
                        rec.write(a, k, 1);
                    }
                },
                32,
                move |rec| {
                    for k in 16..32 {
                        rec.write(a, k, 1);
                    }
                },
            );
        });
        let r = simulate(&prog, &machine(), Policy::Serial);
        assert_eq!(r.core_busy[0], 32);
        assert!(r.core_busy[1..].iter().all(|&b| b == 0));
        assert_eq!(r.makespan, 32);
    }

    /// SB admission control serializes tasks that together overflow a
    /// cache but parallelizes tasks that fit.
    #[test]
    fn sb_admission_respects_capacity() {
        // Machine with tiny L1s (64 words) so two 48-word tasks cannot
        // share one... they anchor at *different* L1s and run in parallel;
        // but 8 tasks of 48 words across 4 L1s run two-deep.
        let spec = MachineSpec::three_level(4, 64, 8, 4096, 8).unwrap();
        let per = 48usize;
        let prog = Recorder::record(8 * per + 64, |rec| {
            let arrs: Vec<_> = (0..8).map(|_| rec.alloc(per)).collect();
            let children = arrs
                .iter()
                .map(|&a| {
                    spawn(per, move |rec: &mut Recorder| {
                        for k in 0..per {
                            rec.write(a, k, 1);
                        }
                    })
                })
                .collect();
            rec.fork(ForkHint::Sb, children);
        });
        let r = simulate(&prog, &spec, Policy::Mo);
        // 8 tasks x 48 steps over 4 cores: perfect packing = 96 steps.
        assert_eq!(r.makespan, 2 * per as u64);
    }

    /// CGC⇒SB distributes equal children over the right cache level.
    #[test]
    fn cgcsb_distributes_evenly() {
        // h=3, 4 cores; children of space 600 fit only L1 (1024): level
        // i=1; j: level with <= m caches under memory shadow.
        let n = 256usize;
        let prog = Recorder::record(4 * n + 64, |rec| {
            let arrs: Vec<_> = (0..4).map(|_| rec.alloc(n)).collect();
            let children = arrs
                .iter()
                .map(|&a| {
                    spawn(600, move |rec: &mut Recorder| {
                        for k in 0..n {
                            rec.write(a, k, 1);
                        }
                    })
                })
                .collect();
            rec.fork(ForkHint::CgcSb, children);
        });
        let r = simulate(&prog, &machine(), Policy::Mo);
        // 4 children on 4 cores in parallel.
        assert_eq!(r.makespan, n as u64);
        assert_eq!(r.core_busy.iter().filter(|&&b| b > 0).count(), 4);
    }

    /// Flat policy also parallelizes but ignores anchors (both behaviours
    /// matter for the §II comparison).
    #[test]
    fn flat_policy_spreads_work() {
        let n = 1024usize;
        let prog = Recorder::record(n + 64, |rec| {
            let a = rec.alloc(n);
            rec.cgc_for(n, |rec, k| {
                rec.write(a, k, 1);
            });
        });
        let r = simulate(&prog, &machine(), Policy::Flat);
        assert_eq!(r.makespan, (n / 4) as u64);
    }

    /// The report's speed-up is work/makespan.
    #[test]
    fn speedup_is_consistent() {
        let n = 4096usize;
        let prog = Recorder::record(n + 64, |rec| {
            let a = rec.alloc(n);
            rec.cgc_for(n, |rec, k| {
                rec.write(a, k, 1);
            });
        });
        let r = simulate(&prog, &machine(), Policy::Mo);
        assert!((r.speedup() - 4.0).abs() < 1e-9);
    }

    /// Nested SB recursion down to L1 anchors terminates and uses all
    /// cores (a miniature I-GEP-shaped stress).
    #[test]
    fn nested_sb_recursion_completes() {
        fn rec_body(rec: &mut Recorder, a: crate::Arr, lo: usize, hi: usize) {
            let len = hi - lo;
            if len <= 64 {
                for k in lo..hi {
                    rec.write(a, k, 1);
                }
                return;
            }
            let mid = lo + len / 2;
            rec.fork2(
                ForkHint::Sb,
                len / 2,
                move |r| rec_body(r, a, lo, mid),
                len / 2,
                move |r| rec_body(r, a, mid, hi),
            );
        }
        let n = 4096usize;
        let prog = Recorder::record(n, |rec| {
            let a = rec.alloc(n);
            rec_body(rec, a, 0, n);
        });
        let r = simulate(&prog, &machine(), Policy::Mo);
        assert_eq!(r.work, n as u64);
        assert_eq!(r.core_busy.iter().sum::<u64>(), n as u64);
        // All four cores contribute.
        assert!(r.core_busy.iter().all(|&b| b > 0));
        assert!(r.makespan < n as u64);
    }

    /// Replay counts compulsory misses exactly for a serial scan.
    #[test]
    fn replay_matches_direct_cache_simulation() {
        let n = 2048usize;
        let prog = Recorder::record(n + 64, |rec| {
            let a = rec.alloc(n);
            for k in 0..n {
                rec.write(a, k, 1);
            }
        });
        let spec = machine();
        let r = simulate(&prog, &spec, Policy::Serial);
        assert_eq!(r.metrics.cache(1, 0).misses, (n / 8) as u64);
        assert_eq!(r.metrics.cache(2, 0).misses, (n / 32) as u64);
    }
}
