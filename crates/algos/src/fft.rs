//! MO-FFT: multicore-oblivious in-place FFT (Fig. 3, Theorem 2).
//!
//! The recursive √n-decomposition of the cache-oblivious FFT, adapted to
//! the HM model: matrix reshaping and twiddle scaling are `[CGC]` loops,
//! transposition is MO-MT, and the two batches of recursive sub-FFTs are
//! forked with `[CGC⇒SB]`.
//!
//! Convention (matching the paper): `Y[i] = Σ_j X[j]·ω_n^{-ij}` with
//! `ω_n = e^{2π√-1/n}`, indices 0-based. Complex numbers occupy two
//! consecutive words (re, im), each an `f64` bit pattern.

use std::f64::consts::PI;

use mo_core::{spawn, Arr, ForkHint, Recorder, Spawn};

use crate::transpose::mo_mt;

/// Below this size the DFT is computed by the direct formula
/// ("if n is a small constant", Fig. 3 line 1).
const BASE: usize = 8;

/// Space bound of a size-`n` call, in words: the input `X` (2n complex
/// words) plus every allocation of the call and its recursive
/// sub-FFTs ([`fft_allocs`]). The paper states `S(n) = 3n` complex
/// elements assuming temporaries are reclaimed level by level; our
/// recorded traces keep them live for the whole run, so the honest
/// bound charges each level's `n1 × n1` working matrix and Morton
/// intermediate down the recursion (an `O(n log log n)` total).
pub fn fft_space(n: usize) -> usize {
    2 * n + fft_allocs(n)
}

/// Words allocated by a size-`n` MO-FFT call and all its descendants:
/// the base case's DFT temporary, or the working matrix `A` and its
/// transpose intermediate (`4·n1²`) plus the two batches of sub-FFT
/// allocations.
fn fft_allocs(n: usize) -> usize {
    if n <= BASE {
        return 2 * n;
    }
    let k = n.trailing_zeros() as usize;
    let n1 = 1usize << k.div_ceil(2);
    let n2 = 1usize << (k / 2);
    4 * n1 * n1 + n2 * fft_allocs(n1) + n1 * fft_allocs(n2)
}

#[inline]
fn read_c(rec: &mut Recorder, a: Arr, idx: usize) -> (f64, f64) {
    (rec.read_f64(a, 2 * idx), rec.read_f64(a, 2 * idx + 1))
}

#[inline]
fn write_c(rec: &mut Recorder, a: Arr, idx: usize, v: (f64, f64)) {
    rec.write_f64(a, 2 * idx, v.0);
    rec.write_f64(a, 2 * idx + 1, v.1);
}

#[inline]
fn cmul(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// `ω_n^{-t} = e^{-2πi·t/n}` (twiddle values are computed, not loaded, so
/// they cost no memory traffic — the paper's hardware-`β` convention).
#[inline]
fn omega(n: usize, t: usize) -> (f64, f64) {
    let ang = -2.0 * PI * (t as f64) / (n as f64);
    (ang.cos(), ang.sin())
}

/// In-place MO-FFT of `x` (`n` complex numbers, `x.len() ≥ 2n`, `n` a
/// power of two).
pub fn mo_fft(rec: &mut Recorder, x: Arr, n: usize) {
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    assert!(x.len() >= 2 * n);
    if n <= BASE {
        // Direct O(n²) DFT through a temporary (reads must precede the
        // in-place writes).
        let tmp = rec.alloc(2 * n);
        for j in 0..n {
            let v = read_c(rec, x, j);
            write_c(rec, tmp, j, v);
        }
        for i in 0..n {
            let mut acc = (0.0, 0.0);
            for j in 0..n {
                let v = read_c(rec, tmp, j);
                let w = omega(n, (i * j) % n);
                let t = cmul(v, w);
                acc = (acc.0 + t.0, acc.1 + t.1);
            }
            write_c(rec, x, i, acc);
        }
        return;
    }

    let k = n.trailing_zeros() as usize;
    let n1 = 1usize << k.div_ceil(2);
    let n2 = 1usize << (k / 2);
    debug_assert_eq!(n1 * n2, n);

    // A is an n1 × n1 complex matrix in row-major order (only the first
    // n = n1·n2 entries are meaningful at any step).
    let a = rec.alloc(2 * n1 * n1);
    let inter = rec.alloc(2 * n1 * n1);

    // 3: [CGC] reshape X into the first n2 columns of the first n1 rows.
    rec.cgc_for(n, |rec, t| {
        let i = t / n2; // j1
        let j = t % n2; // j2
        let v = read_c(rec, x, i * n2 + j);
        write_c(rec, a, i * n1 + j, v);
    });
    // 4: [CGC] MO-MT(A, n1).
    mo_mt(rec, a, a, inter, n1, 2);
    // 5: [CGC⇒SB] pfor rows j2 < n2: recursive FFT of length n1.
    let children: Vec<Spawn<'_>> = (0..n2)
        .map(|i| {
            let row = a.sub(2 * i * n1, 2 * n1);
            spawn(fft_space(n1), move |rec: &mut Recorder| {
                mo_fft(rec, row, n1);
            })
        })
        .collect();
    rec.fork(ForkHint::CgcSb, children);
    // 6: [CGC] twiddle the first n entries: A[j2, k1] *= ω_n^{-j2·k1}.
    rec.cgc_for(n, |rec, t| {
        let j2 = t / n1;
        let k1 = t % n1;
        let v = read_c(rec, a, t);
        let w = omega(n, (j2 * k1) % n);
        write_c(rec, a, t, cmul(v, w));
    });
    // 7: [CGC] MO-MT(A, n1).
    mo_mt(rec, a, a, inter, n1, 2);
    // 8: [CGC⇒SB] pfor rows k1 < n1: recursive FFT of length n2.
    let children: Vec<Spawn<'_>> = (0..n1)
        .map(|i| {
            let row = a.sub(2 * i * n1, 2 * n2);
            spawn(fft_space(n2), move |rec: &mut Recorder| {
                mo_fft(rec, row, n2);
            })
        })
        .collect();
    rec.fork(ForkHint::CgcSb, children);
    // 9: [CGC] MO-MT(A, n1).
    mo_mt(rec, a, a, inter, n1, 2);
    // 10: [CGC] copy the first n entries back into X.
    rec.cgc_for(n, |rec, t| {
        let v = read_c(rec, a, t);
        write_c(rec, x, t, v);
    });
}

/// In-place inverse MO-FFT: `mo_ifft(mo_fft(x)) == x` (up to rounding).
/// Realized obliviously as conjugate → forward transform → conjugate and
/// scale, with the conjugations/scaling as `[CGC]` passes.
pub fn mo_ifft(rec: &mut Recorder, x: Arr, n: usize) {
    rec.cgc_for(n, |rec, i| {
        let v = rec.read_f64(x, 2 * i + 1);
        rec.write_f64(x, 2 * i + 1, -v);
    });
    mo_fft(rec, x, n);
    let scale = 1.0 / n as f64;
    rec.cgc_for(n, |rec, i| {
        let re = rec.read_f64(x, 2 * i);
        let im = rec.read_f64(x, 2 * i + 1);
        rec.write_f64(x, 2 * i, re * scale);
        rec.write_f64(x, 2 * i + 1, -im * scale);
    });
}

/// A recorded standalone FFT program.
pub struct FftProgram {
    /// The recorded program.
    pub program: mo_core::Program,
    /// In/out vector (interleaved re/im).
    pub data: Arr,
    /// Transform length.
    pub n: usize,
}

/// Record MO-FFT of `input` (`n` complex numbers as (re, im) pairs).
pub fn fft_program(input: &[(f64, f64)]) -> FftProgram {
    let n = input.len();
    let flat: Vec<f64> = input.iter().flat_map(|&(r, i)| [r, i]).collect();
    let mut h = None;
    let program = Recorder::record(fft_space(n), |rec| {
        let x = rec.alloc_init_f64(&flat);
        mo_fft(rec, x, n);
        h = Some(x);
    });
    FftProgram {
        program,
        data: h.unwrap(),
        n,
    }
}

impl FftProgram {
    /// The transform result.
    pub fn output(&self) -> Vec<(f64, f64)> {
        (0..self.n)
            .map(|i| {
                (
                    self.program.get_f64(self.data, 2 * i),
                    self.program.get_f64(self.data, 2 * i + 1),
                )
            })
            .collect()
    }
}

/// Reference O(n²) DFT with the same convention, for verification.
pub fn reference_dft(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = input.len();
    (0..n)
        .map(|i| {
            let mut acc = (0.0, 0.0);
            for (j, &v) in input.iter().enumerate() {
                let t = cmul(v, omega(n, (i * j) % n));
                acc = (acc.0 + t.0, acc.1 + t.1);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_model::MachineSpec;
    use mo_core::sched::{simulate, Policy};

    fn signal(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (
                    (t * 0.37).sin() + 0.25 * (t * 1.7).cos(),
                    (t * 0.11).cos() - 0.5,
                )
            })
            .collect()
    }

    fn close(a: &[(f64, f64)], b: &[(f64, f64)], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.0 - y.0).abs() < tol && (x.1 - y.1).abs() < tol,
                "mismatch at {k}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_reference_dft_across_sizes() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            let s = signal(n);
            let fp = fft_program(&s);
            close(&fp.output(), &reference_dft(&s), 1e-6 * (n.max(4) as f64));
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 64;
        let mut s = vec![(0.0, 0.0); n];
        s[0] = (1.0, 0.0);
        let fp = fft_program(&s);
        for v in fp.output() {
            assert!((v.0 - 1.0).abs() < 1e-9 && v.1.abs() < 1e-9);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 64;
        let s = vec![(1.0, 0.0); n];
        let fp = fft_program(&s);
        let out = fp.output();
        assert!((out[0].0 - n as f64).abs() < 1e-9);
        for v in &out[1..] {
            assert!(v.0.abs() < 1e-7 && v.1.abs() < 1e-7);
        }
    }

    /// A pure tone lands all its energy in a single bin.
    #[test]
    fn tone_lands_in_one_bin() {
        let n = 128usize;
        let f = 5usize;
        let s: Vec<(f64, f64)> = (0..n)
            .map(|t| {
                let ang = 2.0 * PI * (f * t) as f64 / n as f64;
                (ang.cos(), ang.sin())
            })
            .collect();
        let fp = fft_program(&s);
        let out = fp.output();
        let mag = |v: (f64, f64)| (v.0 * v.0 + v.1 * v.1).sqrt();
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| mag(*a.1).total_cmp(&mag(*b.1)))
            .unwrap();
        // X[t] = ω^{+ft} cancels the kernel exactly at bin f.
        assert_eq!(peak.0, f);
        assert!((mag(*peak.1) - n as f64).abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn inverse_round_trips() {
        let n = 256usize;
        let s = signal(n);
        let flat: Vec<f64> = s.iter().flat_map(|&(r, i)| [r, i]).collect();
        let mut h = None;
        let prog = Recorder::record(fft_space(n), |rec| {
            let x = rec.alloc_init_f64(&flat);
            mo_fft(rec, x, n);
            mo_ifft(rec, x, n);
            h = Some(x);
        });
        let x = h.unwrap();
        for i in 0..n {
            assert!((prog.get_f64(x, 2 * i) - s[i].0).abs() < 1e-8, "re at {i}");
            assert!(
                (prog.get_f64(x, 2 * i + 1) - s[i].1).abs() < 1e-8,
                "im at {i}"
            );
        }
    }

    /// Theorem 2 shape: near-linear speed-up for n >> p·B₁, and shared-
    /// cache misses within a small constant of a few scans once the
    /// problem fits in L2.
    #[test]
    fn theorem2_shape_holds() {
        let n = 1 << 12;
        let s = signal(n);
        let fp = fft_program(&s);
        let p = 8u64;
        let spec = MachineSpec::three_level(p as usize, 1 << 10, 8, 1 << 18, 32).unwrap();
        let r = simulate(&fp.program, &spec, Policy::Mo);
        assert!(r.speedup() > p as f64 * 0.5, "speedup {}", r.speedup());
        let scan2 = (r.work as f64) / 32.0;
        assert!(
            (r.cache_complexity(2) as f64) < scan2 * 2.0,
            "L2 misses {} vs scan {scan2}",
            r.cache_complexity(2)
        );
    }
}
