//! Certification adapters: the bridge between the kernel registry
//! ([`crate::real::registry`]) and the recorded MO programs the
//! `mo_certify` pass suite analyses.
//!
//! Each registry kernel maps to its recorded counterpart at a given
//! size, with *independently seeded input values* — the knob the
//! value-obliviousness certifier (`mo_core::certify`) turns: record the
//! same `(kernel, n)` under several seeds and diff the canonical
//! traces. A registry-metadata lint pass rides along, cross-checking
//! the declared grain hints and data-dependence markers against how
//! the programs actually record.

use mo_core::{Program, Recorder, Segment};

use crate::real::registry::{footprint_words, Kernel};

/// Splitmix generator mirroring the registry's input generator, so the
/// certifier's seeded values are as cheap and deterministic as the
/// serving layer's.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Default certification size per kernel: large enough that the
/// recorded DAG exercises every hint the kernel uses (forks past the
/// base case, several CGC levels), small enough that recording K runs
/// of every kernel stays in CI-smoke territory.
pub fn certify_size(kernel: Kernel) -> usize {
    match kernel {
        Kernel::Transpose => 32,
        Kernel::Fft => 1 << 10,
        Kernel::Matmul => 32,
        Kernel::Sort => 1 << 11,
        Kernel::SpmDv => 256, // 16×16 mesh
        Kernel::Scan => 1 << 11,
    }
}

/// Whether the kernel's recorded program uses measured space bounds
/// ([`Recorder::record_measured`]) — the recording style that *should*
/// accompany a [`Kernel::is_data_dependent`] marker. The lint pass
/// flags disagreement between the two.
pub fn records_measured(kernel: Kernel) -> bool {
    matches!(kernel, Kernel::Sort)
}

/// The analytic footprint admission control charges a size-`n` job of
/// `kernel` — re-exported next to the adapter so the auditor compares
/// declared and recorded words through one module.
pub fn declared_words(kernel: Kernel, n: usize) -> usize {
    footprint_words(kernel, n)
}

/// Record `kernel` at size `n` with values drawn from `seed`.
///
/// The *structure* of the input (array lengths, the SpM-DV sparsity
/// pattern) is fixed by `n`; only the **values** vary with the seed.
/// That is exactly the experiment value-obliviousness is about: a
/// certified kernel's DAG and canonical trace must not move when only
/// values move.
pub fn record_kernel(kernel: Kernel, n: usize, seed: u64) -> Program {
    let mut g = Gen(seed ^ (kernel.index() as u64).wrapping_mul(0xa076_1d64_78bd_642f));
    match kernel {
        Kernel::Transpose => {
            let data: Vec<u64> = (0..n * n).map(|_| g.next()).collect();
            crate::transpose::transpose_program(&data, n).program
        }
        Kernel::Fft => {
            let len = n.next_power_of_two();
            let input: Vec<(f64, f64)> = (0..len).map(|_| (g.f64_unit(), g.f64_unit())).collect();
            crate::fft::fft_program(&input).program
        }
        Kernel::Matmul => {
            let a: Vec<f64> = (0..n * n).map(|_| g.f64_unit()).collect();
            let b: Vec<f64> = (0..n * n).map(|_| g.f64_unit()).collect();
            crate::gep::matmul_program(&a, &b, n).program
        }
        Kernel::Sort => {
            let data: Vec<u64> = (0..n).map(|_| g.next()).collect();
            crate::sort::sort_program(&data).program
        }
        Kernel::SpmDv => {
            // Fixed mesh sparsity pattern; seeded nonzero and vector
            // values.
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            let mut m = crate::separator::mesh_matrix(side);
            for row in &mut m.rows {
                for (_, v) in row.iter_mut() {
                    *v = g.f64_unit();
                }
            }
            let x: Vec<f64> = (0..m.n).map(|_| g.f64_unit()).collect();
            crate::spmdv::spmdv_program(&m, &x).program
        }
        Kernel::Scan => {
            let len = n.next_power_of_two();
            let data: Vec<u64> = (0..len).map(|_| g.next()).collect();
            Recorder::record(2 * len, |rec| {
                let a = rec.alloc_init(&data);
                crate::scan::mo_prefix_sum(rec, a, len);
            })
        }
    }
}

/// The effective problem size the analytic footprint is parameterized
/// on for a recording made by [`record_kernel`] — `n` for every kernel
/// except SpM-DV, whose mesh rounds `n` to a square.
pub fn effective_n(kernel: Kernel, n: usize) -> usize {
    match kernel {
        Kernel::SpmDv => {
            let side = (n as f64).sqrt().round().max(2.0) as usize;
            side * side
        }
        _ => n,
    }
}

/// Known, documented footprint-audit exceptions: kernels whose recorded
/// MO program legitimately touches more distinct words than the served
/// real-machine kernel that admission control charges for. Returns the
/// justification, or `None` if declared-≥-recorded must hold.
///
/// These entries mirror `certify/exceptions.json` at the workspace root
/// (the `mo_certify --gate` input); the audit gate fails if a kernel
/// understates its footprint *without* an entry here, and the tests fail
/// if an entry goes stale (the gap closes).
pub fn footprint_exception(kernel: Kernel) -> Option<&'static str> {
    match kernel {
        Kernel::Transpose => Some(
            "recorded MO-MT routes through a Morton-order intermediate \
             (3n² words live) while the served kernel transposes \
             out-of-place in the 2n² that admission control charges",
        ),
        Kernel::Fft => Some(
            "recorded MO-FFT keeps every recursion level's n1×n1 working \
             matrix and transpose intermediate live (fft_space(n) = 2n + \
             O(n log log n) words) while the served kernel runs in the 4n \
             that admission control charges",
        ),
        Kernel::Sort => Some(
            "recorded SPMS sort keeps per-level sample, pivot, count and \
             distribution arrays live (≈6n words) while the served \
             real-machine SPMS sort runs in the 2n + o(n) words of \
             spms_working_set_words that admission control charges \
             (keys + caller-owned ping-pong scratch + radix histograms)",
        ),
        _ => None,
    }
}

/// A registry-metadata lint finding (warning severity: these weaken
/// constants or documentation honesty, not the scheduler theorems —
/// races and footprint lies are `mo_core::verify`'s errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryLint {
    /// A forked leaf task's working set exceeds the kernel's declared
    /// serial-grain hint: the base case is bigger than advertised.
    GrainExceeded {
        /// The offending kernel.
        kernel: Kernel,
        /// Declared grain hint ([`Kernel::grain_words`]).
        declared_grain: usize,
        /// Largest recorded leaf working set (words).
        max_leaf: usize,
        /// Task id of that leaf.
        leaf_task: usize,
    },
    /// Two sibling subtrees of one fork write into the same
    /// 64-word-aligned block: false sharing that breaks the per-task
    /// block-disjointness the transfer analyses assume. (Word-level
    /// overlap would be a determinacy race and is reported by
    /// `mo_core::verify` instead.)
    SiblingScratchAliasing {
        /// The offending kernel.
        kernel: Kernel,
        /// The forking task.
        parent: usize,
        /// First shared block's base word address.
        block_addr: u64,
        /// Number of distinct blocks written by two or more siblings.
        shared_blocks: usize,
    },
    /// The kernel records with measured bounds
    /// ([`Recorder::record_measured`]) but is not marked
    /// [`Kernel::is_data_dependent`]: the registry under-documents a
    /// value leak.
    MissingDataDependentMarker {
        /// The offending kernel.
        kernel: Kernel,
    },
    /// The kernel carries the data-dependent marker but records with
    /// analytic bounds: the marker is stale.
    SpuriousDataDependentMarker {
        /// The offending kernel.
        kernel: Kernel,
    },
}

impl std::fmt::Display for RegistryLint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryLint::GrainExceeded {
                kernel,
                declared_grain,
                max_leaf,
                leaf_task,
            } => write!(
                f,
                "{kernel}: leaf task {leaf_task} touches {max_leaf} words, \
                 above the declared grain hint of {declared_grain}"
            ),
            RegistryLint::SiblingScratchAliasing {
                kernel,
                parent,
                block_addr,
                shared_blocks,
            } => write!(
                f,
                "{kernel}: fork of task {parent} has {shared_blocks} block(s) \
                 written by multiple siblings (first: word {block_addr:#x})"
            ),
            RegistryLint::MissingDataDependentMarker { kernel } => write!(
                f,
                "{kernel}: records with measured bounds but lacks the \
                 data-dependent marker"
            ),
            RegistryLint::SpuriousDataDependentMarker { kernel } => write!(
                f,
                "{kernel}: carries the data-dependent marker but records \
                 with analytic bounds"
            ),
        }
    }
}

/// Block length (words) at which sibling write aliasing is judged: the
/// recorder's default allocation alignment, which is also the largest
/// block size the stock machine specs use.
const ALIAS_BLOCK_WORDS: u64 = 64;

/// Lint one kernel's metadata against one of its recordings.
pub fn lint_kernel(kernel: Kernel, prog: &Program) -> Vec<RegistryLint> {
    let mut findings = Vec::new();
    if records_measured(kernel) && !kernel.is_data_dependent() {
        findings.push(RegistryLint::MissingDataDependentMarker { kernel });
    }
    if !records_measured(kernel) && kernel.is_data_dependent() {
        findings.push(RegistryLint::SpuriousDataDependentMarker { kernel });
    }
    let fp = mo_core::verify::task_footprints(prog);
    // Grain honesty: forked leaves must fit the declared grain.
    let grain = kernel.grain_words();
    let mut worst: Option<(usize, usize)> = None; // (footprint, task)
    for (tid, task) in prog.tasks().iter().enumerate() {
        let is_leaf = task.parent.is_some()
            && !task
                .segments
                .iter()
                .any(|s| matches!(s, Segment::Fork { .. }));
        if is_leaf && fp[tid] > grain && worst.is_none_or(|(w, _)| fp[tid] > w) {
            worst = Some((fp[tid], tid));
        }
    }
    if let Some((max_leaf, leaf_task)) = worst {
        findings.push(RegistryLint::GrainExceeded {
            kernel,
            declared_grain: grain,
            max_leaf,
            leaf_task,
        });
    }
    // Sibling write aliasing at block granularity.
    findings.extend(sibling_aliasing(kernel, prog));
    findings
}

/// Per-fork check that sibling subtrees write disjoint 64-word blocks.
fn sibling_aliasing(kernel: Kernel, prog: &Program) -> Vec<RegistryLint> {
    use std::collections::{HashMap, HashSet};
    let trace = prog.trace();
    let ntasks = prog.tasks().len();
    // Written blocks per task's own strands.
    let mut own: Vec<HashSet<u64>> = vec![HashSet::new(); ntasks];
    for (tid, task) in prog.tasks().iter().enumerate() {
        for seg in &task.segments {
            let (lo, hi) = match seg {
                Segment::Compute { start, end } => (*start, *end),
                Segment::CgcLoop { start, iter_ends } => {
                    (*start, iter_ends.last().copied().unwrap_or(*start))
                }
                Segment::Fork { .. } => continue,
            };
            for e in &trace[lo..hi] {
                if e.is_write() {
                    own[tid].insert(e.addr() / ALIAS_BLOCK_WORDS);
                }
            }
        }
    }
    // Subtree sets by bottom-up small-to-large merge (children have
    // larger ids than parents).
    let mut sub = own;
    for t in (1..ntasks).rev() {
        let p = prog.tasks()[t].parent.expect("non-root has a parent");
        let child = std::mem::take(&mut sub[t]);
        if sub[p].len() < child.len() {
            let parent = std::mem::replace(&mut sub[p], child.clone());
            sub[p].extend(parent);
        } else {
            sub[p].extend(child.iter().copied());
        }
        sub[t] = child;
    }
    let mut findings = Vec::new();
    for (tid, task) in prog.tasks().iter().enumerate() {
        for seg in &task.segments {
            let Segment::Fork { children, .. } = seg else {
                continue;
            };
            let mut seen: HashMap<u64, usize> = HashMap::new();
            let mut shared: Vec<u64> = Vec::new();
            for &c in children {
                for &b in &sub[c] {
                    let count = seen.entry(b).or_insert(0);
                    *count += 1;
                    if *count == 2 {
                        shared.push(b);
                    }
                }
            }
            if !shared.is_empty() {
                shared.sort_unstable();
                findings.push(RegistryLint::SiblingScratchAliasing {
                    kernel,
                    parent: tid,
                    block_addr: shared[0] * ALIAS_BLOCK_WORDS,
                    shared_blocks: shared.len(),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use mo_core::certify::{classify, Classification};
    use mo_core::{spawn, ForkHint};

    #[test]
    fn deterministic_kernels_certify_oblivious_at_small_sizes() {
        for kernel in [Kernel::Transpose, Kernel::Scan] {
            let n = 16;
            let runs: Vec<(u64, Program)> =
                (0..3).map(|s| (s, record_kernel(kernel, n, s))).collect();
            let (c, w) = classify(&runs);
            assert_eq!(c, Classification::Oblivious, "{kernel}: {w:?}");
        }
    }

    #[test]
    fn sort_certifies_data_dependent_with_witness() {
        let runs: Vec<(u64, Program)> = (0..2)
            .map(|s| (s, record_kernel(Kernel::Sort, 256, s)))
            .collect();
        let (c, w) = classify(&runs);
        assert_eq!(c, Classification::DataDependent);
        let w = w.expect("data-dependent needs a witness");
        assert_eq!((w.seed_a, w.seed_b), (0, 1));
    }

    #[test]
    fn registry_kernels_pass_their_own_lint() {
        for kernel in Kernel::ALL {
            let n = match kernel {
                Kernel::Transpose | Kernel::Matmul => 16,
                Kernel::SpmDv => 64,
                _ => 256,
            };
            let prog = record_kernel(kernel, n, 7);
            let findings = lint_kernel(kernel, &prog);
            // Grain and marker lints must be clean on the shipped
            // registry; block-level aliasing of shared outputs is
            // tolerated (reported, not asserted) for kernels whose
            // siblings tile one output array.
            for f in &findings {
                assert!(
                    matches!(f, RegistryLint::SiblingScratchAliasing { .. }),
                    "{kernel}: unexpected lint {f}"
                );
            }
        }
    }

    #[test]
    fn grain_lint_flags_oversized_leaves() {
        // A fork whose leaf touches more words than a tiny grain hint.
        let prog = Recorder::record(4096, |rec| {
            let a = rec.alloc(2048);
            rec.fork(
                ForkHint::Sb,
                vec![spawn(1024, move |rec: &mut Recorder| {
                    for k in 0..1024 {
                        rec.write(a, k, k as u64);
                    }
                })],
            );
        });
        // Borrow Transpose's metadata (grain 512) against the synthetic
        // program.
        let findings = lint_kernel(Kernel::Transpose, &prog);
        assert!(findings.iter().any(|f| matches!(
            f,
            RegistryLint::GrainExceeded {
                declared_grain: 512,
                max_leaf: 1024,
                leaf_task: 1,
                ..
            }
        )));
    }

    #[test]
    fn aliasing_lint_flags_block_sharing_siblings() {
        // Siblings write adjacent words of one block: no race, but the
        // block is shared.
        let prog = Recorder::record(4096, |rec| {
            let a = rec.alloc(64);
            rec.fork2(
                ForkHint::Sb,
                64,
                |rec| rec.write(a, 0, 1),
                64,
                |rec| rec.write(a, 1, 2),
            );
        });
        let findings = lint_kernel(Kernel::Transpose, &prog);
        assert!(findings.iter().any(|f| matches!(
            f,
            RegistryLint::SiblingScratchAliasing {
                parent: 0,
                shared_blocks: 1,
                ..
            }
        )));
        // Siblings on distinct blocks are clean.
        let prog = Recorder::record(4096, |rec| {
            let a = rec.alloc(128);
            rec.fork2(
                ForkHint::Sb,
                64,
                |rec| rec.write(a, 0, 1),
                64,
                |rec| rec.write(a, 64, 2),
            );
        });
        assert!(lint_kernel(Kernel::Transpose, &prog).is_empty());
    }

    #[test]
    fn marker_lints_fire_on_disagreement() {
        // Synthetic: pretend a measured-bounds kernel lost its marker by
        // checking the two helper predicates stay in sync on the real
        // registry…
        for k in Kernel::ALL {
            assert_eq!(records_measured(k), k.is_data_dependent(), "{k}");
        }
        // …and that the lint would fire if they disagreed (exercise via
        // a direct construction of the finding's Display).
        let f = RegistryLint::MissingDataDependentMarker {
            kernel: Kernel::Sort,
        };
        assert!(f.to_string().contains("measured bounds"));
    }

    #[test]
    fn footprint_audit_declared_covers_recorded() {
        for kernel in Kernel::ALL {
            let n = match kernel {
                Kernel::Transpose | Kernel::Matmul => 16,
                Kernel::SpmDv => 64,
                _ => 256,
            };
            let prog = record_kernel(kernel, n, 3);
            let recorded = mo_core::certify::max_working_set(&prog);
            let en = effective_n(kernel, n);
            let declared = declared_words(kernel, en);
            if footprint_exception(kernel).is_some() {
                // Documented exceptions (see `footprint_exception` and
                // certify/exceptions.json): the recorded MO program keeps
                // temporaries live that the served real kernel does not.
                // The auditor must *see* the gap — an exception whose gap
                // has closed is stale and must be removed…
                assert!(declared < recorded, "{kernel}: exception became stale");
                // …but the gap stays within each recording's own honest
                // arena bound.
                let cap = match kernel {
                    Kernel::Transpose => 3 * en * en,
                    Kernel::Fft => crate::fft::fft_space(en),
                    Kernel::Sort => 8 * en,
                    _ => unreachable!(),
                };
                assert!(
                    recorded <= cap,
                    "{kernel}: recorded {recorded} exceeds honest bound {cap}"
                );
                continue;
            }
            assert!(
                declared >= recorded,
                "{kernel}: declared {declared} < recorded {recorded}"
            );
        }
    }
}
