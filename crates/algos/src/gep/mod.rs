//! The Gaussian Elimination Paradigm (Fig. 5, §V).
//!
//! GEP is the triply-nested loop of Fig. 5: for every update triplet
//! `⟨i,j,k⟩ ∈ Σ_f` (in `k`-major order), apply
//! `x[i,j] ← f(x[i,j], x[i,k], x[k,j], x[k,k])`.
//!
//! Instances implemented here (all commutative in the §V-B sense):
//!
//! * **Matrix multiplication** — `f(x,u,v,_) = x + u·v`, disjoint `X`,
//!   `U`, `V` (a pure call to I-GEP's `𝒟`).
//! * **Floyd–Warshall APSP** — `f(x,u,v,_) = min(x, u+v)`, `Σ_f` = all
//!   triplets, initial call `𝒜(x,x,x,x)`.
//! * **Gaussian elimination / LU without pivoting** —
//!   `f(x,u,v,w) = x − (u/w)·v`, `Σ_f = {⟨i,j,k⟩ : k < min(i,j)}`.
//!
//! [`igep`] holds the recursive multicore-oblivious implementation
//! (functions `𝒜`, `ℬ`, `𝒞`, `𝒟` of the appendix) scheduled under SB.

pub mod igep;

use mo_core::{Mat, Program, Recorder};

/// The update function `f : S⁴ → S` (plain function pointer so it is
/// `Copy` and freely shareable across recorded tasks).
pub type GepF = fn(f64, f64, f64, f64) -> f64;

/// The update set `Σ_f`, with box-intersection pruning for I-GEP's
/// "if `T ∩ Σ_f = ∅` return" early exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateSet {
    /// Every triplet `[0,n)³` (Floyd–Warshall, matrix multiplication).
    All,
    /// `{⟨i,j,k⟩ : k < i ∧ k < j}` (Gaussian elimination / LU).
    KBelowMin,
}

impl UpdateSet {
    /// Membership test.
    #[inline]
    pub fn contains(self, i: usize, j: usize, k: usize) -> bool {
        match self {
            UpdateSet::All => true,
            UpdateSet::KBelowMin => k < i && k < j,
        }
    }

    /// Whether the box `[i0,i0+m) × [j0,j0+m) × [k0,k0+m)` intersects the
    /// set.
    #[inline]
    pub fn intersects(self, i0: usize, j0: usize, k0: usize, m: usize) -> bool {
        match self {
            UpdateSet::All => true,
            UpdateSet::KBelowMin => k0 < i0 + m - 1 && k0 < j0 + m - 1,
        }
    }
}

/// `f` for matrix multiplication: `x + u·v` (ignores `w`).
pub fn mm_update(x: f64, u: f64, v: f64, _w: f64) -> f64 {
    x + u * v
}

/// `f` for Floyd–Warshall: `min(x, u + v)`.
pub fn fw_update(x: f64, u: f64, v: f64, _w: f64) -> f64 {
    x.min(u + v)
}

/// `f` for Gaussian elimination without pivoting: `x − (u/w)·v`.
pub fn ge_update(x: f64, u: f64, v: f64, w: f64) -> f64 {
    x - (u / w) * v
}

/// The reference GEP engine of Fig. 5: the ground truth every oblivious
/// implementation is checked against.
pub fn gep_reference(x: &mut [f64], n: usize, f: GepF, sigma: UpdateSet) {
    assert_eq!(x.len(), n * n);
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if sigma.contains(i, j, k) {
                    x[i * n + j] = f(x[i * n + j], x[i * n + k], x[k * n + j], x[k * n + k]);
                }
            }
        }
    }
}

/// A recorded I-GEP run.
pub struct GepProgram {
    /// The recorded program.
    pub program: Program,
    /// The matrix view (read results with [`Program::get_mat_f64`]).
    pub x: Mat,
    /// Problem size.
    pub n: usize,
}

impl GepProgram {
    /// The final matrix, row-major.
    pub fn output(&self) -> Vec<f64> {
        (0..self.n * self.n)
            .map(|t| self.program.get_mat_f64(&self.x, t / self.n, t % self.n))
            .collect()
    }
}

/// Record the full I-GEP computation `𝒜(x,x,x,x)` on `data` (row-major
/// `n × n`, `n` a power of two).
pub fn igep_program(data: &[f64], n: usize, f: GepF, sigma: UpdateSet) -> GepProgram {
    assert_eq!(data.len(), n * n);
    assert!(n.is_power_of_two());
    let mut h = None;
    let program = Recorder::record(n * n, |rec| {
        let a = rec.alloc_init_f64(data);
        let x = Mat::new(a, n, n);
        igep::igep_a(rec, x, n, f, sigma);
        h = Some(x);
    });
    GepProgram {
        program,
        x: h.unwrap(),
        n,
    }
}

/// Record `C += A·B` as a pure 𝒟 computation on disjoint matrices.
/// Returns the program and the `C` view.
pub fn matmul_program(a: &[f64], b: &[f64], n: usize) -> GepProgram {
    assert!(n.is_power_of_two());
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut h = None;
    let program = Recorder::record(4 * n * n, |rec| {
        let c = rec.alloc(n * n);
        let ma = rec.alloc_init_f64(a);
        let mb = rec.alloc_init_f64(b);
        let (xc, xa, xb) = (Mat::new(c, n, n), Mat::new(ma, n, n), Mat::new(mb, n, n));
        // W is irrelevant for mm_update; pass A.
        igep::igep_d(rec, xc, xa, xb, xa, (0, 0, 0), n, mm_update, UpdateSet::All);
        h = Some(xc);
    });
    GepProgram {
        program,
        x: h.unwrap(),
        n,
    }
}

/// Reference matrix multiplication.
pub fn matmul_reference(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Empirically check the I-GEP correctness conditions for an instance
/// `(f, Σ_f)`: run I-GEP and the Fig. 5 reference on `trials` random
/// matrices and report whether they agree within `tol` (relative).
///
/// §V: "I-GEP produces the correct output under certain conditions which
/// are met by all notable instances"; C-GEP extends it to *every*
/// instance. This verifier is the practical tool for deciding whether a
/// new instance needs the C-GEP treatment (see `table_dstar` for a
/// non-commutative instance where reordering genuinely changes results).
pub fn igep_matches_reference(
    f: GepF,
    sigma: UpdateSet,
    n: usize,
    trials: usize,
    tol: f64,
) -> bool {
    let mut seed = 0x9E37_79B9u64;
    for _ in 0..trials {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut s = seed;
        let data: Vec<f64> = (0..n * n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 40) as f64) / 4096.0 + 1.0
            })
            .collect();
        let gp = igep_program(&data, n, f, sigma);
        let mut want = data.clone();
        gep_reference(&mut want, n, f, sigma);
        let got = gp.output();
        for t in 0..n * n {
            if (got[t] - want[t]).abs() > tol * (1.0 + want[t].abs()) {
                return false;
            }
        }
    }
    true
}

/// Reference Floyd–Warshall on an adjacency matrix (∞ = `f64::INFINITY`).
pub fn floyd_warshall_reference(d: &[f64], n: usize) -> Vec<f64> {
    let mut x = d.to_vec();
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = x[i * n + k] + x[k * n + j];
                if via < x[i * n + j] {
                    x[i * n + j] = via;
                }
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_gep_fw_equals_reference_fw() {
        let n = 8;
        let mut d = vec![f64::INFINITY; n * n];
        for i in 0..n {
            d[i * n + i] = 0.0;
            d[i * n + (i + 1) % n] = 1.0;
            d[i * n + (i + 3) % n] = 2.5;
        }
        let mut g = d.clone();
        gep_reference(&mut g, n, fw_update, UpdateSet::All);
        assert_eq!(g, floyd_warshall_reference(&d, n));
    }

    #[test]
    fn update_set_membership_and_boxes_agree() {
        let n = 8usize;
        for set in [UpdateSet::All, UpdateSet::KBelowMin] {
            for m in [1usize, 2, 4] {
                for i0 in (0..n).step_by(m) {
                    for j0 in (0..n).step_by(m) {
                        for k0 in (0..n).step_by(m) {
                            let any = (i0..i0 + m).any(|i| {
                                (j0..j0 + m).any(|j| (k0..k0 + m).any(|k| set.contains(i, j, k)))
                            });
                            assert_eq!(
                                set.intersects(i0, j0, k0, m),
                                any,
                                "{set:?} box ({i0},{j0},{k0}) m={m}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn igep_correctness_verifier_accepts_notable_instances() {
        assert!(igep_matches_reference(
            mm_update,
            UpdateSet::All,
            16,
            3,
            1e-9
        ));
        assert!(igep_matches_reference(
            fw_update,
            UpdateSet::All,
            16,
            3,
            1e-9
        ));
        // An affine instance restricted to k < min(i, j) also satisfies
        // the conditions (its operands are finalized before use).
        fn affine(x: f64, u: f64, v: f64, _w: f64) -> f64 {
            x + 0.25 * u + 0.25 * v
        }
        assert!(igep_matches_reference(
            affine,
            UpdateSet::KBelowMin,
            16,
            3,
            1e-9
        ));
    }

    #[test]
    fn igep_correctness_verifier_rejects_order_sensitive_instance() {
        // The same affine f over Σ = all triplets reads u = x[i,k] and
        // v = x[k,j] values that GEP's k-major order and I-GEP's quadrant
        // order update at different times: a genuine violation of the
        // I-GEP correctness conditions — the kind of instance §V says
        // C-GEP exists to repair.
        fn affine(x: f64, u: f64, v: f64, _w: f64) -> f64 {
            x + 0.25 * u + 0.25 * v
        }
        assert!(
            !igep_matches_reference(affine, UpdateSet::All, 16, 3, 1e-9),
            "expected the unrestricted affine instance to diverge"
        );
    }

    #[test]
    fn reference_ge_produces_upper_triangular_u() {
        // GEP with KBelowMin leaves U in the upper triangle: check against
        // textbook elimination.
        let n = 4;
        #[rustfmt::skip]
        let a = vec![
            4.0, 3.0, 2.0, 1.0,
            2.0, 4.0, 1.0, 2.0,
            1.0, 2.0, 4.0, 1.0,
            1.0, 1.0, 2.0, 4.0,
        ];
        let mut g = a.clone();
        gep_reference(&mut g, n, ge_update, UpdateSet::KBelowMin);
        // Textbook GE.
        let mut t = a.clone();
        for k in 0..n {
            for i in k + 1..n {
                let m = t[i * n + k] / t[k * n + k];
                for j in k + 1..n {
                    t[i * n + j] -= m * t[k * n + j];
                }
            }
        }
        for i in 0..n {
            for j in i..n {
                assert!(
                    (g[i * n + j] - t[i * n + j]).abs() < 1e-9,
                    "U mismatch at ({i},{j}): {} vs {}",
                    g[i * n + j],
                    t[i * n + j]
                );
            }
        }
    }
}
