//! I-GEP: the recursive multicore-oblivious GEP implementation
//! (paper appendix, scheduled under SB — Theorem 5).
//!
//! Four mutually recursive functions `𝒜`, `ℬ`, `𝒞`, `𝒟` differing in how
//! much the views `X ≡ x[I,J]`, `U ≡ x[I,K]`, `V ≡ x[K,J]`, `W ≡ x[K,K]`
//! overlap. Every recursive call — serial steps included — is forked as an
//! SB task with the appendix's space bounds (`m²`, `2m²`, `2m²`, `4m²`),
//! so the scheduler re-anchors each sub-computation at the smallest cache
//! level that fits it; that is precisely what yields the
//! `Θ(n³/(q_i·B_i·√C_i))` per-level miss bound.
//!
//! `𝒟`'s round-2 call list follows Table I's I-GEP column (the appendix
//! misprints `U_{21}` for `U_{22}` in the third call).

// The recursive functions take the paper's exact operand lists
// (X, U, V, W, origins, size, f, Σ): more readable than bundling.
#![allow(clippy::too_many_arguments)]

use mo_core::{spawn, ForkHint, Mat, Recorder};

use super::{GepF, UpdateSet};

/// Recursion grain: boxes of side ≤ `GRAIN` run the direct triple loop
/// ("if X is 1×1" in the paper, coarsened to keep the task DAG finite).
pub const GRAIN: usize = 8;

type Org = (usize, usize, usize);

/// Direct k-major triple loop over the box — the recursion base.
fn base(
    rec: &mut Recorder,
    x: Mat,
    u: Mat,
    v: Mat,
    w: Mat,
    o: Org,
    m: usize,
    f: GepF,
    s: UpdateSet,
) {
    let (i0, j0, k0) = o;
    for k in 0..m {
        for i in 0..m {
            for j in 0..m {
                if s.contains(i0 + i, j0 + j, k0 + k) {
                    let xv = rec.read_mat_f64(&x, i, j);
                    let uv = rec.read_mat_f64(&u, i, k);
                    let vv = rec.read_mat_f64(&v, k, j);
                    let wv = rec.read_mat_f64(&w, k, k);
                    rec.write_mat_f64(&x, i, j, f(xv, uv, vv, wv));
                }
            }
        }
    }
}

/// Entry point: the initial call `𝒜(x, x, x, x)` over the whole matrix.
pub fn igep_a(rec: &mut Recorder, x: Mat, n: usize, f: GepF, s: UpdateSet) {
    assert!(n.is_power_of_two());
    assert_eq!(x.rows, n);
    assert_eq!(x.cols, n);
    a_rec(rec, x, x, x, x, (0, 0, 0), n, f, s);
}

/// Public 𝒟 entry (used for matrix multiplication on disjoint matrices).
pub fn igep_d(
    rec: &mut Recorder,
    x: Mat,
    u: Mat,
    v: Mat,
    w: Mat,
    o: Org,
    m: usize,
    f: GepF,
    s: UpdateSet,
) {
    d_rec(rec, x, u, v, w, o, m, f, s);
}

fn a_rec(
    rec: &mut Recorder,
    x: Mat,
    u: Mat,
    v: Mat,
    w: Mat,
    o: Org,
    m: usize,
    f: GepF,
    s: UpdateSet,
) {
    let (i0, j0, k0) = o;
    if !s.intersects(i0, j0, k0, m) {
        return;
    }
    if m <= GRAIN {
        base(rec, x, u, v, w, o, m, f, s);
        return;
    }
    let h = m / 2;
    let (x11, x12, x21, x22) = x.quadrants();
    let (u11, u12, u21, u22) = u.quadrants();
    let (v11, v12, v21, v22) = v.quadrants();
    let (w11, _w12, _w21, w22) = w.quadrants();
    // 3: A(X11, U11, V11, W11)
    rec.fork(
        ForkHint::Sb,
        vec![spawn(h * h, move |r: &mut Recorder| {
            a_rec(r, x11, u11, v11, w11, (i0, j0, k0), h, f, s)
        })],
    );
    // 4: parallel B(X12, U11, V12, W11), C(X21, U21, V11, W11)
    rec.fork2(
        ForkHint::Sb,
        2 * h * h,
        move |r| b_rec(r, x12, u11, v12, w11, (i0, j0 + h, k0), h, f, s),
        2 * h * h,
        move |r| c_rec(r, x21, u21, v11, w11, (i0 + h, j0, k0), h, f, s),
    );
    // 5: D(X22, U21, V12, W11)
    rec.fork(
        ForkHint::Sb,
        vec![spawn(4 * h * h, move |r: &mut Recorder| {
            d_rec(r, x22, u21, v12, w11, (i0 + h, j0 + h, k0), h, f, s)
        })],
    );
    // 6: A(X22, U22, V22, W22)
    rec.fork(
        ForkHint::Sb,
        vec![spawn(h * h, move |r: &mut Recorder| {
            a_rec(r, x22, u22, v22, w22, (i0 + h, j0 + h, k0 + h), h, f, s)
        })],
    );
    // 7: parallel B(X21, U22, V21, W22), C(X12, U12, V22, W22)
    rec.fork2(
        ForkHint::Sb,
        2 * h * h,
        move |r| b_rec(r, x21, u22, v21, w22, (i0 + h, j0, k0 + h), h, f, s),
        2 * h * h,
        move |r| c_rec(r, x12, u12, v22, w22, (i0, j0 + h, k0 + h), h, f, s),
    );
    // 8: D(X11, U12, V21, W22)
    rec.fork(
        ForkHint::Sb,
        vec![spawn(4 * h * h, move |r: &mut Recorder| {
            d_rec(r, x11, u12, v21, w22, (i0, j0, k0 + h), h, f, s)
        })],
    );
}

fn b_rec(
    rec: &mut Recorder,
    x: Mat,
    u: Mat,
    v: Mat,
    w: Mat,
    o: Org,
    m: usize,
    f: GepF,
    s: UpdateSet,
) {
    let (i0, j0, k0) = o;
    if !s.intersects(i0, j0, k0, m) {
        return;
    }
    if m <= GRAIN {
        base(rec, x, u, v, w, o, m, f, s);
        return;
    }
    let h = m / 2;
    let (x11, x12, x21, x22) = x.quadrants();
    let (u11, u12, u21, u22) = u.quadrants();
    let (v11, v12, v21, v22) = v.quadrants();
    let (w11, _w12, _w21, w22) = w.quadrants();
    rec.fork2(
        ForkHint::Sb,
        2 * h * h,
        move |r| b_rec(r, x11, u11, v11, w11, (i0, j0, k0), h, f, s),
        2 * h * h,
        move |r| b_rec(r, x12, u11, v12, w11, (i0, j0 + h, k0), h, f, s),
    );
    rec.fork2(
        ForkHint::Sb,
        4 * h * h,
        move |r| d_rec(r, x21, u21, v11, w11, (i0 + h, j0, k0), h, f, s),
        4 * h * h,
        move |r| d_rec(r, x22, u21, v12, w11, (i0 + h, j0 + h, k0), h, f, s),
    );
    rec.fork2(
        ForkHint::Sb,
        2 * h * h,
        move |r| b_rec(r, x21, u22, v21, w22, (i0 + h, j0, k0 + h), h, f, s),
        2 * h * h,
        move |r| b_rec(r, x22, u22, v22, w22, (i0 + h, j0 + h, k0 + h), h, f, s),
    );
    rec.fork2(
        ForkHint::Sb,
        4 * h * h,
        move |r| d_rec(r, x11, u12, v21, w22, (i0, j0, k0 + h), h, f, s),
        4 * h * h,
        move |r| d_rec(r, x12, u12, v22, w22, (i0, j0 + h, k0 + h), h, f, s),
    );
}

fn c_rec(
    rec: &mut Recorder,
    x: Mat,
    u: Mat,
    v: Mat,
    w: Mat,
    o: Org,
    m: usize,
    f: GepF,
    s: UpdateSet,
) {
    let (i0, j0, k0) = o;
    if !s.intersects(i0, j0, k0, m) {
        return;
    }
    if m <= GRAIN {
        base(rec, x, u, v, w, o, m, f, s);
        return;
    }
    let h = m / 2;
    let (x11, x12, x21, x22) = x.quadrants();
    let (u11, u12, u21, u22) = u.quadrants();
    let (v11, v12, v21, v22) = v.quadrants();
    let (w11, _w12, _w21, w22) = w.quadrants();
    rec.fork2(
        ForkHint::Sb,
        2 * h * h,
        move |r| c_rec(r, x11, u11, v11, w11, (i0, j0, k0), h, f, s),
        2 * h * h,
        move |r| c_rec(r, x21, u21, v11, w11, (i0 + h, j0, k0), h, f, s),
    );
    rec.fork2(
        ForkHint::Sb,
        4 * h * h,
        move |r| d_rec(r, x12, u11, v12, w11, (i0, j0 + h, k0), h, f, s),
        4 * h * h,
        move |r| d_rec(r, x22, u21, v12, w11, (i0 + h, j0 + h, k0), h, f, s),
    );
    rec.fork2(
        ForkHint::Sb,
        2 * h * h,
        move |r| c_rec(r, x12, u12, v22, w22, (i0, j0 + h, k0 + h), h, f, s),
        2 * h * h,
        move |r| c_rec(r, x22, u22, v22, w22, (i0 + h, j0 + h, k0 + h), h, f, s),
    );
    rec.fork2(
        ForkHint::Sb,
        4 * h * h,
        move |r| d_rec(r, x11, u12, v21, w22, (i0, j0, k0 + h), h, f, s),
        4 * h * h,
        move |r| d_rec(r, x21, u22, v21, w22, (i0 + h, j0, k0 + h), h, f, s),
    );
}

fn d_rec(
    rec: &mut Recorder,
    x: Mat,
    u: Mat,
    v: Mat,
    w: Mat,
    o: Org,
    m: usize,
    f: GepF,
    s: UpdateSet,
) {
    let (i0, j0, k0) = o;
    if !s.intersects(i0, j0, k0, m) {
        return;
    }
    if m <= GRAIN {
        base(rec, x, u, v, w, o, m, f, s);
        return;
    }
    let h = m / 2;
    let (x11, x12, x21, x22) = x.quadrants();
    let (u11, u12, u21, u22) = u.quadrants();
    let (v11, v12, v21, v22) = v.quadrants();
    let (w11, _w12, _w21, w22) = w.quadrants();
    let sp = 4 * h * h;
    rec.fork(
        ForkHint::Sb,
        vec![
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x11, u11, v11, w11, (i0, j0, k0), h, f, s)
            }),
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x12, u11, v12, w11, (i0, j0 + h, k0), h, f, s)
            }),
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x21, u21, v11, w11, (i0 + h, j0, k0), h, f, s)
            }),
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x22, u21, v12, w11, (i0 + h, j0 + h, k0), h, f, s)
            }),
        ],
    );
    rec.fork(
        ForkHint::Sb,
        vec![
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x11, u12, v21, w22, (i0, j0, k0 + h), h, f, s)
            }),
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x12, u12, v22, w22, (i0, j0 + h, k0 + h), h, f, s)
            }),
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x21, u22, v21, w22, (i0 + h, j0, k0 + h), h, f, s)
            }),
            spawn(sp, move |r: &mut Recorder| {
                d_rec(r, x22, u22, v22, w22, (i0 + h, j0 + h, k0 + h), h, f, s)
            }),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::super::*;
    use hm_model::MachineSpec;
    use mo_core::sched::{simulate, Policy};

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n * n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as f64) / 1024.0 + 0.5
            })
            .collect()
    }

    #[test]
    fn igep_floyd_warshall_matches_reference_exactly() {
        // Integer edge weights make min/plus exact in f64.
        for n in [8usize, 16, 32] {
            let mut d = vec![f64::INFINITY; n * n];
            let mut x = 12345u64;
            for i in 0..n {
                d[i * n + i] = 0.0;
                for _ in 0..3 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let j = (x >> 33) as usize % n;
                    let w = 1.0 + ((x >> 20) % 9) as f64;
                    if j != i {
                        d[i * n + j] = d[i * n + j].min(w);
                    }
                }
            }
            let gp = igep_program(&d, n, fw_update, UpdateSet::All);
            assert_eq!(gp.output(), floyd_warshall_reference(&d, n), "n = {n}");
        }
    }

    #[test]
    fn igep_gaussian_elimination_matches_reference_gep() {
        let n = 16;
        // Diagonally dominant => numerically tame, no pivoting needed.
        let mut a = random_matrix(n, 7);
        for i in 0..n {
            a[i * n + i] += n as f64 * 2.0;
        }
        let gp = igep_program(&a, n, ge_update, UpdateSet::KBelowMin);
        let mut reference = a.clone();
        gep_reference(&mut reference, n, ge_update, UpdateSet::KBelowMin);
        let got = gp.output();
        for t in 0..n * n {
            assert!(
                (got[t] - reference[t]).abs() < 1e-9 * (1.0 + reference[t].abs()),
                "mismatch at {t}: {} vs {}",
                got[t],
                reference[t]
            );
        }
    }

    #[test]
    fn igep_matmul_matches_reference() {
        for n in [8usize, 16, 32] {
            let a = random_matrix(n, 1);
            let b = random_matrix(n, 2);
            let mp = matmul_program(&a, &b, n);
            let c = mp.output();
            let r = matmul_reference(&a, &b, n);
            for t in 0..n * n {
                assert!(
                    (c[t] - r[t]).abs() < 1e-9 * (1.0 + r[t].abs()),
                    "n={n} t={t}"
                );
            }
        }
    }

    /// Theorem 5 shape: misses at a level-i cache ≈ n³/(q_i·B_i·√C_i)
    /// within a constant, and the speed-up is near-linear.
    #[test]
    fn theorem5_shape_holds() {
        let n = 64usize;
        let a = random_matrix(n, 3);
        let b = random_matrix(n, 4);
        let mp = matmul_program(&a, &b, n);
        let p = 4u64;
        let (c1, b1) = (1 << 10, 8u64);
        let spec = MachineSpec::three_level(p as usize, c1, b1 as usize, 1 << 16, 32).unwrap();
        let r = simulate(&mp.program, &spec, Policy::Mo);
        assert!(r.speedup() > p as f64 * 0.4, "speedup {}", r.speedup());
        let n3 = (n * n * n) as f64;
        let predicted = n3 / (p as f64 * b1 as f64 * (c1 as f64).sqrt());
        let measured = r.cache_complexity(1) as f64;
        // Within a generous constant (grain effects, W row reloads).
        assert!(
            measured < 40.0 * predicted,
            "L1 misses {measured} vs predicted Θ({predicted})"
        );
    }
}
