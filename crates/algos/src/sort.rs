//! SPMS-structured multicore-oblivious sorting (Theorem 3).
//!
//! The paper schedules Cole–Ramachandran's *Sample, Partition and Merge
//! Sort* on HM by observing it has exactly MO-FFT's recursive shape: a
//! problem of size `n` is decomposed by balanced-parallel ("BP") CGC
//! computations into ~`√n` independent subproblems of size ~`√n`, solved
//! by **two rounds** of `[CGC⇒SB]` recursion, with prefix-sum scans in
//! between (which is where the extra `log log n` in the parallel time
//! comes from).
//!
//! This module implements that structure as a deterministic
//! sample-partition sort:
//!
//! 1. split into `q ≈ √n` contiguous runs, recursively sort each
//!    (`[CGC⇒SB]`, round 1);
//! 2. BP glue, all `[CGC]` + scans: gather regular samples from every
//!    run, sort them recursively, pick `q−1` deduplicated pivots, count
//!    per-run bucket occupancies, prefix-sum the bucket-major count
//!    matrix into destination cursors, and distribute;
//! 3. recursively sort each bucket (`[CGC⇒SB]`, round 2) — buckets
//!    *equal to a pivot value* are already sorted and are skipped, which
//!    also guarantees termination under heavy duplicates.
//!
//! Keys are `u64`; callers sorting (key, value) records pack them as
//! `key << 32 | value` (comparison is lexicographic for unsigned packing).

use mo_core::{spawn, Arr, ForkHint, Recorder, Spawn};

use crate::scan::mo_prefix_sum;

/// Base-case size for the direct (insertion) sort.
pub const BASE: usize = 32;

/// Traced insertion sort (the recursion base).
fn insertion_sort(rec: &mut Recorder, a: Arr, n: usize) {
    for i in 1..n {
        let v = rec.read(a, i);
        let mut j = i;
        while j > 0 {
            let w = rec.read(a, j - 1);
            if w <= v {
                break;
            }
            rec.write(a, j, w);
            j -= 1;
        }
        rec.write(a, j, v);
    }
}

/// Traced binary search returning the bucket index of `v` against `t`
/// sorted distinct pivots: even indices are strict ranges, odd indices
/// are the "equals pivot" buckets.
fn bucket_of(rec: &mut Recorder, piv: Arr, t: usize, v: u64) -> usize {
    let (mut lo, mut hi) = (0usize, t);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let pv = rec.read(piv, mid);
        if pv < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < t && rec.read(piv, lo) == v {
        2 * lo + 1
    } else {
        2 * lo
    }
}

/// Sort `a[0..n]` ascending, in place.
pub fn mo_sort(rec: &mut Recorder, a: Arr, n: usize) {
    if n <= 1 {
        return;
    }
    if n <= BASE {
        insertion_sort(rec, a, n);
        return;
    }
    let s = (n as f64).sqrt().ceil() as usize; // run length
    let q = n.div_ceil(s); // number of runs
    let run = |i: usize| -> (usize, usize) {
        let lo = i * s;
        (lo, ((i + 1) * s).min(n))
    };

    // ---- round 1: recursively sort each run [CGC⇒SB] ----
    let children: Vec<Spawn<'_>> = (0..q)
        .map(|i| {
            let (lo, hi) = run(i);
            let sub = a.sub(lo, hi - lo);
            spawn(4 * (hi - lo), move |rec: &mut Recorder| {
                mo_sort(rec, sub, hi - lo);
            })
        })
        .collect();
    rec.fork(ForkHint::CgcSb, children);

    // ---- BP glue (all CGC + scans) ----
    // Regular samples: every k-th element of each sorted run.
    let k = (s / 4).max(2);
    let mut m = 0usize;
    let sample_base: Vec<usize> = (0..q)
        .map(|i| {
            let (lo, hi) = run(i);
            let b = m;
            m += (hi - lo) / k;
            b
        })
        .collect();
    debug_assert!(m < n, "sample set must shrink");
    let samples = rec.alloc(m.max(1));
    rec.cgc_for(q, |rec, i| {
        let (lo, hi) = run(i);
        let cnt = (hi - lo) / k;
        for t in 0..cnt {
            let v = rec.read(a, lo + t * k + k - 1);
            rec.write(samples, sample_base[i] + t, v);
        }
    });
    mo_sort(rec, samples, m);

    // q-1 evenly spaced pivots, deduplicated.
    let piv = rec.alloc(q.max(1));
    let mut npiv = 0usize;
    let mut last: Option<u64> = None;
    for t in 0..q.saturating_sub(1) {
        let idx = ((t + 1) * m / q).min(m.saturating_sub(1));
        let v = rec.read(samples, idx);
        if last != Some(v) {
            rec.write(piv, npiv, v);
            npiv += 1;
            last = Some(v);
        }
    }
    if npiv == 0 {
        // Degenerate sample (all equal): one pivot still splits off the
        // duplicates of that value.
        let v = rec.read(samples, 0);
        rec.write(piv, 0, v);
        npiv = 1;
    }
    let nb = 2 * npiv + 1;

    // Count matrix, bucket-major: counts[b·q + i].
    let counts_len = (nb * q).next_power_of_two();
    let counts = rec.alloc(counts_len);
    rec.cgc_for(q, |rec, i| {
        let (lo, hi) = run(i);
        for e in lo..hi {
            let v = rec.read(a, e);
            let b = bucket_of(rec, piv, npiv, v);
            let c = rec.read(counts, b * q + i);
            rec.write(counts, b * q + i, c + 1);
        }
    });

    // Bucket-major exclusive prefix sum → per-(bucket, run) cursors.
    // Bucket boundaries are noted before the scan turns counts into
    // cursors (peeks: a real implementation reads them from the scan's
    // own output positions).
    let mut bucket_sizes = vec![0usize; nb];
    #[allow(clippy::needless_range_loop)] // b also forms the counts index
    for b in 0..nb {
        for i in 0..q {
            bucket_sizes[b] += rec.peek(counts, b * q + i) as usize;
        }
    }
    mo_prefix_sum(rec, counts, counts_len);
    let mut bucket_lo = vec![0usize; nb + 1];
    for b in 0..nb {
        bucket_lo[b + 1] = bucket_lo[b] + bucket_sizes[b];
    }
    debug_assert_eq!(bucket_lo[nb], n);

    // Distribute.
    let out = rec.alloc(n);
    rec.cgc_for(q, |rec, i| {
        let (lo, hi) = run(i);
        for e in lo..hi {
            let v = rec.read(a, e);
            let b = bucket_of(rec, piv, npiv, v);
            let cur = rec.read(counts, b * q + i);
            rec.write(out, cur as usize, v);
            rec.write(counts, b * q + i, cur + 1);
        }
    });

    // ---- round 2: recursively sort the strict buckets [CGC⇒SB] ----
    let children: Vec<Spawn<'_>> = (0..nb)
        .step_by(2) // odd buckets equal a pivot: already sorted
        .filter(|&b| bucket_lo[b + 1] - bucket_lo[b] > 1)
        .map(|b| {
            let lo = bucket_lo[b];
            let len = bucket_lo[b + 1] - lo;
            let sub = out.sub(lo, len);
            spawn(4 * len, move |rec: &mut Recorder| {
                mo_sort(rec, sub, len);
            })
        })
        .collect();
    rec.fork(ForkHint::CgcSb, children);

    // Copy back.
    rec.cgc_for(n, |rec, t| {
        let v = rec.read(out, t);
        rec.write(a, t, v);
    });
}

/// A recorded standalone sort.
pub struct SortProgram {
    /// The recorded program.
    pub program: mo_core::Program,
    /// The sorted array.
    pub data: Arr,
}

/// Record a sort of `data`.
///
/// Per-task space is data-dependent (sample dedup, bucket occupancy),
/// so the program is recorded with measured bounds
/// ([`Recorder::record_measured`]): the `4·len` bounds declared at the
/// forks are provisional and replaced by exact subtree footprints.
pub fn sort_program(data: &[u64]) -> SortProgram {
    let mut h = None;
    let program = Recorder::record_measured(4 * data.len().max(1), |rec| {
        let a = rec.alloc_init(data);
        mo_sort(rec, a, data.len());
        h = Some(a);
    });
    SortProgram {
        program,
        data: h.unwrap(),
    }
}

/// Pack a (key, value) record for sorting (`key`, `value` < 2³²).
#[inline]
pub fn pack(key: u64, value: u64) -> u64 {
    debug_assert!(key < (1 << 32) && value < (1 << 32));
    (key << 32) | value
}

/// Unpack a record packed with [`pack`].
#[inline]
pub fn unpack(rec: u64) -> (u64, u64) {
    (rec >> 32, rec & 0xFFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hm_model::MachineSpec;
    use mo_core::sched::{simulate, Policy};

    fn lcg(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % modulus
            })
            .collect()
    }

    fn check_sorted(data: &[u64]) {
        let sp = sort_program(data);
        let got = sp.program.slice(sp.data).to_vec();
        let mut want = data.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn sorts_random_inputs_across_sizes() {
        for n in [0usize, 1, 2, 3, 31, 32, 33, 100, 500, 1000, 4096] {
            check_sorted(&lcg(42 + n as u64, n, u64::MAX >> 33));
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        let n = 600;
        check_sorted(&(0..n as u64).collect::<Vec<_>>()); // sorted
        check_sorted(&(0..n as u64).rev().collect::<Vec<_>>()); // reversed
        check_sorted(&vec![7u64; n]); // constant
        check_sorted(&lcg(1, n, 4)); // heavy duplicates
        let mut organ: Vec<u64> = (0..n as u64 / 2).collect();
        organ.extend((0..n as u64 / 2).rev());
        check_sorted(&organ); // organ pipe
    }

    #[test]
    fn pack_orders_lexicographically() {
        assert!(pack(1, 99) < pack(2, 0));
        assert!(pack(5, 1) < pack(5, 2));
        assert_eq!(unpack(pack(123, 456)), (123, 456));
    }

    #[test]
    fn sorting_packed_records_keeps_values() {
        let keys = lcg(9, 300, 50);
        let packed: Vec<u64> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| pack(k, i as u64))
            .collect();
        let sp = sort_program(&packed);
        let got = sp.program.slice(sp.data);
        for w in got.windows(2) {
            assert!(unpack(w[0]).0 <= unpack(w[1]).0);
        }
        // Every original value survives.
        let mut vals: Vec<u64> = got.iter().map(|&r| unpack(r).1).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..300u64).collect::<Vec<_>>());
    }

    /// Theorem 3 shape: real speed-up, and shared-cache misses within a
    /// constant of a few scans once the data fits in L2.
    #[test]
    fn theorem3_shape_holds() {
        let n = 1 << 12;
        let data = lcg(5, n, u64::MAX >> 33);
        let sp = sort_program(&data);
        let p = 8u64;
        let spec = MachineSpec::three_level(p as usize, 1 << 10, 8, 1 << 18, 32).unwrap();
        let r = simulate(&sp.program, &spec, Policy::Mo);
        assert!(r.speedup() > 2.0, "speedup {}", r.speedup());
        let l2_scan = r.work / 32;
        assert!(
            r.cache_complexity(2) < 2 * l2_scan,
            "L2 misses {} vs scan {}",
            r.cache_complexity(2),
            l2_scan
        );
    }
}
